# Convenience targets for the psync workspace.

.PHONY: all test lint doc examples experiments bench loc

all: test lint

test:
	cargo test --workspace

lint:
	cargo clippy --workspace --all-targets -- -D warnings
	cargo fmt --all --check 2>/dev/null || true

doc:
	cargo doc --workspace --no-deps

examples:
	for ex in quickstart register_demo clock_skew_stress mmt_pipeline \
	          event_ordering failure_detector replicated_counter; do \
	    cargo run -q --release --example $$ex || exit 1; \
	done

# Regenerate the EXPERIMENTS.md tables (stdout).
experiments:
	cargo run --release -p psync-bench --bin experiments

bench:
	cargo bench -p psync-bench

loc:
	find . -name "*.rs" -not -path "./target/*" | xargs wc -l | tail -1
