//! Property tests for the Simulation 1 buffers (Figure 2): the receive
//! buffer's release discipline and the send buffer's stamping, under
//! random interleavings of arrivals, releases and clock advances.

use proptest::prelude::*;
use psync::prelude::*;
use psync_automata::ClockComponent;

fn env(id: u64) -> Envelope<u32> {
    Envelope {
        src: NodeId(1),
        dst: NodeId(0),
        id: MsgId(id),
        payload: id as u32,
    }
}

type A = SysAction<u32, &'static str>;

/// Drives a RecvBuffer through a random schedule of arrivals (with random
/// stamps) interleaved with maximal clock advances and eager releases,
/// checking the two Figure 2 invariants on every release:
///
/// 1. never released before the local clock reaches the send stamp;
/// 2. releases happen in (stamp, arrival) order.
fn drive_recv_buffer(stamps: Vec<i64>, advance_steps: Vec<i64>) -> Result<(), TestCaseError> {
    let buf: RecvBuffer<u32, &'static str> = RecvBuffer::new(NodeId(1), NodeId(0));
    let mut state = ClockComponent::initial(&buf);
    let mut clock = Time::ZERO;
    let mut arrivals = stamps
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as u64, Time::ZERO + Duration::from_millis(s)))
        .collect::<Vec<_>>();
    let mut released: Vec<(Time, u64)> = Vec::new(); // (stamp, arrival order)
    let mut advance_iter = advance_steps.into_iter().cycle();

    let mut guard = 0;
    // Keep going while anything is undelivered or still buffered (a
    // non-empty buffer always pins a clock deadline).
    while (!arrivals.is_empty() || ClockComponent::clock_deadline(&buf, &state, clock).is_some())
        && guard < 10_000
    {
        guard += 1;
        // Release everything currently releasable (engine eagerness).
        while let Some(a) = ClockComponent::enabled(&buf, &state, clock)
            .first()
            .cloned()
        {
            let A::Recv(e) = &a else { unreachable!() };
            // Find this message's stamp from our book-keeping.
            let idx = e.id.0;
            let stamp = Time::ZERO + Duration::from_millis(stamps[idx as usize]);
            prop_assert!(
                stamp <= clock,
                "released {idx} at clock {clock} before its stamp {stamp}"
            );
            if let Some(&(last_stamp, last_order)) = released.last() {
                prop_assert!(
                    (last_stamp, last_order) <= (stamp, idx),
                    "release order violated: ({last_stamp},{last_order}) then ({stamp},{idx})"
                );
            }
            released.push((stamp, idx));
            state = ClockComponent::step(&buf, &state, &a, clock).expect("enabled releases step");
        }
        // Deliver the next arrival, if any.
        if let Some((id, stamp)) = arrivals.first().copied() {
            arrivals.remove(0);
            state = ClockComponent::step(&buf, &state, &A::ERecv(env(id), stamp), clock)
                .expect("ERecv is input-enabled");
            continue;
        }
        // Otherwise advance the clock as far as the deadline allows.
        let step = Duration::from_millis(advance_iter.next().unwrap_or(1).max(1));
        let deadline = ClockComponent::clock_deadline(&buf, &state, clock);
        let target = match deadline {
            Some(d) if d <= clock => continue, // pinned: loop will release
            Some(d) => (clock + step).min(d),
            None => clock + step,
        };
        if target > clock {
            state = ClockComponent::advance(&buf, &state, clock, target)
                .expect("advance within deadline");
            clock = target;
        }
    }
    prop_assert_eq!(released.len(), stamps.len(), "every message must release");
    Ok(())
}

proptest! {
    #[test]
    fn recv_buffer_release_discipline(
        stamps in prop::collection::vec(0i64..50, 1..12),
        advances in prop::collection::vec(1i64..10, 1..6),
    ) {
        drive_recv_buffer(stamps, advances)?;
    }

    #[test]
    fn send_buffer_always_stamps_with_send_clock(
        send_clocks in prop::collection::vec(0i64..100, 1..10),
    ) {
        let buf: SendBuffer<u32, &'static str> = SendBuffer::new(NodeId(1), NodeId(0));
        let mut clocks = send_clocks.clone();
        clocks.sort_unstable();
        let mut state = ClockComponent::initial(&buf);
        let mut clock = Time::ZERO;
        for (i, &c) in clocks.iter().enumerate() {
            let target = Time::ZERO + Duration::from_millis(c);
            if target > clock {
                state = ClockComponent::advance(&buf, &state, clock, target)
                    .expect("empty buffer advances freely");
                clock = target;
            }
            let e = Envelope {
                src: NodeId(1),
                dst: NodeId(0),
                id: MsgId(i as u64),
                payload: 0u32,
            };
            state = ClockComponent::step(&buf, &state, &A::Send(e.clone()), clock)
                .expect("send accepted");
            // While non-empty, the clock is pinned and the only enabled
            // action carries exactly the current clock as its stamp.
            prop_assert_eq!(
                ClockComponent::clock_deadline(&buf, &state, clock),
                Some(clock)
            );
            let out = ClockComponent::enabled(&buf, &state, clock);
            prop_assert_eq!(out.len(), 1);
            let A::ESend(oe, stamp) = &out[0] else { unreachable!() };
            prop_assert_eq!(oe, &e);
            prop_assert_eq!(*stamp, clock);
            state = ClockComponent::step(&buf, &state, &out[0], clock).expect("forward");
        }
    }
}
