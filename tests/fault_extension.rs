//! The paper's future-work fault model (Section 7.3), as extension tests:
//!
//! * **FIFO channels** (footnote 4: "our results also hold for the case
//!   where messages cannot be reordered") — the register stays correct.
//! * **Lossy channels** — the register algorithms are fire-and-forget, so
//!   dropping updates *must* break freshness: the test constructs the
//!   violation, documenting precisely which guarantee depends on the
//!   paper's reliability assumption.

use psync::prelude::*;
use psync_net::{DropSeeded, FifoChannel, LossyChannel};
use psync_register::history;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn params(topo: &Topology, bounds: DelayBounds) -> RegisterParams {
    RegisterParams::for_timed_model(topo, bounds, ms(2), Duration::from_micros(100))
}

/// Assembles a D_T register system with custom channels.
fn engine_with_channels(
    topo: &Topology,
    p: &RegisterParams,
    workload: ClosedLoopWorkload,
    mut channel: impl FnMut(NodeId, NodeId) -> psync_automata::ComponentBox<RegAction>,
) -> Engine<RegAction> {
    let mut builder = Engine::builder();
    for i in topo.nodes() {
        builder = builder.timed(AlgorithmS::new(i, p.clone()));
    }
    for &(i, j) in topo.edges() {
        builder = builder.timed_boxed(channel(i, j));
    }
    builder
        .timed(workload)
        .scheduler(RandomScheduler::new(13))
        .horizon(Time::ZERO + Duration::from_secs(10))
        .build()
}

#[test]
fn register_over_fifo_channels_stays_linearizable() {
    let n = 3;
    let topo = Topology::complete(n);
    let bounds = DelayBounds::new(ms(1), ms(6)).unwrap();
    let p = params(&topo, bounds);
    for seed in [1u64, 2, 3] {
        let workload =
            ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(1), ms(5)).unwrap(), 8);
        let mut engine = engine_with_channels(&topo, &p, workload, |i, j| {
            psync_automata::ComponentBox::new(FifoChannel::<RegMsg, RegisterOp>::new(
                i,
                j,
                bounds,
                SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64),
            ))
        });
        let run = engine.run().expect("well-formed");
        assert_eq!(run.stop, StopReason::Quiescent);
        let ops = history::extract(&app_trace(&run.execution), n).unwrap();
        assert_eq!(ops.len(), n * 8);
        let verdict = check_linearizable(&ops, Value::INITIAL);
        assert!(verdict.holds(), "seed {seed}: {verdict}");
    }
}

#[test]
fn register_over_lossy_channels_loses_freshness() {
    // Scripted: node 0 writes (all its updates dropped by the 100%-lossy
    // channels), acks, then node 1 reads — and necessarily returns the
    // stale initial value. This is the violation the paper's reliability
    // assumption rules out.
    let n = 2;
    let topo = Topology::complete(n);
    let bounds = DelayBounds::new(ms(1), ms(6)).unwrap();
    let p = params(&topo, bounds);
    let write_at = Time::ZERO + ms(5);
    let read_at = write_at + p.write_latency() + ms(1); // strictly after the ACK
    let script: Vec<(Time, RegisterOp)> = vec![
        (
            write_at,
            RegisterOp::Write {
                node: NodeId(0),
                value: Value(9),
            },
        ),
        (read_at, RegisterOp::Read { node: NodeId(1) }),
    ];

    let mut builder = Engine::builder();
    for i in topo.nodes() {
        builder = builder.timed(AlgorithmS::new(i, p.clone()));
    }
    for &(i, j) in topo.edges() {
        builder = builder.timed(LossyChannel::<RegMsg, RegisterOp>::new(
            i,
            j,
            bounds,
            MaxDelay,
            DropSeeded::new(0, 100),
        ));
    }
    let mut engine = builder
        .timed(Script::new(script, |op: &RegisterOp| op.is_response()))
        .horizon(read_at + ms(50))
        .build();
    let run = engine.run().expect("the composition itself is fine");

    let ops = history::extract(&app_trace(&run.execution), n).unwrap();
    assert_eq!(
        ops.len(),
        2,
        "both operations still complete — losses are silent"
    );
    let verdict = check_linearizable(&ops, Value::INITIAL);
    assert!(
        !verdict.holds(),
        "with every update dropped, the read must be stale; got: {verdict}"
    );

    // The stale value is specifically v₀.
    let read = ops.iter().find(|o| o.is_read()).unwrap();
    assert_eq!(
        read.kind,
        history::OpKind::Read {
            returned: Value::INITIAL
        }
    );
}

#[test]
fn mild_loss_can_go_unnoticed_or_break_it_depending_on_traffic() {
    // With per-message seeded loss, some seeds break linearizability and
    // some happen not to — the point is that the checker distinguishes
    // them mechanically. We assert only that *at least one* seed in the
    // sweep produces a violation (losses are real) and that zero-loss
    // controls always pass.
    let n = 3;
    let topo = Topology::complete(n);
    let bounds = DelayBounds::new(ms(1), ms(6)).unwrap();
    let p = params(&topo, bounds);

    let mut any_violation = false;
    for seed in 0..8u64 {
        let workload =
            ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(1), ms(5)).unwrap(), 6);
        let mut engine = engine_with_channels(&topo, &p, workload, |i, j| {
            psync_automata::ComponentBox::new(LossyChannel::<RegMsg, RegisterOp>::new(
                i,
                j,
                bounds,
                SeededDelay::new(seed),
                DropSeeded::new(seed ^ 0xD0D0, 40),
            ))
        });
        let run = engine.run().expect("well-formed");
        let ops = history::extract(&app_trace(&run.execution), n).unwrap();
        if !check_linearizable(&ops, Value::INITIAL).holds() {
            any_violation = true;
        }
    }
    assert!(
        any_violation,
        "40% loss across 8 seeds should break linearizability at least once"
    );
}
