//! Integration: a *real-time* property through the full two-simulation
//! pipeline. Time-slot mutual exclusion has no messages at all, so every
//! distortion it suffers comes from the models themselves: Simulation 1
//! perturbs each action by ≤ ε, Simulation 2 shifts outputs forward by
//! ≤ kℓ + 2ε + 3ℓ. The guard bands must absorb *both*:
//!
//! * exits can be late by `ε + shift`, entries early by `ε` — so
//!   `2g ≥ 2ε + shift` keeps exclusion (technique #2, iterated for
//!   Theorem 5.2's `(Q_ε)^δ`);
//! * with no guards, skewed tick sources reproduce the overlap in the
//!   realistic model too.

use psync::prelude::*;
use psync_apps::mutex::{overlaps, MutexOp, SlotUser};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn us(n: i64) -> Duration {
    Duration::from_micros(n)
}

/// Runs `n` slot users through `build_dm` (no channels — the topology has
/// no edges) with per-node tick offsets.
fn run_mmt_mutex(
    users: Vec<SlotUser>,
    eps: Duration,
    ell: Duration,
    offsets: Vec<Duration>,
    horizon: Time,
) -> psync_automata::TimedTrace<psync_net::SysAction<(), MutexOp>> {
    let n = users.len();
    let topo = Topology::new(n, []);
    let algorithms = users
        .into_iter()
        .enumerate()
        .map(|(i, u)| NodeSpec::new(NodeId(i), u))
        .collect();
    let configs = offsets
        .into_iter()
        .map(|offset| DmNodeConfig {
            ell,
            step_policy: StepPolicy::Lazy,
            tick: TickConfig {
                eps,
                period: ell,
                granularity: Duration::NANOSECOND,
                offset,
            }
            .validated(),
        })
        .collect();
    let mut engine = build_dm(
        &topo,
        DelayBounds::exact(ms(1)),
        algorithms,
        configs,
        |_, _| Box::new(MaxDelay),
    )
    .horizon(horizon)
    .build();
    let exec = engine.run().expect("well-formed D_M mutex").execution;
    psync_core::app_trace(&exec)
}

#[test]
fn guard_absorbing_both_simulations_keeps_exclusion() {
    let n = 3;
    let eps = us(500);
    let ell = us(200);
    let slot = ms(20);
    // k = 1: a node emits at most one output (enter or exit) per kℓ
    // window — its two outputs are slot−2g ≫ ℓ apart.
    let shift = sim2_shift_bound(1, eps, ell);
    // 2g ≥ 2ε + shift, rounded up generously.
    let guard = eps + shift;
    let users: Vec<SlotUser> = (0..n)
        .map(|i| SlotUser::guarded(NodeId(i), n, slot, guard, 3))
        .collect();
    let off = eps - us(1); // TickConfig requires |offset| + granularity ≤ ε
    let offsets = vec![-off, off, Duration::ZERO];
    let trace = run_mmt_mutex(users, eps, ell, offsets, Time::ZERO + ms(250));
    assert!(
        overlaps(&trace).is_empty(),
        "guard {guard} must absorb skew + MMT shift"
    );
    // All rounds completed.
    let enters = trace
        .iter()
        .filter(|(a, _)| matches!(a, psync_net::SysAction::App(MutexOp::Enter { .. })))
        .count();
    assert_eq!(enters, n * 3);
}

#[test]
fn unguarded_slots_overlap_in_the_realistic_model_too() {
    let n = 2;
    let eps = ms(1);
    let ell = us(200);
    let slot = ms(10);
    let users: Vec<SlotUser> = (0..n)
        .map(|i| SlotUser::unguarded(NodeId(i), n, slot, 4))
        .collect();
    // Node 0's ticks slow (late exits), node 1's fast (early entries).
    let off = eps - us(1);
    let offsets = vec![-off, off];
    let trace = run_mmt_mutex(users, eps, ell, offsets, Time::ZERO + ms(150));
    let v = overlaps(&trace);
    assert!(
        !v.is_empty(),
        "±ε tick skew must break unguarded slots in the MMT model"
    );
    assert_eq!(v[0].holder, NodeId(0));
    assert_eq!(v[0].intruder, NodeId(1));
}
