//! Integration: the alternation condition's escape clause (Section 6.1).
//!
//! The problem `P` accepts any trace in which the *environment* is first
//! to violate the alternation condition — the algorithm owes nothing to a
//! client that invokes twice without awaiting a response. These tests
//! drive a misbehaving scripted environment end-to-end and check that (a)
//! the algorithm survives (input-enabledness means it must absorb the
//! second invocation), and (b) the problem machinery classifies the trace
//! as vacuously correct rather than as an algorithm failure.

use psync::prelude::*;
use psync_register::history::{self, ExtractError};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn run_with_script(script: Vec<(Time, RegisterOp)>) -> Execution<RegAction> {
    let n = 2;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);
    let params =
        RegisterParams::for_clock_model(&topo, physical, eps, ms(2), Duration::from_micros(100));
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(OffsetClock::new(eps, eps)),
        Box::new(OffsetClock::new(-eps, eps)),
    ];
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
        Box::new(MaxDelay)
    })
    .timed(Script::new(script, |op: &RegisterOp| op.is_response()))
    .horizon(Time::ZERO + Duration::from_secs(1))
    .build();
    engine.run().expect("well-formed").execution
}

#[test]
fn double_invocation_is_absorbed_and_vacuously_accepted() {
    // Two reads at node 0 without waiting — the environment's fault.
    let script = vec![
        (Time::ZERO + ms(5), RegisterOp::Read { node: NodeId(0) }),
        (Time::ZERO + ms(6), RegisterOp::Read { node: NodeId(0) }),
    ];
    let exec = run_with_script(script);
    let trace = app_trace(&exec);

    // The extractor pins the violation on the environment…
    match history::extract(&trace, 2) {
        Err(ExtractError::EnvironmentViolation { node, .. }) => {
            assert_eq!(node, NodeId(0));
        }
        other => panic!("expected environment violation, got {other:?}"),
    }

    // …and the problem P therefore accepts the trace vacuously.
    let p = LinearizableRegister::new(2, Value::INITIAL);
    assert!(p.contains(&trace).holds());

    // The algorithm itself survived: the second READ clobbered the first
    // (input-enabledness), so exactly one RETURN is produced.
    let returns = trace
        .iter()
        .filter(|(a, _)| matches!(a, SysAction::App(RegisterOp::Return { .. })))
        .count();
    assert_eq!(returns, 1);
}

#[test]
fn write_over_pending_read_is_environment_fault_too() {
    let script = vec![
        (Time::ZERO + ms(5), RegisterOp::Read { node: NodeId(0) }),
        (
            Time::ZERO + ms(6),
            RegisterOp::Write {
                node: NodeId(0),
                value: Value(9),
            },
        ),
    ];
    let exec = run_with_script(script);
    let trace = app_trace(&exec);
    assert!(matches!(
        history::extract(&trace, 2),
        Err(ExtractError::EnvironmentViolation { .. })
    ));
    let p = LinearizableRegister::new(2, Value::INITIAL);
    assert!(p.contains(&trace).holds());
}

#[test]
fn well_behaved_environment_is_judged_on_the_merits() {
    // Control: the same machinery with a lawful script goes through the
    // linearizability clause (and passes).
    let script = vec![
        (
            Time::ZERO + ms(5),
            RegisterOp::Write {
                node: NodeId(0),
                value: Value(3),
            },
        ),
        (Time::ZERO + ms(40), RegisterOp::Read { node: NodeId(1) }),
    ];
    let exec = run_with_script(script);
    let trace = app_trace(&exec);
    let ops = history::extract(&trace, 2).expect("lawful script");
    assert_eq!(ops.len(), 2);
    let p = LinearizableRegister::new(2, Value::INITIAL);
    assert!(p.contains(&trace).holds());
    // The read actually observed the write.
    assert!(ops
        .iter()
        .any(|o| o.kind == history::OpKind::Read { returned: Value(3) }));
}
