//! Integration: the abstract model (Lemma 6.1 and Lemma 6.2).
//!
//! In the pure timed-automaton model `D_T`, Algorithm L solves plain
//! linearizability with read time `c + δ` / write time `d'₂ − c`, and
//! Algorithm S (read slack `2ε`) solves the stronger
//! ε-superlinearizability. These are the *premises* the two simulations
//! consume.

use psync::prelude::*;
use psync_register::history;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn run_dt(
    n: usize,
    bounds: DelayBounds,
    params: &RegisterParams,
    seed: u64,
    ops: u32,
) -> Execution<RegAction> {
    let topo = Topology::complete(n);
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let workload =
        ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(1), ms(7)).unwrap(), ops);
    let mut engine = build_dt(&topo, bounds, algorithms, move |i, j| {
        Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    })
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(10))
    .build();
    let run = engine.run().expect("well-formed D_T");
    assert_eq!(run.stop, StopReason::Quiescent);
    run.execution
}

#[test]
fn algorithm_l_solves_linearizability_with_exact_latencies() {
    let n = 4;
    let bounds = DelayBounds::new(ms(2), ms(9)).unwrap();
    let topo = Topology::complete(n);
    let delta = Duration::from_micros(50);
    for c_ms in [0i64, 4, 9] {
        let params = RegisterParams::for_timed_model(&topo, bounds, ms(c_ms), delta);
        for seed in [1u64, 2, 3] {
            let exec = run_dt(n, bounds, &params, seed, 8);
            let ops = history::extract(&app_trace(&exec), n).expect("well-formed");
            assert_eq!(ops.len(), n * 8);
            let verdict = check_linearizable(&ops, Value::INITIAL);
            assert!(verdict.holds(), "c={c_ms}ms seed={seed}: {verdict}");

            // In the timed model the latency formulas are *exact*.
            let (reads, writes) = history::latency_split(&ops);
            for r in reads {
                assert_eq!(r, params.read_latency(), "read latency must be exact");
            }
            for w in writes {
                assert_eq!(w, params.write_latency(), "write latency must be exact");
            }
        }
    }
}

#[test]
fn algorithm_s_solves_superlinearizability() {
    let n = 3;
    let bounds = DelayBounds::new(ms(2), ms(9)).unwrap();
    let topo = Topology::complete(n);
    let two_eps = ms(2);
    // Algorithm S in the timed model: read slack 2ε.
    let params = RegisterParams {
        peers: topo.nodes().collect(),
        d2_virtual: bounds.max(),
        c: ms(3),
        delta: Duration::from_micros(50),
        read_slack: two_eps,
    };
    for seed in [11u64, 12, 13] {
        let exec = run_dt(n, bounds, &params, seed, 8);
        let ops = history::extract(&app_trace(&exec), n).unwrap();
        let verdict = check_superlinearizable(&ops, Value::INITIAL, two_eps);
        assert!(verdict.holds(), "seed {seed}: {verdict}");
    }
}

#[test]
fn algorithm_l_generally_fails_superlinearizability() {
    // The reason Algorithm S exists: L's reads can be forced to linearize
    // too close to their invocation. With c = 0 a read takes only δ, so a
    // 2ε-late linearization point cannot fit — any run with at least one
    // read must violate Q.
    let n = 3;
    let bounds = DelayBounds::new(ms(2), ms(9)).unwrap();
    let topo = Topology::complete(n);
    let params =
        RegisterParams::for_timed_model(&topo, bounds, Duration::ZERO, Duration::from_micros(50));
    let exec = run_dt(n, bounds, &params, 42, 8);
    let ops = history::extract(&app_trace(&exec), n).unwrap();
    assert!(
        ops.iter().any(psync_register::history::Operation::is_read),
        "workload must contain reads for this test to bite"
    );
    let verdict = check_superlinearizable(&ops, Value::INITIAL, ms(2));
    assert!(
        !verdict.holds(),
        "L with c=0 must not be 2ε-superlinearizable"
    );
}

#[test]
fn d1_lower_bound_is_respected_by_channels() {
    // Sanity on the substrate: every message spends at least d₁ and at
    // most d₂ in the channel, under the jitter adversary.
    let n = 3;
    let bounds = DelayBounds::new(ms(2), ms(9)).unwrap();
    let topo = Topology::complete(n);
    let params = RegisterParams::for_timed_model(&topo, bounds, ms(3), Duration::from_micros(50));
    let exec = run_dt(n, bounds, &params, 77, 6);

    // In D_T messages travel as plain SENDMSG/RECVMSG.
    use std::collections::HashMap;
    let mut sent: HashMap<MsgId, Time> = HashMap::new();
    let mut seen = 0;
    for e in exec.events() {
        match &e.action {
            SysAction::Send(env) => {
                sent.insert(env.id, e.now);
            }
            SysAction::Recv(env) => {
                let s = sent[&env.id];
                let d = e.now - s;
                assert!(
                    d >= bounds.min() && d <= bounds.max(),
                    "delay {d} outside {bounds}"
                );
                seen += 1;
            }
            _ => {}
        }
    }
    assert!(seen > 0, "messages must actually flow");
}
