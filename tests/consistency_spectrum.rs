//! The consistency spectrum under clock skew: what exactly does the
//! adversary break?
//!
//! Algorithm L descends from the *sequential consistency* algorithm of
//! Attiya–Welch \[2\]; the paper strengthens it (Algorithm S) so that the
//! `ε` perturbation of Simulation 1 cannot break *linearizability*. These
//! tests pin the spectrum down mechanically: the naive transfer of
//! Algorithm L loses linearizability under the crafted skew adversary —
//! but remains sequentially consistent, because the `=_{ε,κ}` relation
//! preserves per-node order and value semantics, and only perturbs real
//! time. Clock skew steals exactly the real-time half of the guarantee.

use psync::prelude::*;
use psync_register::history;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

/// The crafted naive-L violation scenario (fast writer, slow reader, read
/// right after the ACK) — same construction as experiment E8.
fn naive_l_run() -> Vec<history::Operation> {
    let n = 2;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);
    let params = RegisterParams {
        peers: topo.nodes().collect(),
        d2_virtual: physical.widen_for_skew(eps).max(),
        c: Duration::ZERO,
        delta: Duration::from_micros(100),
        read_slack: Duration::ZERO, // Algorithm L: no superlinearizability slack
    };
    let write_at = Time::ZERO + ms(10);
    let read_at = write_at + params.d2_virtual + Duration::from_micros(1);
    let script: Vec<(Time, RegisterOp)> = vec![
        (
            write_at,
            RegisterOp::Write {
                node: NodeId(0),
                value: Value(77),
            },
        ),
        (read_at, RegisterOp::Read { node: NodeId(1) }),
    ];
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(OffsetClock::new(eps, eps)),
        Box::new(OffsetClock::new(-eps, eps)),
    ];
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
        Box::new(MaxDelay)
    })
    .timed(Script::new(script, |op: &RegisterOp| op.is_response()))
    .horizon(read_at + ms(50))
    .build();
    let exec = engine.run().expect("well-formed").execution;
    history::extract(&app_trace(&exec), n).expect("well-formed")
}

#[test]
fn skew_breaks_linearizability_but_not_sequential_consistency() {
    let ops = naive_l_run();
    assert!(
        !check_linearizable(&ops, Value::INITIAL).holds(),
        "the crafted adversary must break linearizability"
    );
    assert!(
        check_sequentially_consistent(&ops, Value::INITIAL).holds(),
        "only the real-time half is lost: the history is still SC"
    );
}

#[test]
fn transformed_s_histories_satisfy_the_whole_spectrum() {
    // Randomized adversarial runs of the real Algorithm S: linearizable,
    // hence also sequentially consistent.
    for seed in [2u64, 4, 8] {
        let n = 3;
        let topo = Topology::complete(n);
        let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
        let eps = ms(1);
        let params = RegisterParams::for_clock_model(
            &topo,
            physical,
            eps,
            ms(2),
            Duration::from_micros(100),
        );
        let algorithms = topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
            .collect();
        let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
            .map(|i| -> Box<dyn ClockStrategy> {
                if i % 2 == 0 {
                    Box::new(OffsetClock::new(eps, eps))
                } else {
                    Box::new(OffsetClock::new(-eps, eps))
                }
            })
            .collect();
        let workload =
            ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(1), ms(5)).unwrap(), 8);
        let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, move |i, j| {
            Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
        })
        .timed(workload)
        .scheduler(RandomScheduler::new(seed))
        .horizon(Time::ZERO + Duration::from_secs(5))
        .build();
        let exec = engine.run().expect("well-formed").execution;
        let ops = history::extract(&app_trace(&exec), n).unwrap();
        assert!(check_linearizable(&ops, Value::INITIAL).holds());
        assert!(check_sequentially_consistent(&ops, Value::INITIAL).holds());
    }
}

#[test]
fn lossy_channels_break_even_sequential_consistency() {
    // Losses are strictly worse than skew: a node that *never* hears about
    // a write can violate its own program order's value semantics across
    // two reads bracketing another node's read of the write... simplest
    // witness: node 1 reads v0 then (after delivery of nothing) node 0
    // reads its own write while node 1 keeps reading v0 — still SC.
    // The genuinely SC-breaking witness needs the *writer* to see its own
    // value while another node later reads v0 *after first reading* the
    // value: read(v), read(v0) at one node violates program order. Build
    // it with 100% loss: node 1's copy never changes, so drive node 1 to
    // read v0, and node 0 (the writer, whose own update is local) to read
    // its own v — then node 1 reads v0 again. SC holds there (order node 1
    // entirely before node 0). SC truly fails only with a *fresh-then-
    // stale* sequence at one node, which loss alone cannot produce here —
    // document that by asserting SC still holds.
    let n = 2;
    let topo = Topology::complete(n);
    let bounds = DelayBounds::new(ms(1), ms(5)).unwrap();
    let params = RegisterParams::for_timed_model(&topo, bounds, ms(1), Duration::from_micros(100));
    let t0 = Time::ZERO;
    let script: Vec<(Time, RegisterOp)> = vec![
        (
            t0 + ms(5),
            RegisterOp::Write {
                node: NodeId(0),
                value: Value(9),
            },
        ),
        (t0 + ms(40), RegisterOp::Read { node: NodeId(1) }), // sees v0 (loss)
        (t0 + ms(60), RegisterOp::Read { node: NodeId(0) }), // sees 9 (local)
        (t0 + ms(80), RegisterOp::Read { node: NodeId(1) }), // sees v0 again
    ];
    let mut builder = Engine::builder();
    for i in topo.nodes() {
        builder = builder.timed(AlgorithmS::new(i, params.clone()));
    }
    for &(i, j) in topo.edges() {
        builder = builder.timed(psync_net::LossyChannel::<RegMsg, RegisterOp>::new(
            i,
            j,
            bounds,
            MaxDelay,
            psync_net::DropSeeded::new(0, 100),
        ));
    }
    let mut engine = builder
        .timed(Script::new(script, |op: &RegisterOp| op.is_response()))
        .horizon(t0 + ms(200))
        .build();
    let exec = engine.run().expect("well-formed").execution;
    let ops = history::extract(&app_trace(&exec), n).unwrap();
    // Linearizability gone…
    assert!(!check_linearizable(&ops, Value::INITIAL).holds());
    // …but this particular loss pattern is still SC (total order: node 1's
    // reads, then node 0's ops). Divergent replicas without fresh-then-
    // stale inversions sit exactly at the SC boundary.
    assert!(check_sequentially_consistent(&ops, Value::INITIAL).holds());
}
