//! Runs the randomized axiom probes of `psync-verify` against every
//! library component with an inspectable (`PartialEq`) state: channels,
//! buffers, algorithms, tick sources, MMT wrappers and toys. Each probe
//! drives hundreds of random walks checking the operationalized S/C axioms
//! (enabled/step consistency, deadline discipline, ν-splitting).

use psync::prelude::*;
use psync_automata::toys::{Beeper, ClockBeeper, Echo};
use psync_mmt::{Boundmap, MmtAsTimed, MmtComponent, TaskId};
use psync_register::BaselineRegister;
use psync_verify::axioms::{probe_clock, probe_timed, ProbeConfig};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn cfg() -> ProbeConfig {
    ProbeConfig {
        seed: 0xFACE,
        walks: 24,
        steps: 48,
        max_advance: ms(7),
    }
}

#[test]
fn toys_pass() {
    probe_timed(&Beeper::new(ms(3)), &cfg()).unwrap();
    probe_timed(&Echo::new(ms(2)), &cfg()).unwrap();
    probe_clock(&ClockBeeper::new(ms(3)), &cfg()).unwrap();
}

#[test]
fn channels_pass() {
    let bounds = DelayBounds::new(ms(1), ms(4)).unwrap();
    let ch: Channel<u32, &'static str> = Channel::new(NodeId(0), NodeId(1), bounds, MaxDelay);
    probe_timed(&ch, &cfg()).unwrap();
    let ch2: Channel<u32, &'static str> =
        Channel::new(NodeId(0), NodeId(1), bounds, SeededDelay::new(5));
    probe_timed(&ch2, &cfg()).unwrap();
    let cch: ClockChannel<u32, &'static str> =
        ClockChannel::new(NodeId(0), NodeId(1), bounds, MinDelay);
    probe_timed(&cch, &cfg()).unwrap();
}

#[test]
fn simulation1_buffers_pass() {
    let s: SendBuffer<u32, &'static str> = SendBuffer::new(NodeId(0), NodeId(1));
    probe_clock(&s, &cfg()).unwrap();
    let r: RecvBuffer<u32, &'static str> = RecvBuffer::new(NodeId(1), NodeId(0));
    probe_clock(&r, &cfg()).unwrap();
}

#[test]
fn register_algorithms_pass() {
    let topo = Topology::complete(3);
    let bounds = DelayBounds::new(ms(1), ms(6)).unwrap();
    let params = RegisterParams::for_timed_model(&topo, bounds, ms(2), Duration::from_micros(100));
    probe_timed(&AlgorithmS::new(NodeId(0), params), &cfg()).unwrap();

    let bparams = BaselineParams::new(topo.nodes().collect(), ms(2), ms(6));
    probe_clock(&BaselineRegister::new(NodeId(0), bparams), &cfg()).unwrap();
}

#[test]
fn tick_source_passes() {
    let src: TickSource<u32, &'static str> =
        TickSource::new(NodeId(0), TickConfig::honest(ms(2), ms(1)));
    probe_timed(&src, &cfg()).unwrap();

    let skewed: TickSource<u32, &'static str> = TickSource::new(
        NodeId(0),
        TickConfig {
            eps: ms(2),
            period: ms(1),
            granularity: Duration::from_micros(250),
            offset: ms(-1),
        },
    );
    probe_timed(&skewed, &cfg()).unwrap();
}

#[test]
fn workload_passes() {
    let topo = Topology::complete(2);
    let wl = ClosedLoopWorkload::new(&topo, 3, DelayBounds::new(ms(1), ms(3)).unwrap(), 4);
    probe_timed(&wl, &cfg()).unwrap();
}

#[test]
fn script_passes() {
    let t = |n| Time::ZERO + ms(n);
    let script: Script<u32, &'static str> =
        Script::new([(t(2), "a"), (t(5), "b"), (t(9), "c")], |_| false);
    probe_timed(&script, &cfg()).unwrap();
}

/// A tiny MMT component to probe `MmtAsTimed` (transformation `T`).
#[derive(Debug, Clone)]
struct Pulse;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PulseAction(u64);

impl Action for PulseAction {
    fn name(&self) -> &'static str {
        "PULSE"
    }
}

impl MmtComponent for Pulse {
    type Action = PulseAction;
    type State = u64;

    fn name(&self) -> String {
        "pulse".into()
    }
    fn initial(&self) -> u64 {
        0
    }
    fn classify(&self, _: &PulseAction) -> Option<ActionKind> {
        Some(ActionKind::Output)
    }
    fn step(&self, s: &u64, a: &PulseAction) -> Option<u64> {
        (a.0 == *s).then(|| s + 1)
    }
    fn tasks(&self) -> Vec<Boundmap> {
        vec![Boundmap::at_most(Duration::from_millis(2))]
    }
    fn task_of(&self, _: &PulseAction) -> Option<TaskId> {
        Some(TaskId(0))
    }
    fn enabled(&self, s: &u64) -> Vec<PulseAction> {
        vec![PulseAction(*s)]
    }
}

#[test]
fn mmt_as_timed_passes() {
    probe_timed(&MmtAsTimed::new(Pulse, StepPolicy::Lazy), &cfg()).unwrap();
    probe_timed(&MmtAsTimed::new(Pulse, StepPolicy::Fraction(50)), &cfg()).unwrap();
    probe_timed(&MmtAsTimed::new(Pulse, StepPolicy::Seeded(9)), &cfg()).unwrap();
}

#[test]
fn hidden_wrappers_preserve_discipline() {
    use psync_automata::{Hidden, HiddenClock};
    probe_timed(
        &Hidden::new(
            Beeper::new(ms(3)),
            |_: &psync_automata::toys::BeepAction| true,
        ),
        &cfg(),
    )
    .unwrap();
    probe_clock(
        &HiddenClock::new(
            ClockBeeper::new(ms(3)),
            |_: &psync_automata::toys::BeepAction| true,
        ),
        &cfg(),
    )
    .unwrap();
}
