//! Integration: Lemma 2.1 on real systems — the projection of a recorded
//! execution onto each component is a valid execution of a *fresh copy* of
//! that component, for channels (timed replay, real times) and node parts
//! (clock replay, per-node clock readings).

use psync::prelude::*;
use psync_register::history;
use psync_verify::replay::{replay_clock, replay_timed};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn run_dc_scenario(
    seed: u64,
) -> (
    Topology,
    DelayBounds,
    Duration,
    RegisterParams,
    Execution<RegAction>,
) {
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);
    let params =
        RegisterParams::for_clock_model(&topo, physical, eps, ms(2), Duration::from_micros(100));
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match i % 3 {
                0 => Box::new(OffsetClock::new(eps, eps)),
                1 => Box::new(OffsetClock::new(-eps, eps)),
                _ => Box::new(RandomWalkClock::new(seed, eps / 4)),
            }
        })
        .collect();
    let workload = ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(1), ms(5)).unwrap(), 6);
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, move |i, j| {
        Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    })
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(5))
    .build();
    let exec = engine.run().expect("well-formed").execution;
    (topo, physical, eps, params, exec)
}

#[test]
fn channel_projections_replay() {
    let seed = 31;
    let (topo, physical, _eps, _params, exec) = run_dc_scenario(seed);
    // Fresh clock channels with the *same* delay policy replay their
    // projections exactly.
    for &(i, j) in topo.edges() {
        let fresh = ClockChannel::<RegMsg, RegisterOp>::new(
            i,
            j,
            physical,
            SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64),
        );
        let count = replay_timed(fresh, &exec)
            .unwrap_or_else(|e| panic!("channel {i}→{j} replay failed: {e}"));
        assert!(count > 0, "channel {i}→{j} saw no traffic");
    }
}

#[test]
fn buffer_projections_replay_in_clock_time() {
    let (topo, _physical, _eps, _params, exec) = run_dc_scenario(32);
    for &(i, j) in topo.edges() {
        let send: SendBuffer<RegMsg, RegisterOp> = SendBuffer::new(i, j);
        let count = replay_clock(send, &exec)
            .unwrap_or_else(|e| panic!("send buffer {i}→{j} replay failed: {e}"));
        assert!(count > 0);
        let recv: RecvBuffer<RegMsg, RegisterOp> = RecvBuffer::new(i, j);
        let count = replay_clock(recv, &exec)
            .unwrap_or_else(|e| panic!("recv buffer {i}→{j} replay failed: {e}"));
        assert!(count > 0);
    }
}

#[test]
fn algorithm_projections_replay_in_clock_time() {
    let (topo, _physical, _eps, params, exec) = run_dc_scenario(33);
    for i in topo.nodes() {
        // The node's C(A_i, ε): the algorithm driven by clock readings,
        // with its internal SENDMSG outputs hidden exactly as assembled.
        let alg = psync_automata::HiddenClock::new(
            ClockSim::new(AlgorithmS::new(i, params.clone())),
            |a: &RegAction| matches!(a, SysAction::Send(_)),
        );
        let count = replay_clock(alg, &exec)
            .unwrap_or_else(|e| panic!("algorithm at {i} replay failed: {e}"));
        assert!(count > 0, "node {i} performed no actions");
    }
}

#[test]
fn workload_projection_replays_in_real_time() {
    let seed = 34;
    let (topo, _physical, _eps, _params, exec) = run_dc_scenario(seed);
    let fresh = ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(1), ms(5)).unwrap(), 6);
    let count = replay_timed(fresh, &exec).expect("workload replay");
    // 6 ops/node × (invocation + response) × 3 nodes.
    assert_eq!(count, 6 * 2 * 3);
    // Sanity: the run is still a correct register execution.
    let ops = history::extract(&app_trace(&exec), topo.len()).unwrap();
    assert!(check_linearizable(&ops, Value::INITIAL).holds());
}
