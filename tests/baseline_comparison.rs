//! Integration: Section 6.3's comparison.
//!
//! The reconstructed baseline register (the clock-model algorithm of
//! \[10\]) must be linearizable under adversarial clocks, and its
//! latencies must sit at the formulas the paper quotes for it — read
//! `4u`, write `d₂ + 3u` — while the transformed Algorithm S achieves
//! read `2ε + δ + c` and write `d₂ + 2ε − c`.

use psync::prelude::*;
use psync_register::{build_baseline, history};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn adversarial(n: usize, eps: Duration, seed: u64) -> Vec<Box<dyn ClockStrategy>> {
    (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match i % 3 {
                0 => Box::new(OffsetClock::new(eps, eps)),
                1 => Box::new(OffsetClock::new(-eps, eps)),
                _ => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
            }
        })
        .collect()
}

fn run_baseline(
    n: usize,
    physical: DelayBounds,
    eps: Duration,
    seed: u64,
    ops: u32,
) -> Execution<RegAction> {
    let topo = Topology::complete(n);
    let workload =
        ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(2), ms(10)).unwrap(), ops);
    let mut engine = build_baseline(
        &topo,
        physical,
        eps,
        adversarial(n, eps, seed),
        move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64)),
    )
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(10))
    .build();
    let run = engine.run().expect("well-formed baseline system");
    assert_eq!(run.stop, StopReason::Quiescent, "workload must finish");
    run.execution
}

#[test]
fn baseline_is_linearizable_under_adversarial_clocks() {
    for seed in [3u64, 17, 99] {
        let n = 3;
        let exec = run_baseline(n, DelayBounds::new(ms(1), ms(6)).unwrap(), ms(1), seed, 10);
        let ops = history::extract(&app_trace(&exec), n).expect("well-formed");
        assert_eq!(ops.len(), n * 10);
        let verdict = check_linearizable(&ops, Value::INITIAL);
        assert!(verdict.holds(), "seed {seed}: {verdict}");
    }
}

#[test]
fn baseline_latencies_match_4u_and_d2_plus_3u() {
    let n = 3;
    let physical = DelayBounds::new(ms(1), ms(6)).unwrap();
    let eps = ms(1);
    let u = eps * 2;
    let exec = run_baseline(n, physical, eps, 5, 10);
    let ops = history::extract(&app_trace(&exec), n).unwrap();
    let (reads, writes) = history::latency_split(&ops);
    assert!(!reads.is_empty() && !writes.is_empty());
    // The algorithm times itself on node clocks; real-time latency
    // deviates from the clock-time formulas by at most 2ε.
    let slop = eps * 2;
    for r in &reads {
        assert!(
            (*r - u * 4).abs() <= slop,
            "read latency {r} vs 4u = {}",
            u * 4
        );
    }
    for w in &writes {
        let formula = physical.max() + u * 3;
        assert!(
            (*w - formula).abs() <= slop,
            "write latency {w} vs d₂+3u = {formula}"
        );
    }
}

#[test]
fn transformed_s_beats_baseline_where_the_paper_says() {
    // Section 6.3, translated into the u = 2ε mapping:
    //   ours:     read 2ε + δ + c = u + δ + c,   write d₂ + 2ε − c
    //   baseline: read 4u,                        write d₂ + 3u
    // With c < 3u − δ our read wins; our write wins whenever c > −2u,
    // i.e. always. Run both systems and check the measured averages obey
    // the predicted ordering.
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(6)).unwrap();
    let eps = ms(1);
    let seed = 21;
    let c = ms(1); // < 3u − δ = 6ms − δ: both read and write should win
    let delta = Duration::from_micros(100);

    // Transformed Algorithm S.
    let params = RegisterParams::for_clock_model(&topo, physical, eps, c, delta);
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let workload =
        ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(2), ms(10)).unwrap(), 10);
    let mut engine = build_dc(
        &topo,
        physical,
        eps,
        algorithms,
        adversarial(n, eps, seed),
        move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64)),
    )
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(10))
    .build();
    let ours = engine.run().expect("D_C").execution;
    let ours_ops = history::extract(&app_trace(&ours), n).unwrap();
    let (ours_reads, ours_writes) = history::latency_split(&ours_ops);

    // Baseline, same adversaries and workload.
    let base = run_baseline(n, physical, eps, seed, 10);
    let base_ops = history::extract(&app_trace(&base), n).unwrap();
    let (base_reads, base_writes) = history::latency_split(&base_ops);

    let mean =
        |v: &[Duration]| -> f64 { v.iter().map(|d| d.as_secs_f64()).sum::<f64>() / v.len() as f64 };
    assert!(
        mean(&ours_reads) < mean(&base_reads),
        "reads: ours {} vs baseline {}",
        mean(&ours_reads),
        mean(&base_reads)
    );
    assert!(
        mean(&ours_writes) < mean(&base_writes),
        "writes: ours {} vs baseline {}",
        mean(&ours_writes),
        mean(&base_writes)
    );
}
