//! Integration: the MMT model's *clock realism* — coarse tick readings and
//! skewed tick sources. The paper motivates the MMT model with exactly
//! this: "the clock may change in discrete jumps, so that any particular
//! time value might be missed" (Section 1). Algorithm S schedules updates
//! at *exact* clock values (`t + d'₂ + δ`); the `M` transformation's
//! catch-up is what makes it survive clocks that skip those values.

use psync::prelude::*;
use psync_register::history;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn us(n: i64) -> Duration {
    Duration::from_micros(n)
}

fn run_dm_with_ticks(tick: TickConfig, ell: Duration, eps: Duration) -> Vec<history::Operation> {
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let k = n as i64;
    let params = RegisterParams {
        peers: topo.nodes().collect(),
        d2_virtual: physical.widen_composed(eps, k, ell).max(),
        c: ms(2),
        delta: us(100),
        read_slack: eps * 2,
    };
    let mut script = Vec::new();
    let mut t = Time::ZERO + ms(10);
    for round in 0..4u32 {
        for i in topo.nodes() {
            let op = if (round + i.0 as u32).is_multiple_of(2) {
                RegisterOp::Write {
                    node: i,
                    value: Value::unique(i, round),
                }
            } else {
                RegisterOp::Read { node: i }
            };
            script.push((t, op));
            t += ms(40);
        }
    }
    let horizon = t + ms(100);
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let configs = topo
        .nodes()
        .map(|_| DmNodeConfig {
            ell,
            step_policy: StepPolicy::Lazy,
            tick,
        })
        .collect();
    let mut engine = build_dm(&topo, physical, algorithms, configs, |_, _| {
        Box::new(MaxDelay)
    })
    .timed(Script::new(script.clone(), |op: &RegisterOp| {
        op.is_response()
    }))
    .horizon(horizon)
    .build();
    let exec = engine.run().expect("well-formed D_M").execution;
    let ops = history::extract(&app_trace(&exec), n).expect("well-formed");
    assert_eq!(ops.len(), script.len(), "every scripted op completes");
    ops
}

#[test]
fn coarse_granularity_readings_still_linearize() {
    // Readings quantized to 500 µs: the node *never sees* most clock
    // values, including the exact update times the algorithm schedules.
    let eps = ms(1);
    let tick = TickConfig {
        eps,
        period: us(300),
        granularity: us(500),
        offset: Duration::ZERO,
    };
    let ops = run_dm_with_ticks(tick, us(200), eps);
    let verdict = check_linearizable(&ops, Value::INITIAL);
    assert!(verdict.holds(), "{verdict}");
}

#[test]
fn skewed_tick_sources_still_linearize() {
    let eps = ms(1);
    for offset_us in [-500i64, 400] {
        let tick = TickConfig {
            eps,
            period: us(250),
            granularity: us(250),
            offset: us(offset_us),
        };
        let ops = run_dm_with_ticks(tick, us(200), eps);
        let verdict = check_linearizable(&ops, Value::INITIAL);
        assert!(verdict.holds(), "offset {offset_us}µs: {verdict}");
    }
}

#[test]
fn sparse_ticks_inflate_latency_but_not_past_the_budget() {
    // Tick period τ adds up to τ of staleness before each catch-up; with
    // τ = ℓ (the paper's C^m boundmap) everything stays within the
    // Theorem 5.1 budget. Compare latencies under dense vs sparse ticks.
    let eps = us(500);
    let ell = ms(1);
    let dense = run_dm_with_ticks(TickConfig::honest(eps, us(100)), ell, eps);
    let sparse = run_dm_with_ticks(TickConfig::honest(eps, ell), ell, eps);
    let mean = |ops: &[history::Operation]| -> f64 {
        let ls: Vec<f64> = ops
            .iter()
            .filter_map(history::Operation::latency)
            .map(|d| d.as_secs_f64())
            .collect();
        ls.iter().sum::<f64>() / ls.len() as f64
    };
    assert!(check_linearizable(&dense, Value::INITIAL).holds());
    assert!(check_linearizable(&sparse, Value::INITIAL).holds());
    assert!(
        mean(&sparse) >= mean(&dense),
        "sparser ticks cannot make responses faster"
    );
    // And the inflation is bounded by the shift budget.
    let budget = psync_core::sim2_shift_bound(3, eps, ell).as_secs_f64();
    assert!(
        mean(&sparse) - mean(&dense) <= budget,
        "tick staleness exceeded the Theorem 5.1 budget"
    );
}
