//! Property test over *system parameters*: any legal combination of
//! topology size, delay bounds, skew, trade-off knob and seeds must yield
//! a linearizable clock-model register run that passes the constructive
//! Theorem 4.7 check.

use proptest::prelude::*;
use psync::prelude::*;
use psync_register::history;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

proptest! {
    // Each case runs a whole discrete-event simulation; keep counts sane.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_clock_model_runs_are_linearizable(
        n in 2usize..5,
        d1_ms in 0i64..4,
        width_ms in 1i64..8,
        eps_ms in 1i64..3,
        c_frac in 0u8..=100,
        seed in 0u64..1_000_000,
    ) {
        let topo = Topology::complete(n);
        let physical = DelayBounds::new(ms(d1_ms), ms(d1_ms + width_ms)).unwrap();
        let eps = ms(eps_ms);
        // c anywhere in its legal range [0, d'₂ − 2ε] = [0, d₂].
        let c = Duration::from_nanos(
            physical.max().as_nanos() * i64::from(c_frac) / 100,
        );
        let delta = Duration::from_micros(50);
        let params = RegisterParams::for_clock_model(&topo, physical, eps, c, delta);
        let algorithms = topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
            .collect();
        let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
            .map(|i| -> Box<dyn ClockStrategy> {
                match (seed as usize + i) % 4 {
                    0 => Box::new(PerfectClock),
                    1 => Box::new(OffsetClock::new(eps, eps)),
                    2 => Box::new(OffsetClock::new(-eps, eps)),
                    _ => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
                }
            })
            .collect();
        let workload = ClosedLoopWorkload::new(
            &topo,
            seed,
            DelayBounds::new(ms(1), ms(6)).unwrap(),
            5,
        );
        let mut engine = build_dc(
            &topo,
            physical,
            eps,
            algorithms,
            strategies,
            move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64)),
        )
        .timed(workload)
        .scheduler(RandomScheduler::new(seed))
        .horizon(Time::ZERO + Duration::from_secs(5))
        .build();
        let run = engine.run().expect("well-formed composition");
        prop_assert_eq!(run.stop, StopReason::Quiescent, "workload must finish");

        let trace = app_trace(&run.execution);
        let ops = history::extract(&trace, n).expect("closed loop is well-formed");
        prop_assert_eq!(ops.len(), n * 5);
        let verdict = check_linearizable(&ops, Value::INITIAL);
        prop_assert!(verdict.holds(), "not linearizable: {}", verdict);

        // Theorem 4.7 constructive check against Q (superlinearizability).
        let q = SuperlinearizableRegister::new(n, Value::INITIAL, eps * 2);
        let classes = node_classes::<RegMsg, RegisterOp>(|op| Some(op.node()));
        let w = check_sim1(&run.execution, &q, eps, &classes)
            .map_err(|e| TestCaseError::fail(format!("Theorem 4.7 failed: {e}")))?;
        prop_assert!(w.max_deviation <= eps);

        // Lemma 4.5: clock-time delay of every completed message within
        // [max(0, d₁ − 2ε), d₂ + 2ε].
        let virt = physical.widen_for_skew(eps);
        for f in psync_core::analysis::flights(&run.execution).values() {
            if let Some(cd) = f.clock_delay() {
                prop_assert!(
                    cd >= virt.min() && cd <= virt.max(),
                    "clock delay {} outside {}",
                    cd,
                    virt
                );
            }
            if let Some(rd) = f.channel_delay() {
                prop_assert!(physical.contains(rd), "real delay {} outside {}", rd, physical);
            }
        }
    }
}
