//! Integration: multi-hop behavior on a line topology. A token is relayed
//! hop by hop; per Lemma 4.5 each hop costs `[d₁, d₂]` of real time plus a
//! receive-buffer hold of at most `max(0, 2ε − d₁)`, so the end-to-end
//! real latency is confined to
//! `[(n−1)·d₁, (n−1)·(d₂ + max(0, 2ε − d₁))]` (± ε for the clock-driven
//! start). Checked under corner clocks at both loss-making extremes of the
//! delay adversary.

use psync::prelude::*;
use psync_automata::TimedComponent;
use psync_net::MsgId;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

/// The relayed token (unit payload).
type Token = u8;

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RelayOp {
    /// Emitted by the last node when the token arrives.
    Arrived { node: NodeId },
}

impl Action for RelayOp {
    fn name(&self) -> &'static str {
        "ARRIVED"
    }
}

type A = SysAction<Token, RelayOp>;

/// Node `i` of the relay: node 0 originates the token at `start`;
/// middle nodes forward on receipt; the last node announces arrival.
#[derive(Debug, Clone)]
struct Relay {
    node: NodeId,
    n: usize,
    start: Time,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RelayState {
    /// Send pending (the forwarding hop), announced, done flags.
    send_due: Option<Time>,
    announced: bool,
}

impl Relay {
    fn is_last(&self) -> bool {
        self.node.0 == self.n - 1
    }

    fn succ(&self) -> NodeId {
        NodeId(self.node.0 + 1)
    }

    fn env(&self) -> psync_net::Envelope<Token> {
        psync_net::Envelope {
            src: self.node,
            dst: self.succ(),
            id: MsgId::from_parts(self.node, 0),
            payload: 1,
        }
    }
}

impl TimedComponent for Relay {
    type Action = A;
    type State = RelayState;

    fn name(&self) -> String {
        format!("relay({})", self.node)
    }

    fn initial(&self) -> RelayState {
        RelayState {
            // The originator schedules its send at `start`.
            send_due: (self.node.0 == 0).then_some(self.start),
            announced: false,
        }
    }

    fn classify(&self, a: &A) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if env.src == self.node => Some(ActionKind::Output),
            SysAction::Recv(env) if env.dst == self.node => Some(ActionKind::Input),
            SysAction::App(RelayOp::Arrived { node }) if *node == self.node => {
                Some(ActionKind::Output)
            }
            _ => None,
        }
    }

    fn step(&self, s: &RelayState, a: &A, now: Time) -> Option<RelayState> {
        match a {
            SysAction::Send(env) if env.src == self.node => {
                if s.send_due.is_none_or(|d| now < d) || *env != self.env() {
                    return None;
                }
                Some(RelayState {
                    send_due: None,
                    announced: s.announced,
                })
            }
            SysAction::Recv(env) if env.dst == self.node => {
                let mut next = s.clone();
                if self.is_last() {
                    // Announce immediately (well, at this very instant).
                    next.announced = false;
                    next.send_due = Some(now); // reuse as "announce due"
                } else {
                    next.send_due = Some(now); // forward immediately
                }
                let _ = env;
                Some(next)
            }
            SysAction::App(RelayOp::Arrived { node }) if *node == self.node => {
                if !self.is_last() || s.announced || s.send_due.is_none_or(|d| now < d) {
                    return None;
                }
                Some(RelayState {
                    send_due: None,
                    announced: true,
                })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &RelayState, now: Time) -> Vec<A> {
        match s.send_due {
            Some(due) if now >= due => {
                if self.is_last() {
                    if !s.announced {
                        vec![SysAction::App(RelayOp::Arrived { node: self.node })]
                    } else {
                        Vec::new()
                    }
                } else {
                    vec![SysAction::Send(self.env())]
                }
            }
            _ => Vec::new(),
        }
    }

    fn deadline(&self, s: &RelayState, _now: Time) -> Option<Time> {
        s.send_due
    }
}

fn run_relay(n: usize, physical: DelayBounds, eps: Duration, min_delay: bool) -> (Time, Time) {
    let topo = Topology::line(n);
    let start = Time::ZERO + ms(10);
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, Relay { node: i, n, start }))
        .collect();
    // Alternating corner clocks: worst case for per-hop buffering.
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            if i % 2 == 0 {
                Box::new(OffsetClock::new(eps, eps))
            } else {
                Box::new(OffsetClock::new(-eps, eps))
            }
        })
        .collect();
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, move |_, _| {
        if min_delay {
            Box::new(MinDelay)
        } else {
            Box::new(MaxDelay)
        }
    })
    .horizon(start + Duration::from_secs(2))
    .build();
    let exec = engine.run().expect("well-formed relay").execution;
    let arrived = exec
        .events()
        .iter()
        .find(|e| matches!(e.action, SysAction::App(RelayOp::Arrived { .. })))
        .expect("the token must arrive");
    // Real time the originator's send left node 0 (its ESend).
    let origin = exec
        .events()
        .iter()
        .find(|e| matches!(&e.action, SysAction::ESend(env, _) if env.src == NodeId(0)))
        .expect("origin send");
    (origin.now, arrived.now)
}

#[test]
fn end_to_end_latency_accumulates_per_hop_bounds() {
    let n = 6;
    let hops = (n - 1) as i64;
    let physical = DelayBounds::new(ms(1), ms(4)).unwrap();
    let eps = ms(1); // 2ε − d₁ = 1 ms of possible hold per hop
    let hold_bound = (eps * 2 - physical.min()).max_zero();

    let (sent_min, arrived_min) = run_relay(n, physical, eps, true);
    let fast = arrived_min - sent_min;
    let (sent_max, arrived_max) = run_relay(n, physical, eps, false);
    let slow = arrived_max - sent_max;

    let floor = physical.min() * hops;
    let ceil = (physical.max() + hold_bound) * hops;
    assert!(
        fast >= floor,
        "even the fastest run cannot beat (n−1)·d₁: {fast} < {floor}"
    );
    assert!(
        slow <= ceil,
        "even the slowest run stays under (n−1)·(d₂ + hold): {slow} > {ceil}"
    );
    assert!(fast <= slow, "min-delay adversary must not be slower");
    // With MinDelay and alternating corner clocks, buffering actually
    // engages: the fast run exceeds the raw network floor.
    assert!(
        fast > floor,
        "corner clocks must add hold time on some hop (got exactly {fast})"
    );
}

#[test]
fn relay_works_when_buffering_cannot_engage() {
    // d₁ > 2ε: per §7.2 no holds; the fast run hits the floor exactly.
    let n = 4;
    let hops = (n - 1) as i64;
    let physical = DelayBounds::new(ms(3), ms(5)).unwrap();
    let eps = ms(1);
    let (sent, arrived) = run_relay(n, physical, eps, true);
    assert_eq!(arrived - sent, physical.min() * hops);
}
