//! Property tests for the linearizability checker.
//!
//! 1. Against a brute-force permutation search on small histories — the
//!    frontier search must be exactly as permissive.
//! 2. Soundness by construction: histories *generated from* a legal
//!    sequential execution (then relaxed into intervals) must be accepted.

use proptest::prelude::*;
use psync_net::NodeId;
use psync_register::history::{OpKind, Operation};
use psync_register::Value;
use psync_time::{Duration, Time};
use psync_verify::check_linearizable;

fn t(n: i64) -> Time {
    Time::ZERO + Duration::from_millis(n)
}

/// Brute force: try every permutation of the ops as a linearization order.
fn brute_force(ops: &[Operation], initial: Value) -> bool {
    let n = ops.len();
    let mut perm: Vec<usize> = (0..n).collect();
    fn legal(perm: &[usize], ops: &[Operation], initial: Value) -> bool {
        // The order must embed real-time precedence and read correctly.
        let mut value = initial;
        for (pos, &i) in perm.iter().enumerate() {
            // No operation later in the order may end before this begins.
            for &j in &perm[pos + 1..] {
                if let Some(res) = ops[j].responded {
                    if res < ops[i].invoked {
                        return false;
                    }
                }
            }
            match ops[i].kind {
                OpKind::Write { value: v } => value = v,
                OpKind::Read { returned } => {
                    if returned != value {
                        return false;
                    }
                }
            }
        }
        true
    }
    // All subsets of open ops may be dropped; completed ops must appear.
    let open: Vec<usize> = (0..n).filter(|&i| ops[i].responded.is_none()).collect();
    for mask in 0..(1u32 << open.len()) {
        let keep: Vec<usize> = (0..n)
            .filter(|&i| {
                ops[i].responded.is_some()
                    || (mask >> open.iter().position(|&o| o == i).unwrap()) & 1 == 1
            })
            .collect();
        let kept_ops: Vec<Operation> = keep.iter().map(|&i| ops[i]).collect();
        let m = kept_ops.len();
        perm.truncate(0);
        perm.extend(0..m);
        fn heaps(k: usize, perm: &mut Vec<usize>, ops: &[Operation], initial: Value) -> bool {
            if k <= 1 {
                return legal(perm, ops, initial);
            }
            for i in 0..k {
                if heaps(k - 1, perm, ops, initial) {
                    return true;
                }
                if k.is_multiple_of(2) {
                    perm.swap(i, k - 1);
                } else {
                    perm.swap(0, k - 1);
                }
            }
            false
        }
        if heaps(m, &mut perm, &kept_ops, initial) {
            return true;
        }
    }
    false
}

/// Generates a small well-formed history: per node sequential ops with
/// random intervals and random read values drawn from the written set.
fn history_strategy() -> impl Strategy<Value = Vec<Operation>> {
    let op = (0usize..3, 0i64..20, 1i64..6, 0u64..4, prop::bool::ANY);
    prop::collection::vec(op, 0..6).prop_map(|raw| {
        let mut next_free: Vec<i64> = vec![0; 3];
        let mut ops = Vec::new();
        for (node, start, len, val, is_read) in raw {
            let inv = next_free[node].max(start);
            let res = inv + len;
            next_free[node] = res + 1;
            let kind = if is_read {
                OpKind::Read {
                    returned: Value(val),
                }
            } else {
                OpKind::Write {
                    value: Value(val + 10),
                }
            };
            ops.push(Operation {
                node: NodeId(node),
                kind,
                invoked: t(inv),
                responded: Some(t(res)),
            });
        }
        ops.sort_by_key(|o| o.invoked);
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn checker_agrees_with_brute_force(ops in history_strategy()) {
        let fast = check_linearizable(&ops, Value(0)).holds();
        let slow = brute_force(&ops, Value(0));
        prop_assert_eq!(fast, slow, "checker and brute force disagree on {:?}", ops);
    }

    #[test]
    fn histories_from_sequential_executions_are_accepted(
        seq in prop::collection::vec((0usize..3, 0u64..6, prop::bool::ANY), 1..10),
        widen in prop::collection::vec(0i64..4, 1..10),
    ) {
        // Build a legal sequential execution: ops happen atomically at
        // times 10, 20, 30, …; reads return the current value. Then widen
        // each op's interval around its atomic point (staying clear of the
        // node's neighbours) — the result must be linearizable.
        let mut value = Value(0);
        let mut atomic = Vec::new();
        for (k, (node, val, is_read)) in seq.iter().enumerate() {
            let point = 10 * (k as i64 + 1);
            let kind = if *is_read {
                OpKind::Read { returned: value }
            } else {
                value = Value(100 + *val + k as u64);
                OpKind::Write { value }
            };
            atomic.push((NodeId(*node), kind, point));
        }
        // Widen, keeping per-node sequentiality (±4 ms of slack is always
        // safe given 10 ms spacing and distinct points per node).
        let ops: Vec<Operation> = atomic
            .iter()
            .enumerate()
            .map(|(k, (node, kind, point))| {
                let w = widen.get(k % widen.len()).copied().unwrap_or(0);
                Operation {
                    node: *node,
                    kind: *kind,
                    invoked: t(point - w),
                    responded: Some(t(point + w)),
                }
            })
            .collect();
        prop_assert!(
            check_linearizable(&ops, Value(0)).holds(),
            "widened sequential history rejected: {:?}",
            ops
        );
    }

    #[test]
    fn reading_an_unwritten_value_is_always_rejected(
        node in 0usize..3,
        inv in 0i64..50,
        len in 1i64..10,
    ) {
        let ops = vec![Operation {
            node: NodeId(node),
            kind: OpKind::Read { returned: Value(999) },
            invoked: t(inv),
            responded: Some(t(inv + len)),
        }];
        prop_assert!(!check_linearizable(&ops, Value(0)).holds());
    }
}
