//! Integration: the two design techniques of Section 7.1, each shown with
//! its success case *and* the failure mode it prevents.
//!
//! * Technique #1 (failure detection): solve `P_ε` by budgeting timeouts
//!   against the widened bounds. Skipping the widening → false suspicions.
//! * Technique #2 (mutual exclusion): real-time properties need a stronger
//!   `Q` with `Q_ε ⊆ P`. Skipping the guard bands → overlap.

use psync::prelude::*;
use psync_apps::heartbeat::{outcome, FdParams, Heartbeater, Monitor};
use psync_apps::mutex::{overlaps, MutexAction, SlotUser};
use psync_executor::AdvanceCtx;
use psync_net::MsgId;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

/// Alternates every message between the fastest and the slowest legal
/// delay — the deterministic worst case for inter-arrival gaps
/// (`period + d₂ − d₁` between a fast delivery and the next slow one).
#[derive(Debug, Clone, Copy)]
struct AlternatingDelay;

impl DelayPolicy for AlternatingDelay {
    fn delay(
        &self,
        _src: NodeId,
        _dst: NodeId,
        id: MsgId,
        _sent_at: Time,
        bounds: DelayBounds,
    ) -> Duration {
        if id.0.is_multiple_of(2) {
            bounds.min()
        } else {
            bounds.max()
        }
    }
}

/// A clock that runs slow (−ε) until `flip` of real time, then fast (+ε):
/// one adversarial 2ε jump, the sharpest legal gap-stretcher for a
/// monitor's perceived inter-arrival times.
struct JumpClock {
    flip: Time,
    eps: Duration,
}

impl ClockStrategy for JumpClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        let desired = if ctx.target < self.flip {
            ctx.target.saturating_add_duration(-self.eps)
        } else {
            ctx.target + self.eps
        };
        ctx.fit(desired)
    }
}

struct FdScenario {
    physical: DelayBounds,
    eps: Duration,
    period: Duration,
    crash_at: Time,
}

impl FdScenario {
    fn run(
        &self,
        params: FdParams,
        monitor_clock: Box<dyn ClockStrategy>,
        alternating: bool,
    ) -> psync_automata::TimedTrace<psync_apps::heartbeat::FdAction> {
        let topo = Topology::complete(2);
        let target = NodeId(0);
        let monitor = NodeId(1);
        let algorithms = vec![
            NodeSpec::new(target, Heartbeater::new(target, monitor, self.period)),
            NodeSpec::new(monitor, Monitor::new(monitor, target, params)),
        ];
        let strategies: Vec<Box<dyn ClockStrategy>> = vec![
            Box::new(OffsetClock::new(-self.eps, self.eps)),
            monitor_clock,
        ];
        let crash = Script::new(
            vec![(
                self.crash_at,
                psync_apps::heartbeat::FdOp::Crash { node: target },
            )],
            |op: &psync_apps::heartbeat::FdOp| {
                matches!(op, psync_apps::heartbeat::FdOp::Suspect { .. })
            },
        );
        let policy = move |i: NodeId, j: NodeId| -> Box<dyn DelayPolicy> {
            if alternating {
                Box::new(AlternatingDelay)
            } else {
                Box::new(SeededDelay::new(5 ^ ((i.0 as u64) << 8) ^ j.0 as u64))
            }
        };
        let mut engine = build_dc(
            &topo,
            self.physical,
            self.eps,
            algorithms,
            strategies,
            policy,
        )
        .timed(crash)
        .horizon(self.crash_at + Duration::from_secs(1))
        .build();
        let run = engine.run().expect("well-formed FD system");
        app_trace(&run.execution)
    }
}

#[test]
fn failure_detector_with_widened_budget_is_accurate_and_complete() {
    let sc = FdScenario {
        physical: DelayBounds::new(ms(3), ms(7)).unwrap(),
        eps: ms(1),
        period: ms(10),
        crash_at: Time::ZERO + ms(200),
    };
    // Technique #1: budget against the widened bounds.
    let widened = sc.physical.widen_for_skew(sc.eps);
    let params = FdParams::timeout_for(sc.period, widened, ms(1));

    let clocks: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(PerfectClock),
        Box::new(OffsetClock::new(sc.eps, sc.eps)),
        Box::new(JumpClock {
            flip: Time::ZERO + ms(95),
            eps: sc.eps,
        }),
        Box::new(RandomWalkClock::new(3, sc.eps / 4)),
    ];
    for (i, clock) in clocks.into_iter().enumerate() {
        let trace = sc.run(params, clock, i % 2 == 0);
        let o = outcome(&trace);
        assert!(
            !o.false_suspicion(),
            "widened budget must never suspect a live node"
        );
        let latency = o
            .detection_latency()
            .expect("the crash must eventually be detected");
        // Completeness: last pre-crash heartbeat travels ≤ d₂+2ε (clock
        // time), then the timeout runs; 2ε more converts clock to real.
        let bound = widened.max() + params.timeout + sc.eps * 2;
        assert!(latency <= bound, "detection took {latency}, bound {bound}");
    }
}

#[test]
fn failure_detector_with_physical_budget_falsely_suspects() {
    let sc = FdScenario {
        physical: DelayBounds::new(ms(3), ms(7)).unwrap(),
        eps: ms(1),
        period: ms(10),
        crash_at: Time::ZERO + ms(200),
    };
    // The naive budget: correct in the timed model, 4ε short of the
    // clock-model requirement.
    let naive = FdParams::timeout_for(sc.period, sc.physical, Duration::from_micros(500));
    // Monitor clock jumps +2ε mid-run: a perceived gap of p + (d₂−d₁) + 2ε
    // exceeds the naive timeout.
    let trace = sc.run(
        naive,
        Box::new(JumpClock {
            flip: Time::ZERO + ms(95),
            eps: sc.eps,
        }),
        true, // alternating min/max delays: the worst-case gap pattern
    );
    let o = outcome(&trace);
    assert!(
        o.false_suspicion(),
        "the naive budget must break under the jump adversary (suspected at {:?}, crash at {:?})",
        o.suspected_at,
        o.crashed_at
    );
}

fn run_mutex(
    users: Vec<SlotUser>,
    eps: Duration,
    clocks: Vec<Box<dyn ClockStrategy>>,
    horizon: Time,
) -> psync_automata::TimedTrace<MutexAction> {
    let mut builder = Engine::builder();
    for (u, strategy) in users.into_iter().zip(clocks) {
        builder = builder.clock_node(
            ClockNode::new(format!("mutex-{}", u.name()), eps, strategy).with(ClockSim::new(u)),
        );
    }
    let run = builder.horizon(horizon).build().run().expect("well-formed");
    run.execution.t_trace()
}

#[test]
fn unguarded_slots_overlap_under_corner_clocks() {
    let n = 3;
    let eps = ms(2);
    let slot = ms(10);
    let users: Vec<SlotUser> = (0..n)
        .map(|i| SlotUser::unguarded(NodeId(i), n, slot, 4))
        .collect();
    // Node 0 slow, node 1 fast: node 0 exits late while node 1 enters
    // early — the ε-perturbation that breaks a real-time property.
    let clocks: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(OffsetClock::new(-eps, eps)),
        Box::new(OffsetClock::new(eps, eps)),
        Box::new(PerfectClock),
    ];
    let trace = run_mutex(users, eps, clocks, Time::ZERO + ms(200));
    let v = overlaps(&trace);
    assert!(
        !v.is_empty(),
        "unguarded time slots must overlap under ±ε corner clocks"
    );
    // The intrusion is between the slow holder and its fast successor.
    assert_eq!(v[0].holder, NodeId(0));
    assert_eq!(v[0].intruder, NodeId(1));
}

#[test]
fn guarded_slots_stay_exclusive_under_adversarial_clocks() {
    let n = 3;
    let eps = ms(2);
    let slot = ms(10);
    // Technique #2: Q = "separated by 2g" with g = ε ⟹ Q_ε ⊆ P.
    let users: Vec<SlotUser> = (0..n)
        .map(|i| SlotUser::guarded(NodeId(i), n, slot, eps, 4))
        .collect();
    let clocks: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(OffsetClock::new(-eps, eps)),
        Box::new(OffsetClock::new(eps, eps)),
        Box::new(RandomWalkClock::new(7, eps / 4)),
    ];
    let trace = run_mutex(users, eps, clocks, Time::ZERO + ms(200));
    assert!(
        overlaps(&trace).is_empty(),
        "guard bands of ε must preserve exclusion"
    );
    // Every node completed its rounds.
    let enters = trace
        .iter()
        .filter(|(a, _)| {
            matches!(
                a,
                psync_net::SysAction::App(psync_apps::mutex::MutexOp::Enter { .. })
            )
        })
        .count();
    assert_eq!(enters, n * 4);
    // The price of safety: utilization drops from 100% to (slot−2ε)/slot.
    let u = SlotUser::guarded(NodeId(0), n, slot, eps, 1).utilization();
    assert!((u - 0.6).abs() < 1e-9);
}

#[test]
fn guard_smaller_than_eps_is_not_sufficient() {
    // g < ε leaves a residual window of 2(ε − g): the corner adversary
    // still finds it.
    let n = 2;
    let eps = ms(2);
    let users: Vec<SlotUser> = (0..n)
        .map(|i| SlotUser::guarded(NodeId(i), n, ms(10), ms(1), 5))
        .collect();
    let clocks: Vec<Box<dyn ClockStrategy>> = vec![
        Box::new(OffsetClock::new(-eps, eps)),
        Box::new(OffsetClock::new(eps, eps)),
    ];
    let trace = run_mutex(users, eps, clocks, Time::ZERO + ms(250));
    assert!(
        !overlaps(&trace).is_empty(),
        "a guard of ε/2 must still overlap under the corner adversary"
    );
}
