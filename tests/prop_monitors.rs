//! Differential property tests for the streaming trace monitors: on any
//! pair of traces, `StreamingEps` / `StreamingDelta` must deliver the
//! same verdict as the offline matchers `eps_equivalent` /
//! `delta_shifted` — equal [`Witness`] on acceptance, rejection on both
//! sides on failure (the reported [`RelationError`]s may differ because
//! the offline matcher scans classes before positions while the monitor
//! fails at the first offending observed event).
//!
//! Includes the edge cases the agreement argument leans on: the exact-ε
//! boundary (a deviation of exactly ε is accepted, one tick more is
//! rejected — by both evaluators), classes that occur in neither trace,
//! and the all-one-class map `ClassMap::single()`.

//! The *approximate* monitors (`ApproxEps`/`ApproxDelta`) are pinned
//! against the exact ones under their quantified ±err contract: an
//! approximate verdict is the exact verdict of the same traces under a
//! bound perturbed by less than `err` (the quantization grain), never
//! anything wilder.

use proptest::prelude::*;
use psync_automata::relations::{delta_shifted, eps_equivalent, ClassMap, RelationError, Witness};
use psync_automata::TimedTrace;
use psync_obs::{ApproxDelta, ApproxEps, StreamingDelta, StreamingEps};
use psync_time::{Duration, Time};

/// Actions "a0".."c2" plus unclassified "x0".."x2": first letter = class
/// (x = no class), digit = payload.
fn action_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "a0", "a1", "a2", "b0", "b1", "b2", "c0", "c1", "c2", "x0", "x1", "x2",
    ])
}

/// Classifies by first letter; additionally *declares* a class 9 that no
/// generated action ever inhabits — the empty-class edge case must be a
/// no-op for both evaluators.
fn classes() -> ClassMap<&'static str> {
    ClassMap::by(|a: &&str| match a.chars().next() {
        Some('a') => Some(0),
        Some('b') => Some(1),
        Some('c') => Some(2),
        Some('z') => Some(9), // never generated: the empty class
        _ => None,
    })
}

/// A small trace: up to 6 actions with times in 0..50 ms.
fn trace_strategy() -> impl Strategy<Value = TimedTrace<&'static str>> {
    prop::collection::vec((action_strategy(), 0i64..50), 0..6).prop_map(|mut pairs| {
        pairs.sort_by_key(|(_, t)| *t);
        pairs
            .into_iter()
            .map(|(a, t)| (a, Time::ZERO + Duration::from_millis(t)))
            .collect()
    })
}

fn stream_eps(
    reference: &TimedTrace<&'static str>,
    observed: &TimedTrace<&'static str>,
    eps: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<Witness, RelationError<&'static str>> {
    let mut m = StreamingEps::new(reference, eps, classes);
    for (a, t) in observed.iter() {
        m.observe(a, t);
    }
    m.finish()
}

fn stream_delta(
    reference: &TimedTrace<&'static str>,
    observed: &TimedTrace<&'static str>,
    delta: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<Witness, RelationError<&'static str>> {
    let mut m = StreamingDelta::new(reference, delta, classes);
    for (a, t) in observed.iter() {
        m.observe(a, t);
    }
    m.finish()
}

/// The agreement contract: equal witnesses on acceptance, both reject on
/// failure.
fn assert_eps_agreement(
    left: &TimedTrace<&'static str>,
    right: &TimedTrace<&'static str>,
    eps: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<(), TestCaseError> {
    let offline = eps_equivalent(left, right, eps, classes);
    let online = stream_eps(left, right, eps, classes);
    match (offline, online) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "accepting witnesses must be equal"),
        (Err(_), Err(_)) => {}
        (offline, online) => prop_assert!(
            false,
            "verdicts disagree: offline {offline:?}, streaming {online:?}"
        ),
    }
    Ok(())
}

fn assert_delta_agreement(
    left: &TimedTrace<&'static str>,
    right: &TimedTrace<&'static str>,
    delta: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<(), TestCaseError> {
    let offline = delta_shifted(left, right, delta, classes);
    let online = stream_delta(left, right, delta, classes);
    match (offline, online) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "accepting witnesses must be equal"),
        (Err(_), Err(_)) => {}
        (offline, online) => prop_assert!(
            false,
            "verdicts disagree: offline {offline:?}, streaming {online:?}"
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn streaming_eps_agrees_with_offline(
        left in trace_strategy(),
        right in trace_strategy(),
        eps_ms in 0i64..10,
    ) {
        assert_eps_agreement(&left, &right, Duration::from_millis(eps_ms), &classes())?;
    }

    #[test]
    fn streaming_delta_agrees_with_offline(
        left in trace_strategy(),
        right in trace_strategy(),
        delta_ms in 0i64..10,
    ) {
        assert_delta_agreement(&left, &right, Duration::from_millis(delta_ms), &classes())?;
    }

    #[test]
    fn streaming_agrees_under_single_class(
        left in trace_strategy(),
        right in trace_strategy(),
        bound_ms in 0i64..10,
    ) {
        // All-one-class: every action is order-forced against every other.
        let bound = Duration::from_millis(bound_ms);
        assert_eps_agreement(&left, &right, bound, &ClassMap::single())?;
        assert_delta_agreement(&left, &right, bound, &ClassMap::single())?;
    }

    #[test]
    fn exact_eps_boundary_is_accepted_one_tick_beyond_rejected(
        base in trace_strategy(),
        eps_ms in 1i64..8,
    ) {
        // Shift the whole trace forward by exactly ε: per-class orders are
        // untouched, every deviation is exactly ε.
        let eps = Duration::from_millis(eps_ms);
        let shifted: TimedTrace<&'static str> =
            base.iter().map(|(a, t)| (*a, t + eps)).collect();

        let on_the_line = stream_eps(&base, &shifted, eps, &classes());
        prop_assert_eq!(
            on_the_line,
            eps_equivalent(&base, &shifted, eps, &classes()),
            "boundary verdicts must agree"
        );
        if !base.is_empty() {
            prop_assert_eq!(
                stream_eps(&base, &shifted, eps, &classes())
                    .expect("deviation of exactly ε is inside the relation")
                    .max_deviation,
                eps
            );
            // One tick under the deviation: both evaluators reject.
            let tight = eps - Duration::NANOSECOND;
            prop_assert!(stream_eps(&base, &shifted, tight, &classes()).is_err());
            prop_assert!(eps_equivalent(&base, &shifted, tight, &classes()).is_err());
        }
    }

    #[test]
    fn exact_delta_boundary_is_accepted_one_tick_beyond_rejected(
        base in trace_strategy(),
        delta_ms in 1i64..8,
    ) {
        // Under ClassMap::single() everything may slide forward ≤ δ; a
        // uniform shift of exactly δ sits on the boundary.
        let delta = Duration::from_millis(delta_ms);
        let classes = ClassMap::single();
        let shifted: TimedTrace<&'static str> =
            base.iter().map(|(a, t)| (*a, t + delta)).collect();

        prop_assert_eq!(
            stream_delta(&base, &shifted, delta, &classes),
            delta_shifted(&base, &shifted, delta, &classes)
        );
        if !base.is_empty() {
            let tight = delta - Duration::NANOSECOND;
            prop_assert!(stream_delta(&base, &shifted, tight, &classes).is_err());
            prop_assert!(delta_shifted(&base, &shifted, tight, &classes).is_err());
        }
    }

    #[test]
    fn streaming_identity_yields_zero_witness(base in trace_strategy()) {
        let classes = classes();
        let w = stream_eps(&base, &base, Duration::ZERO, &classes).unwrap();
        prop_assert_eq!(w.max_deviation, Duration::ZERO);
        prop_assert_eq!(w.matched, base.len());
        let w = stream_delta(&base, &base, Duration::ZERO, &classes).unwrap();
        prop_assert_eq!(w.max_deviation, Duration::ZERO);
        prop_assert_eq!(w.matched, base.len());
    }
}

/// The κ-class edge cases, pinned deterministically (the proptest stub
/// does not replay regression files, so these cannot live only in the
/// generator's path).
#[test]
fn empty_class_and_unclassified_tail_edge_cases() {
    let t = |n: i64| Time::ZERO + Duration::from_millis(n);
    let ms = Duration::from_millis;
    let classes = classes();

    // The declared-but-empty class 9 never blocks acceptance.
    let left: TimedTrace<&'static str> = vec![("x0", t(1)), ("a0", t(2))].into_iter().collect();
    let right: TimedTrace<&'static str> = vec![("a0", t(1)), ("x0", t(2))].into_iter().collect();
    let offline = eps_equivalent(&left, &right, ms(1), &classes).unwrap();
    let online = {
        let mut m = StreamingEps::new(&left, ms(1), &classes);
        for (a, tm) in right.iter() {
            m.observe(a, tm);
        }
        m.finish().unwrap()
    };
    assert_eq!(offline, online);

    // An observed action whose value the reference never contains is
    // rejected by both (unclassified lane miss).
    let only_x: TimedTrace<&'static str> = vec![("x0", t(1))].into_iter().collect();
    let other_x: TimedTrace<&'static str> = vec![("x1", t(1))].into_iter().collect();
    assert!(eps_equivalent(&only_x, &other_x, ms(5), &classes).is_err());
    let mut m = StreamingEps::new(&only_x, ms(5), &classes);
    m.observe(&"x1", t(1));
    assert!(m.finish().is_err());

    // Empty-vs-empty holds trivially, with an empty witness.
    let empty = TimedTrace::<&'static str>::new();
    let w = StreamingEps::new(&empty, ms(0), &classes).finish().unwrap();
    assert_eq!(w.matched, 0);
    let w = StreamingDelta::new(&empty, ms(0), &classes)
        .finish()
        .unwrap();
    assert_eq!(w.matched, 0);
}

// ---------------------------------------------------------------------
// Exact vs approximate: the ±err contract.
//
// `ApproxEps`/`ApproxDelta` quantize every time to a `grain` lattice, so
// each verdict carries `err = grain` and promises to be the exact verdict
// under a bound perturbed by less than `err`. Differentially that pins
// down to three laws, each tested on generated traces:
//
// 1. an approximate rejection at bound `B` implies an exact rejection at
//    `B − err` (the approximation never invents a violation beyond its
//    tolerance);
// 2. an exact acceptance at `B` implies an approximate acceptance at
//    `B + err` (it never misses an acceptance beyond its tolerance);
// 3. when both accept at the same bound, the witnesses' `max_deviation`
//    differ by less than `err` and the matched counts are equal.
//
// Cardinality verdicts are exempt from the interval: they are exact.
// ---------------------------------------------------------------------

fn approx_eps(
    reference: &TimedTrace<&'static str>,
    observed: &TimedTrace<&'static str>,
    eps: Duration,
    grain: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<Witness, RelationError<&'static str>> {
    let mut m = ApproxEps::new(reference, eps, grain, classes);
    for (a, t) in observed.iter() {
        m.observe(a, t);
    }
    match m.finish() {
        Ok(w) => {
            assert_eq!(w.err, grain, "accept must carry err = grain");
            Ok(w.witness)
        }
        Err(v) => {
            assert_eq!(v.err, grain, "reject must carry err = grain");
            Err(v.error)
        }
    }
}

fn approx_delta(
    reference: &TimedTrace<&'static str>,
    observed: &TimedTrace<&'static str>,
    delta: Duration,
    grain: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<Witness, RelationError<&'static str>> {
    let mut m = ApproxDelta::new(reference, delta, grain, classes);
    for (a, t) in observed.iter() {
        m.observe(a, t);
    }
    match m.finish() {
        Ok(w) => Ok(w.witness),
        Err(v) => Err(v.error),
    }
}

fn abs_diff(a: Duration, b: Duration) -> Duration {
    if a > b {
        a - b
    } else {
        b - a
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Laws 1–3 for `ApproxEps` against `StreamingEps`.
    #[test]
    fn approx_eps_verdicts_stay_within_err_of_exact(
        left in trace_strategy(),
        right in trace_strategy(),
        eps_ms in 0i64..10,
        grain_ms in 1i64..4,
    ) {
        let classes = classes();
        let eps = Duration::from_millis(eps_ms);
        let grain = Duration::from_millis(grain_ms);
        let exact = stream_eps(&left, &right, eps, &classes);
        let approx = approx_eps(&left, &right, eps, grain, &classes);

        if let Err(e) = &approx {
            if matches!(e, RelationError::CardinalityMismatch { .. }) {
                // Cardinalities are tracked exactly: the exact monitor
                // rejects the same trace pair at any bound.
                prop_assert!(stream_eps(&left, &right, Duration::MAX, &classes).is_err());
            } else if eps >= grain {
                prop_assert!(
                    stream_eps(&left, &right, eps - grain, &classes).is_err(),
                    "approx rejected ({e:?}) but exact accepts at ε − err"
                );
            }
        }
        if exact.is_ok() {
            let widened = approx_eps(&left, &right, eps + grain, grain, &classes);
            prop_assert!(
                widened.is_ok(),
                "exact accepted at ε but approx rejects at ε + err: {widened:?}"
            );
        }
        if let (Ok(e), Ok(a)) = (&exact, &approx) {
            prop_assert!(
                abs_diff(e.max_deviation, a.max_deviation) < grain,
                "witness deviations {e:?} vs {a:?} differ by ≥ err"
            );
            prop_assert_eq!(e.matched, a.matched);
        }
    }

    /// The same three laws for `ApproxDelta` against `StreamingDelta`.
    #[test]
    fn approx_delta_verdicts_stay_within_err_of_exact(
        left in trace_strategy(),
        right in trace_strategy(),
        delta_ms in 0i64..10,
        grain_ms in 1i64..4,
    ) {
        let classes = classes();
        let delta = Duration::from_millis(delta_ms);
        let grain = Duration::from_millis(grain_ms);
        let exact = stream_delta(&left, &right, delta, &classes);
        let approx = approx_delta(&left, &right, delta, grain, &classes);

        if let Err(e) = &approx {
            if matches!(e, RelationError::CardinalityMismatch { .. }) {
                prop_assert!(stream_delta(&left, &right, Duration::MAX, &classes).is_err());
            }
            // `≤_{δ,K}` also rejects on direction (backward slides) and
            // on the exact-time rest lane, both of which the lattice can
            // only relax — so the tightened-bound law needs the reject to
            // be a time-bound one.
            else if matches!(e, RelationError::TimeBound { .. }) && delta >= grain {
                prop_assert!(
                    stream_delta(&left, &right, delta - grain, &classes).is_err(),
                    "approx rejected ({e:?}) but exact accepts at δ − err"
                );
            }
        }
        if exact.is_ok() {
            let widened = approx_delta(&left, &right, delta + grain, grain, &classes);
            prop_assert!(
                widened.is_ok(),
                "exact accepted at δ but approx rejects at δ + err: {widened:?}"
            );
        }
        if let (Ok(e), Ok(a)) = (&exact, &approx) {
            prop_assert!(
                abs_diff(e.max_deviation, a.max_deviation) < grain,
                "witness deviations {e:?} vs {a:?} differ by ≥ err"
            );
            prop_assert_eq!(e.matched, a.matched);
        }
    }
}

/// The approximate-lane edge cases ISSUE 9 calls out, pinned
/// deterministically: an empty reference trace, `ClassMap::single()` with
/// zero observed events, and the verdict flip exactly at the ±err
/// boundary.
#[test]
fn approx_edge_cases_empty_reference_zero_observed_and_err_boundary() {
    let t = |n: i64| Time::ZERO + Duration::from_millis(n);
    let ms = Duration::from_millis;
    let classes = classes();

    // Empty reference: accepting with an empty witness when nothing is
    // observed, rejecting (lane miss / cardinality, both exact verdicts)
    // the moment anything is.
    let empty = TimedTrace::<&'static str>::new();
    let w = ApproxEps::new(&empty, ms(5), ms(1), &classes)
        .finish()
        .unwrap();
    assert_eq!(w.witness.matched, 0);
    assert_eq!(w.witness.max_deviation, Duration::ZERO);
    assert_eq!(w.err, ms(1));
    let mut m = ApproxEps::new(&empty, ms(5), ms(1), &classes);
    m.observe(&"a0", t(0));
    assert!(m.finish().is_err());
    assert!(ApproxDelta::new(&empty, ms(5), ms(1), &classes)
        .finish()
        .is_ok());

    // ClassMap::single() with zero observed events: every reference
    // action sits unmatched in the one class lane, so both approximate
    // monitors report the exact cardinality deficit.
    let single = ClassMap::single();
    let reference: TimedTrace<&'static str> = vec![("a0", t(1)), ("b0", t(2)), ("c0", t(3))]
        .into_iter()
        .collect();
    for verdict in [
        ApproxEps::new(&reference, ms(5), ms(1), &single).finish(),
        ApproxDelta::new(&reference, ms(5), ms(1), &single).finish(),
    ] {
        match verdict.unwrap_err().error {
            RelationError::CardinalityMismatch { class, left, right } => {
                assert_eq!((class, left, right), (Some(0), 3, 0));
            }
            other => panic!("expected an exact cardinality verdict, got {other:?}"),
        }
    }

    // The ±err boundary. Reference on the lattice, ε = 3 ms, grain (err)
    // = 1 ms: an observation at ε is on the line and accepted; one inside
    // the +err half-interval (ε + err − 1 ns) is still accepted — the
    // exact monitor rejects it, which is precisely the advertised ±err
    // disagreement — and one at ε + err flips the verdict to reject.
    let reference: TimedTrace<&'static str> = vec![("a0", t(0))].into_iter().collect();
    let eps = ms(3);
    let grain = ms(1);
    let verdict = |at: Time| {
        let mut m = ApproxEps::new(&reference, eps, grain, &classes);
        m.observe(&"a0", at);
        m.finish()
    };

    let on_the_line = verdict(Time::ZERO + eps).unwrap();
    assert_eq!(on_the_line.witness.max_deviation, eps);

    let inside = Time::ZERO + eps + grain - Duration::NANOSECOND;
    assert!(verdict(inside).is_ok(), "within +err of the bound");
    let mut exact = StreamingEps::new(&reference, eps, &classes);
    exact.observe(&"a0", inside);
    assert!(
        exact.finish().is_err(),
        "the exact monitor rejects inside the +err half-interval"
    );

    let flipped = verdict(Time::ZERO + eps + grain).unwrap_err();
    assert_eq!(flipped.err, grain);
    match flipped.error {
        RelationError::TimeBound { bound, .. } => assert_eq!(bound, eps),
        other => panic!("expected a time-bound flip, got {other:?}"),
    }
}
