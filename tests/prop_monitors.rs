//! Differential property tests for the streaming trace monitors: on any
//! pair of traces, `StreamingEps` / `StreamingDelta` must deliver the
//! same verdict as the offline matchers `eps_equivalent` /
//! `delta_shifted` — equal [`Witness`] on acceptance, rejection on both
//! sides on failure (the reported [`RelationError`]s may differ because
//! the offline matcher scans classes before positions while the monitor
//! fails at the first offending observed event).
//!
//! Includes the edge cases the agreement argument leans on: the exact-ε
//! boundary (a deviation of exactly ε is accepted, one tick more is
//! rejected — by both evaluators), classes that occur in neither trace,
//! and the all-one-class map `ClassMap::single()`.

use proptest::prelude::*;
use psync_automata::relations::{delta_shifted, eps_equivalent, ClassMap, RelationError, Witness};
use psync_automata::TimedTrace;
use psync_obs::{StreamingDelta, StreamingEps};
use psync_time::{Duration, Time};

/// Actions "a0".."c2" plus unclassified "x0".."x2": first letter = class
/// (x = no class), digit = payload.
fn action_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "a0", "a1", "a2", "b0", "b1", "b2", "c0", "c1", "c2", "x0", "x1", "x2",
    ])
}

/// Classifies by first letter; additionally *declares* a class 9 that no
/// generated action ever inhabits — the empty-class edge case must be a
/// no-op for both evaluators.
fn classes() -> ClassMap<&'static str> {
    ClassMap::by(|a: &&str| match a.chars().next() {
        Some('a') => Some(0),
        Some('b') => Some(1),
        Some('c') => Some(2),
        Some('z') => Some(9), // never generated: the empty class
        _ => None,
    })
}

/// A small trace: up to 6 actions with times in 0..50 ms.
fn trace_strategy() -> impl Strategy<Value = TimedTrace<&'static str>> {
    prop::collection::vec((action_strategy(), 0i64..50), 0..6).prop_map(|mut pairs| {
        pairs.sort_by_key(|(_, t)| *t);
        pairs
            .into_iter()
            .map(|(a, t)| (a, Time::ZERO + Duration::from_millis(t)))
            .collect()
    })
}

fn stream_eps(
    reference: &TimedTrace<&'static str>,
    observed: &TimedTrace<&'static str>,
    eps: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<Witness, RelationError<&'static str>> {
    let mut m = StreamingEps::new(reference, eps, classes);
    for (a, t) in observed.iter() {
        m.observe(a, t);
    }
    m.finish()
}

fn stream_delta(
    reference: &TimedTrace<&'static str>,
    observed: &TimedTrace<&'static str>,
    delta: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<Witness, RelationError<&'static str>> {
    let mut m = StreamingDelta::new(reference, delta, classes);
    for (a, t) in observed.iter() {
        m.observe(a, t);
    }
    m.finish()
}

/// The agreement contract: equal witnesses on acceptance, both reject on
/// failure.
fn assert_eps_agreement(
    left: &TimedTrace<&'static str>,
    right: &TimedTrace<&'static str>,
    eps: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<(), TestCaseError> {
    let offline = eps_equivalent(left, right, eps, classes);
    let online = stream_eps(left, right, eps, classes);
    match (offline, online) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "accepting witnesses must be equal"),
        (Err(_), Err(_)) => {}
        (offline, online) => prop_assert!(
            false,
            "verdicts disagree: offline {offline:?}, streaming {online:?}"
        ),
    }
    Ok(())
}

fn assert_delta_agreement(
    left: &TimedTrace<&'static str>,
    right: &TimedTrace<&'static str>,
    delta: Duration,
    classes: &ClassMap<&'static str>,
) -> Result<(), TestCaseError> {
    let offline = delta_shifted(left, right, delta, classes);
    let online = stream_delta(left, right, delta, classes);
    match (offline, online) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "accepting witnesses must be equal"),
        (Err(_), Err(_)) => {}
        (offline, online) => prop_assert!(
            false,
            "verdicts disagree: offline {offline:?}, streaming {online:?}"
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn streaming_eps_agrees_with_offline(
        left in trace_strategy(),
        right in trace_strategy(),
        eps_ms in 0i64..10,
    ) {
        assert_eps_agreement(&left, &right, Duration::from_millis(eps_ms), &classes())?;
    }

    #[test]
    fn streaming_delta_agrees_with_offline(
        left in trace_strategy(),
        right in trace_strategy(),
        delta_ms in 0i64..10,
    ) {
        assert_delta_agreement(&left, &right, Duration::from_millis(delta_ms), &classes())?;
    }

    #[test]
    fn streaming_agrees_under_single_class(
        left in trace_strategy(),
        right in trace_strategy(),
        bound_ms in 0i64..10,
    ) {
        // All-one-class: every action is order-forced against every other.
        let bound = Duration::from_millis(bound_ms);
        assert_eps_agreement(&left, &right, bound, &ClassMap::single())?;
        assert_delta_agreement(&left, &right, bound, &ClassMap::single())?;
    }

    #[test]
    fn exact_eps_boundary_is_accepted_one_tick_beyond_rejected(
        base in trace_strategy(),
        eps_ms in 1i64..8,
    ) {
        // Shift the whole trace forward by exactly ε: per-class orders are
        // untouched, every deviation is exactly ε.
        let eps = Duration::from_millis(eps_ms);
        let shifted: TimedTrace<&'static str> =
            base.iter().map(|(a, t)| (*a, t + eps)).collect();

        let on_the_line = stream_eps(&base, &shifted, eps, &classes());
        prop_assert_eq!(
            on_the_line,
            eps_equivalent(&base, &shifted, eps, &classes()),
            "boundary verdicts must agree"
        );
        if !base.is_empty() {
            prop_assert_eq!(
                stream_eps(&base, &shifted, eps, &classes())
                    .expect("deviation of exactly ε is inside the relation")
                    .max_deviation,
                eps
            );
            // One tick under the deviation: both evaluators reject.
            let tight = eps - Duration::NANOSECOND;
            prop_assert!(stream_eps(&base, &shifted, tight, &classes()).is_err());
            prop_assert!(eps_equivalent(&base, &shifted, tight, &classes()).is_err());
        }
    }

    #[test]
    fn exact_delta_boundary_is_accepted_one_tick_beyond_rejected(
        base in trace_strategy(),
        delta_ms in 1i64..8,
    ) {
        // Under ClassMap::single() everything may slide forward ≤ δ; a
        // uniform shift of exactly δ sits on the boundary.
        let delta = Duration::from_millis(delta_ms);
        let classes = ClassMap::single();
        let shifted: TimedTrace<&'static str> =
            base.iter().map(|(a, t)| (*a, t + delta)).collect();

        prop_assert_eq!(
            stream_delta(&base, &shifted, delta, &classes),
            delta_shifted(&base, &shifted, delta, &classes)
        );
        if !base.is_empty() {
            let tight = delta - Duration::NANOSECOND;
            prop_assert!(stream_delta(&base, &shifted, tight, &classes).is_err());
            prop_assert!(delta_shifted(&base, &shifted, tight, &classes).is_err());
        }
    }

    #[test]
    fn streaming_identity_yields_zero_witness(base in trace_strategy()) {
        let classes = classes();
        let w = stream_eps(&base, &base, Duration::ZERO, &classes).unwrap();
        prop_assert_eq!(w.max_deviation, Duration::ZERO);
        prop_assert_eq!(w.matched, base.len());
        let w = stream_delta(&base, &base, Duration::ZERO, &classes).unwrap();
        prop_assert_eq!(w.max_deviation, Duration::ZERO);
        prop_assert_eq!(w.matched, base.len());
    }
}

/// The κ-class edge cases, pinned deterministically (the proptest stub
/// does not replay regression files, so these cannot live only in the
/// generator's path).
#[test]
fn empty_class_and_unclassified_tail_edge_cases() {
    let t = |n: i64| Time::ZERO + Duration::from_millis(n);
    let ms = Duration::from_millis;
    let classes = classes();

    // The declared-but-empty class 9 never blocks acceptance.
    let left: TimedTrace<&'static str> = vec![("x0", t(1)), ("a0", t(2))].into_iter().collect();
    let right: TimedTrace<&'static str> = vec![("a0", t(1)), ("x0", t(2))].into_iter().collect();
    let offline = eps_equivalent(&left, &right, ms(1), &classes).unwrap();
    let online = {
        let mut m = StreamingEps::new(&left, ms(1), &classes);
        for (a, tm) in right.iter() {
            m.observe(a, tm);
        }
        m.finish().unwrap()
    };
    assert_eq!(offline, online);

    // An observed action whose value the reference never contains is
    // rejected by both (unclassified lane miss).
    let only_x: TimedTrace<&'static str> = vec![("x0", t(1))].into_iter().collect();
    let other_x: TimedTrace<&'static str> = vec![("x1", t(1))].into_iter().collect();
    assert!(eps_equivalent(&only_x, &other_x, ms(5), &classes).is_err());
    let mut m = StreamingEps::new(&only_x, ms(5), &classes);
    m.observe(&"x1", t(1));
    assert!(m.finish().is_err());

    // Empty-vs-empty holds trivially, with an empty witness.
    let empty = TimedTrace::<&'static str>::new();
    let w = StreamingEps::new(&empty, ms(0), &classes).finish().unwrap();
    assert_eq!(w.matched, 0);
    let w = StreamingDelta::new(&empty, ms(0), &classes)
        .finish()
        .unwrap();
    assert_eq!(w.matched, 0);
}
