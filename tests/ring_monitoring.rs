//! Integration: a ring of failure detectors — the first non-complete
//! topology exercised end-to-end. Every node heartbeats its ring
//! successor's monitor; node `i+1` monitors node `i`. One crash must
//! produce exactly one (correct) suspicion, under adversarial clocks.

use psync::prelude::*;
use psync_apps::heartbeat::{FdAction, FdOp, FdParams, Heartbeater, Monitor};
use psync_automata::{ComponentBox, Pair};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

#[test]
fn ring_of_monitors_detects_exactly_the_crashed_node() {
    let n = 5;
    let topo = Topology::ring(n);
    let physical = DelayBounds::new(ms(2), ms(6)).unwrap();
    let eps = ms(1);
    let period = ms(10);
    let params = FdParams::timeout_for(period, physical.widen_for_skew(eps), ms(1));
    let crashed = NodeId(2);
    let crash_at = Time::ZERO + ms(150);

    // Node i hosts a heartbeater (to its successor) *and* a monitor (of
    // its predecessor) — one composite algorithm per node.
    let algorithms: Vec<NodeSpec<psync_apps::heartbeat::Heartbeat, FdOp>> = topo
        .nodes()
        .map(|i| {
            let succ = NodeId((i.0 + 1) % n);
            let pred = NodeId((i.0 + n - 1) % n);
            // Two roles on one node, composed with the Pair combinator.
            NodeSpec {
                id: i,
                algorithm: ComponentBox::new(Pair::new(
                    Heartbeater::new(i, succ, period),
                    Monitor::new(i, pred, params),
                )),
            }
        })
        .collect();

    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match i % 3 {
                0 => Box::new(OffsetClock::new(eps, eps)),
                1 => Box::new(OffsetClock::new(-eps, eps)),
                _ => Box::new(RandomWalkClock::new(i as u64, eps / 4)),
            }
        })
        .collect();

    let crash = Script::new(
        vec![(crash_at, FdOp::Crash { node: crashed })],
        |op: &FdOp| matches!(op, FdOp::Suspect { .. }),
    );

    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |i, j| {
        Box::new(SeededDelay::new(99 ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    })
    .timed(crash)
    .horizon(crash_at + Duration::from_secs(1))
    .build();
    let exec = engine.run().expect("well-formed ring").execution;
    let trace: psync_automata::TimedTrace<FdAction> = app_trace(&exec);

    // Exactly one suspicion: the crashed node's monitor (its successor).
    let suspicions: Vec<(NodeId, NodeId, Time)> = trace
        .iter()
        .filter_map(|(a, t)| match a {
            SysAction::App(FdOp::Suspect { monitor, target }) => Some((*monitor, *target, t)),
            _ => None,
        })
        .collect();
    assert_eq!(suspicions.len(), 1, "exactly one suspicion: {suspicions:?}");
    let (monitor, target, when) = suspicions[0];
    assert_eq!(target, crashed);
    assert_eq!(monitor, NodeId((crashed.0 + 1) % n));
    assert!(when > crash_at, "no false (pre-crash) suspicion");
    let bound = physical.widen_for_skew(eps).max() + params.timeout + eps * 2;
    assert!(
        when - crash_at <= bound,
        "detection took {} (bound {bound})",
        when - crash_at
    );
}
