//! Integration: the "other shared memory objects" generalization (end of
//! Section 6) — counters and grow-sets through the *same* Simulation 1
//! pipeline, linearizable under adversarial clocks with the Theorem 6.5
//! latency formulas intact.

use psync::prelude::*;
use psync_register::object::{Counter, GrowSet, ObjectSpec, Register as RegisterObj};
use psync_register::{AlgorithmSObj, ObjAction, ObjOp, ObjWorkload};
use psync_verify::{check_object_linearizable, extract_object_history};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn app_trace_obj<O: ObjectSpec>(
    exec: &Execution<ObjAction<O>>,
) -> psync_automata::TimedTrace<ObjAction<O>> {
    exec.events()
        .iter()
        .filter(|e| e.kind.is_visible() && matches!(e.action, SysAction::App(_)))
        .map(|e| (e.action.clone(), e.now))
        .collect()
}

fn run_object<O: ObjectSpec>(
    spec: O,
    seed: u64,
    gen_update: impl Fn(NodeId, u32) -> O::Update + 'static,
) -> (usize, RegisterParams, Execution<ObjAction<O>>) {
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);
    let params =
        RegisterParams::for_clock_model(&topo, physical, eps, ms(2), Duration::from_micros(100));
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmSObj::new(i, spec.clone(), params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match i % 3 {
                0 => Box::new(OffsetClock::new(eps, eps)),
                1 => Box::new(OffsetClock::new(-eps, eps)),
                _ => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
            }
        })
        .collect();
    let workload = ObjWorkload::<O>::new(
        &topo,
        seed,
        DelayBounds::new(ms(1), ms(6)).unwrap(),
        8,
        gen_update,
    );
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, move |i, j| {
        Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    })
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(10))
    .build();
    let run = engine.run().expect("well-formed object system");
    assert_eq!(run.stop, StopReason::Quiescent, "workload must finish");
    (n, params, run.execution)
}

#[test]
fn replicated_counter_is_linearizable_under_adversarial_clocks() {
    for seed in [5u64, 6, 7] {
        let (n, _params, exec) = run_object(Counter, seed, |node, k| {
            (node.0 as i64 + 1) * 1000 + i64::from(k)
        });
        let ops = extract_object_history::<Counter>(&app_trace_obj(&exec), n).unwrap();
        assert_eq!(ops.len(), n * 8);
        let verdict = check_object_linearizable(&Counter, &ops);
        assert!(verdict.holds(), "seed {seed}: {verdict}");
        // Every completed increment is reflected: no lost updates.
        let updates: i64 = ops
            .iter()
            .filter_map(|o| match &o.kind {
                psync_verify::ObjOpKind::Update(u) if o.responded.is_some() => Some(*u),
                _ => None,
            })
            .sum();
        assert!(updates != 0, "the workload must have incremented");
    }
}

#[test]
fn replicated_grow_set_is_linearizable_under_adversarial_clocks() {
    for seed in [11u64, 12] {
        let (n, _params, exec) = run_object(GrowSet, seed, |node, k| {
            u8::try_from(node.0 as u32 * 32 + (k % 32)).expect("element < 128")
        });
        let ops = extract_object_history::<GrowSet>(&app_trace_obj(&exec), n).unwrap();
        let verdict = check_object_linearizable(&GrowSet, &ops);
        assert!(verdict.holds(), "seed {seed}: {verdict}");
    }
}

#[test]
fn generalized_register_matches_the_specialized_formulas() {
    // The Register object through the generalized automaton: latencies
    // obey the Theorem 6.5 formulas (within the 2ε measurement slack).
    let (n, params, exec) = run_object(RegisterObj, 21, Value::unique);
    let ops = extract_object_history::<RegisterObj>(&app_trace_obj(&exec), n).unwrap();
    let verdict = check_object_linearizable(&RegisterObj, &ops);
    assert!(verdict.holds(), "{verdict}");

    let slop = ms(2); // 2ε
    for o in &ops {
        let Some(lat) = o.responded.map(|r| r - o.invoked) else {
            continue;
        };
        let formula = match o.kind {
            psync_verify::ObjOpKind::Query(_) => params.read_latency(),
            psync_verify::ObjOpKind::Update(_) => params.write_latency(),
        };
        assert!(
            (lat - formula).abs() <= slop,
            "latency {lat} vs formula {formula}"
        );
    }
}

#[test]
fn counter_semantics_final_query_sees_everything() {
    // Deterministic scripted run: three increments, fully settled, then a
    // query from each node — all must report the full total.
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);
    let params =
        RegisterParams::for_clock_model(&topo, physical, eps, ms(2), Duration::from_micros(100));
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmSObj::new(i, Counter, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|_| Box::new(PerfectClock) as Box<dyn ClockStrategy>)
        .collect();
    let t0 = Time::ZERO;
    let script: Vec<(Time, ObjOp<Counter>)> = vec![
        (
            t0 + ms(5),
            ObjOp::Do {
                node: NodeId(0),
                update: 1,
            },
        ),
        (
            t0 + ms(6),
            ObjOp::Do {
                node: NodeId(1),
                update: 10,
            },
        ),
        (
            t0 + ms(7),
            ObjOp::Do {
                node: NodeId(2),
                update: 100,
            },
        ),
        (t0 + ms(100), ObjOp::Query { node: NodeId(0) }),
        (t0 + ms(120), ObjOp::Query { node: NodeId(1) }),
        (t0 + ms(140), ObjOp::Query { node: NodeId(2) }),
    ];
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
        Box::new(MaxDelay)
    })
    .timed(Script::new(script, |op: &ObjOp<Counter>| op.is_response()))
    .horizon(t0 + ms(300))
    .build();
    let exec = engine.run().expect("well-formed").execution;
    let answers: Vec<i64> = app_trace_obj(&exec)
        .iter()
        .filter_map(|(a, _)| match a {
            SysAction::App(ObjOp::Answer { output, .. }) => Some(*output),
            _ => None,
        })
        .collect();
    assert_eq!(answers, vec![111, 111, 111]);
}
