//! Integration: the `solve` relation (Definition 2.10) checked with the
//! reusable conformance harness — Theorem 6.5 over an adversary grid, for
//! both the transformed Algorithm S and the baseline, in both the clock
//! and the MMT model.

use psync::prelude::*;
use psync_core::app_trace as extract_app_trace;
use psync_register::build_baseline;
use psync_verify::Conformance;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn adversarial(n: usize, eps: Duration, seed: u64) -> Vec<Box<dyn ClockStrategy>> {
    (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match (seed as usize + i) % 4 {
                0 => Box::new(OffsetClock::new(eps, eps)),
                1 => Box::new(OffsetClock::new(-eps, eps)),
                2 => Box::new(DriftClock::new(900)),
                _ => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
            }
        })
        .collect()
}

#[test]
fn transformed_s_solves_p_on_the_grid() {
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);
    let params =
        RegisterParams::for_clock_model(&topo, physical, eps, ms(2), Duration::from_micros(100));

    let harness = Conformance::new(
        move |seed| {
            let topo = Topology::complete(n);
            let algorithms = topo
                .nodes()
                .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
                .collect();
            let workload =
                ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(1), ms(6)).unwrap(), 6);
            build_dc(
                &topo,
                physical,
                eps,
                algorithms,
                adversarial(n, eps, seed),
                move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64)),
            )
            .timed(workload)
            .scheduler(RandomScheduler::new(seed))
            .horizon(Time::ZERO + Duration::from_secs(10))
            .build()
        },
        extract_app_trace,
    );

    let p = LinearizableRegister::new(n, Value::INITIAL);
    let report = harness.sweep(&p, 100..140);
    assert_eq!(report.runs, 40);
    assert!(
        report.conforms(),
        "seed {} violated: {}",
        report.counterexamples[0].seed,
        report.counterexamples[0].reason
    );
}

#[test]
fn baseline_solves_p_on_the_grid() {
    let n = 3;
    let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
    let eps = ms(1);

    let harness = Conformance::new(
        move |seed| {
            let topo = Topology::complete(n);
            let workload =
                ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(2), ms(8)).unwrap(), 6);
            build_baseline(
                &topo,
                physical,
                eps,
                adversarial(n, eps, seed),
                move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64)),
            )
            .timed(workload)
            .scheduler(RandomScheduler::new(seed))
            .horizon(Time::ZERO + Duration::from_secs(10))
            .build()
        },
        extract_app_trace,
    );

    let p = LinearizableRegister::new(n, Value::INITIAL);
    let report = harness.sweep(&p, 200..220);
    assert!(
        report.conforms(),
        "seed {} violated: {}",
        report.counterexamples[0].seed,
        report.counterexamples[0].reason
    );
}

#[test]
fn full_pipeline_solves_p_on_the_grid() {
    // Theorem 5.2 end to end, via the harness: D_M with seeded workloads.
    let n = 2;
    let physical = DelayBounds::new(ms(1), ms(4)).unwrap();
    let eps = Duration::from_micros(500);
    let ell = Duration::from_micros(200);
    let topo = Topology::complete(n);
    let params = RegisterParams {
        peers: topo.nodes().collect(),
        d2_virtual: physical.widen_composed(eps, n as i64, ell).max(),
        c: ms(1),
        delta: Duration::from_micros(50),
        read_slack: eps * 2,
    };

    let harness = Conformance::new(
        move |seed| {
            let topo = Topology::complete(n);
            let algorithms = topo
                .nodes()
                .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
                .collect();
            let configs = topo
                .nodes()
                .map(|_| DmNodeConfig {
                    ell,
                    step_policy: StepPolicy::Seeded(seed),
                    tick: TickConfig::honest(eps, ell),
                })
                .collect();
            let workload =
                ClosedLoopWorkload::new(&topo, seed, DelayBounds::new(ms(3), ms(9)).unwrap(), 4);
            build_dm(&topo, physical, algorithms, configs, move |i, j| {
                Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
            })
            .timed(workload)
            .scheduler(RandomScheduler::new(seed))
            .horizon(Time::ZERO + Duration::from_millis(400))
            .build()
        },
        extract_app_trace,
    );

    let p = LinearizableRegister::new(n, Value::INITIAL);
    let report = harness.sweep(&p, 300..310);
    assert!(
        report.conforms(),
        "seed {} violated: {}",
        report.counterexamples[0].seed,
        report.counterexamples[0].reason
    );
}
