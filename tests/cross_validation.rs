//! Cross-validation: independent pieces of the library must agree with
//! each other.
//!
//! * The generalized object checker, instantiated at `Register`, must
//!   decide exactly like the specialized register checker on translated
//!   histories (property-tested).
//! * The engine must be fully deterministic: identical configuration and
//!   seeds produce bitwise-identical executions.

use proptest::prelude::*;
use psync::prelude::*;
use psync_register::history::{OpKind, Operation};
use psync_register::object::Register as RegisterObj;
use psync_verify::{check_linearizable, check_object_linearizable, ObjOpKind, ObjOperation};

fn t(n: i64) -> Time {
    Time::ZERO + Duration::from_millis(n)
}

/// Translates a register history into the generalized representation.
fn translate(ops: &[Operation]) -> Vec<ObjOperation<RegisterObj>> {
    ops.iter()
        .map(|o| ObjOperation {
            node: o.node,
            kind: match o.kind {
                OpKind::Write { value } => ObjOpKind::Update(value),
                OpKind::Read { returned } => ObjOpKind::Query(returned),
            },
            invoked: o.invoked,
            responded: o.responded,
        })
        .collect()
}

fn history_strategy() -> impl Strategy<Value = Vec<Operation>> {
    let op = (0usize..3, 0i64..20, 1i64..6, 0u64..4, prop::bool::ANY);
    prop::collection::vec(op, 0..7).prop_map(|raw| {
        let mut next_free: Vec<i64> = vec![0; 3];
        let mut ops = Vec::new();
        for (node, start, len, val, is_read) in raw {
            let inv = next_free[node].max(start);
            let res = inv + len;
            next_free[node] = res + 1;
            let kind = if is_read {
                OpKind::Read {
                    returned: Value(val),
                }
            } else {
                OpKind::Write {
                    value: Value(val + 10),
                }
            };
            ops.push(Operation {
                node: NodeId(node),
                kind,
                invoked: t(inv),
                responded: Some(t(res)),
            });
        }
        ops.sort_by_key(|o| o.invoked);
        ops
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn generalized_checker_at_register_agrees_with_specialized(
        ops in history_strategy()
    ) {
        let specialized = check_linearizable(&ops, Value::INITIAL).holds();
        let generalized =
            check_object_linearizable(&RegisterObj, &translate(&ops)).holds();
        prop_assert_eq!(
            specialized,
            generalized,
            "checkers disagree on {:?}",
            ops
        );
    }
}

fn run_once(seed: u64) -> Execution<RegAction> {
    let n = 3;
    let topo = Topology::complete(n);
    let physical = DelayBounds::new(Duration::from_millis(1), Duration::from_millis(5)).unwrap();
    let eps = Duration::from_millis(1);
    let params = RegisterParams::for_clock_model(
        &topo,
        physical,
        eps,
        Duration::from_millis(2),
        Duration::from_micros(100),
    );
    let algorithms = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..n)
        .map(|i| Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)) as Box<dyn ClockStrategy>)
        .collect();
    let workload = ClosedLoopWorkload::new(
        &topo,
        seed,
        DelayBounds::new(Duration::from_millis(1), Duration::from_millis(6)).unwrap(),
        6,
    );
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, move |i, j| {
        Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64))
    })
    .timed(workload)
    .scheduler(RandomScheduler::new(seed))
    .horizon(Time::ZERO + Duration::from_secs(5))
    .build();
    engine.run().expect("well-formed").execution
}

#[test]
fn engine_runs_are_bitwise_deterministic() {
    for seed in [1u64, 99, 12345] {
        let a = run_once(seed);
        let b = run_once(seed);
        assert_eq!(
            a, b,
            "same seeds must give identical executions (seed {seed})"
        );
    }
    // And different seeds genuinely differ.
    assert_ne!(run_once(1).t_trace(), run_once(2).t_trace());
}
