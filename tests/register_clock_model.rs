//! Integration: Theorem 6.5 end-to-end.
//!
//! The transformed Algorithm S runs in the clock model (`D_C`) under
//! adversarial clocks, schedulers and delay policies; every run must be
//! linearizable, respect the latency formulas `read = 2ε + δ + c` /
//! `write = d₂ + 2ε − c`, and satisfy the constructive Theorem 4.7 check
//! (the `γ_α` witness is superlinearizable and `=_{ε,κ}`-close).

use psync::prelude::*;
use psync_register::history;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

struct Scenario {
    topo: Topology,
    physical: DelayBounds,
    eps: Duration,
    c: Duration,
    delta: Duration,
    seed: u64,
    ops_per_node: u32,
}

impl Scenario {
    fn params(&self) -> RegisterParams {
        RegisterParams::for_clock_model(&self.topo, self.physical, self.eps, self.c, self.delta)
    }

    /// Runs D_C with the given per-node clock strategies and returns the
    /// recorded execution.
    fn run(&self, strategies: Vec<Box<dyn ClockStrategy>>) -> Execution<RegAction> {
        let params = self.params();
        let algorithms = self
            .topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
            .collect();
        let seed = self.seed;
        let workload = ClosedLoopWorkload::new(
            &self.topo,
            seed,
            DelayBounds::new(ms(1), ms(8)).unwrap(),
            self.ops_per_node,
        );
        let mut engine = build_dc(
            &self.topo,
            self.physical,
            self.eps,
            algorithms,
            strategies,
            move |i, j| Box::new(SeededDelay::new(seed ^ ((i.0 as u64) << 8) ^ j.0 as u64)),
        )
        .timed(workload)
        .scheduler(RandomScheduler::new(seed))
        .horizon(Time::ZERO + Duration::from_secs(5))
        .build();
        let run = engine.run().expect("well-formed composition");
        assert_eq!(
            run.stop,
            StopReason::Quiescent,
            "workload must complete before the horizon"
        );
        run.execution
    }
}

fn adversarial_strategies(n: usize, eps: Duration, seed: u64) -> Vec<Box<dyn ClockStrategy>> {
    (0..n)
        .map(|i| -> Box<dyn ClockStrategy> {
            match i % 4 {
                0 => Box::new(OffsetClock::new(eps, eps)),  // fast corner
                1 => Box::new(OffsetClock::new(-eps, eps)), // slow corner
                2 => Box::new(RandomWalkClock::new(seed ^ i as u64, eps / 4)),
                _ => Box::new(DriftClock::new(500)),
            }
        })
        .collect()
}

fn check_run(scenario: &Scenario, exec: &Execution<RegAction>) {
    let n = scenario.topo.len();
    let trace = app_trace(exec);
    let ops = history::extract(&trace, n).expect("closed-loop workload respects alternation");
    assert_eq!(
        ops.len(),
        n * scenario.ops_per_node as usize,
        "all operations must complete"
    );

    // Theorem 6.5: linearizable.
    let verdict = check_linearizable(&ops, Value::INITIAL);
    assert!(verdict.holds(), "not linearizable: {verdict}");

    // Latency formulas. The engine runs the algorithm on *clock* time, so
    // real-time latencies deviate from the formulas by at most 2ε (the
    // invocation and the response are timed on a clock each within ε).
    let params = scenario.params();
    let two_eps = scenario.eps * 2;
    let (reads, writes) = history::latency_split(&ops);
    for r in &reads {
        assert!(
            (*r - params.read_latency()).abs() <= two_eps,
            "read latency {r} vs formula {}",
            params.read_latency()
        );
    }
    for w in &writes {
        assert!(
            (*w - params.write_latency()).abs() <= two_eps,
            "write latency {w} vs formula {}",
            params.write_latency()
        );
    }

    // Theorem 4.7, constructively: the γ_α witness satisfies Q (the
    // superlinearizable problem) and is =_{ε,κ} the recorded trace.
    let q = SuperlinearizableRegister::new(n, Value::INITIAL, two_eps);
    let classes = node_classes::<RegMsg, RegisterOp>(|op| Some(op.node()));
    let witness = check_sim1(exec, &q, scenario.eps, &classes)
        .unwrap_or_else(|e| panic!("Theorem 4.7 check failed: {e}"));
    assert!(
        witness.max_deviation <= scenario.eps,
        "trace distortion {} exceeds ε {}",
        witness.max_deviation,
        scenario.eps
    );
}

#[test]
fn perfect_clocks_three_nodes() {
    let scenario = Scenario {
        topo: Topology::complete(3),
        physical: DelayBounds::new(ms(2), ms(10)).unwrap(),
        eps: ms(1),
        c: ms(3),
        delta: Duration::from_micros(100),
        seed: 42,
        ops_per_node: 12,
    };
    let strategies = (0..3)
        .map(|_| Box::new(PerfectClock) as Box<dyn ClockStrategy>)
        .collect();
    let exec = scenario.run(strategies);
    check_run(&scenario, &exec);
}

#[test]
fn adversarial_clocks_three_nodes() {
    let scenario = Scenario {
        topo: Topology::complete(3),
        physical: DelayBounds::new(ms(2), ms(10)).unwrap(),
        eps: ms(1),
        c: ms(3),
        delta: Duration::from_micros(100),
        seed: 7,
        ops_per_node: 12,
    };
    let strategies = adversarial_strategies(3, scenario.eps, scenario.seed);
    let exec = scenario.run(strategies);
    check_run(&scenario, &exec);
}

#[test]
fn adversarial_clocks_five_nodes_many_seeds() {
    for seed in [1u64, 2, 3, 4, 5] {
        let scenario = Scenario {
            topo: Topology::complete(5),
            physical: DelayBounds::new(ms(1), ms(6)).unwrap(),
            eps: ms(1),
            c: ms(2),
            delta: Duration::from_micros(100),
            seed,
            ops_per_node: 8,
        };
        let strategies = adversarial_strategies(5, scenario.eps, seed);
        let exec = scenario.run(strategies);
        check_run(&scenario, &exec);
    }
}

#[test]
fn extreme_skew_with_tiny_network_delay() {
    // d₁ < 2ε: the receive buffers must engage (Section 7.2) and
    // linearizability must still hold.
    let scenario = Scenario {
        topo: Topology::complete(3),
        physical: DelayBounds::new(Duration::from_micros(100), ms(2)).unwrap(),
        eps: ms(2),
        c: ms(1),
        delta: Duration::from_micros(100),
        seed: 99,
        ops_per_node: 10,
    };
    let strategies = vec![
        Box::new(OffsetClock::new(ms(2), ms(2))) as Box<dyn ClockStrategy>,
        Box::new(OffsetClock::new(-ms(2), ms(2))),
        Box::new(PerfectClock),
    ];
    let exec = scenario.run(strategies);
    check_run(&scenario, &exec);

    // The buffering really engaged: some message was held.
    let flights = psync_core::analysis::flights(&exec);
    let held = flights
        .values()
        .filter_map(psync_core::analysis::Flight::hold_time)
        .filter(|h| h.is_positive())
        .count();
    assert!(
        held > 0,
        "with d₁ < 2ε and extreme skews, some messages must be buffered"
    );
}

#[test]
fn c_zero_and_c_max_extremes() {
    for c_ms in [0i64, 8] {
        let scenario = Scenario {
            topo: Topology::complete(3),
            physical: DelayBounds::new(ms(2), ms(8)).unwrap(),
            eps: ms(1),
            c: ms(c_ms),
            delta: Duration::from_micros(100),
            seed: 5,
            ops_per_node: 8,
        };
        let strategies = adversarial_strategies(3, scenario.eps, 11);
        let exec = scenario.run(strategies);
        check_run(&scenario, &exec);
    }
}
