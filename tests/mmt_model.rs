//! Integration: Theorems 5.1/5.2 end-to-end.
//!
//! The same clock-model node (Algorithm S transformed by Simulation 1) is
//! run twice: directly on the engine's clock nodes (`D_C`), and through
//! the MMT transformation `M(A^c, ℓ)` with `TICK` clock subsystems and
//! boundmap-scheduled steps (`D_M`). With an identical scripted workload
//! and delay adversary, the `D_M` trace must be the `D_C` trace with node
//! outputs shifted into the future by at most `kℓ + 2ε + 3ℓ` — and still
//! linearizable.

use psync::prelude::*;
use psync_core::output_classes;
use psync_register::history;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn us(n: i64) -> Duration {
    Duration::from_micros(n)
}

struct Pipeline {
    topo: Topology,
    physical: DelayBounds,
    eps: Duration,
    ell: Duration,
    k: i64,
    params: RegisterParams,
    script: Vec<(Time, RegisterOp)>,
}

impl Pipeline {
    fn new(n: usize) -> Pipeline {
        let topo = Topology::complete(n);
        let physical = DelayBounds::new(ms(1), ms(5)).unwrap();
        let eps = ms(1);
        let ell = us(200);
        // Burst of n−1 ESENDs per write plus the odd response: k = n is a
        // comfortable output-rate bound for the widely spaced script below.
        let k = n as i64;
        // Theorem 5.2: design against d'₂ = d₂ + 2ε + kℓ.
        let params = RegisterParams {
            peers: topo.nodes().collect(),
            d2_virtual: physical.widen_composed(eps, k, ell).max(),
            c: ms(2),
            delta: us(100),
            read_slack: eps * 2,
        };
        // Widely spaced operations: every response (even shifted) lands
        // long before the next invocation.
        let mut script = Vec::new();
        let mut t = Time::ZERO + ms(10);
        for round in 0..6u32 {
            for i in topo.nodes() {
                let op = if (round + i.0 as u32).is_multiple_of(2) {
                    RegisterOp::Write {
                        node: i,
                        value: Value::unique(i, round),
                    }
                } else {
                    RegisterOp::Read { node: i }
                };
                script.push((t, op));
                t += ms(40);
            }
        }
        Pipeline {
            topo,
            physical,
            eps,
            ell,
            k,
            params,
            script,
        }
    }

    fn algorithms(&self) -> Vec<NodeSpec<RegMsg, RegisterOp>> {
        self.topo
            .nodes()
            .map(|i| NodeSpec::new(i, AlgorithmS::new(i, self.params.clone())))
            .collect()
    }

    fn workload(&self) -> Script<RegMsg, RegisterOp> {
        Script::new(
            self.script
                .iter()
                .map(|(t, op)| (*t, op.clone()))
                .collect::<Vec<_>>(),
            |op: &RegisterOp| op.is_response(),
        )
    }

    fn horizon(&self) -> Time {
        self.script.last().unwrap().0 + ms(100)
    }

    fn run_dc(&self) -> Execution<RegAction> {
        let strategies = self
            .topo
            .nodes()
            .map(|_| Box::new(PerfectClock) as Box<dyn ClockStrategy>)
            .collect();
        let mut engine = build_dc(
            &self.topo,
            self.physical,
            self.eps,
            self.algorithms(),
            strategies,
            |_, _| Box::new(MaxDelay),
        )
        .timed(self.workload())
        .horizon(self.horizon())
        .build();
        engine.run().expect("D_C run").execution
    }

    fn run_dm(&self) -> Execution<RegAction> {
        let configs = self
            .topo
            .nodes()
            .map(|_| DmNodeConfig {
                ell: self.ell,
                step_policy: StepPolicy::Lazy,
                tick: TickConfig::honest(self.eps, self.ell),
            })
            .collect();
        let mut engine = build_dm(
            &self.topo,
            self.physical,
            self.algorithms(),
            configs,
            |_, _| Box::new(MaxDelay),
        )
        .timed(self.workload())
        .horizon(self.horizon())
        .build();
        engine.run().expect("D_M run").execution
    }

    fn shift_bound(&self) -> Duration {
        sim2_shift_bound(self.k, self.eps, self.ell)
    }
}

#[test]
fn dm_register_history_is_linearizable() {
    let p = Pipeline::new(3);
    let exec = p.run_dm();
    let trace = app_trace(&exec);
    let ops = history::extract(&trace, p.topo.len()).expect("well-formed");
    assert_eq!(ops.len(), p.script.len(), "every scripted op completes");
    let verdict = check_linearizable(&ops, Value::INITIAL);
    assert!(verdict.holds(), "D_M history not linearizable: {verdict}");
}

#[test]
fn dm_outputs_shift_at_most_kl_2e_3l_beyond_dc() {
    let p = Pipeline::new(3);
    let dc = app_trace(&p.run_dc());
    let dm = app_trace(&p.run_dm());
    let classes = output_classes::<RegMsg, RegisterOp>(|op| op.is_response().then(|| op.node()));
    let w = psync_core::check_sim2(&dc, &dm, p.shift_bound(), &classes)
        .unwrap_or_else(|e| panic!("Theorem 5.1 relation failed: {e}"));
    assert!(
        w.max_deviation.is_positive(),
        "the MMT machinery should introduce a real shift"
    );
    assert!(
        w.max_deviation <= p.shift_bound(),
        "shift {} exceeds bound {}",
        w.max_deviation,
        p.shift_bound()
    );
}

#[test]
fn dm_latencies_exceed_dc_by_bounded_amount() {
    let p = Pipeline::new(3);
    let dc_ops = history::extract(&app_trace(&p.run_dc()), p.topo.len()).unwrap();
    let dm_ops = history::extract(&app_trace(&p.run_dm()), p.topo.len()).unwrap();
    assert_eq!(dc_ops.len(), dm_ops.len());
    let bound = p.shift_bound();
    for (a, b) in dc_ops.iter().zip(&dm_ops) {
        assert_eq!(a.kind, b.kind, "same script, same operations");
        assert_eq!(a.invoked, b.invoked, "scripted invocations are identical");
        let (la, lb) = (a.latency().unwrap(), b.latency().unwrap());
        assert!(
            lb >= la,
            "MMT execution cannot respond earlier ({lb} < {la})"
        );
        assert!(
            lb - la <= bound,
            "latency inflation {} exceeds bound {bound}",
            lb - la
        );
    }
}

#[test]
fn dm_empirical_output_rate_within_k() {
    use psync_core::max_outputs_per_window;
    let p = Pipeline::new(3);
    let exec = p.run_dc();
    // Count *all* node outputs (responses and message sends, by clock
    // time) against the Lemma 4.3 window.
    let trace = exec
        .events()
        .iter()
        .filter(|e| e.kind == ActionKind::Output && e.clock.is_some())
        .map(|e| (e.action.clone(), e.clock.unwrap()))
        .collect::<Vec<_>>();
    for node in p.topo.nodes() {
        let mut times: Vec<Time> = trace
            .iter()
            .filter(|(a, _)| a.node(|op: &RegisterOp| Some(op.node())) == Some(node))
            .map(|(_, t)| *t)
            .collect();
        times.sort();
        let window = p.ell * p.k;
        let k_measured = max_outputs_per_window(&times, window);
        assert!(
            k_measured as i64 <= p.k,
            "node {node} emitted {k_measured} outputs within {window}, exceeding k = {}",
            p.k
        );
    }
}
