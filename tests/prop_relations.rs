//! Property tests for the trace relations `=_{ε,κ}` and `≤_{δ,K}`:
//! the structured matchers must agree with a brute-force search over all
//! bijections on small traces, and must accept exactly the perturbations
//! the definitions allow.

use proptest::prelude::*;
use psync_automata::relations::{delta_shifted, eps_equivalent, ClassMap};
use psync_automata::TimedTrace;
use psync_time::{Duration, Time};

/// Actions "a0".."c2": first letter = class (node), digit = payload.
fn action_strategy() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["a0", "a1", "a2", "b0", "b1", "b2", "c0", "c1", "c2"])
}

fn classes() -> ClassMap<&'static str> {
    ClassMap::by(|a: &&str| match a.chars().next() {
        Some('a') => Some(0),
        Some('b') => Some(1),
        Some('c') => Some(2),
        _ => None,
    })
}

fn class_of(a: &str) -> usize {
    match a.chars().next() {
        Some('a') => 0,
        Some('b') => 1,
        _ => 2,
    }
}

/// A small trace: up to 6 actions with times in 0..50 ms.
fn trace_strategy() -> impl Strategy<Value = TimedTrace<&'static str>> {
    prop::collection::vec((action_strategy(), 0i64..50), 0..6).prop_map(|mut pairs| {
        pairs.sort_by_key(|(_, t)| *t);
        pairs
            .into_iter()
            .map(|(a, t)| (a, Time::ZERO + Duration::from_millis(t)))
            .collect()
    })
}

/// Brute force: does any bijection witness `left =_{ε,κ} right`?
fn brute_force_eps(
    left: &TimedTrace<&'static str>,
    right: &TimedTrace<&'static str>,
    eps: Duration,
) -> bool {
    if left.len() != right.len() {
        return false;
    }
    let n = left.len();
    let mut perm: Vec<usize> = (0..n).collect();
    // Heap's algorithm over all permutations (n ≤ 6 → ≤ 720).
    #[allow(clippy::needless_range_loop)]
    fn ok(
        perm: &[usize],
        left: &TimedTrace<&'static str>,
        right: &TimedTrace<&'static str>,
        eps: Duration,
    ) -> bool {
        let n = perm.len();
        for i in 0..n {
            let (la, lt) = left.get(i).unwrap();
            let (ra, rt) = right.get(perm[i]).unwrap();
            if la != ra || lt.skew(rt) > eps {
                return false;
            }
        }
        // Per-class order preservation.
        for i in 0..n {
            for j in i + 1..n {
                let (ai, _) = left.get(i).unwrap();
                let (aj, _) = left.get(j).unwrap();
                if class_of(ai) == class_of(aj) && perm[i] > perm[j] {
                    return false;
                }
            }
        }
        true
    }
    fn heaps(
        k: usize,
        perm: &mut Vec<usize>,
        left: &TimedTrace<&'static str>,
        right: &TimedTrace<&'static str>,
        eps: Duration,
    ) -> bool {
        if k <= 1 {
            return ok(perm, left, right, eps);
        }
        for i in 0..k {
            if heaps(k - 1, perm, left, right, eps) {
                return true;
            }
            if k.is_multiple_of(2) {
                perm.swap(i, k - 1);
            } else {
                perm.swap(0, k - 1);
            }
        }
        false
    }
    heaps(n, &mut perm, left, right, eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn matcher_agrees_with_brute_force(
        left in trace_strategy(),
        right in trace_strategy(),
        eps_ms in 0i64..10,
    ) {
        let eps = Duration::from_millis(eps_ms);
        let fast = eps_equivalent(&left, &right, eps, &classes()).is_ok();
        let slow = brute_force_eps(&left, &right, eps);
        prop_assert_eq!(fast, slow, "matcher and brute force disagree");
    }

    #[test]
    fn perturbation_within_eps_always_accepted(
        base in trace_strategy(),
        shifts in prop::collection::vec(-3i64..=3, 0..6),
        eps_extra in 0i64..3,
    ) {
        // Shift every action by at most 3 ms (clamped at 0), keeping
        // per-class order by re-sorting *within* the global trace only if
        // monotone — we instead shift and re-sort globally, which keeps
        // per-class order whenever shifts preserve it; to stay sound we
        // just check the relation with ε = max shift used.
        let mut pairs: Vec<(&'static str, Time)> = base.iter().map(|(a, t)| (*a, t)).collect();
        let mut max_shift = 0i64;
        for (i, p) in pairs.iter_mut().enumerate() {
            let s = shifts.get(i).copied().unwrap_or(0);
            let shifted = (p.1.as_nanos() + s * 1_000_000).max(0);
            p.1 = Time::from_nanos(shifted).unwrap();
        }
        // Per-class monotonicity must be preserved for the relation to be
        // guaranteed; enforce it by sorting each class's times.
        for cls in 0..3usize {
            let mut times: Vec<Time> = pairs
                .iter()
                .filter(|(a, _)| class_of(a) == cls)
                .map(|(_, t)| *t)
                .collect();
            times.sort();
            let mut it = times.into_iter();
            for p in pairs.iter_mut().filter(|(a, _)| class_of(a) == cls) {
                p.1 = it.next().unwrap();
            }
        }
        // Recompute actual per-action deviation to get a valid ε.
        for (i, (_, t)) in pairs.iter().enumerate() {
            let (_, orig) = base.get(i).unwrap();
            max_shift = max_shift.max((t.as_nanos() - orig.as_nanos()).abs() / 1_000_000);
        }
        pairs.sort_by_key(|(_, t)| *t);
        let perturbed: TimedTrace<&'static str> = pairs.into_iter().collect();
        let eps = Duration::from_millis(max_shift + eps_extra);
        prop_assert!(
            eps_equivalent(&base, &perturbed, eps, &classes()).is_ok(),
            "perturbation within ε must be accepted"
        );
    }

    #[test]
    fn identity_is_always_related(base in trace_strategy()) {
        let w = eps_equivalent(&base, &base, Duration::ZERO, &classes()).unwrap();
        prop_assert_eq!(w.max_deviation, Duration::ZERO);
        prop_assert_eq!(w.matched, base.len());
        let w2 = delta_shifted(&base, &base, Duration::ZERO, &classes()).unwrap();
        prop_assert_eq!(w2.max_deviation, Duration::ZERO);
    }

    #[test]
    fn delta_shift_forward_accepted_backward_rejected(
        base in trace_strategy(),
        shift_ms in 1i64..5,
    ) {
        // Shift *class-a* actions forward uniformly; relation must hold
        // with δ = shift and fail with δ = shift − 1.
        let only_a = ClassMap::by(|a: &&str| (a.starts_with('a')).then_some(0));
        let shift = Duration::from_millis(shift_ms);
        let mut pairs: Vec<(&'static str, Time)> = base.iter().map(|(a, t)| (*a, t)).collect();
        for p in &mut pairs {
            if p.0.starts_with('a') {
                p.1 += shift;
            }
        }
        pairs.sort_by_key(|(_, t)| *t);
        let shifted: TimedTrace<&'static str> = pairs.into_iter().collect();
        prop_assert!(delta_shifted(&base, &shifted, shift, &only_a).is_ok());
        if base.iter().any(|(a, _)| a.starts_with('a')) {
            prop_assert!(
                delta_shifted(&base, &shifted, shift - Duration::from_millis(1), &only_a)
                    .is_err(),
                "undersized δ must be rejected"
            );
        }
    }

    #[test]
    fn eps_relation_is_symmetric(
        left in trace_strategy(),
        right in trace_strategy(),
        eps_ms in 0i64..10,
    ) {
        let eps = Duration::from_millis(eps_ms);
        let ab = eps_equivalent(&left, &right, eps, &classes()).is_ok();
        let ba = eps_equivalent(&right, &left, eps, &classes()).is_ok();
        prop_assert_eq!(ab, ba, "=_eps,kappa must be symmetric");
    }
}

/// Replay of the checked-in regression seed (see
/// `prop_relations.proptest-regressions`): the minimal exact-ε boundary —
/// one action whose deviation is exactly one tick over the bound. The
/// vendored proptest stub does not read regression files, so the shrunk
/// case is pinned here explicitly; if the full proptest crate is ever
/// dropped in, the seed file replays the same case through the generator.
#[test]
fn regression_exact_eps_boundary_single_action() {
    let t = |n: i64| Time::ZERO + Duration::from_millis(n);
    let left: TimedTrace<&'static str> = vec![("a0", t(0))].into_iter().collect();
    let right: TimedTrace<&'static str> = vec![("a0", t(9))].into_iter().collect();

    // The recorded failure shape: deviation 9 ms against ε = 8 ms. Both
    // the structured matcher and the brute-force bijection search reject.
    let under = Duration::from_millis(8);
    assert!(eps_equivalent(&left, &right, under, &classes()).is_err());
    assert!(!brute_force_eps(&left, &right, under));

    // On the line: a deviation of exactly ε is inside the relation...
    let eps = Duration::from_millis(9);
    let w = eps_equivalent(&left, &right, eps, &classes()).unwrap();
    assert_eq!(w.max_deviation, eps);
    assert_eq!(w.matched, 1);
    assert!(brute_force_eps(&left, &right, eps));

    // ...and one nanosecond under it is back outside.
    let tight = eps - Duration::NANOSECOND;
    assert!(eps_equivalent(&left, &right, tight, &classes()).is_err());
    assert!(!brute_force_eps(&left, &right, tight));
}
