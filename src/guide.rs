//! # Guide: writing and transforming your own algorithm
//!
//! This is a worked tour of the workflow the paper proposes, using a small
//! original algorithm. Read it top to bottom; every snippet below is
//! compiled and run by `cargo test`.
//!
//! ## The problem
//!
//! A *deadline alarm*: clients `ARM(id, deadline)` the alarm; the alarm
//! node must emit `FIRE(id)` at — not before — the requested time. A
//! time-service in miniature: the essence of "schedule the use of
//! resources" from the paper's introduction.
//!
//! ## Step 1 — design in the timed model
//!
//! In the timed automaton model you may read `now` directly and act at
//! exact times, so the algorithm is six lines of real logic. You implement
//! [`TimedComponent`](psync_automata::TimedComponent): `step` for
//! transitions, `enabled` for what may fire, and `deadline` for when `ν`
//! (time passage) must stop.
//!
//! ```
//! use psync::prelude::*;
//!
//! #[derive(Debug, Clone, PartialEq, Eq, Hash)]
//! pub enum AlarmOp {
//!     Arm { id: u32, at: Time },
//!     Fire { id: u32 },
//! }
//!
//! impl Action for AlarmOp {
//!     fn name(&self) -> &'static str {
//!         match self {
//!             AlarmOp::Arm { .. } => "ARM",
//!             AlarmOp::Fire { .. } => "FIRE",
//!         }
//!     }
//! }
//!
//! #[derive(Debug, Clone)]
//! pub struct Alarm;
//!
//! impl TimedComponent for Alarm {
//!     type Action = AlarmOp;
//!     type State = Vec<(u32, Time)>; // armed (id, deadline) pairs
//!
//!     fn name(&self) -> String {
//!         "alarm".into()
//!     }
//!     fn initial(&self) -> Self::State {
//!         Vec::new()
//!     }
//!     fn classify(&self, a: &AlarmOp) -> Option<ActionKind> {
//!         Some(match a {
//!             AlarmOp::Arm { .. } => ActionKind::Input,
//!             AlarmOp::Fire { .. } => ActionKind::Output,
//!         })
//!     }
//!     fn step(&self, s: &Self::State, a: &AlarmOp, now: Time) -> Option<Self::State> {
//!         let mut next = s.clone();
//!         match a {
//!             AlarmOp::Arm { id, at } => {
//!                 next.push((*id, *at));
//!                 Some(next)
//!             }
//!             AlarmOp::Fire { id } => {
//!                 let pos = next.iter().position(|(i, at)| i == id && *at <= now)?;
//!                 next.remove(pos);
//!                 Some(next)
//!             }
//!         }
//!     }
//!     fn enabled(&self, s: &Self::State, now: Time) -> Vec<AlarmOp> {
//!         s.iter()
//!             .filter(|(_, at)| *at <= now)
//!             .map(|(id, _)| AlarmOp::Fire { id: *id })
//!             .collect()
//!     }
//!     fn deadline(&self, s: &Self::State, _now: Time) -> Option<Time> {
//!         s.iter().map(|(_, at)| *at).min()
//!     }
//! }
//!
//! // ── Step 2: verify it in the simple model. ─────────────────────────
//! // Driving components directly is often simplest in unit tests:
//! let t = |n| Time::ZERO + Duration::from_millis(n);
//! let alarm = Alarm;
//! let s0 = alarm.initial();
//! let s1 = alarm.step(&s0, &AlarmOp::Arm { id: 1, at: t(30) }, t(0)).unwrap();
//! let s2 = alarm.step(&s1, &AlarmOp::Arm { id: 2, at: t(10) }, t(0)).unwrap();
//! // ν must stop at the earliest deadline…
//! assert_eq!(alarm.deadline(&s2, t(0)), Some(t(10)));
//! // …where exactly alarm 2 fires.
//! assert_eq!(alarm.enabled(&s2, t(10)), vec![AlarmOp::Fire { id: 2 }]);
//!
//! // ── Step 3: transform to the clock model, mechanically. ────────────
//! // `ClockSim` is Definition 4.1: the same component now runs against a
//! // node clock confined to |clock − now| ≤ ε. No algorithm changes.
//! let eps = Duration::from_millis(2);
//! let node = ClockNode::new("alarm-node", eps, OffsetClock::new(-eps, eps))
//!     .with(ClockSim::new(Alarm));
//! let mut engine = Engine::builder().clock_node(node).build();
//!
//! // Arm via the engine by injecting inputs with a driver component, or
//! // simpler: pre-arm by wrapping Alarm in a closure-configured variant.
//! // For this guide we check the *property* instead: run the probe suite
//! // to confirm the component obeys the axioms the engine relies on.
//! use psync::verify::axioms::{probe_timed, ProbeConfig};
//! probe_timed(&Alarm, &ProbeConfig::default()).expect("axioms hold");
//! ```
//!
//! ## Step 4 — what Theorem 4.7 buys you
//!
//! Without further proof effort, every guarantee you established in the
//! timed model transfers with an `ε` perturbation: fires may happen up to
//! `ε` early or late in real time (they happen at the exact *clock*
//! deadline). If "never early" matters — a real-time property — apply the
//! paper's second design technique: solve the stronger problem "fire at
//! `deadline + ε`" in the timed model, whose `ε`-perturbation still fires
//! at or after the requested time. That is exactly the pattern of
//! Algorithm S's `2ε` read slack (Section 6.2), the failure detector's
//! widened timeout, and the mutex guard bands in
//! [`psync_apps`].
//!
//! ## Step 5 — go fully realistic when needed
//!
//! [`MmtSim`](psync_core::MmtSim) (+ a
//! [`TickSource`](psync_mmt::TickSource) and
//! [`MmtAsTimed`](psync_mmt::MmtAsTimed)) carries the same component into
//! the MMT model — discrete clock readings, bounded step times — at the
//! cost of a further forward shift of outputs bounded by `kℓ + 2ε + 3ℓ`
//! (Theorem 5.1). `build_dm` assembles whole systems; see
//! `examples/mmt_pipeline.rs`.
//!
//! ## Checklist for your own components
//!
//! 1. `enabled` ⊆ what `step` accepts; inputs always accepted.
//! 2. `deadline` is the *latest* time `ν` may reach; keep all
//!    time-dependent state as absolute times and the default `advance` is
//!    correct.
//! 3. Run [`psync_verify::axioms::probe_timed`] /
//!    [`probe_clock`](psync_verify::axioms::probe_clock) in your tests.
//! 4. Replay recorded executions against fresh components with
//!    [`psync_verify::replay`] when debugging engine/component mismatches.
//! 5. Check whole-system properties over adversary grids with
//!    [`psync_verify::Conformance`].
