//! # psync — partially synchronized clocks
//!
//! A Rust implementation of Chaudhuri, Gawlick and Lynch, *Designing
//! Algorithms for Distributed Systems with Partially Synchronized Clocks*
//! (PODC 1993): the timed/clock/MMT automaton models, the two simulations
//! that transform algorithms from the idealized model to realistic ones,
//! and the linearizable read-write register application.
//!
//! This facade re-exports the workspace crates; see the README for the
//! architecture and each crate's docs for details:
//!
//! * [`time`] — exact time arithmetic ([`psync_time`]).
//! * [`automata`] — the timed and clock automaton models
//!   ([`psync_automata`]).
//! * [`executor`] — the deterministic discrete-event engine
//!   ([`psync_executor`]).
//! * [`net`] — topologies, channels and delay adversaries ([`psync_net`]).
//! * [`core`] — the paper's two simulations ([`psync_core`]).
//! * [`mmt`] — the MMT automaton model and clock subsystem
//!   ([`psync_mmt`]).
//! * [`register`] — the Section 6 register algorithms
//!   ([`psync_register`]).
//! * [`sync`] — measured clock synchronization: components that
//!   *achieve* a certified ε̂ over the `[d₁, d₂]` channels
//!   ([`psync_sync`]).
//! * [`verify`] — linearizability checkers and axiom probes
//!   ([`psync_verify`]).
//! * [`apps`] — further applications of the design techniques
//!   ([`psync_apps`]).
//!
//! # Quick start
//!
//! See `examples/quickstart.rs` for a hands-on start, the [`guide`]
//! module for a worked tour of writing and transforming your own
//! algorithm, and the crate docs of [`psync_core`] for the full
//! two-simulation pipeline.

#![forbid(unsafe_code)]

pub mod guide;

pub use psync_apps as apps;
pub use psync_automata as automata;
pub use psync_core as core;
pub use psync_executor as executor;
pub use psync_mmt as mmt;
pub use psync_net as net;
pub use psync_register as register;
pub use psync_sync as sync;
pub use psync_time as time;
pub use psync_verify as verify;

/// A convenience prelude importing the names most programs need.
pub mod prelude {
    pub use psync_automata::{
        Action, ActionKind, ClockComponent, ClockComposite, ClockPredicate, ComponentBox,
        Execution, Hidden, HiddenClock, Pair, Problem, Relabel, TimedComponent, TimedTrace,
        Verdict,
    };
    pub use psync_core::{
        app_trace, build_dc, build_dm, build_dt, check_sim1, check_sim2, node_classes,
        sim1_witness, sim2_shift_bound, ClockSim, DmNodeConfig, MmtSim, NodeSpec, RecvBuffer,
        SendBuffer,
    };
    pub use psync_executor::{
        ClockNode, ClockStrategy, DriftClock, Engine, FifoScheduler, OffsetClock, PerfectClock,
        RandomScheduler, RandomWalkClock, Run, Scheduler, StopReason,
    };
    pub use psync_mmt::{Boundmap, MmtComponent, StepPolicy, TickConfig, TickSource};
    pub use psync_net::{
        Channel, ClockChannel, DelayPolicy, DropNone, DropPolicy, DropSeeded, Envelope,
        FifoChannel, LossyChannel, MaxDelay, MinDelay, MsgId, NodeId, Script, SeededDelay,
        SysAction, Topology,
    };
    pub use psync_register::{
        AlgorithmS, AlgorithmSObj, BaselineParams, BaselineRegister, ClosedLoopWorkload, ObjAction,
        ObjOp, ObjWorkload, RegAction, RegMsg, RegisterOp, RegisterParams, Value,
    };
    pub use psync_sync::{
        build_sync_fleet, predicted_eps_hat, EpsHatOracle, FleetSpec, MeasuredEps, ProbeSync,
        RoundSync, SyncParams,
    };
    pub use psync_time::{DelayBounds, Duration, Time};
    pub use psync_verify::{
        check_linearizable, check_sequentially_consistent, check_superlinearizable, Conformance,
        LinearizableRegister, SuperlinearizableRegister,
    };
}
