//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few entry points it needs: a seedable
//! deterministic [`rngs::StdRng`], [`Rng::gen_range`] over integer ranges,
//! and [`Rng::gen_bool`]. The generator is a fixed splitmix64 chain —
//! statistically far weaker than the real `StdRng`, but every consumer in
//! this workspace only needs *reproducible* pseudo-randomness (seeded
//! schedulers, clock jitter, axiom probes), never cryptographic or
//! high-quality uniformity guarantees.
//!
//! Determinism contract: for a given seed, the sequence of values is fixed
//! forever. Changing it would silently re-randomize every seeded
//! experiment in the repo, so treat the update functions as frozen.

/// Random number generators.
pub mod rngs {
    /// Deterministic seedable generator (splitmix64 chain).
    ///
    /// Stands in for `rand::rngs::StdRng`; see the crate docs for the
    /// fidelity caveats.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014) — public-domain reference
        // constants.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<G: RngCore> Rng for G {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: usize = a.gen_range(0..10);
            assert_eq!(x, b.gen_range(0..10));
            assert!(x < 10);
        }
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<i64> = (0..20).map(|_| a.gen_range(-5i64..=5)).collect();
        let ys: Vec<i64> = (0..20).map(|_| c.gen_range(-5i64..=5)).collect();
        assert_ne!(xs, ys, "different seeds should diverge");
        assert!(xs.iter().all(|&v| (-5..=5).contains(&v)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(1);
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&heads), "got {heads} heads");
    }
}
