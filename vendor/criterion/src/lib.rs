//! Offline, dependency-free stand-in for the subset of the `criterion`
//! 0.5 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a small benchmarking harness with criterion's call
//! surface: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], `sample_size`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurements are real wall-clock timings (median of `sample_size`
//! samples, each sample auto-scaled to run ≥ ~5 ms), printed as
//! `<group>/<name>  time: <median>` in criterion-like format. There is no
//! statistical analysis, outlier rejection, HTML report, or baseline
//! comparison — numbers quoted in EXPERIMENTS.md come from this harness
//! and are directly comparable to each other, which is all the repo's
//! before/after claims require.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name, a parameter
/// rendering, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id labelled by the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    /// Converts to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last measurement.
    last: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, auto-scaling iteration counts so each sample
    /// runs long enough for the clock to resolve.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count taking ≥ ~5 ms per sample
        // (or a single call if one call is already that slow).
        let mut iters: u64 = 1;
        let per_sample = Duration::from_millis(5);
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= per_sample || iters >= 1 << 20 {
                break;
            }
            // Aim directly for the target with 2× headroom.
            let needed = (per_sample.as_nanos() * 2 / elapsed.as_nanos().max(1)) as u64;
            iters = (iters * needed.max(2)).min(1 << 20);
        }
        let mut samples: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                t0.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX)
            })
            .collect();
        samples.sort_unstable();
        self.last = Some(samples[samples.len() / 2]);
    }
}

fn render(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some(d) => println!("{}/{label}  time: [{}]", self.name, render(d)),
            None => println!("{}/{label}  (no measurement)", self.name),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.label, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 30,
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("").run(name, f);
        self
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $crate::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// Generates `main` running the given groups.
///
/// `cargo bench` and `cargo test` pass harness flags (`--bench`,
/// `--test`, filters); benchmarks run only under `--bench`, so that
/// `cargo test` does not spend minutes re-timing them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return; // invoked by `cargo test`: nothing to verify
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("eps", 64).label, "eps/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
