//! Offline, dependency-free stand-in for the subset of the `proptest` 1.x
//! API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the pieces its property tests need: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map`, integer-range / tuple /
//! `collection::vec` / `bool::ANY` / `sample::select` strategies,
//! [`ProptestConfig`], and the `prop_assert*` macros returning
//! [`test_runner::TestCaseError`].
//!
//! Differences from real proptest, deliberate and acceptable here:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assert
//!   message) but is not minimized.
//! * **Fixed derivation of randomness.** Each test's case stream is a pure
//!   function of the test's name, so runs are reproducible across
//!   invocations and machines (real proptest re-randomizes per run and
//!   persists failing seeds instead).

/// Test-runner types: configuration and case-level failure.
pub mod test_runner {
    use core::fmt;

    /// Why a single test case failed (or was rejected).
    ///
    /// Only the failure payload is modelled; rejection-based filtering is
    /// not used by this workspace.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a human-readable reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each test runs.
        pub cases: u32,
        /// Accepted for compatibility with real proptest configs; this
        /// runner never shrinks, so the value is unused.
        pub max_shrink_iters: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Deterministic per-test random stream (splitmix64 chain).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a generator from a test name via FNV-1a hashing.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            self.next_u64() % bound
        }
    }
}

pub use test_runner::Config as ProptestConfig;
pub use test_runner::TestCaseError;

/// Strategies: recipes for generating values.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value-tree/shrinking layer: a
    /// strategy is just a deterministic function of the random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).generate(rng)
                }
            }
        )*};
    }

    impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub use strategy::Strategy;

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy generating either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Admissible length ranges for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit value sets.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed list of values.
    ///
    /// # Panics
    ///
    /// [`Strategy::generate`] panics if `values` is empty.
    #[must_use]
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        Select { values }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.values.is_empty(), "select from empty list");
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

/// Everything a property-test file needs, mirroring proptest's prelude.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(expr)]           // optional
///     #[test]
///     fn name(arg in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@blocks ($config) $($rest)*);
    };
    (@blocks ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@blocks ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..10, y in 0u8..=4, b in prop::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            let _ = b;
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0usize..3, prop::bool::ANY), 1..5)
                .prop_map(|pairs| pairs.into_iter().map(|(i, _)| i).collect::<Vec<_>>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&i| i < 3));
        }
    }

    proptest! {
        #[test]
        fn select_draws_members(s in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&s));
        }
    }

    #[test]
    fn question_mark_propagates() {
        fn inner(ok: bool) -> Result<(), TestCaseError> {
            prop_assert!(ok, "refused");
            Ok(())
        }
        proptest! {
            #[test]
            fn body(flag in prop::bool::ANY) {
                inner(flag || !flag)?;
            }
        }
        body();
        assert!(inner(false).is_err());
    }
}
