//! A FIFO (order-preserving) channel variant.
//!
//! Footnote 4 of the paper: "Our results also hold for the case where
//! messages cannot be reordered." This channel refines Figure 1 by
//! delivering messages in send order: each message's delivery point is
//! pushed to at least the delivery point of every earlier message, which
//! stays inside the `[d₁, d₂]` envelope because sends are time-ordered
//! (`sendₖ + d₂` dominates every earlier message's latest delivery).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, TimedComponent, WakeHint};
use psync_time::{DelayBounds, Time};

use crate::{DelayPolicy, Envelope, NodeId, SysAction};

/// One in-flight message of a FIFO channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoInFlight<M> {
    /// The message.
    pub env: Envelope<M>,
    /// Real send time.
    pub sent_at: Time,
    /// Effective delivery point: the policy's choice, pushed forward to
    /// respect FIFO order.
    pub due: Time,
}

/// The order-preserving channel of footnote 4: like [`Channel`](crate::Channel)
/// but `RECVMSG` is only enabled for the *oldest* undelivered message.
pub struct FifoChannel<M, A> {
    from: NodeId,
    to: NodeId,
    bounds: DelayBounds,
    policy: Box<dyn DelayPolicy>,
    _marker: core::marker::PhantomData<fn() -> (M, A)>,
}

impl<M, A> FifoChannel<M, A> {
    /// Creates the FIFO channel for edge `from → to`.
    #[must_use]
    pub fn new(from: NodeId, to: NodeId, bounds: DelayBounds, policy: impl DelayPolicy) -> Self {
        FifoChannel {
            from,
            to,
            bounds,
            policy: Box::new(policy),
            _marker: core::marker::PhantomData,
        }
    }

    /// The edge's delay bounds `[d₁, d₂]`.
    #[must_use]
    pub fn bounds(&self) -> DelayBounds {
        self.bounds
    }

    fn routes(&self, env: &Envelope<M>) -> bool {
        env.src == self.from && env.dst == self.to
    }
}

impl<M, A> TimedComponent for FifoChannel<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = Vec<FifoInFlight<M>>;

    fn name(&self) -> String {
        format!("fifo-channel({}→{}, {})", self.from, self.to, self.bounds)
    }

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if self.routes(env) => Some(ActionKind::Input),
            SysAction::Recv(env) if self.routes(env) => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "RECVMSG"])
    }

    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State> {
        match a {
            SysAction::Send(env) if self.routes(env) => {
                let delay = self.policy.delay_for_dyn(env, now, self.bounds);
                assert!(
                    self.bounds.contains(delay),
                    "delay policy produced {delay} outside {}",
                    self.bounds
                );
                // FIFO: never deliver before the message ahead of us.
                let mut due = now + delay;
                if let Some(prev) = s.last() {
                    due = due.max(prev.due);
                }
                debug_assert!(due <= now + self.bounds.max());
                let mut next = s.clone();
                next.push(FifoInFlight {
                    env: env.clone(),
                    sent_at: now,
                    due,
                });
                Some(next)
            }
            SysAction::Recv(env) if self.routes(env) => {
                let front = s.first()?;
                if front.env != *env || front.due > now {
                    return None;
                }
                Some(s[1..].to_vec())
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        match s.first() {
            Some(f) if f.due <= now => vec![SysAction::Recv(f.env.clone())],
            _ => Vec::new(),
        }
    }

    fn deadline(&self, s: &Self::State, _now: Time) -> Option<Time> {
        s.first().map(|f| f.due)
    }

    fn wake_hint(&self, s: &Self::State, _now: Time) -> WakeHint {
        // Only the head can become deliverable, and only at its due time.
        match s.first() {
            Some(head) => WakeHint::At(head.due),
            None => WakeHint::Never,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgId, SeededDelay};
    use psync_time::Duration;

    type A = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn bounds() -> DelayBounds {
        DelayBounds::new(ms(1), ms(5)).unwrap()
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(id),
            payload: id as u32,
        }
    }

    #[test]
    fn delivers_strictly_in_send_order() {
        // Find a seed where message 2 would naturally overtake message 1.
        let policy = SeededDelay::new(11);
        let ch: FifoChannel<u32, &'static str> =
            FifoChannel::new(NodeId(0), NodeId(1), bounds(), policy);
        let mut s = ch.initial();
        for id in 1..=20 {
            s = ch.step(&s, &A::Send(env(id)), Time::ZERO).unwrap();
        }
        // Dues are non-decreasing regardless of the policy's choices.
        for w in s.windows(2) {
            assert!(w[0].due <= w[1].due, "FIFO order violated");
        }
        // Only the head is ever deliverable.
        let late = Time::ZERO + ms(5);
        assert_eq!(ch.enabled(&s, late), vec![A::Recv(env(1))]);
        assert!(ch.step(&s, &A::Recv(env(2)), late).is_none());
    }

    #[test]
    fn dues_stay_inside_the_envelope() {
        let policy = SeededDelay::new(3);
        let ch: FifoChannel<u32, &'static str> =
            FifoChannel::new(NodeId(0), NodeId(1), bounds(), policy);
        let mut s = ch.initial();
        let mut t = Time::ZERO;
        for id in 1..=50 {
            t += Duration::from_micros(300);
            s = ch.step(&s, &A::Send(env(id)), t).unwrap();
        }
        for f in &s {
            assert!(f.due >= f.sent_at + ms(1));
            assert!(
                f.due <= f.sent_at + ms(5),
                "FIFO push-forward left the envelope"
            );
        }
    }

    #[test]
    fn deadline_is_head_due() {
        let ch: FifoChannel<u32, &'static str> =
            FifoChannel::new(NodeId(0), NodeId(1), bounds(), crate::MaxDelay);
        let mut s = ch.initial();
        s = ch.step(&s, &A::Send(env(1)), Time::ZERO).unwrap();
        s = ch.step(&s, &A::Send(env(2)), Time::ZERO + ms(1)).unwrap();
        assert_eq!(ch.deadline(&s, Time::ZERO), Some(Time::ZERO + ms(5)));
        let s2 = ch.step(&s, &A::Recv(env(1)), Time::ZERO + ms(5)).unwrap();
        assert_eq!(ch.deadline(&s2, Time::ZERO), Some(Time::ZERO + ms(6)));
    }
}
