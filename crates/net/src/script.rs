//! A scripted environment automaton.

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, TimedComponent};
use psync_time::Time;

use crate::SysAction;

/// An environment automaton that emits predetermined application actions at
/// predetermined times.
///
/// The paper's systems are *closed*: the environment is just more automata
/// (problems constrain the traces, not a magic external driver). `Script`
/// is the simplest such environment — a fixed test scenario: it outputs
/// `App(aₖ)` at time `tₖ` for a given schedule, and silently accepts (as
/// inputs) any application actions matched by an `absorb` predicate, such
/// as the responses to its invocations.
///
/// # Examples
///
/// ```
/// use psync_net::Script;
/// use psync_time::{Duration, Time};
///
/// let t = |n| Time::ZERO + Duration::from_millis(n);
/// // Invoke "go" at 5 ms, absorb any "done" response.
/// let script: Script<u32, &'static str> =
///     Script::new([(t(5), "go")], |a: &&'static str| *a == "done");
/// ```
pub struct Script<M, A> {
    schedule: Vec<(Time, A)>,
    absorb: Box<dyn Fn(&A) -> bool>,
    _marker: core::marker::PhantomData<fn() -> M>,
}

impl<M, A: Clone> Script<M, A> {
    /// Creates a script from `(time, action)` pairs (sorted internally) and
    /// an absorption predicate for expected input actions.
    #[must_use]
    pub fn new(
        schedule: impl IntoIterator<Item = (Time, A)>,
        absorb: impl Fn(&A) -> bool + 'static,
    ) -> Self {
        let mut schedule: Vec<(Time, A)> = schedule.into_iter().collect();
        schedule.sort_by_key(|(t, _)| *t);
        Script {
            schedule,
            absorb: Box::new(absorb),
            _marker: core::marker::PhantomData,
        }
    }
}

/// How many scripted actions have been emitted.
pub type ScriptState = usize;

impl<M, A> TimedComponent for Script<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = ScriptState;

    fn name(&self) -> String {
        format!("script({} actions)", self.schedule.len())
    }

    fn initial(&self) -> ScriptState {
        0
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::App(app) => {
                if self.schedule.iter().any(|(_, s)| s == app) {
                    Some(ActionKind::Output)
                } else if (self.absorb)(app) {
                    Some(ActionKind::Input)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn step(&self, s: &ScriptState, a: &Self::Action, now: Time) -> Option<ScriptState> {
        match a {
            SysAction::App(app) => {
                if let Some((due, next)) = self.schedule.get(*s) {
                    if next == app && now >= *due {
                        return Some(s + 1);
                    }
                }
                if (self.absorb)(app) {
                    Some(*s)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &ScriptState, now: Time) -> Vec<Self::Action> {
        match self.schedule.get(*s) {
            Some((due, a)) if now >= *due => vec![SysAction::App(a.clone())],
            _ => Vec::new(),
        }
    }

    fn deadline(&self, s: &ScriptState, _now: Time) -> Option<Time> {
        self.schedule.get(*s).map(|(due, _)| *due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Duration;

    type S = Script<u32, &'static str>;
    type A = SysAction<u32, &'static str>;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    #[test]
    fn emits_in_time_order() {
        // Deliberately unsorted input.
        let s: S = Script::new([(t(9), "b"), (t(3), "a")], |_| false);
        assert_eq!(s.deadline(&0, Time::ZERO), Some(t(3)));
        assert!(s.enabled(&0, t(2)).is_empty());
        assert_eq!(s.enabled(&0, t(3)), vec![A::App("a")]);
        let s1 = s.step(&0, &A::App("a"), t(3)).unwrap();
        assert_eq!(s1, 1);
        assert_eq!(s.deadline(&s1, t(3)), Some(t(9)));
        let s2 = s.step(&s1, &A::App("b"), t(9)).unwrap();
        assert_eq!(s.deadline(&s2, t(9)), None);
        assert!(s.enabled(&s2, t(100)).is_empty());
    }

    #[test]
    fn absorbs_responses_without_advancing() {
        let s: S = Script::new([(t(3), "go")], |a| *a == "done");
        assert_eq!(s.classify(&A::App("done")), Some(ActionKind::Input));
        assert_eq!(s.step(&0, &A::App("done"), t(1)), Some(0));
        assert_eq!(s.classify(&A::App("unrelated")), None);
        assert_eq!(s.step(&0, &A::App("unrelated"), t(1)), None);
    }

    #[test]
    fn early_emission_refused() {
        let s: S = Script::new([(t(3), "go")], |_| false);
        assert!(s.step(&0, &A::App("go"), t(2)).is_none());
    }

    #[test]
    fn scripted_actions_classified_as_outputs() {
        let s: S = Script::new([(t(3), "go")], |_| false);
        assert_eq!(s.classify(&A::App("go")), Some(ActionKind::Output));
        assert_eq!(
            s.classify(&A::Tau {
                node: crate::NodeId(0)
            }),
            None
        );
    }
}
