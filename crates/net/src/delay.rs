//! Delay adversaries: where inside `[d₁, d₂]` each message lands.
//!
//! The channel automaton of Figure 1 is nondeterministic: a message sent at
//! `t` may be delivered at any time in `[t + d₁, t + d₂]`. A [`DelayPolicy`]
//! resolves that nondeterminism per message, *deterministically*: the
//! policy is a pure function of the message's identity and send time, so a
//! run is reproducible from its seeds. Because distinct messages may be
//! assigned delays in any order, reordering (which the paper's reliable
//! channels permit, Section 2.4) arises naturally.

use psync_time::{DelayBounds, Duration, Time};

use crate::{Envelope, MsgId, NodeId};

/// Chooses the delivery delay of one message, inside the channel's bounds.
pub trait DelayPolicy: 'static {
    /// The delay for the message with identity `id` from `src` to `dst`,
    /// sent at `sent_at`. Must lie in `bounds`; the channel asserts it.
    fn delay(
        &self,
        src: NodeId,
        dst: NodeId,
        id: MsgId,
        sent_at: Time,
        bounds: DelayBounds,
    ) -> Duration;

    /// Convenience: the delay for an envelope.
    fn delay_for<M>(&self, env: &Envelope<M>, sent_at: Time, bounds: DelayBounds) -> Duration
    where
        Self: Sized,
    {
        self.delay(env.src, env.dst, env.id, sent_at, bounds)
    }
}

impl DelayPolicy for Box<dyn DelayPolicy> {
    fn delay(
        &self,
        src: NodeId,
        dst: NodeId,
        id: MsgId,
        sent_at: Time,
        bounds: DelayBounds,
    ) -> Duration {
        (**self).delay(src, dst, id, sent_at, bounds)
    }
}

impl dyn DelayPolicy {
    /// Object-safe variant of [`DelayPolicy::delay_for`].
    pub(crate) fn delay_for_dyn<M>(
        &self,
        env: &Envelope<M>,
        sent_at: Time,
        bounds: DelayBounds,
    ) -> Duration {
        self.delay(env.src, env.dst, env.id, sent_at, bounds)
    }
}

/// Every message takes exactly `d₁` — the fastest network the model allows.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinDelay;

impl DelayPolicy for MinDelay {
    fn delay(&self, _: NodeId, _: NodeId, _: MsgId, _: Time, bounds: DelayBounds) -> Duration {
        bounds.min()
    }
}

/// Every message takes exactly `d₂` — the slowest network the model allows.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxDelay;

impl DelayPolicy for MaxDelay {
    fn delay(&self, _: NodeId, _: NodeId, _: MsgId, _: Time, bounds: DelayBounds) -> Duration {
        bounds.max()
    }
}

/// A seeded pseudo-random delay per message, uniform over `[d₁, d₂]` and a
/// pure function of `(seed, message id)` — reproducible jitter that also
/// exercises reordering.
#[derive(Debug, Clone, Copy)]
pub struct SeededDelay {
    seed: u64,
}

impl SeededDelay {
    /// Creates the policy from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededDelay { seed }
    }
}

/// SplitMix64: a small, high-quality 64-bit mixer (public domain).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DelayPolicy for SeededDelay {
    fn delay(
        &self,
        src: NodeId,
        dst: NodeId,
        id: MsgId,
        _sent_at: Time,
        bounds: DelayBounds,
    ) -> Duration {
        let width = bounds.width().as_nanos();
        if width == 0 {
            return bounds.min();
        }
        let h = splitmix64(self.seed ^ splitmix64(id.0) ^ ((src.0 as u64) << 48) ^ (dst.0 as u64));
        let offset = (h % (width as u64 + 1)) as i64;
        bounds.min() + Duration::from_nanos(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> DelayBounds {
        DelayBounds::new(Duration::from_millis(1), Duration::from_millis(5)).unwrap()
    }

    #[test]
    fn min_and_max_hit_the_extremes() {
        assert_eq!(
            MinDelay.delay(NodeId(0), NodeId(1), MsgId(1), Time::ZERO, bounds()),
            Duration::from_millis(1)
        );
        assert_eq!(
            MaxDelay.delay(NodeId(0), NodeId(1), MsgId(1), Time::ZERO, bounds()),
            Duration::from_millis(5)
        );
    }

    #[test]
    fn seeded_delay_is_in_bounds_and_deterministic() {
        let p = SeededDelay::new(99);
        for i in 0..500 {
            let d = p.delay(NodeId(0), NodeId(1), MsgId(i), Time::ZERO, bounds());
            assert!(bounds().contains(d), "delay {d} out of bounds");
            let again = p.delay(NodeId(0), NodeId(1), MsgId(i), Time::ZERO, bounds());
            assert_eq!(d, again);
        }
    }

    #[test]
    fn seeded_delay_varies_across_messages() {
        let p = SeededDelay::new(7);
        let delays: Vec<Duration> = (0..50)
            .map(|i| p.delay(NodeId(0), NodeId(1), MsgId(i), Time::ZERO, bounds()))
            .collect();
        let first = delays[0];
        assert!(
            delays.iter().any(|d| *d != first),
            "500 identical delays is not jitter"
        );
    }

    #[test]
    fn seeded_delay_on_degenerate_interval() {
        let exact = DelayBounds::exact(Duration::from_millis(3));
        let p = SeededDelay::new(1);
        assert_eq!(
            p.delay(NodeId(0), NodeId(1), MsgId(4), Time::ZERO, exact),
            Duration::from_millis(3)
        );
    }

    #[test]
    fn delay_for_uses_envelope_identity() {
        let p = SeededDelay::new(5);
        let env = Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(10),
            payload: (),
        };
        assert_eq!(
            p.delay_for(&env, Time::ZERO, bounds()),
            p.delay(NodeId(0), NodeId(1), MsgId(10), Time::ZERO, bounds())
        );
    }
}
