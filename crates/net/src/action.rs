//! The shared action alphabet of all three system models.

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::Action;
use psync_time::Time;

use crate::{Envelope, NodeId};

/// The action alphabet of a psync distributed system, generic over the
/// message payload type `M` and the application action type `A`.
///
/// One enum serves all three models, so that a node algorithm written
/// against the timed model composes unchanged with channels, buffers, clock
/// subsystems and the MMT machinery:
///
/// * [`SysAction::App`] — algorithm-specific visible/internal actions
///   (invocations, responses, internal updates). The paper's only
///   constraint is `acts(A_i) ∩ acts(A_j) = {ν}` for `i ≠ j` (Section 3.1),
///   which the application type enforces by carrying node ids.
/// * [`SysAction::Send`] / [`SysAction::Recv`] — the `SENDMSG_i(j, m)` /
///   `RECVMSG_j(i, m)` edge interface of the timed model (Section 3.1).
/// * [`SysAction::ESend`] / [`SysAction::ERecv`] — the clock model's
///   `ESENDMSG_i(j, (m, c))` / `ERECVMSG_j(i, (m, c))` interface, carrying
///   the sender's clock stamp `c` (Section 4.1).
/// * [`SysAction::Tick`] — the MMT clock subsystem's `TICK(c)` output
///   (Section 5.2).
/// * [`SysAction::Tau`] — the MMT transformation's internal catch-up action
///   `τ` (Definition 5.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SysAction<M, A> {
    /// An application (algorithm-level) action.
    App(A),
    /// `SENDMSG_src(dst, m)` — timed-model send.
    Send(Envelope<M>),
    /// `RECVMSG_dst(src, m)` — timed-model receive.
    Recv(Envelope<M>),
    /// `ESENDMSG_src(dst, (m, c))` — clock-model send, stamped with the
    /// sender's clock.
    ESend(Envelope<M>, Time),
    /// `ERECVMSG_dst(src, (m, c))` — clock-model receive of a stamped
    /// message.
    ERecv(Envelope<M>, Time),
    /// `TICK(c)` at `node` — the MMT clock subsystem reports clock value
    /// `clock`.
    Tick {
        /// The node whose clock ticked.
        node: NodeId,
        /// The reported clock value (within `ε` of real time).
        clock: Time,
    },
    /// `τ` at `node` — the MMT transformation's internal catch-up step.
    Tau {
        /// The node performing the catch-up.
        node: NodeId,
    },
}

impl<M, A> SysAction<M, A> {
    /// The node this action belongs to (in the sense of the paper's action
    /// partition: `SENDMSG_i` belongs to `i`, `RECVMSG_j` to `j`), given a
    /// resolver for application actions.
    ///
    /// Used to build the `κ = {uacts(A_1), …, uacts(A_n)}` class map of the
    /// `=_{ε,κ}` relation (Section 4.3).
    pub fn node(&self, app_node: impl Fn(&A) -> Option<NodeId>) -> Option<NodeId> {
        match self {
            SysAction::App(a) => app_node(a),
            SysAction::Send(env) | SysAction::ESend(env, _) => Some(env.src),
            SysAction::Recv(env) | SysAction::ERecv(env, _) => Some(env.dst),
            SysAction::Tick { node, .. } | SysAction::Tau { node } => Some(*node),
        }
    }

    /// The application action inside, if any.
    pub fn as_app(&self) -> Option<&A> {
        match self {
            SysAction::App(a) => Some(a),
            _ => None,
        }
    }
}

impl<M, A> Action for SysAction<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    fn name(&self) -> &'static str {
        match self {
            SysAction::App(a) => a.name(),
            SysAction::Send(_) => "SENDMSG",
            SysAction::Recv(_) => "RECVMSG",
            SysAction::ESend(_, _) => "ESENDMSG",
            SysAction::ERecv(_, _) => "ERECVMSG",
            SysAction::Tick { .. } => "TICK",
            SysAction::Tau { .. } => "TAU",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MsgId;
    use psync_time::Duration;

    type S = SysAction<u32, &'static str>;

    fn env() -> Envelope<u32> {
        Envelope {
            src: NodeId(1),
            dst: NodeId(2),
            id: MsgId(1),
            payload: 5,
        }
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(S::Send(env()).name(), "SENDMSG");
        assert_eq!(S::Recv(env()).name(), "RECVMSG");
        assert_eq!(S::ESend(env(), Time::ZERO).name(), "ESENDMSG");
        assert_eq!(S::ERecv(env(), Time::ZERO).name(), "ERECVMSG");
        assert_eq!(
            S::Tick {
                node: NodeId(0),
                clock: Time::ZERO
            }
            .name(),
            "TICK"
        );
        assert_eq!(S::Tau { node: NodeId(0) }.name(), "TAU");
        assert_eq!(S::App("READ").name(), "READ");
    }

    #[test]
    fn node_attribution() {
        let f = |_: &&'static str| Some(NodeId(9));
        assert_eq!(S::Send(env()).node(f), Some(NodeId(1)));
        assert_eq!(S::Recv(env()).node(f), Some(NodeId(2)));
        assert_eq!(
            S::ESend(env(), Time::ZERO + Duration::from_millis(1)).node(f),
            Some(NodeId(1))
        );
        assert_eq!(S::ERecv(env(), Time::ZERO).node(f), Some(NodeId(2)));
        assert_eq!(S::App("x").node(f), Some(NodeId(9)));
        assert_eq!(S::Tau { node: NodeId(4) }.node(f), Some(NodeId(4)));
    }

    #[test]
    fn as_app_projects() {
        assert_eq!(S::App("x").as_app(), Some(&"x"));
        assert_eq!(S::Send(env()).as_app(), None);
    }
}
