//! The clock-model channel automaton `E^c_{ij,[d₁,d₂]}` (Section 4.1).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, TimedComponent};
use psync_time::{DelayBounds, Time};

use crate::{DelayPolicy, Envelope, NodeId, SysAction};

/// One in-flight stamped message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlightStamped<M> {
    /// The message.
    pub env: Envelope<M>,
    /// Sender's clock stamp `c` — the second component of the message pair
    /// `(m, c)`.
    pub stamp: Time,
    /// Policy-chosen delivery time.
    pub due: Time,
}

/// The clock-model channel: identical to the timed channel of Figure 1
/// except that messages come from `M × ℜ⁺` (payload plus sender clock
/// stamp) and the interface actions are renamed `ESENDMSG` / `ERECVMSG`
/// (Section 4.1).
///
/// The channel itself remains a *timed* automaton — real networks do not
/// read node clocks — so delays are still measured in real time.
pub struct ClockChannel<M, A> {
    from: NodeId,
    to: NodeId,
    bounds: DelayBounds,
    policy: Box<dyn DelayPolicy>,
    _marker: core::marker::PhantomData<fn() -> (M, A)>,
}

impl<M, A> ClockChannel<M, A> {
    /// Creates the clock-model channel for edge `from → to`.
    #[must_use]
    pub fn new(from: NodeId, to: NodeId, bounds: DelayBounds, policy: impl DelayPolicy) -> Self {
        ClockChannel {
            from,
            to,
            bounds,
            policy: Box::new(policy),
            _marker: core::marker::PhantomData,
        }
    }

    /// The edge's delay bounds `[d₁, d₂]`.
    #[must_use]
    pub fn bounds(&self) -> DelayBounds {
        self.bounds
    }

    fn routes(&self, env: &Envelope<M>) -> bool {
        env.src == self.from && env.dst == self.to
    }
}

impl<M, A> TimedComponent for ClockChannel<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = Vec<InFlightStamped<M>>;

    fn name(&self) -> String {
        format!("clock-channel({}→{}, {})", self.from, self.to, self.bounds)
    }

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::ESend(env, _) if self.routes(env) => Some(ActionKind::Input),
            SysAction::ERecv(env, _) if self.routes(env) => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["ESENDMSG", "ERECVMSG"])
    }

    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State> {
        match a {
            SysAction::ESend(env, stamp) if self.routes(env) => {
                let delay = self.policy.delay_for_dyn(env, now, self.bounds);
                assert!(
                    self.bounds.contains(delay),
                    "delay policy produced {delay} outside {}",
                    self.bounds
                );
                let mut next = s.clone();
                next.push(InFlightStamped {
                    env: env.clone(),
                    stamp: *stamp,
                    due: now + delay,
                });
                Some(next)
            }
            SysAction::ERecv(env, stamp) if self.routes(env) => {
                let pos = s
                    .iter()
                    .position(|f| f.env == *env && f.stamp == *stamp && f.due <= now)?;
                let mut next = s.clone();
                next.remove(pos);
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        s.iter()
            .filter(|f| f.due <= now)
            .map(|f| SysAction::ERecv(f.env.clone(), f.stamp))
            .collect()
    }

    fn deadline(&self, s: &Self::State, _now: Time) -> Option<Time> {
        s.iter().map(|f| f.due).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxDelay, MsgId};
    use psync_time::Duration;

    type A = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(id),
            payload: id as u32,
        }
    }

    #[test]
    fn stamp_travels_with_the_message() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let ch: ClockChannel<u32, &'static str> =
            ClockChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay);
        let stamp = Time::ZERO + ms(99); // sender's clock, unrelated to now
        let t0 = Time::ZERO + ms(10);
        let s1 = ch
            .step(&ch.initial(), &A::ESend(env(1), stamp), t0)
            .unwrap();
        let due = t0 + ms(3);
        assert_eq!(ch.enabled(&s1, due), vec![A::ERecv(env(1), stamp)]);
        // A receive with the wrong stamp is not this message.
        assert!(ch.step(&s1, &A::ERecv(env(1), Time::ZERO), due).is_none());
        let s2 = ch.step(&s1, &A::ERecv(env(1), stamp), due).unwrap();
        assert!(s2.is_empty());
    }

    #[test]
    fn plain_send_recv_not_in_signature() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let ch: ClockChannel<u32, &'static str> =
            ClockChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay);
        assert_eq!(ch.classify(&A::Send(env(1))), None);
        assert_eq!(ch.classify(&A::Recv(env(1))), None);
        assert_eq!(
            ch.classify(&A::ESend(env(1), Time::ZERO)),
            Some(ActionKind::Input)
        );
    }

    #[test]
    fn delay_is_measured_in_real_time_not_stamp() {
        let bounds = DelayBounds::new(ms(2), ms(2)).unwrap();
        let ch: ClockChannel<u32, &'static str> =
            ClockChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay);
        let t0 = Time::ZERO + ms(5);
        let far_future_stamp = Time::ZERO + ms(1000);
        let s1 = ch
            .step(&ch.initial(), &A::ESend(env(1), far_future_stamp), t0)
            .unwrap();
        assert_eq!(ch.deadline(&s1, t0), Some(t0 + ms(2)));
    }
}
