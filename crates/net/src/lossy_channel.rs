//! A lossy channel — an *extension beyond the paper*.
//!
//! The paper assumes reliable channels and explicitly defers faults to
//! future work (Section 7.3: "it appears that the results will extend to
//! cases involving faulty nodes and also faulty message channels").
//! `LossyChannel` provides the faulty-channel half of that extension
//! point: a Figure 1 channel that drops a policy-chosen subset of
//! messages. It exists so the test suite can demonstrate *which*
//! guarantees depend on reliability (the register algorithms' updates are
//! fire-and-forget, so losses break freshness — see
//! `tests/fault_extension.rs`).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, TimedComponent, WakeHint};
use psync_time::{DelayBounds, Time};

use crate::channel::InFlight;
use crate::{DelayPolicy, Envelope, MsgId, NodeId, SysAction};

/// Decides which messages a [`LossyChannel`] drops. Pure per-message
/// function, so runs stay reproducible.
pub trait DropPolicy: 'static {
    /// `true` to drop the message with identity `id` sent at `sent_at`.
    fn drops(&self, src: NodeId, dst: NodeId, id: MsgId, sent_at: Time) -> bool;
}

/// Drops nothing — a [`LossyChannel`] with this policy is a plain channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropNone;

impl DropPolicy for DropNone {
    fn drops(&self, _: NodeId, _: NodeId, _: MsgId, _: Time) -> bool {
        false
    }
}

/// Drops each message independently with probability `percent`/100,
/// seeded and pure in the message identity.
#[derive(Debug, Clone, Copy)]
pub struct DropSeeded {
    seed: u64,
    percent: u8,
}

impl DropSeeded {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    #[must_use]
    pub fn new(seed: u64, percent: u8) -> Self {
        assert!(percent <= 100, "drop percentage over 100");
        DropSeeded { seed, percent }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DropPolicy for DropSeeded {
    fn drops(&self, src: NodeId, dst: NodeId, id: MsgId, _sent_at: Time) -> bool {
        let h = splitmix64(self.seed ^ splitmix64(id.0) ^ ((src.0 as u64) << 40) ^ dst.0 as u64);
        (h % 100) < u64::from(self.percent)
    }
}

/// A channel that silently drops a subset of its messages (extension
/// point for the paper's future-work fault model).
pub struct LossyChannel<M, A> {
    from: NodeId,
    to: NodeId,
    bounds: DelayBounds,
    delay: Box<dyn DelayPolicy>,
    drop: Box<dyn DropPolicy>,
    _marker: core::marker::PhantomData<fn() -> (M, A)>,
}

impl<M, A> LossyChannel<M, A> {
    /// Creates the lossy channel for edge `from → to`.
    #[must_use]
    pub fn new(
        from: NodeId,
        to: NodeId,
        bounds: DelayBounds,
        delay: impl DelayPolicy,
        drop: impl DropPolicy,
    ) -> Self {
        LossyChannel {
            from,
            to,
            bounds,
            delay: Box::new(delay),
            drop: Box::new(drop),
            _marker: core::marker::PhantomData,
        }
    }

    fn routes(&self, env: &Envelope<M>) -> bool {
        env.src == self.from && env.dst == self.to
    }
}

impl<M, A> TimedComponent for LossyChannel<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = Vec<InFlight<M>>;

    fn name(&self) -> String {
        format!("lossy-channel({}→{}, {})", self.from, self.to, self.bounds)
    }

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if self.routes(env) => Some(ActionKind::Input),
            SysAction::Recv(env) if self.routes(env) => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "RECVMSG"])
    }

    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State> {
        match a {
            SysAction::Send(env) if self.routes(env) => {
                if self.drop.drops(env.src, env.dst, env.id, now) {
                    // The message vanishes: accepted (inputs always are)
                    // but never buffered.
                    return Some(s.clone());
                }
                let delay = self.delay.delay_for_dyn(env, now, self.bounds);
                assert!(self.bounds.contains(delay));
                let mut next = s.clone();
                next.push(InFlight {
                    env: env.clone(),
                    sent_at: now,
                    due: now + delay,
                });
                Some(next)
            }
            SysAction::Recv(env) if self.routes(env) => {
                let pos = s.iter().position(|f| f.env == *env && f.due <= now)?;
                let mut next = s.clone();
                next.remove(pos);
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        s.iter()
            .filter(|f| f.due <= now)
            .map(|f| SysAction::Recv(f.env.clone()))
            .collect()
    }

    fn deadline(&self, s: &Self::State, _now: Time) -> Option<Time> {
        s.iter().map(|f| f.due).min()
    }

    fn wake_hint(&self, s: &Self::State, _now: Time) -> WakeHint {
        // Drops happen at send time (`step`), so in-flight contents — and
        // with them enabledness and the deadline — are frozen until the
        // earliest due time.
        match s.iter().map(|f| f.due).min() {
            Some(due) => WakeHint::At(due),
            None => WakeHint::Never,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaxDelay;
    use psync_time::Duration;

    type A = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(id),
            payload: 0,
        }
    }

    #[test]
    fn drop_none_behaves_like_plain_channel() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let ch: LossyChannel<u32, &'static str> =
            LossyChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay, DropNone);
        let s = ch
            .step(&ch.initial(), &A::Send(env(1)), Time::ZERO)
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(ch.enabled(&s, Time::ZERO + ms(3)), vec![A::Recv(env(1))]);
    }

    #[test]
    fn dropped_messages_vanish_silently() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        // 100% drop: every send is accepted, nothing is buffered.
        let ch: LossyChannel<u32, &'static str> = LossyChannel::new(
            NodeId(0),
            NodeId(1),
            bounds,
            MaxDelay,
            DropSeeded::new(1, 100),
        );
        let mut s = ch.initial();
        for id in 0..10 {
            s = ch.step(&s, &A::Send(env(id)), Time::ZERO).unwrap();
        }
        assert!(s.is_empty());
        assert_eq!(ch.deadline(&s, Time::ZERO), None);
    }

    #[test]
    fn seeded_drop_rate_is_roughly_right_and_deterministic() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let policy = DropSeeded::new(42, 30);
        let dropped: Vec<bool> = (0..1000)
            .map(|i| policy.drops(NodeId(0), NodeId(1), MsgId(i), Time::ZERO))
            .collect();
        let count = dropped.iter().filter(|d| **d).count();
        assert!(
            (200..400).contains(&count),
            "drop rate {count}/1000 far from 30%"
        );
        let again: Vec<bool> = (0..1000)
            .map(|i| policy.drops(NodeId(0), NodeId(1), MsgId(i), Time::ZERO))
            .collect();
        assert_eq!(dropped, again);
        let _ = bounds;
    }

    #[test]
    #[should_panic(expected = "over 100")]
    fn over_100_percent_rejected() {
        let _ = DropSeeded::new(1, 101);
    }
}
