//! Network substrate for the psync workspace.
//!
//! The paper models a distributed system as a graph `(V, E)` of nodes
//! connected by unidirectional links, each link being an automaton
//! `E_{ij,[d₁,d₂]}` delivering every message within `[d₁, d₂]` of real time
//! but possibly reordering messages (Sections 2.4 and 3.2). This crate
//! provides that machinery:
//!
//! * [`NodeId`], [`MsgId`], [`Envelope`] — message identity. The paper
//!   assumes each message sent is *unique* (Section 3); [`MsgId`]s make
//!   that literal.
//! * [`Topology`] — the graph, with the usual constructors (complete,
//!   ring, line, star).
//! * [`SysAction`] — the action alphabet shared by every model: the
//!   `SENDMSG`/`RECVMSG` edge interface of the timed model (Section 3.1),
//!   the tagged `ESENDMSG`/`ERECVMSG` interface of the clock model
//!   (Section 4.1), and the `TICK`/`τ` actions of the MMT model
//!   (Section 5).
//! * [`Channel`] — the timed channel automaton of Figure 1; [`ClockChannel`]
//!   — its clock-model renaming carrying `(m, c)` pairs (Section 4.1).
//! * [`DelayPolicy`] — the delay adversary choosing each message's delivery
//!   point inside `[d₁, d₂]` ([`MinDelay`], [`MaxDelay`], [`SeededDelay`]).
//! * [`Script`] — a scripted environment that injects application actions
//!   at predetermined times (the "environment automaton" of a closed
//!   system).
//!
//! # Example: a message through a channel
//!
//! ```
//! use psync_automata::{ActionKind, TimedComponent};
//! use psync_net::{Channel, Envelope, MaxDelay, MsgId, NodeId, SysAction};
//! use psync_time::{DelayBounds, Duration, Time};
//!
//! type A = SysAction<&'static str, &'static str>;
//! let bounds = DelayBounds::new(Duration::from_millis(1), Duration::from_millis(4))?;
//! let ch: Channel<&'static str, &'static str> =
//!     Channel::new(NodeId(0), NodeId(1), bounds, MaxDelay);
//!
//! let env = Envelope { src: NodeId(0), dst: NodeId(1), id: MsgId(1), payload: "hello" };
//! let s0 = ch.initial();
//! let s1 = ch.step(&s0, &A::Send(env.clone()), Time::ZERO).expect("channels accept sends");
//! // MaxDelay delivers at exactly d₂ = 4 ms.
//! assert_eq!(ch.deadline(&s1, Time::ZERO), Some(Time::ZERO + Duration::from_millis(4)));
//! # Ok::<(), psync_time::TimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod channel;
mod clock_channel;
mod delay;
mod fault_channel;
mod fifo_channel;
mod lossy_channel;
mod message;
mod script;
mod topology;

pub use action::SysAction;
pub use channel::{Channel, InFlight};
pub use clock_channel::{ClockChannel, InFlightStamped};
pub use delay::{DelayPolicy, MaxDelay, MinDelay, SeededDelay};
pub use fault_channel::{ChannelFault, FaultChannel, FaultStats, NoChannelFaults};
pub use fifo_channel::{FifoChannel, FifoInFlight};
pub use lossy_channel::{DropNone, DropPolicy, DropSeeded, LossyChannel};
pub use message::{Envelope, MsgId, NodeId};
pub use script::Script;
pub use topology::Topology;
