//! Distributed-system topologies: the graph `(V, E)` of Section 2.4.

use crate::NodeId;

/// The topology of a distributed system: `n` nodes and a set of directed
/// edges. An edge `(i, j)` means node `i` can send to node `j` over a
/// dedicated unidirectional link (Section 2.4 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl Topology {
    /// Builds a topology from explicit directed edges.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, endpoints out of range, or duplicate edges.
    #[must_use]
    pub fn new(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let edges: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        for &(a, b) in &edges {
            assert!(
                a.0 < n && b.0 < n,
                "edge ({a}, {b}) out of range for {n} nodes"
            );
            assert_ne!(
                a, b,
                "self-loop at {a}: nodes do not message themselves via links"
            );
        }
        for (i, e) in edges.iter().enumerate() {
            assert!(
                !edges[i + 1..].contains(e),
                "duplicate edge ({}, {})",
                e.0,
                e.1
            );
        }
        Topology { n, edges }
    }

    /// The complete directed graph on `n` nodes — the topology the register
    /// algorithms of Section 6 assume (every node broadcasts updates to
    /// every other).
    #[must_use]
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::with_capacity(n * n.saturating_sub(1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    edges.push((NodeId(i), NodeId(j)));
                }
            }
        }
        Topology { n, edges }
    }

    /// A bidirectional ring: each node linked to its successor and
    /// predecessor modulo `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least two nodes");
        let mut edges = Vec::with_capacity(2 * n);
        for i in 0..n {
            let j = (i + 1) % n;
            edges.push((NodeId(i), NodeId(j)));
            edges.push((NodeId(j), NodeId(i)));
        }
        if n == 2 {
            edges.truncate(2); // avoid duplicate (0,1)/(1,0) pairs
        }
        Topology { n, edges }
    }

    /// A bidirectional line `0 ↔ 1 ↔ … ↔ n−1`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn line(n: usize) -> Self {
        assert!(n >= 2, "a line needs at least two nodes");
        let mut edges = Vec::with_capacity(2 * (n - 1));
        for i in 0..n - 1 {
            edges.push((NodeId(i), NodeId(i + 1)));
            edges.push((NodeId(i + 1), NodeId(i)));
        }
        Topology { n, edges }
    }

    /// A bidirectional star with node 0 at the center.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "a star needs at least two nodes");
        let mut edges = Vec::with_capacity(2 * (n - 1));
        for i in 1..n {
            edges.push((NodeId(0), NodeId(i)));
            edges.push((NodeId(i), NodeId(0)));
        }
        Topology { n, edges }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when there are no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// The directed edges.
    #[must_use]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// `true` when the edge `from → to` exists.
    #[must_use]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edges.contains(&(from, to))
    }

    /// Nodes that `from` can send to.
    pub fn out_neighbors(&self, from: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(move |(a, _)| *a == from)
            .map(|(_, b)| *b)
    }

    /// Unordered pairs `{i, j}` (reported with `i < j`) linked in *both*
    /// directions — the symmetric channels a probe/echo exchange needs.
    /// On a complete graph this is every pair; on a line or star only
    /// the adjacent ones.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |i| {
            (i + 1..self.n).filter_map(move |j| {
                let (a, b) = (NodeId(i), NodeId(j));
                (self.has_edge(a, b) && self.has_edge(b, a)).then_some((a, b))
            })
        })
    }

    /// Nodes that can send to `to`.
    pub fn in_neighbors(&self, to: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges
            .iter()
            .filter(move |(_, b)| *b == to)
            .map(|(a, _)| *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_all_ordered_pairs() {
        let t = Topology::complete(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.edges().len(), 6);
        assert!(t.has_edge(NodeId(0), NodeId(2)));
        assert!(t.has_edge(NodeId(2), NodeId(0)));
        assert!(!t.has_edge(NodeId(1), NodeId(1)));
    }

    #[test]
    fn ring_wraps_around() {
        let t = Topology::ring(4);
        assert!(t.has_edge(NodeId(3), NodeId(0)));
        assert!(t.has_edge(NodeId(0), NodeId(3)));
        assert_eq!(t.edges().len(), 8);
    }

    #[test]
    fn two_node_ring_has_two_edges() {
        let t = Topology::ring(2);
        assert_eq!(t.edges().len(), 2);
        assert!(t.has_edge(NodeId(0), NodeId(1)));
        assert!(t.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn line_has_no_wraparound() {
        let t = Topology::line(3);
        assert!(t.has_edge(NodeId(0), NodeId(1)));
        assert!(t.has_edge(NodeId(1), NodeId(2)));
        assert!(!t.has_edge(NodeId(0), NodeId(2)));
        assert!(!t.has_edge(NodeId(2), NodeId(0)));
    }

    #[test]
    fn star_routes_through_center() {
        let t = Topology::star(4);
        assert_eq!(t.out_neighbors(NodeId(0)).count(), 3);
        assert_eq!(t.out_neighbors(NodeId(2)).count(), 1);
        assert_eq!(t.in_neighbors(NodeId(0)).count(), 3);
    }

    #[test]
    fn neighbors_enumerate_correctly() {
        let t = Topology::complete(3);
        let outs: Vec<NodeId> = t.out_neighbors(NodeId(1)).collect();
        assert_eq!(outs, vec![NodeId(0), NodeId(2)]);
        let ins: Vec<NodeId> = t.in_neighbors(NodeId(1)).collect();
        assert_eq!(ins, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn pairs_are_unordered_bidirectional_links() {
        let complete: Vec<_> = Topology::complete(3).pairs().collect();
        assert_eq!(
            complete,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2))
            ]
        );
        let line: Vec<_> = Topology::line(3).pairs().collect();
        assert_eq!(line, vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        // A one-way edge is not a pair.
        let oneway = Topology::new(2, [(NodeId(0), NodeId(1))]);
        assert_eq!(oneway.pairs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let _ = Topology::new(2, [(NodeId(0), NodeId(0))]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Topology::new(2, [(NodeId(0), NodeId(5))]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edges_rejected() {
        let _ = Topology::new(2, [(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1))]);
    }
}
