//! A plan-driven fault channel — the channel half of the fault-injection
//! explorer's admissible adversary.
//!
//! Where [`LossyChannel`](crate::LossyChannel) drops messages by a seeded
//! probability, `FaultChannel` asks a [`ChannelFault`] for the *exact
//! delivery dispositions* of each message: deliver once with the base
//! policy's delay, deliver several copies (duplication), deliver with a
//! specific in-bounds delay (a spike), or not at all (a drop). Every
//! disposition is a pure function of the message identity, so executions
//! stay bit-for-bit reproducible — the property the explorer's replay
//! artifacts depend on.
//!
//! The channel still asserts every chosen delay against its `[d₁, d₂]`
//! bounds: a fault plan cannot smuggle an out-of-envelope delivery past
//! the admissibility check (Definition 2.2's channel automaton is only a
//! Figure 1 channel while delays respect the bounds).

use core::cell::Cell;
use core::fmt::Debug;
use core::hash::Hash;
use std::rc::Rc;

use psync_automata::{Action, ActionKind, TimedComponent};
use psync_time::{DelayBounds, Duration, Time};

use crate::channel::InFlight;
use crate::{DelayPolicy, Envelope, MsgId, NodeId, SysAction};

/// Shared-handle fault counters for one [`FaultChannel`] (the
/// `ScriptedClock::rejections` idiom): clone the handle out of
/// [`FaultChannel::stats`] before moving the channel into an engine, read
/// it after the run. Counters tick inside `step`, which the engines call
/// exactly once per fired action, so the counts are exact per execution.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    sends: Rc<Cell<u64>>,
    delivered: Rc<Cell<u64>>,
    dropped: Rc<Cell<u64>>,
    duplicated: Rc<Cell<u64>>,
    spiked: Rc<Cell<u64>>,
}

impl FaultStats {
    fn bump(cell: &Cell<u64>) {
        cell.set(cell.get() + 1);
    }

    /// Messages accepted via `SENDMSG`.
    #[must_use]
    pub fn sends(&self) -> u64 {
        self.sends.get()
    }

    /// Copies handed over via `RECVMSG`.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// Sends the fault plan turned into zero deliveries.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Sends the fault plan turned into two or more copies.
    #[must_use]
    pub fn duplicated(&self) -> u64 {
        self.duplicated.get()
    }

    /// Sends where the fault plan overrode the base policy's delay for a
    /// single copy (a delay spike).
    #[must_use]
    pub fn spiked(&self) -> u64 {
        self.spiked.get()
    }

    /// All five counters as `[sends, delivered, dropped, duplicated,
    /// spiked]` — a checkpointable value for
    /// [`FaultStats::set_values`].
    #[must_use]
    pub fn values(&self) -> [u64; 5] {
        [
            self.sends.get(),
            self.delivered.get(),
            self.dropped.get(),
            self.duplicated.get(),
            self.spiked.get(),
        ]
    }

    /// Overwrites all five counters with values captured by
    /// [`FaultStats::values`] — rewinds the stats alongside an engine
    /// checkpoint restore, through this handle's own cells (every clone of
    /// the handle sees the rewound counts).
    pub fn set_values(&self, values: [u64; 5]) {
        self.sends.set(values[0]);
        self.delivered.set(values[1]);
        self.dropped.set(values[2]);
        self.duplicated.set(values[3]);
        self.spiked.set(values[4]);
    }
}

/// Decides how a [`FaultChannel`] delivers each message. Pure per-message
/// function of the message identity, so runs stay reproducible.
pub trait ChannelFault: 'static {
    /// The delivery delays for message `id` sent at `sent_at` on edge
    /// `src → dst`, or `None` to defer to the channel's base delay policy
    /// (one copy, policy-chosen delay).
    ///
    /// `Some(vec![])` drops the message; `Some(vec![d])` delivers one copy
    /// after `d`; longer vectors deliver duplicates. Every returned delay
    /// must lie within `bounds` — the channel asserts it.
    fn deliveries(
        &self,
        src: NodeId,
        dst: NodeId,
        id: MsgId,
        sent_at: Time,
        bounds: DelayBounds,
    ) -> Option<Vec<Duration>>;
}

/// No faults: every message defers to the base delay policy. A
/// [`FaultChannel`] with this fault is a plain channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoChannelFaults;

impl ChannelFault for NoChannelFaults {
    fn deliveries(
        &self,
        _: NodeId,
        _: NodeId,
        _: MsgId,
        _: Time,
        _: DelayBounds,
    ) -> Option<Vec<Duration>> {
        None
    }
}

/// A channel whose drops, duplications and delay spikes are dictated by a
/// [`ChannelFault`] plan (extension point for the paper's future-work
/// fault model, Section 7.3).
pub struct FaultChannel<M, A> {
    from: NodeId,
    to: NodeId,
    bounds: DelayBounds,
    delay: Box<dyn DelayPolicy>,
    fault: Box<dyn ChannelFault>,
    stats: FaultStats,
    _marker: core::marker::PhantomData<fn() -> (M, A)>,
}

impl<M, A> FaultChannel<M, A> {
    /// Creates the fault channel for edge `from → to`. `delay` chooses
    /// delays for unfaulted messages; `fault` overrides dispositions
    /// per message.
    #[must_use]
    pub fn new(
        from: NodeId,
        to: NodeId,
        bounds: DelayBounds,
        delay: impl DelayPolicy,
        fault: impl ChannelFault,
    ) -> Self {
        FaultChannel {
            from,
            to,
            bounds,
            delay: Box::new(delay),
            fault: Box::new(fault),
            stats: FaultStats::default(),
            _marker: core::marker::PhantomData,
        }
    }

    /// A shared handle onto this channel's fault counters. Clone it before
    /// moving the channel into an engine and read it after the run.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    fn routes(&self, env: &Envelope<M>) -> bool {
        env.src == self.from && env.dst == self.to
    }
}

impl<M, A> TimedComponent for FaultChannel<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = Vec<InFlight<M>>;

    fn name(&self) -> String {
        format!("fault-channel({}→{}, {})", self.from, self.to, self.bounds)
    }

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if self.routes(env) => Some(ActionKind::Input),
            SysAction::Recv(env) if self.routes(env) => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "RECVMSG"])
    }

    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State> {
        match a {
            SysAction::Send(env) if self.routes(env) => {
                let planned = self
                    .fault
                    .deliveries(env.src, env.dst, env.id, now, self.bounds);
                FaultStats::bump(&self.stats.sends);
                match planned.as_deref() {
                    Some([]) => FaultStats::bump(&self.stats.dropped),
                    Some([_, _, ..]) => FaultStats::bump(&self.stats.duplicated),
                    Some([_]) => FaultStats::bump(&self.stats.spiked),
                    None => {}
                }
                let delays = planned
                    .unwrap_or_else(|| vec![self.delay.delay_for_dyn(env, now, self.bounds)]);
                let mut next = s.clone();
                for delay in delays {
                    assert!(
                        self.bounds.contains(delay),
                        "fault plan chose delay {delay} outside {}",
                        self.bounds
                    );
                    next.push(InFlight {
                        env: env.clone(),
                        sent_at: now,
                        due: now + delay,
                    });
                }
                Some(next)
            }
            SysAction::Recv(env) if self.routes(env) => {
                let pos = s.iter().position(|f| f.env == *env && f.due <= now)?;
                FaultStats::bump(&self.stats.delivered);
                let mut next = s.clone();
                next.remove(pos);
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        s.iter()
            .filter(|f| f.due <= now)
            .map(|f| SysAction::Recv(f.env.clone()))
            .collect()
    }

    fn deadline(&self, s: &Self::State, _now: Time) -> Option<Time> {
        s.iter().map(|f| f.due).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaxDelay;

    type A = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(id),
            payload: 0,
        }
    }

    struct Script;
    impl ChannelFault for Script {
        fn deliveries(
            &self,
            _: NodeId,
            _: NodeId,
            id: MsgId,
            _: Time,
            bounds: DelayBounds,
        ) -> Option<Vec<Duration>> {
            match id.0 {
                0 => Some(vec![]),                           // drop
                1 => Some(vec![bounds.min(), bounds.max()]), // duplicate
                2 => Some(vec![bounds.max()]),               // spike
                _ => None,                                   // defer to base
            }
        }
    }

    #[test]
    fn dispositions_drop_duplicate_spike_and_defer() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let ch: FaultChannel<u32, &'static str> =
            FaultChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay, Script);
        let mut s = ch.initial();
        for id in 0..4 {
            s = ch.step(&s, &A::Send(env(id)), Time::ZERO).unwrap();
        }
        // id 0 dropped, id 1 duplicated: 2 + 1 + 1 copies in flight.
        assert_eq!(s.len(), 4);
        // First copy of the duplicate is due at d₁.
        assert_eq!(ch.deadline(&s, Time::ZERO), Some(Time::ZERO + ms(1)));
        // At d₂ everything is deliverable; both duplicate copies appear.
        let at = Time::ZERO + ms(3);
        let recv1 = ch
            .enabled(&s, at)
            .iter()
            .filter(|a| matches!(a, A::Recv(e) if e.id == MsgId(1)))
            .count();
        assert_eq!(recv1, 2);
        // Receiving consumes one copy at a time.
        let s = ch.step(&s, &A::Recv(env(1)), at).unwrap();
        assert_eq!(s.len(), 3);
        let s = ch.step(&s, &A::Recv(env(1)), at).unwrap();
        assert_eq!(s.len(), 2);
        assert!(ch.step(&s, &A::Recv(env(1)), at).is_none());
    }

    #[test]
    fn no_faults_is_a_plain_channel() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let ch: FaultChannel<u32, &'static str> =
            FaultChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay, NoChannelFaults);
        let s = ch
            .step(&ch.initial(), &A::Send(env(9)), Time::ZERO)
            .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(ch.enabled(&s, Time::ZERO + ms(3)), vec![A::Recv(env(9))]);
    }

    #[test]
    fn stats_count_dispositions_and_deliveries() {
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let ch: FaultChannel<u32, &'static str> =
            FaultChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay, Script);
        let stats = ch.stats();
        let mut s = ch.initial();
        for id in 0..4 {
            s = ch.step(&s, &A::Send(env(id)), Time::ZERO).unwrap();
        }
        assert_eq!(stats.sends(), 4);
        assert_eq!(stats.dropped(), 1); // id 0
        assert_eq!(stats.duplicated(), 1); // id 1
        assert_eq!(stats.spiked(), 1); // id 2
        assert_eq!(stats.delivered(), 0);
        let at = Time::ZERO + ms(3);
        let s = ch.step(&s, &A::Recv(env(1)), at).unwrap();
        let _ = ch.step(&s, &A::Recv(env(1)), at).unwrap();
        // A refused Recv (no copy left) must not count as a delivery.
        assert!(ch.step(&s, &A::Recv(env(0)), at).is_none());
        assert_eq!(stats.delivered(), 2);
        assert_eq!(stats.sends(), 4, "receives do not re-count sends");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_disposition_is_rejected() {
        struct Bad;
        impl ChannelFault for Bad {
            fn deliveries(
                &self,
                _: NodeId,
                _: NodeId,
                _: MsgId,
                _: Time,
                bounds: DelayBounds,
            ) -> Option<Vec<Duration>> {
                Some(vec![bounds.max() + Duration::NANOSECOND])
            }
        }
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let ch: FaultChannel<u32, &'static str> =
            FaultChannel::new(NodeId(0), NodeId(1), bounds, MaxDelay, Bad);
        let _ = ch.step(&ch.initial(), &A::Send(env(0)), Time::ZERO);
    }
}
