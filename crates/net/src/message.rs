//! Message identity: nodes, message ids, envelopes.

use core::fmt;

/// Identifies a node of the distributed system — an index into the
/// topology's vertex set `V = {v_1 … v_n}` (Section 2.4), zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A globally unique message identifier.
///
/// The paper simplifies its proofs by assuming "each message sent is
/// unique, i.e. the same message cannot be sent twice in a given execution"
/// (Section 3). Components allocate a fresh `MsgId` per send (typically
/// from a counter in their own state combined with their node id), making
/// the assumption hold by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl MsgId {
    /// Packs a `(node, counter)` pair into a unique id: node-local counters
    /// yield globally unique ids.
    #[must_use]
    pub fn from_parts(node: NodeId, counter: u32) -> MsgId {
        MsgId(((node.0 as u64) << 32) | u64::from(counter))
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A routed, uniquely identified message: the `m` of `SENDMSG_i(j, m)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope<M> {
    /// Sending node (`i`).
    pub src: NodeId,
    /// Receiving node (`j`).
    pub dst: NodeId,
    /// Unique id, making the paper's message-uniqueness assumption literal.
    pub id: MsgId,
    /// Application payload.
    pub payload: M,
}

impl<M: fmt::Debug> fmt::Display for Envelope<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}→{} {} {:?}",
            self.src, self.dst, self.id, self.payload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_from_parts_is_injective_across_nodes() {
        let a = MsgId::from_parts(NodeId(1), 7);
        let b = MsgId::from_parts(NodeId(2), 7);
        let c = MsgId::from_parts(NodeId(1), 8);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(MsgId(9).to_string(), "m9");
        let env = Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(5),
            payload: 42u32,
        };
        assert_eq!(env.to_string(), "n0→n1 m5 42");
    }
}
