//! The timed channel automaton `E_{ij,[d₁,d₂]}` (Figure 1).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, TimedComponent, WakeHint};
use psync_time::{DelayBounds, Time};

use crate::{DelayPolicy, Envelope, NodeId, SysAction};

/// One in-flight message: an element of the channel's buffer `b_{ij}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InFlight<M> {
    /// The message.
    pub env: Envelope<M>,
    /// Real time of the `SENDMSG` (the `t` stored in the buffer `b_{ij}`).
    pub sent_at: Time,
    /// Policy-chosen delivery time, in `[sent_at + d₁, sent_at + d₂]`.
    pub due: Time,
}

/// The channel automaton of Figure 1: the edge `e_{i,j}` with delay bounds
/// `[d₁, d₂]`.
///
/// * `SENDMSG_i(j, m)` (input) appends `(m, now)` to the buffer, with a
///   policy-chosen delivery point inside the delay envelope.
/// * `RECVMSG_j(i, m)` (output) is enabled once the delivery point is
///   reached (always within `[t + d₁, t + d₂]`).
/// * `ν` is blocked from passing any undelivered message's delivery point
///   (Figure 1 blocks at `t + d₂`; choosing the policy's point instead is a
///   refinement — every behavior is one the paper's channel allows).
///
/// Messages with different delivery points reorder freely, matching the
/// paper's reordering channels (Section 2.4).
pub struct Channel<M, A> {
    from: NodeId,
    to: NodeId,
    bounds: DelayBounds,
    policy: Box<dyn DelayPolicy>,
    _marker: core::marker::PhantomData<fn() -> A>,
    _marker_m: core::marker::PhantomData<fn() -> M>,
}

impl<M, A> Channel<M, A> {
    /// Creates the channel for edge `from → to` with the given delay bounds
    /// and delay adversary.
    #[must_use]
    pub fn new(from: NodeId, to: NodeId, bounds: DelayBounds, policy: impl DelayPolicy) -> Self {
        Channel {
            from,
            to,
            bounds,
            policy: Box::new(policy),
            _marker: core::marker::PhantomData,
            _marker_m: core::marker::PhantomData,
        }
    }

    /// The edge's delay bounds `[d₁, d₂]`.
    #[must_use]
    pub fn bounds(&self) -> DelayBounds {
        self.bounds
    }

    fn routes(&self, env: &Envelope<M>) -> bool {
        env.src == self.from && env.dst == self.to
    }
}

impl<M, A> TimedComponent for Channel<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = Vec<InFlight<M>>;

    fn name(&self) -> String {
        format!("channel({}→{}, {})", self.from, self.to, self.bounds)
    }

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if self.routes(env) => Some(ActionKind::Input),
            SysAction::Recv(env) if self.routes(env) => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "RECVMSG"])
    }

    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State> {
        match a {
            SysAction::Send(env) if self.routes(env) => {
                let delay = self.policy.delay_for_dyn(env, now, self.bounds);
                assert!(
                    self.bounds.contains(delay),
                    "delay policy produced {delay} outside {}",
                    self.bounds
                );
                debug_assert!(
                    !s.iter().any(|f| f.env.id == env.id),
                    "message {} sent twice: the model assumes unique messages",
                    env.id
                );
                let mut next = s.clone();
                next.push(InFlight {
                    env: env.clone(),
                    sent_at: now,
                    due: now + delay,
                });
                Some(next)
            }
            SysAction::Recv(env) if self.routes(env) => {
                let pos = s.iter().position(|f| f.env == *env && f.due <= now)?;
                let mut next = s.clone();
                next.remove(pos);
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        s.iter()
            .filter(|f| f.due <= now)
            .map(|f| SysAction::Recv(f.env.clone()))
            .collect()
    }

    fn deadline(&self, s: &Self::State, _now: Time) -> Option<Time> {
        s.iter().map(|f| f.due).min()
    }

    fn wake_hint(&self, s: &Self::State, _now: Time) -> WakeHint {
        // Pure time passage cannot surface a delivery before the earliest
        // due time; new sends go through `step`, which re-dirties us.
        match s.iter().map(|f| f.due).min() {
            Some(due) => WakeHint::At(due),
            None => WakeHint::Never,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxDelay, MinDelay, MsgId, SeededDelay};
    use psync_time::Duration;

    type A = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn bounds() -> DelayBounds {
        DelayBounds::new(ms(1), ms(5)).unwrap()
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(id),
            payload: id as u32,
        }
    }

    #[test]
    fn send_then_recv_within_envelope() {
        let ch: Channel<u32, &'static str> = Channel::new(NodeId(0), NodeId(1), bounds(), MaxDelay);
        let t0 = Time::ZERO + ms(10);
        let s1 = ch.step(&ch.initial(), &A::Send(env(1)), t0).unwrap();
        // Not yet deliverable.
        assert!(ch.enabled(&s1, t0).is_empty());
        assert_eq!(ch.deadline(&s1, t0), Some(t0 + ms(5)));
        // At due time, the receive appears.
        let due = t0 + ms(5);
        assert_eq!(ch.enabled(&s1, due), vec![A::Recv(env(1))]);
        let s2 = ch.step(&s1, &A::Recv(env(1)), due).unwrap();
        assert!(s2.is_empty());
    }

    #[test]
    fn recv_before_due_is_refused() {
        let ch: Channel<u32, &'static str> = Channel::new(NodeId(0), NodeId(1), bounds(), MaxDelay);
        let s1 = ch
            .step(&ch.initial(), &A::Send(env(1)), Time::ZERO)
            .unwrap();
        assert!(ch.step(&s1, &A::Recv(env(1)), Time::ZERO + ms(4)).is_none());
    }

    #[test]
    fn channel_only_touches_its_own_edge() {
        let ch: Channel<u32, &'static str> = Channel::new(NodeId(0), NodeId(1), bounds(), MinDelay);
        let wrong_way = Envelope {
            src: NodeId(1),
            dst: NodeId(0),
            id: MsgId(1),
            payload: 0,
        };
        assert_eq!(ch.classify(&A::Send(wrong_way.clone())), None);
        assert_eq!(ch.classify(&A::Recv(wrong_way)), None);
        assert_eq!(ch.classify(&A::App("x")), None);
        assert_eq!(ch.classify(&A::Send(env(1))), Some(ActionKind::Input));
        assert_eq!(ch.classify(&A::Recv(env(1))), Some(ActionKind::Output));
    }

    #[test]
    fn different_delays_reorder_messages() {
        // Seed chosen arbitrarily; we just need two different delays.
        let policy = SeededDelay::new(3);
        let d1 = policy.delay(NodeId(0), NodeId(1), MsgId(1), Time::ZERO, bounds());
        let d2 = policy.delay(NodeId(0), NodeId(1), MsgId(2), Time::ZERO, bounds());
        let (first, second) = if d1 <= d2 { (1, 2) } else { (2, 1) };

        let ch: Channel<u32, &'static str> = Channel::new(NodeId(0), NodeId(1), bounds(), policy);
        let mut s = ch.initial();
        s = ch.step(&s, &A::Send(env(1)), Time::ZERO).unwrap();
        s = ch.step(&s, &A::Send(env(2)), Time::ZERO).unwrap();
        // At the later due time both are enabled; at the earlier one only
        // the earlier message.
        let early = Time::ZERO + d1.min(d2);
        let enabled = ch.enabled(&s, early);
        if d1 != d2 {
            assert_eq!(enabled, vec![A::Recv(env(first))]);
            let late = Time::ZERO + d1.max(d2);
            let s2 = ch.step(&s, &A::Recv(env(first)), early).unwrap();
            assert_eq!(ch.enabled(&s2, late), vec![A::Recv(env(second))]);
        }
    }

    #[test]
    fn deadline_is_earliest_due() {
        let ch: Channel<u32, &'static str> = Channel::new(NodeId(0), NodeId(1), bounds(), MinDelay);
        let mut s = ch.initial();
        s = ch.step(&s, &A::Send(env(1)), Time::ZERO + ms(4)).unwrap();
        s = ch.step(&s, &A::Send(env(2)), Time::ZERO + ms(2)).unwrap();
        assert_eq!(
            ch.deadline(&s, Time::ZERO + ms(4)),
            Some(Time::ZERO + ms(3))
        );
    }

    #[test]
    fn delivery_always_within_paper_bounds() {
        // Property-flavored check across many messages.
        let policy = SeededDelay::new(12345);
        let ch: Channel<u32, &'static str> = Channel::new(NodeId(0), NodeId(1), bounds(), policy);
        let mut s = ch.initial();
        let t0 = Time::ZERO + ms(7);
        for id in 0..100 {
            s = ch.step(&s, &A::Send(env(id)), t0).unwrap();
        }
        for f in &s {
            assert!(f.due >= t0 + ms(1) && f.due <= t0 + ms(5));
        }
    }
}
