//! Timeout-based failure detection (design technique #1 of Section 7.1).
//!
//! A monitored node emits heartbeats every `period`; a monitor suspects it
//! once no heartbeat has arrived for `timeout`. The detector is designed
//! and verified in the **timed model**; the paper's first design technique
//! then says: to survive the clock transformation, budget the timeout
//! against the *widened* delay bounds `[max(0, d₁−2ε), d₂+2ε]` — the
//! transformed detector solves `P_ε`, i.e. it keeps its accuracy and its
//! completeness with every event allowed to move by `ε`, which is exactly
//! what a timeout-based detector can tolerate.
//!
//! [`FdParams::timeout_for`] computes the correct budget;
//! `tests/design_techniques.rs` demonstrates both the guarantee and the
//! failure mode of skipping the widening (false suspicions under
//! adversarial clocks).

use psync_automata::{Action, ActionKind, TimedComponent};
use psync_net::{Envelope, MsgId, NodeId, SysAction};
use psync_time::{DelayBounds, Duration, Time};

/// Heartbeat payload: just a sequence number (unique per message together
/// with the sender id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Heartbeat {
    /// Sequence number.
    pub seq: u32,
}

/// Application actions of the failure-detection system.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FdOp {
    /// Environment crashes the monitored node (input to it).
    Crash {
        /// The crashed node.
        node: NodeId,
    },
    /// The monitor declares the target suspected (output, irrevocable).
    Suspect {
        /// The monitoring node.
        monitor: NodeId,
        /// The node being suspected.
        target: NodeId,
    },
}

impl Action for FdOp {
    fn name(&self) -> &'static str {
        match self {
            FdOp::Crash { .. } => "CRASH",
            FdOp::Suspect { .. } => "SUSPECT",
        }
    }
}

/// The action alphabet of the failure-detection system.
pub type FdAction = SysAction<Heartbeat, FdOp>;

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdParams {
    /// Heartbeat period.
    pub period: Duration,
    /// Monitor timeout: suspect after this long without a heartbeat.
    pub timeout: Duration,
}

impl FdParams {
    /// The correct timeout budget for heartbeats with the given `period`
    /// travelling over links with (possibly widened) bounds: the worst
    /// inter-arrival gap `period + d₂ − d₁`, plus `slack`.
    ///
    /// For a clock-model deployment pass
    /// [`DelayBounds::widen_for_skew`]\(ε) — the paper's technique #1.
    /// Passing the raw physical bounds yields a detector that is correct
    /// in the timed model but *inaccurate* (false suspicions) once clocks
    /// skew.
    ///
    /// # Panics
    ///
    /// Panics if `period` or `slack` is not strictly positive.
    #[must_use]
    pub fn timeout_for(period: Duration, bounds: DelayBounds, slack: Duration) -> FdParams {
        assert!(period.is_positive(), "period must be positive");
        assert!(slack.is_positive(), "slack must be positive");
        FdParams {
            period,
            timeout: period + bounds.width() + slack,
        }
    }

    /// Worst-case detection latency after a crash, in the model the
    /// bounds describe: the last pre-crash heartbeat takes at most `d₂`,
    /// then the timeout runs out.
    #[must_use]
    pub fn detection_bound(&self, bounds: DelayBounds) -> Duration {
        bounds.max() + self.timeout
    }
}

/// State of a [`Heartbeater`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeaterState {
    /// Next heartbeat send time (irrelevant once crashed).
    pub next: Time,
    /// Next sequence number.
    pub seq: u32,
    /// Crashed nodes send nothing, forever.
    pub crashed: bool,
}

/// The monitored node: sends a heartbeat to the monitor every `period`
/// until crashed by the environment.
#[derive(Debug, Clone)]
pub struct Heartbeater {
    node: NodeId,
    monitor: NodeId,
    period: Duration,
}

impl Heartbeater {
    /// Creates the monitored node.
    #[must_use]
    pub fn new(node: NodeId, monitor: NodeId, period: Duration) -> Self {
        assert!(period.is_positive(), "period must be positive");
        Heartbeater {
            node,
            monitor,
            period,
        }
    }
}

impl TimedComponent for Heartbeater {
    type Action = FdAction;
    type State = HeartbeaterState;

    fn name(&self) -> String {
        format!("heartbeater({})", self.node)
    }

    fn initial(&self) -> HeartbeaterState {
        HeartbeaterState {
            next: Time::ZERO + self.period,
            seq: 0,
            crashed: false,
        }
    }

    fn classify(&self, a: &FdAction) -> Option<ActionKind> {
        match a {
            SysAction::App(FdOp::Crash { node }) if *node == self.node => Some(ActionKind::Input),
            SysAction::Send(env) if env.src == self.node => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["CRASH", "SENDMSG"])
    }

    fn step(&self, s: &HeartbeaterState, a: &FdAction, now: Time) -> Option<HeartbeaterState> {
        match a {
            SysAction::App(FdOp::Crash { node }) if *node == self.node => {
                let mut next = s.clone();
                next.crashed = true;
                Some(next)
            }
            SysAction::Send(env) if env.src == self.node => {
                if s.crashed
                    || now < s.next
                    || env.dst != self.monitor
                    || env.id != MsgId::from_parts(self.node, s.seq)
                    || env.payload != (Heartbeat { seq: s.seq })
                {
                    return None;
                }
                Some(HeartbeaterState {
                    next: s.next + self.period,
                    seq: s.seq + 1,
                    crashed: false,
                })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &HeartbeaterState, now: Time) -> Vec<FdAction> {
        if !s.crashed && now >= s.next {
            vec![SysAction::Send(Envelope {
                src: self.node,
                dst: self.monitor,
                id: MsgId::from_parts(self.node, s.seq),
                payload: Heartbeat { seq: s.seq },
            })]
        } else {
            Vec::new()
        }
    }

    fn deadline(&self, s: &HeartbeaterState, _now: Time) -> Option<Time> {
        (!s.crashed).then_some(s.next)
    }
}

/// State of a [`Monitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorState {
    /// When the timeout fires if no heartbeat arrives first.
    pub expires: Time,
    /// Suspicion is irrevocable.
    pub suspected: bool,
}

/// The monitoring node: resets its timer on every heartbeat, suspects the
/// target when it expires.
#[derive(Debug, Clone)]
pub struct Monitor {
    node: NodeId,
    target: NodeId,
    params: FdParams,
}

impl Monitor {
    /// Creates the monitor.
    #[must_use]
    pub fn new(node: NodeId, target: NodeId, params: FdParams) -> Self {
        Monitor {
            node,
            target,
            params,
        }
    }

    /// The parameters in force.
    #[must_use]
    pub fn params(&self) -> FdParams {
        self.params
    }
}

impl TimedComponent for Monitor {
    type Action = FdAction;
    type State = MonitorState;

    fn name(&self) -> String {
        format!("monitor({} watches {})", self.node, self.target)
    }

    fn initial(&self) -> MonitorState {
        MonitorState {
            // Initial grace: one period for the first heartbeat plus the
            // normal timeout.
            expires: Time::ZERO + self.params.timeout + self.params.period,
            suspected: false,
        }
    }

    fn classify(&self, a: &FdAction) -> Option<ActionKind> {
        match a {
            SysAction::Recv(env) if env.dst == self.node && env.src == self.target => {
                Some(ActionKind::Input)
            }
            SysAction::App(FdOp::Suspect { monitor, target })
                if *monitor == self.node && *target == self.target =>
            {
                Some(ActionKind::Output)
            }
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["RECVMSG", "SUSPECT"])
    }

    fn step(&self, s: &MonitorState, a: &FdAction, now: Time) -> Option<MonitorState> {
        match a {
            SysAction::Recv(env) if env.dst == self.node && env.src == self.target => {
                let mut next = s.clone();
                if !s.suspected {
                    next.expires = now + self.params.timeout;
                }
                Some(next)
            }
            SysAction::App(FdOp::Suspect { monitor, target })
                if *monitor == self.node && *target == self.target =>
            {
                if s.suspected || now < s.expires {
                    return None;
                }
                Some(MonitorState {
                    expires: s.expires,
                    suspected: true,
                })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &MonitorState, now: Time) -> Vec<FdAction> {
        if !s.suspected && now >= s.expires {
            vec![SysAction::App(FdOp::Suspect {
                monitor: self.node,
                target: self.target,
            })]
        } else {
            Vec::new()
        }
    }

    fn deadline(&self, s: &MonitorState, _now: Time) -> Option<Time> {
        (!s.suspected).then_some(s.expires)
    }
}

/// The observable outcome of a failure-detection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdOutcome {
    /// When the environment crashed the target, if it did.
    pub crashed_at: Option<Time>,
    /// When the monitor suspected the target, if it did.
    pub suspected_at: Option<Time>,
}

impl FdOutcome {
    /// A suspicion strictly before the crash (or with no crash at all) is
    /// a *false* suspicion — an accuracy violation.
    #[must_use]
    pub fn false_suspicion(&self) -> bool {
        match (self.suspected_at, self.crashed_at) {
            (Some(s), Some(c)) => s < c,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// Detection latency, when the crash was detected.
    #[must_use]
    pub fn detection_latency(&self) -> Option<Duration> {
        Some(self.suspected_at? - self.crashed_at?)
    }
}

/// Extracts the outcome from an application trace.
#[must_use]
pub fn outcome(trace: &psync_automata::TimedTrace<FdAction>) -> FdOutcome {
    let mut out = FdOutcome {
        crashed_at: None,
        suspected_at: None,
    };
    for (a, t) in trace.iter() {
        match a {
            SysAction::App(FdOp::Crash { .. }) if out.crashed_at.is_none() => {
                out.crashed_at = Some(t);
            }
            SysAction::App(FdOp::Suspect { .. }) if out.suspected_at.is_none() => {
                out.suspected_at = Some(t);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    #[test]
    fn timeout_budget_formula() {
        let bounds = DelayBounds::new(ms(2), ms(6)).unwrap();
        let p = FdParams::timeout_for(ms(10), bounds, ms(1));
        assert_eq!(p.timeout, ms(15)); // 10 + (6−2) + 1
        assert_eq!(p.detection_bound(bounds), ms(21));
    }

    #[test]
    fn heartbeater_sends_until_crashed() {
        let h = Heartbeater::new(NodeId(0), NodeId(1), ms(10));
        let s0 = h.initial();
        assert_eq!(h.deadline(&s0, Time::ZERO), Some(at(10)));
        let sends = h.enabled(&s0, at(10));
        assert_eq!(sends.len(), 1);
        let s1 = h.step(&s0, &sends[0], at(10)).unwrap();
        assert_eq!(s1.seq, 1);
        let s2 = h
            .step(
                &s1,
                &SysAction::App(FdOp::Crash { node: NodeId(0) }),
                at(15),
            )
            .unwrap();
        assert!(s2.crashed);
        assert_eq!(h.deadline(&s2, at(15)), None);
        assert!(h.enabled(&s2, at(100)).is_empty());
    }

    #[test]
    fn monitor_resets_and_eventually_suspects() {
        let params = FdParams {
            period: ms(10),
            timeout: ms(15),
        };
        let m = Monitor::new(NodeId(1), NodeId(0), params);
        let s0 = m.initial();
        assert_eq!(s0.expires, at(25)); // period + timeout grace
        let hb = SysAction::Recv(Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId::from_parts(NodeId(0), 0),
            payload: Heartbeat { seq: 0 },
        });
        let s1 = m.step(&s0, &hb, at(12)).unwrap();
        assert_eq!(s1.expires, at(27));
        // No heartbeat again: suspicion fires exactly at the expiry.
        assert!(m.enabled(&s1, at(26)).is_empty());
        let sus = m.enabled(&s1, at(27));
        assert_eq!(sus.len(), 1);
        let s2 = m.step(&s1, &sus[0], at(27)).unwrap();
        assert!(s2.suspected);
        // Irrevocable: later heartbeats change nothing.
        let s3 = m.step(&s2, &hb, at(30)).unwrap();
        assert!(s3.suspected);
        assert_eq!(m.deadline(&s3, at(30)), None);
    }

    #[test]
    fn outcome_extraction_and_classification() {
        use psync_automata::TimedTrace;
        let crash = SysAction::App(FdOp::Crash { node: NodeId(0) });
        let suspect = SysAction::App(FdOp::Suspect {
            monitor: NodeId(1),
            target: NodeId(0),
        });
        let good: TimedTrace<FdAction> =
            TimedTrace::from_pairs(vec![(crash.clone(), at(5)), (suspect.clone(), at(20))]);
        let o = outcome(&good);
        assert!(!o.false_suspicion());
        assert_eq!(o.detection_latency(), Some(ms(15)));

        let bad: TimedTrace<FdAction> =
            TimedTrace::from_pairs(vec![(suspect.clone(), at(5)), (crash, at(20))]);
        assert!(outcome(&bad).false_suspicion());

        let no_crash: TimedTrace<FdAction> = TimedTrace::from_pairs(vec![(suspect, at(5))]);
        assert!(outcome(&no_crash).false_suspicion());
    }
}
