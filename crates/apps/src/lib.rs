//! Applications of the paper's design techniques beyond the register.
//!
//! Section 7.1 describes two ways to use the simulation results in
//! practice, and Section 1 motivates the whole enterprise with concrete
//! uses of time information — "to estimate the time at which system or
//! environment events occur, to detect process failures, to schedule the
//! use of resources, and to synchronize activities". This crate implements
//! two of those uses, one per design technique:
//!
//! * [`heartbeat`] — **timeout-based failure detection** via the *first*
//!   technique ("it is often sufficient to solve `P_ε` instead of `P`"):
//!   design the monitor in the timed model against the widened delay
//!   bounds `[max(0, d₁−2ε), d₂+2ε]`; the transformed detector's
//!   suspicions move by at most `ε` — harmless for a detector, *provided
//!   the timeout was budgeted for the widened bounds*. The module also
//!   shows the failure mode: a timeout budgeted only for the physical
//!   bounds produces false suspicions under skewed clocks.
//! * [`mutex`] — **time-division mutual exclusion** via the *second*
//!   technique ("design a problem `Q` such that `Q_ε ⊆ P`"): mutual
//!   exclusion is a real-time property that `ε` perturbation can break, so
//!   the timed-model algorithm must solve the *stronger* `Q` — slots
//!   shrunk by guard bands of `ε` on each side — whose ε-perturbation
//!   still excludes overlap. The module shows both the guarded algorithm
//!   (safe) and the unguarded one (overlaps under adversarial clocks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod heartbeat;
pub mod mutex;
