//! Time-division mutual exclusion (design technique #2 of Section 7.1).
//!
//! `n` nodes share a resource by taking turns in fixed time slots of
//! length `slot`: node `i` owns the slots `≡ i (mod n)`. With perfect
//! clocks, entering at each slot start and exiting at its end gives
//! mutual exclusion with full utilization. But mutual exclusion is a
//! *real-time* property: the `ε` perturbation of Theorem 4.7 can slide
//! one node's exit past another's entry and break it — solving `P_ε` is
//! **not** sufficient.
//!
//! The paper's second design technique applies: design the timed-model
//! algorithm to solve a *stronger* problem `Q` whose ε-perturbation still
//! implies `P`. Here `Q` = "occupancies are separated by at least `2g`"
//! (guard bands of `g` at each slot edge); `Q_ε ⊆ P` exactly when
//! `g ≥ ε`. [`SlotUser::guarded`] builds the `Q`-solving automaton;
//! `tests/design_techniques.rs` shows the unguarded version overlapping
//! under adversarial clocks and the guarded one staying exclusive, with
//! the utilization price `(slot − 2g)/slot`.

use psync_automata::{Action, ActionKind, TimedComponent, TimedTrace};
use psync_net::{NodeId, SysAction};
use psync_time::{Duration, Time};

/// Application actions of the mutual-exclusion system. There are no
/// messages at all — coordination is purely temporal, which is what makes
/// this the sharpest illustration of the `ε` perturbation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MutexOp {
    /// The node starts using the resource.
    Enter {
        /// Which node.
        node: NodeId,
        /// Which of its turns (0-based).
        round: u64,
    },
    /// The node stops using the resource.
    Exit {
        /// Which node.
        node: NodeId,
        /// Which of its turns.
        round: u64,
    },
}

impl Action for MutexOp {
    fn name(&self) -> &'static str {
        match self {
            MutexOp::Enter { .. } => "ENTER",
            MutexOp::Exit { .. } => "EXIT",
        }
    }
}

/// The action alphabet of the mutual-exclusion system (message type is
/// `()` — there are none).
pub type MutexAction = SysAction<(), MutexOp>;

/// State of a [`SlotUser`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotUserState {
    /// Completed turns.
    pub round: u64,
    /// Currently inside the critical section?
    pub in_cs: bool,
}

/// One node of the time-division mutual exclusion protocol.
#[derive(Debug, Clone)]
pub struct SlotUser {
    node: NodeId,
    n: usize,
    slot: Duration,
    guard: Duration,
    rounds: u64,
}

impl SlotUser {
    /// The *unguarded* protocol: enter at the slot start, exit at its end.
    /// Solves mutual exclusion in the timed model, but its ε-perturbation
    /// does not — see the module docs.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters.
    #[must_use]
    pub fn unguarded(node: NodeId, n: usize, slot: Duration, rounds: u64) -> Self {
        SlotUser::guarded(node, n, slot, Duration::ZERO, rounds)
    }

    /// The `Q`-solving protocol: keep `guard` clear at each slot edge, so
    /// consecutive occupancies are separated by `2·guard`. With
    /// `guard ≥ ε`, the transformed protocol is exclusive under every
    /// clock behavior in `C_ε`.
    ///
    /// # Panics
    ///
    /// Panics if `slot ≤ 2·guard`, `n == 0`, or a negative duration is
    /// passed.
    #[must_use]
    pub fn guarded(node: NodeId, n: usize, slot: Duration, guard: Duration, rounds: u64) -> Self {
        assert!(n > 0, "at least one node");
        assert!(node.0 < n, "node id out of range");
        assert!(!guard.is_negative(), "guard must be non-negative");
        assert!(
            slot > guard * 2,
            "slot {slot} leaves no usable time inside guards {guard}"
        );
        SlotUser {
            node,
            n,
            slot,
            guard,
            rounds,
        }
    }

    /// Start of this node's `round`-th occupancy.
    fn enter_at(&self, round: u64) -> Time {
        let cycle = self.slot * (self.n as i64);
        Time::ZERO + cycle * (round as i64) + self.slot * (self.node.0 as i64) + self.guard
    }

    /// End of this node's `round`-th occupancy.
    fn exit_at(&self, round: u64) -> Time {
        let cycle = self.slot * (self.n as i64);
        Time::ZERO + cycle * (round as i64) + self.slot * (self.node.0 as i64 + 1) - self.guard
    }

    /// Fraction of each slot actually usable: `(slot − 2g) / slot`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        (self.slot - self.guard * 2).as_secs_f64() / self.slot.as_secs_f64()
    }
}

impl TimedComponent for SlotUser {
    type Action = MutexAction;
    type State = SlotUserState;

    fn name(&self) -> String {
        format!("slot-user({}/{})", self.node, self.n)
    }

    fn initial(&self) -> SlotUserState {
        SlotUserState {
            round: 0,
            in_cs: false,
        }
    }

    fn classify(&self, a: &MutexAction) -> Option<ActionKind> {
        match a {
            SysAction::App(op) => match op {
                MutexOp::Enter { node, .. } | MutexOp::Exit { node, .. } if *node == self.node => {
                    Some(ActionKind::Output)
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["ENTER", "EXIT"])
    }

    fn step(&self, s: &SlotUserState, a: &MutexAction, now: Time) -> Option<SlotUserState> {
        match a {
            SysAction::App(MutexOp::Enter { node, round })
                if *node == self.node
                    && !s.in_cs
                    && *round == s.round
                    && s.round < self.rounds
                    && now >= self.enter_at(s.round) =>
            {
                Some(SlotUserState {
                    round: s.round,
                    in_cs: true,
                })
            }
            SysAction::App(MutexOp::Exit { node, round })
                if *node == self.node
                    && s.in_cs
                    && *round == s.round
                    && now >= self.exit_at(s.round) =>
            {
                Some(SlotUserState {
                    round: s.round + 1,
                    in_cs: false,
                })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &SlotUserState, now: Time) -> Vec<MutexAction> {
        if s.in_cs {
            if now >= self.exit_at(s.round) {
                return vec![SysAction::App(MutexOp::Exit {
                    node: self.node,
                    round: s.round,
                })];
            }
        } else if s.round < self.rounds && now >= self.enter_at(s.round) {
            return vec![SysAction::App(MutexOp::Enter {
                node: self.node,
                round: s.round,
            })];
        }
        Vec::new()
    }

    fn deadline(&self, s: &SlotUserState, _now: Time) -> Option<Time> {
        if s.in_cs {
            Some(self.exit_at(s.round))
        } else if s.round < self.rounds {
            Some(self.enter_at(s.round))
        } else {
            None
        }
    }
}

/// An observed violation: two nodes inside the critical section at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overlap {
    /// The node already inside.
    pub holder: NodeId,
    /// The node that entered on top of it.
    pub intruder: NodeId,
    /// When the overlap began.
    pub at: Time,
}

/// Scans a trace for mutual-exclusion violations.
///
/// # Panics
///
/// Panics on malformed traces (exit without enter, double enter by one
/// node).
#[must_use]
pub fn overlaps(trace: &TimedTrace<MutexAction>) -> Vec<Overlap> {
    let mut inside: Option<NodeId> = None;
    let mut stack: Vec<NodeId> = Vec::new();
    let mut found = Vec::new();
    for (a, t) in trace.iter() {
        match a {
            SysAction::App(MutexOp::Enter { node, .. }) => {
                assert!(
                    !stack.contains(node),
                    "node {node} entered twice without exiting"
                );
                if let Some(holder) = inside {
                    found.push(Overlap {
                        holder,
                        intruder: *node,
                        at: t,
                    });
                }
                stack.push(*node);
                inside = Some(*node);
            }
            SysAction::App(MutexOp::Exit { node, .. }) => {
                let pos = stack
                    .iter()
                    .position(|n| n == node)
                    .expect("exit without matching enter");
                stack.remove(pos);
                inside = stack.last().copied();
            }
            _ => {}
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    #[test]
    fn schedule_arithmetic() {
        // 3 nodes, 10 ms slots, 2 ms guard. Node 1's first turn:
        // enter 10+2 = 12, exit 20−2 = 18; second turn: 42, 48.
        let u = SlotUser::guarded(NodeId(1), 3, ms(10), ms(2), 5);
        assert_eq!(u.enter_at(0), at(12));
        assert_eq!(u.exit_at(0), at(18));
        assert_eq!(u.enter_at(1), at(42));
        assert_eq!(u.exit_at(1), at(48));
        assert!((u.utilization() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_through_component_calls() {
        let u = SlotUser::guarded(NodeId(0), 2, ms(10), ms(1), 2);
        let s0 = u.initial();
        assert_eq!(u.deadline(&s0, Time::ZERO), Some(at(1)));
        let enter = u.enabled(&s0, at(1));
        assert_eq!(enter.len(), 1);
        let s1 = u.step(&s0, &enter[0], at(1)).unwrap();
        assert!(s1.in_cs);
        assert_eq!(u.deadline(&s1, at(1)), Some(at(9)));
        let exit = u.enabled(&s1, at(9));
        let s2 = u.step(&s1, &exit[0], at(9)).unwrap();
        assert!(!s2.in_cs);
        assert_eq!(s2.round, 1);
        // Next turn starts a full cycle later (2 nodes × 10 ms).
        assert_eq!(u.deadline(&s2, at(9)), Some(at(21)));
    }

    #[test]
    fn finishes_after_rounds() {
        let u = SlotUser::guarded(NodeId(0), 1, ms(10), ms(1), 1);
        let mut s = u.initial();
        s = u.step(&s, &u.enabled(&s, at(1))[0], at(1)).unwrap();
        s = u.step(&s, &u.enabled(&s, at(9))[0], at(9)).unwrap();
        assert_eq!(u.deadline(&s, at(9)), None);
        assert!(u.enabled(&s, at(100)).is_empty());
    }

    #[test]
    fn overlap_detection() {
        let e = |n: usize, r: u64| {
            SysAction::App(MutexOp::Enter {
                node: NodeId(n),
                round: r,
            })
        };
        let x = |n: usize, r: u64| {
            SysAction::App(MutexOp::Exit {
                node: NodeId(n),
                round: r,
            })
        };
        let clean: TimedTrace<MutexAction> = TimedTrace::from_pairs(vec![
            (e(0, 0), at(0)),
            (x(0, 0), at(5)),
            (e(1, 0), at(6)),
            (x(1, 0), at(9)),
        ]);
        assert!(overlaps(&clean).is_empty());

        let dirty: TimedTrace<MutexAction> = TimedTrace::from_pairs(vec![
            (e(0, 0), at(0)),
            (e(1, 0), at(3)), // intrusion
            (x(0, 0), at(5)),
            (x(1, 0), at(9)),
        ]);
        let v = overlaps(&dirty);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].holder, NodeId(0));
        assert_eq!(v[0].intruder, NodeId(1));
        assert_eq!(v[0].at, at(3));
    }

    #[test]
    #[should_panic(expected = "no usable time")]
    fn oversized_guard_rejected() {
        let _ = SlotUser::guarded(NodeId(0), 2, ms(4), ms(2), 1);
    }
}
