//! A small, deterministic, multiply-xor hasher for the engine's internal
//! maps.
//!
//! The run loop hashes an action once per candidate refresh (duplicate
//! detection) and an action *name* once per fired event (routing).
//! `std`'s default SipHash is keyed per `HashMap` and designed to resist
//! adversarial collisions — properties these derived, trusted keys do not
//! need — and its per-byte cost shows up directly in the event loop. This
//! hasher is the classic `rotate ⊕ word → multiply` mix (as popularised by
//! rustc's FxHash): a handful of cycles per 8-byte word.
//!
//! Determinism is a feature here, not just speed: engine behaviour must
//! never depend on hash seeds, and a fixed-key hasher removes the only
//! source of per-process hash randomness from the hot path. Note the
//! engine never *iterates* these maps when producing events, so even the
//! bucket order is unobservable in recorded executions.

use core::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (the 64-bit golden-ratio constant, as in
/// Knuth's multiplicative hashing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Builds [`FastHasher`]s; `Default` so maps can be constructed with
/// `HashMap::default()`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// The hasher state: one 64-bit accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ≠ "ab\0".
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&"SENDMSG"), hash_of(&"SENDMSG"));
        assert_eq!(hash_of(&(1u32, 2u64)), hash_of(&(1u32, 2u64)));
    }

    #[test]
    fn distinguishes_basic_inputs() {
        assert_ne!(hash_of(&"SENDMSG"), hash_of(&"RECVMSG"));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        // Length folding: a short tail differs from its zero-padded form.
        assert_ne!(hash_of(&[1u8, 2][..]), hash_of(&[1u8, 2, 0][..]));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: std::collections::HashMap<&str, u32, FastBuildHasher> =
            std::collections::HashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.get("b"), Some(&2));
    }
}
