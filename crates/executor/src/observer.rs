//! Engine observation points: a zero-cost-when-detached hook trait.
//!
//! An [`Observer`] is attached at build time
//! ([`EngineBuilder::observer`](crate::EngineBuilder::observer)) and is
//! invoked by both [`Engine`](crate::Engine) and
//! [`ReferenceEngine`](crate::ReferenceEngine) at the same four points, in
//! the same order:
//!
//! 1. [`on_candidates`](Observer::on_candidates) — after the candidate set
//!    is assembled and found non-empty, before the scheduler picks;
//! 2. [`on_clock_read`](Observer::on_clock_read) — whenever a node clock is
//!    read: once per fired event that touches a clock node (the `c_i(α)`
//!    reading recorded with the event), and once per node per time advance
//!    (the strategy's freshly validated clock value);
//! 3. [`on_event`](Observer::on_event) — after an action fires, with the
//!    exact [`TimedEvent`] appended to the execution;
//! 4. [`on_advance`](Observer::on_advance) — at the start of every `ν`
//!    time-passage step.
//!
//! Observers are strictly *read-only* taps: they cannot influence
//! scheduling, component state or the recorded execution, so a run with
//! observers attached produces an [`Execution`](psync_automata::Execution)
//! bit-identical to a detached run (pinned by the `engine_equiv`
//! integration tests). With no observer attached the hook sites iterate an
//! empty vector — no allocation, no branch beyond the loop header.

use psync_automata::{Action, TimedEvent};
use psync_time::{Duration, Time};

/// One observed node-clock reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockRead {
    /// Index of the clock node (insertion order).
    pub node: usize,
    /// Real time at the moment of the reading.
    pub now: Time,
    /// The node clock's value.
    pub clock: Time,
    /// The node's skew bound `ε` (so a `C_ε` monitor is self-configuring).
    pub eps: Duration,
}

/// A read-only tap on an engine run.
///
/// All methods have empty default bodies: implement only the points you
/// care about. Hooks are called synchronously from the run loop, so keep
/// them cheap; anything heavier belongs in a post-run pass over the
/// recorded execution.
pub trait Observer<A: Action> {
    /// The candidate set was assembled and is non-empty; the scheduler is
    /// about to pick among `depth` enabled actions.
    fn on_candidates(&mut self, now: Time, depth: usize) {
        let _ = (now, depth);
    }

    /// A node clock was read (see [`ClockRead`]).
    fn on_clock_read(&mut self, read: ClockRead) {
        let _ = read;
    }

    /// An action fired; `event` is exactly what was appended to the
    /// execution (clock reading included), and `index` is its position in
    /// the arena-backed event log — both engines report the same index for
    /// the same event, so an observer can record indices instead of
    /// cloning events and resolve them against the finished execution.
    ///
    /// # Examples
    ///
    /// ```
    /// use psync_automata::toys::Beeper;
    /// use psync_automata::{Action, TimedEvent};
    /// use psync_executor::{Engine, Observer};
    /// use psync_time::{Duration, Time};
    ///
    /// /// Remembers arena indices of visible events, not the events.
    /// #[derive(Default)]
    /// struct VisibleIndices(Vec<usize>);
    /// impl<A: Action> Observer<A> for VisibleIndices {
    ///     fn on_event(&mut self, index: usize, event: &TimedEvent<A>) {
    ///         if event.kind.is_visible() {
    ///             self.0.push(index);
    ///         }
    ///     }
    /// }
    ///
    /// let ms = Duration::from_millis;
    /// let mut engine = Engine::builder()
    ///     .timed(Beeper::new(ms(5)))
    ///     .observer(VisibleIndices::default())
    ///     .horizon(Time::ZERO + ms(12))
    ///     .build();
    /// let run = engine.run()?;
    /// // An index recorded by the hook resolves into the execution:
    /// assert_eq!(run.execution.events()[0].now, Time::ZERO + ms(5));
    /// # Ok::<(), psync_executor::EngineError>(())
    /// ```
    fn on_event(&mut self, index: usize, event: &TimedEvent<A>) {
        let _ = (index, event);
    }

    /// Time is about to pass from `from` to `to` (a `ν` step).
    fn on_advance(&mut self, from: Time, to: Time) {
        let _ = (from, to);
    }

    /// The engine captured a checkpoint; `events` is the length of the
    /// execution prefix recorded so far. Like the other hooks, this is a
    /// read-only notification — checkpointing must not perturb the run.
    fn on_checkpoint(&mut self, events: usize) {
        let _ = events;
    }

    /// The engine was restored from a checkpoint whose execution prefix is
    /// `events` (every recorded event, oldest first). Stateful observers
    /// that accumulate per-run context (e.g. in-flight message maps) use
    /// the prefix to rebuild exactly the state they would have reached by
    /// observing the prefix live; counters that were externally restored
    /// should not be re-derived here.
    fn on_restore(&mut self, events: &[TimedEvent<A>]) {
        let _ = events;
    }
}

/// An observer that ignores everything — the baseline for overhead
/// measurements (`observer_overhead` bench) and a placeholder where an
/// observer slot must be filled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl<A: Action> Observer<A> for NoopObserver {}
