//! The reference interpreter: the original scan-everything engine,
//! preserved verbatim as an executable specification.
//!
//! [`ReferenceEngine`] re-derives every decision from scratch each
//! iteration: it polls every component for enabled actions, runs the
//! pairwise controller-compatibility check over all candidates, broadcasts
//! every fired action to every component, and polls every deadline on
//! every idle advance. That makes it slow — O(components) per step with an
//! O(candidates²) scan — but *obviously* faithful to the composition
//! semantics of Definition 2.2, which is exactly what an oracle should be.
//!
//! Two uses:
//!
//! * **Differential testing** — `tests/engine_equiv.rs` asserts that the
//!   incremental [`Engine`](crate::Engine) reproduces this interpreter's
//!   executions event-for-event across seeded schedulers.
//! * **Benchmark baseline** — `psync-bench`'s `engine_scaling` bench
//!   measures the incremental engine's speedup against it.
//!
//! Keep this module dumb. Optimizations belong in `engine.rs`; any change
//! here weakens the oracle.

use psync_automata::{
    Action, ArenaSnapshot, ClockComponentBox, ClockPredicate, ComponentBox, DynState, EventArena,
    Execution, TimedComponent, TimedEvent,
};
use psync_time::{Duration, Time};

use std::sync::Arc;

use crate::clock_driver::{AdvanceCtx, ClockStrategy};
use crate::engine::{ClockNode, EngineCheckpoint, Run, StopReason};
use crate::error::EngineError;
use crate::observer::{ClockRead, Observer};
use crate::scheduler::{FifoScheduler, Scheduler};

/// Default cap on recorded events, guarding against Zeno compositions.
const DEFAULT_MAX_EVENTS: usize = 1_000_000;

/// After this many consecutive estimate-guided advances with no event, the
/// engine falls back to the `Dc + ε` hard cap to guarantee progress.
const IDLE_ADVANCE_FALLBACK: u32 = 8;

struct TimedRuntime<A: Action> {
    comp: ComponentBox<A>,
    state: DynState,
}

struct NodeRuntime<A: Action> {
    name: String,
    comps: Vec<(ClockComponentBox<A>, DynState)>,
    clock: Time,
    strategy: Box<dyn ClockStrategy>,
    pred: ClockPredicate,
}

/// Builds a [`ReferenceEngine`]; mirrors [`EngineBuilder`](crate::EngineBuilder).
pub struct ReferenceEngineBuilder<A: Action> {
    timed: Vec<ComponentBox<A>>,
    nodes: Vec<ClockNode<A>>,
    scheduler: Box<dyn Scheduler<A>>,
    horizon: Option<Time>,
    max_events: usize,
    observers: Vec<Box<dyn Observer<A>>>,
}

impl<A: Action> Default for ReferenceEngineBuilder<A> {
    fn default() -> Self {
        ReferenceEngineBuilder {
            timed: Vec::new(),
            nodes: Vec::new(),
            scheduler: Box::new(FifoScheduler),
            horizon: None,
            max_events: DEFAULT_MAX_EVENTS,
            observers: Vec::new(),
        }
    }
}

impl<A: Action> ReferenceEngineBuilder<A> {
    /// Adds a timed component.
    #[must_use]
    pub fn timed<C: TimedComponent<Action = A>>(mut self, comp: C) -> Self {
        self.timed.push(ComponentBox::new(comp));
        self
    }

    /// Adds an already-boxed timed component.
    #[must_use]
    pub fn timed_boxed(mut self, comp: ComponentBox<A>) -> Self {
        self.timed.push(comp);
        self
    }

    /// Adds a clock node.
    #[must_use]
    pub fn clock_node(mut self, node: ClockNode<A>) -> Self {
        self.nodes.push(node);
        self
    }

    /// Sets the scheduler (default: [`FifoScheduler`]).
    #[must_use]
    pub fn scheduler(mut self, s: impl Scheduler<A> + 'static) -> Self {
        self.scheduler = Box::new(s);
        self
    }

    /// Stops the run when real time reaches `horizon`.
    #[must_use]
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Caps the number of recorded events.
    #[must_use]
    pub fn max_events(mut self, max: usize) -> Self {
        self.max_events = max;
        self
    }

    /// Attaches an [`Observer`], notified at the same points, in the same
    /// order, as [`Engine`](crate::Engine) notifies its observers.
    #[must_use]
    pub fn observer(mut self, obs: impl Observer<A> + 'static) -> Self {
        self.observers.push(Box::new(obs));
        self
    }

    /// Attaches an already-boxed observer.
    #[must_use]
    pub fn observer_boxed(mut self, obs: Box<dyn Observer<A>>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Builds the engine with all components in their start states and
    /// `now = clock = 0` (axioms S1 and C1).
    #[must_use]
    pub fn build(self) -> ReferenceEngine<A> {
        let timed = self
            .timed
            .into_iter()
            .map(|comp| {
                let state = comp.initial();
                TimedRuntime { comp, state }
            })
            .collect();
        let nodes = self
            .nodes
            .into_iter()
            .map(|n| NodeRuntime {
                name: n.name,
                comps: n
                    .comps
                    .into_iter()
                    .map(|c| {
                        let s = c.initial();
                        (c, s)
                    })
                    .collect(),
                clock: Time::ZERO,
                strategy: n.strategy,
                pred: ClockPredicate::skew(n.eps),
            })
            .collect();
        ReferenceEngine {
            timed,
            nodes,
            now: Time::ZERO,
            scheduler: self.scheduler,
            events: Vec::new(),
            horizon: self.horizon,
            max_events: self.max_events,
            idle_advances: 0,
            observers: self.observers,
        }
    }
}

/// Where an enabled action came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Timed(usize),
    Node(usize, usize),
}

/// The original naive engine: semantically identical to
/// [`Engine`](crate::Engine), re-scanning everything on every iteration.
///
/// See the module docs (`reference.rs`) for why it is kept.
pub struct ReferenceEngine<A: Action> {
    timed: Vec<TimedRuntime<A>>,
    nodes: Vec<NodeRuntime<A>>,
    now: Time,
    scheduler: Box<dyn Scheduler<A>>,
    events: Vec<TimedEvent<A>>,
    horizon: Option<Time>,
    max_events: usize,
    idle_advances: u32,
    observers: Vec<Box<dyn Observer<A>>>,
}

impl<A: Action> ReferenceEngine<A> {
    /// Starts building a reference engine.
    #[must_use]
    pub fn builder() -> ReferenceEngineBuilder<A> {
        ReferenceEngineBuilder::default()
    }

    /// The current real time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent<A>] {
        &self.events
    }

    /// Extends (or sets) the horizon and continues the run.
    ///
    /// # Errors
    ///
    /// As for [`ReferenceEngine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is earlier than the current time.
    pub fn run_until(&mut self, horizon: Time) -> Result<Run<A>, EngineError> {
        assert!(
            horizon >= self.now,
            "horizon {horizon} is before the current time {}",
            self.now
        );
        self.horizon = Some(horizon);
        self.run()
    }

    /// Runs to quiescence or the horizon.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] when the composition is ill-formed.
    pub fn run(&mut self) -> Result<Run<A>, EngineError> {
        self.run_inner(None)
    }

    /// Runs until the execution holds at least `pause_at` events, then
    /// pauses ([`StopReason::Paused`]); mirrors
    /// [`Engine::run_until_events`](crate::Engine::run_until_events) so the
    /// differential tests can pause both engines at the same grain.
    ///
    /// # Errors
    ///
    /// As for [`ReferenceEngine::run`].
    pub fn run_until_events(&mut self, pause_at: usize) -> Result<Run<A>, EngineError> {
        self.run_inner(Some(pause_at))
    }

    /// Captures a detached snapshot of the current run state — the same
    /// [`EngineCheckpoint`] type [`Engine`](crate::Engine) produces, so
    /// snapshots are interchangeable between the two engines in the
    /// differential tests.
    #[must_use = "a checkpoint is only useful if restored or inspected"]
    pub fn checkpoint(&mut self) -> EngineCheckpoint<A> {
        let cp = EngineCheckpoint {
            now: self.now,
            timed_states: self.timed.iter().map(|rt| rt.state.clone()).collect(),
            node_clocks: self.nodes.iter().map(|n| n.clock).collect(),
            node_states: self
                .nodes
                .iter()
                .map(|n| n.comps.iter().map(|(_, s)| s.clone()).collect())
                .collect(),
            clock_states: self.nodes.iter().map(|n| n.strategy.checkpoint()).collect(),
            scheduler_state: self.scheduler.checkpoint(),
            events: ArenaSnapshot::full(Arc::new(EventArena::from_events(self.events.clone()))),
            idle_advances: self.idle_advances,
            horizon: self.horizon,
        };
        let count = cp.events.len();
        for obs in &mut self.observers {
            obs.on_checkpoint(count);
        }
        cp
    }

    /// Restores the run state captured in `checkpoint`; mirrors
    /// [`Engine::restore`](crate::Engine::restore), including the observer
    /// notification.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shape (component counts) does not match
    /// this engine.
    pub fn restore(&mut self, checkpoint: &EngineCheckpoint<A>) {
        assert_eq!(
            self.timed.len(),
            checkpoint.timed_states.len(),
            "checkpoint shape mismatch: timed component count"
        );
        assert_eq!(
            self.nodes.len(),
            checkpoint.node_clocks.len(),
            "checkpoint shape mismatch: node count"
        );
        self.now = checkpoint.now;
        for (rt, state) in self.timed.iter_mut().zip(&checkpoint.timed_states) {
            rt.state = state.clone();
        }
        for (n, node) in self.nodes.iter_mut().enumerate() {
            node.clock = checkpoint.node_clocks[n];
            let states = &checkpoint.node_states[n];
            assert_eq!(
                node.comps.len(),
                states.len(),
                "checkpoint shape mismatch: components of node {n}"
            );
            for ((_, state), snap) in node.comps.iter_mut().zip(states) {
                *state = snap.clone();
            }
            node.strategy.restore(&checkpoint.clock_states[n]);
        }
        self.scheduler.restore(&checkpoint.scheduler_state);
        self.events = checkpoint.events.events().to_vec();
        self.idle_advances = checkpoint.idle_advances;
        self.horizon = checkpoint.horizon;
        for obs in &mut self.observers {
            obs.on_restore(checkpoint.events.events());
        }
    }

    fn run_inner(&mut self, pause_at: Option<usize>) -> Result<Run<A>, EngineError> {
        loop {
            if let Some(p) = pause_at {
                if self.events.len() >= p {
                    let now = self.now;
                    return Ok(self.finish(StopReason::Paused, now));
                }
            }
            if self.events.len() >= self.max_events {
                return Err(EngineError::EventLimitExceeded {
                    limit: self.max_events,
                    now: self.now,
                });
            }
            if let Some(h) = self.horizon {
                if self.now >= h {
                    return Ok(self.finish(StopReason::Horizon, h));
                }
            }

            let candidates = self.candidates()?;
            if !candidates.is_empty() {
                let (now, depth) = (self.now, candidates.len());
                for obs in &mut self.observers {
                    obs.on_candidates(now, depth);
                }
                let actions: Vec<A> = candidates.iter().map(|(a, _, _)| a.clone()).collect();
                let origins: Vec<usize> = candidates.iter().map(|(_, _, id)| *id).collect();
                let idx = self
                    .scheduler
                    .pick_with_origins(self.now, &actions, &origins);
                assert!(
                    idx < candidates.len(),
                    "scheduler returned out-of-range index"
                );
                let (action, origin, _) = candidates.into_iter().nth(idx).expect("index checked");
                self.fire(&action, origin)?;
                self.idle_advances = 0;
                continue;
            }

            match self.compute_target(self.idle_advances >= IDLE_ADVANCE_FALLBACK)? {
                None => {
                    let ltime = self.horizon.unwrap_or(self.now).max(self.now);
                    return Ok(self.finish(StopReason::Quiescent, ltime));
                }
                Some(target) => {
                    debug_assert!(target > self.now);
                    let capped = match self.horizon {
                        Some(h) if target > h => h,
                        _ => target,
                    };
                    if capped > self.now {
                        self.advance_to(capped)?;
                        self.idle_advances += 1;
                    }
                    if Some(capped) == self.horizon && capped < target {
                        return Ok(self.finish(StopReason::Horizon, capped));
                    }
                }
            }
        }
    }

    fn finish(&mut self, stop: StopReason, ltime: Time) -> Run<A> {
        Run {
            execution: Execution::new(self.events.clone(), ltime.max(self.now)),
            stop,
        }
    }

    /// Collects all enabled locally controlled actions with their origins
    /// and flat component ids.
    ///
    /// The flat id numbers components in insertion order — timed
    /// components first, then each clock node's components — matching the
    /// scheme [`Engine`](crate::Engine) feeds to
    /// [`Scheduler::pick_with_origins`], so origin-aware schedulers (e.g.
    /// round-robin) make identical choices on both engines.
    #[allow(clippy::type_complexity)]
    fn candidates(&self) -> Result<Vec<(A, Origin, usize)>, EngineError> {
        let mut out: Vec<(A, Origin, usize)> = Vec::new();
        let mut flat = 0;
        for (i, rt) in self.timed.iter().enumerate() {
            for a in rt.comp.enabled(&rt.state, self.now) {
                out.push((a, Origin::Timed(i), flat));
            }
            flat += 1;
        }
        for (n, node) in self.nodes.iter().enumerate() {
            for (j, (comp, state)) in node.comps.iter().enumerate() {
                for a in comp.enabled(state, node.clock) {
                    out.push((a, Origin::Node(n, j), flat));
                }
                flat += 1;
            }
        }
        // Two distinct components offering the same action means two
        // controllers: the composition is incompatible (Definition 2.2).
        for (i, (a, o1, _)) in out.iter().enumerate() {
            for (b, o2, _) in out.iter().skip(i + 1) {
                if a == b && o1 != o2 {
                    return Err(EngineError::IncompatibleControllers {
                        first: self.origin_name(*o1),
                        second: self.origin_name(*o2),
                        action: format!("{a:?}"),
                    });
                }
            }
        }
        Ok(out)
    }

    fn origin_name(&self, o: Origin) -> String {
        match o {
            Origin::Timed(i) => self.timed[i].comp.name().to_string(),
            Origin::Node(n, j) => {
                format!("{}/{}", self.nodes[n].name, self.nodes[n].comps[j].0.name())
            }
        }
    }

    /// Applies `action` to every component having it in signature.
    fn fire(&mut self, action: &A, origin: Origin) -> Result<(), EngineError> {
        let kind = match origin {
            Origin::Timed(i) => self.timed[i].comp.classify(action),
            Origin::Node(n, j) => self.nodes[n].comps[j].0.classify(action),
        }
        .expect("origin component must have the action in its signature");
        debug_assert!(kind.is_locally_controlled());

        let mut event_clock: Option<(usize, Time)> = None;

        let now = self.now;
        for (i, rt) in self.timed.iter_mut().enumerate() {
            let Some(k) = rt.comp.classify(action) else {
                continue;
            };
            if k.is_locally_controlled() && Origin::Timed(i) != origin {
                return Err(EngineError::IncompatibleControllers {
                    first: rt.comp.name().to_string(),
                    second: String::from("<origin>"),
                    action: format!("{action:?}"),
                });
            }
            match rt.comp.step(&rt.state, action, now) {
                Some(next) => rt.state = next,
                None if Origin::Timed(i) == origin => {
                    return Err(EngineError::EnabledButRefused {
                        component: rt.comp.name().to_string(),
                        action: format!("{action:?}"),
                        now,
                    })
                }
                None => {
                    return Err(EngineError::InputNotEnabled {
                        component: rt.comp.name().to_string(),
                        action: format!("{action:?}"),
                        now,
                    })
                }
            }
        }

        for (n, node) in self.nodes.iter_mut().enumerate() {
            let clock = node.clock;
            let mut touched = false;
            for (j, (comp, state)) in node.comps.iter_mut().enumerate() {
                let Some(k) = comp.classify(action) else {
                    continue;
                };
                touched = true;
                if k.is_locally_controlled() && Origin::Node(n, j) != origin {
                    return Err(EngineError::IncompatibleControllers {
                        first: format!("{}/{}", node.name, comp.name()),
                        second: String::from("<origin>"),
                        action: format!("{action:?}"),
                    });
                }
                match comp.step(state, action, clock) {
                    Some(next) => *state = next,
                    None if Origin::Node(n, j) == origin => {
                        return Err(EngineError::EnabledButRefused {
                            component: format!("{}/{}", node.name, comp.name()),
                            action: format!("{action:?}"),
                            now,
                        })
                    }
                    None => {
                        return Err(EngineError::InputNotEnabled {
                            component: format!("{}/{}", node.name, comp.name()),
                            action: format!("{action:?}"),
                            now,
                        })
                    }
                }
            }
            if touched && event_clock.is_none() {
                event_clock = Some((n, clock));
            }
        }

        // The reference engine stays dumb on purpose: it allocates a fresh
        // `Arc<str>` per event rather than interning names. `Arc<str>`
        // compares by content, so the differential tests still pin the two
        // engines' executions bit-identical.
        let event = TimedEvent {
            action: action.clone(),
            kind,
            now,
            clock: event_clock.map(|(_, c)| c),
            node: event_clock.map(|(n, _)| std::sync::Arc::from(self.nodes[n].name.as_str())),
        };
        if !self.observers.is_empty() {
            if let Some((n, clock)) = event_clock {
                let eps = self.nodes[n].pred.eps();
                for obs in &mut self.observers {
                    obs.on_clock_read(ClockRead {
                        node: n,
                        now,
                        clock,
                        eps,
                    });
                }
            }
            let index = self.events.len();
            for obs in &mut self.observers {
                obs.on_event(index, &event);
            }
        }
        self.events.push(event);
        Ok(())
    }

    /// The earliest time any component forces an action, or `None` when
    /// time may pass forever.
    fn compute_target(&self, pessimistic: bool) -> Result<Option<Time>, EngineError> {
        let mut target: Option<(Time, String)> = None;
        let mut consider = |t: Time, who: String| match &target {
            Some((best, _)) if *best <= t => {}
            _ => target = Some((t, who)),
        };
        for rt in &self.timed {
            if let Some(d) = rt.comp.deadline(&rt.state, self.now) {
                if d <= self.now {
                    return Err(EngineError::TimeStopped {
                        component: rt.comp.name().to_string(),
                        now: self.now,
                        deadline: d,
                    });
                }
                consider(d, rt.comp.name().to_string());
            }
        }
        for node in &self.nodes {
            for (comp, state) in &node.comps {
                if let Some(dc) = comp.clock_deadline(state, node.clock) {
                    let cap = node.pred.latest_now_for(dc);
                    if cap <= self.now {
                        return Err(EngineError::TimeStopped {
                            component: format!("{}/{}", node.name, comp.name()),
                            now: self.now,
                            deadline: cap,
                        });
                    }
                    let aim = if pessimistic {
                        cap
                    } else {
                        node.strategy
                            .when_reaches(self.now, node.clock, dc)
                            .max(self.now + Duration::NANOSECOND)
                            .min(cap)
                    };
                    consider(aim, format!("{}/{}", node.name, comp.name()));
                }
            }
        }
        Ok(target.map(|(t, _)| t))
    }

    /// Performs `ν` for every component, moving real time to `target` and
    /// each node clock along its strategy.
    fn advance_to(&mut self, target: Time) -> Result<(), EngineError> {
        debug_assert!(target > self.now);
        let now = self.now;
        for obs in &mut self.observers {
            obs.on_advance(now, target);
        }
        for rt in &mut self.timed {
            match rt.comp.advance(&rt.state, self.now, target) {
                Some(next) => rt.state = next,
                None => {
                    return Err(EngineError::AdvanceRefused {
                        component: rt.comp.name().to_string(),
                        now: self.now,
                        target,
                    })
                }
            }
        }
        let observers = &mut self.observers;
        for (n, node) in self.nodes.iter_mut().enumerate() {
            let max_clock = node
                .comps
                .iter()
                .filter_map(|(c, s)| c.clock_deadline(s, node.clock))
                .min();
            if let Some(mc) = max_clock {
                if mc <= node.clock {
                    return Err(EngineError::TimeStopped {
                        component: node.name.to_string(),
                        now: self.now,
                        deadline: node.pred.latest_now_for(mc),
                    });
                }
            }
            let ctx = AdvanceCtx {
                now: self.now,
                clock: node.clock,
                target,
                max_clock,
                eps: node.pred.eps(),
            };
            let next_clock = node.strategy.next_clock(ctx);
            if next_clock <= node.clock {
                return Err(EngineError::StrategyViolation {
                    node: node.name.to_string(),
                    reason: format!(
                        "clock moved from {} to {next_clock}: axiom C3 requires strict increase",
                        node.clock
                    ),
                });
            }
            if !node.pred.holds(target, next_clock) {
                return Err(EngineError::StrategyViolation {
                    node: node.name.to_string(),
                    reason: format!(
                        "clock {next_clock} at real time {target} violates C_ε (ε = {})",
                        node.pred.eps()
                    ),
                });
            }
            if let Some(mc) = max_clock {
                if next_clock > mc {
                    return Err(EngineError::StrategyViolation {
                        node: node.name.to_string(),
                        reason: format!("clock {next_clock} passed the deadline {mc}"),
                    });
                }
            }
            for (comp, state) in &mut node.comps {
                match comp.advance(state, node.clock, next_clock) {
                    Some(next) => *state = next,
                    None => {
                        return Err(EngineError::AdvanceRefused {
                            component: format!("{}/{}", node.name, comp.name()),
                            now,
                            target,
                        })
                    }
                }
            }
            for obs in observers.iter_mut() {
                obs.on_clock_read(ClockRead {
                    node: n,
                    now: target,
                    clock: next_clock,
                    eps: node.pred.eps(),
                });
            }
            node.clock = next_clock;
        }
        self.now = target;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock_driver::PerfectClock;
    use psync_automata::toys::{BeepAction, Beeper, ClockBeeper};

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    #[test]
    fn reference_beeper_fires_at_exact_times() {
        let mut engine = ReferenceEngine::builder()
            .timed(Beeper::new(ms(10)))
            .horizon(at(35))
            .build();
        let run = engine.run().unwrap();
        assert_eq!(run.stop, StopReason::Horizon);
        assert_eq!(
            run.execution.t_trace().as_slice(),
            &[
                (BeepAction::Beep { src: 0, seq: 0 }, at(10)),
                (BeepAction::Beep { src: 0, seq: 1 }, at(20)),
                (BeepAction::Beep { src: 0, seq: 2 }, at(30)),
            ]
        );
    }

    #[test]
    fn reference_clock_node_records_clock_readings() {
        let node = ClockNode::new("n0", ms(2), PerfectClock).with(ClockBeeper::new(ms(10)));
        let mut engine = ReferenceEngine::builder()
            .clock_node(node)
            .horizon(at(25))
            .build();
        let run = engine.run().unwrap();
        assert_eq!(run.execution.len(), 2);
        assert_eq!(run.execution.events()[0].clock, Some(at(10)));
    }
}
