//! Schedulers: the adversary choosing among enabled actions.

use psync_time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses which of the currently enabled locally controlled actions fires
/// next.
///
/// The engine is *eager*: whenever at least one action is enabled, one of
/// them fires before time passes (the urgency of when an action becomes
/// enabled is entirely encoded in component deadlines, so eagerness loses
/// no behaviors for the deadline-driven components in this workspace).
/// The scheduler resolves the remaining nondeterminism — the interleaving
/// of simultaneously enabled actions — and is therefore one of the three
/// adversary knobs of an experiment (with clock strategies and delay
/// policies).
///
/// `candidates` lists the enabled actions in a stable order (timed
/// components first, then clock nodes, each in insertion order);
/// implementations return an index into it.
pub trait Scheduler<A> {
    /// Picks the index of the action to fire. `candidates` is non-empty.
    fn pick(&mut self, now: Time, candidates: &[A]) -> usize;

    /// Like [`Scheduler::pick`], but additionally told which component
    /// each candidate came from: `origins[i]` is an opaque component id
    /// (stable across the whole run, ascending within one call) for
    /// `candidates[i]`. The engine always calls this entry point; the
    /// default ignores the origins, so plain schedulers only implement
    /// [`Scheduler::pick`]. Origin-aware schedulers such as
    /// [`RoundRobinScheduler`] override it.
    fn pick_with_origins(&mut self, now: Time, candidates: &[A], origins: &[usize]) -> usize {
        let _ = origins;
        self.pick(now, candidates)
    }
}

/// Always fires the first enabled action — fully deterministic, favouring
/// components added earlier.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl<A> Scheduler<A> for FifoScheduler {
    fn pick(&mut self, _now: Time, _candidates: &[A]) -> usize {
        0
    }
}

/// Always fires the last enabled action — deterministic, favouring
/// components added later; useful as a cheap second interleaving.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoScheduler;

impl<A> Scheduler<A> for LifoScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        candidates.len() - 1
    }
}

/// Fires a uniformly random enabled action, from a seeded generator —
/// reproducible randomized interleavings.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<A> Scheduler<A> for RandomScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }
}

/// Rotates fairly over candidate *origins* (components): each pick goes to
/// the first component at or after the previous winner's successor, so a
/// chatty component added early cannot starve later ones the way
/// [`FifoScheduler`] does.
///
/// Within the chosen component, the first of its enabled actions fires.
/// When used through plain [`Scheduler::pick`] (no origin information),
/// it degrades to rotating over candidate indices.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler {
    /// Next origin id (or index, in the degraded mode) to prefer.
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates a scheduler starting its rotation at the first component.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl<A> Scheduler<A> for RoundRobinScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        let idx = self.cursor % candidates.len();
        self.cursor = idx + 1;
        idx
    }

    fn pick_with_origins(&mut self, _now: Time, candidates: &[A], origins: &[usize]) -> usize {
        debug_assert_eq!(candidates.len(), origins.len());
        // Origins arrive ascending; take the first at or past the cursor,
        // wrapping to the front when everyone is behind it.
        let idx = origins.iter().position(|&o| o >= self.cursor).unwrap_or(0);
        self.cursor = origins[idx] + 1;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("a{i}")).collect()
    }

    #[test]
    fn fifo_picks_first() {
        let mut s = FifoScheduler;
        assert_eq!(s.pick(Time::ZERO, &labels(3)), 0);
    }

    #[test]
    fn lifo_picks_last() {
        let mut s = LifoScheduler;
        assert_eq!(s.pick(Time::ZERO, &labels(3)), 2);
    }

    #[test]
    fn round_robin_rotates_over_origins() {
        let mut s = RoundRobinScheduler::new();
        let c = labels(3);
        // Three candidates from components 0, 2, 5.
        let origins = [0usize, 2, 5];
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 0); // comp 0
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 1); // comp 2
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 2); // comp 5
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 0); // wraps
    }

    #[test]
    fn round_robin_skips_absent_origins() {
        let mut s = RoundRobinScheduler::new();
        let c = labels(2);
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &[1, 4]), 0);
        // Component 1 no longer offers anything: rotation moves on to 4.
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &[0, 4]), 1);
        // Past the end: wrap to the front.
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &[0, 4]), 0);
    }

    #[test]
    fn round_robin_without_origins_rotates_indices() {
        let mut s = RoundRobinScheduler::new();
        let c = labels(3);
        let picks: Vec<usize> = (0..5).map(|_| s.pick(Time::ZERO, &c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn default_pick_with_origins_delegates_to_pick() {
        let mut s = LifoScheduler;
        assert_eq!(
            s.pick_with_origins(Time::ZERO, &labels(4), &[0, 1, 2, 3]),
            3
        );
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let c = labels(5);
        let picks1: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        let picks2: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        assert_eq!(picks1, picks2, "same seed, same schedule");
        assert!(picks1.iter().all(|&i| i < 5));
        // Different seeds should (virtually always) differ somewhere.
        let picks3: Vec<usize> = {
            let mut s = RandomScheduler::new(43);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        assert_ne!(picks1, picks3);
    }
}
