//! Schedulers: the adversary choosing among enabled actions.

use psync_time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses which of the currently enabled locally controlled actions fires
/// next.
///
/// The engine is *eager*: whenever at least one action is enabled, one of
/// them fires before time passes (the urgency of when an action becomes
/// enabled is entirely encoded in component deadlines, so eagerness loses
/// no behaviors for the deadline-driven components in this workspace).
/// The scheduler resolves the remaining nondeterminism — the interleaving
/// of simultaneously enabled actions — and is therefore one of the three
/// adversary knobs of an experiment (with clock strategies and delay
/// policies).
///
/// `candidates` lists the enabled actions in a stable order (timed
/// components first, then clock nodes, each in insertion order);
/// implementations return an index into it.
pub trait Scheduler<A> {
    /// Picks the index of the action to fire. `candidates` is non-empty.
    fn pick(&mut self, now: Time, candidates: &[A]) -> usize;
}

/// Always fires the first enabled action — fully deterministic, favouring
/// components added earlier.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl<A> Scheduler<A> for FifoScheduler {
    fn pick(&mut self, _now: Time, _candidates: &[A]) -> usize {
        0
    }
}

/// Always fires the last enabled action — deterministic, favouring
/// components added later; useful as a cheap second interleaving.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoScheduler;

impl<A> Scheduler<A> for LifoScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        candidates.len() - 1
    }
}

/// Fires a uniformly random enabled action, from a seeded generator —
/// reproducible randomized interleavings.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<A> Scheduler<A> for RandomScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("a{i}")).collect()
    }

    #[test]
    fn fifo_picks_first() {
        let mut s = FifoScheduler;
        assert_eq!(s.pick(Time::ZERO, &labels(3)), 0);
    }

    #[test]
    fn lifo_picks_last() {
        let mut s = LifoScheduler;
        assert_eq!(s.pick(Time::ZERO, &labels(3)), 2);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let c = labels(5);
        let picks1: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        let picks2: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        assert_eq!(picks1, picks2, "same seed, same schedule");
        assert!(picks1.iter().all(|&i| i < 5));
        // Different seeds should (virtually always) differ somewhere.
        let picks3: Vec<usize> = {
            let mut s = RandomScheduler::new(43);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        assert_ne!(picks1, picks3);
    }
}
