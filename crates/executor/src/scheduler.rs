//! Schedulers: the adversary choosing among enabled actions.

use core::any::Any;

use psync_time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An opaque snapshot of one [`Scheduler`]'s mutable state, captured by
/// [`Scheduler::checkpoint`] and applied by [`Scheduler::restore`].
///
/// Like `ClockCheckpoint`, the snapshot is detached (a deep copy) and
/// reusable: it can seed any number of restores, including into a
/// different scheduler instance of the same concrete type.
pub struct SchedulerCheckpoint(Option<Box<dyn Any>>);

impl SchedulerCheckpoint {
    /// A checkpoint for a scheduler with no mutable state
    /// ([`FifoScheduler`], [`LifoScheduler`]).
    #[must_use]
    pub fn stateless() -> Self {
        SchedulerCheckpoint(None)
    }

    /// Wraps a deep copy of a scheduler's state.
    #[must_use]
    pub fn of<T: Clone + 'static>(state: &T) -> Self {
        SchedulerCheckpoint(Some(Box::new(state.clone())))
    }

    /// Downcasts the captured state, if any was captured and the type
    /// matches.
    #[must_use]
    pub fn state<T: 'static>(&self) -> Option<&T> {
        self.0.as_ref()?.downcast_ref()
    }
}

impl core::fmt::Debug for SchedulerCheckpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("SchedulerCheckpoint(stateful)"),
            None => f.write_str("SchedulerCheckpoint(stateless)"),
        }
    }
}

/// Chooses which of the currently enabled locally controlled actions fires
/// next.
///
/// The engine is *eager*: whenever at least one action is enabled, one of
/// them fires before time passes (the urgency of when an action becomes
/// enabled is entirely encoded in component deadlines, so eagerness loses
/// no behaviors for the deadline-driven components in this workspace).
/// The scheduler resolves the remaining nondeterminism — the interleaving
/// of simultaneously enabled actions — and is therefore one of the three
/// adversary knobs of an experiment (with clock strategies and delay
/// policies).
///
/// `candidates` lists the enabled actions in a stable order (timed
/// components first, then clock nodes, each in insertion order);
/// implementations return an index into it.
pub trait Scheduler<A> {
    /// Picks the index of the action to fire. `candidates` is non-empty.
    fn pick(&mut self, now: Time, candidates: &[A]) -> usize;

    /// Like [`Scheduler::pick`], but additionally told which component
    /// each candidate came from: `origins[i]` is an opaque component id
    /// (stable across the whole run, ascending within one call) for
    /// `candidates[i]`. The engine always calls this entry point; the
    /// default ignores the origins, so plain schedulers only implement
    /// [`Scheduler::pick`]. Origin-aware schedulers such as
    /// [`RoundRobinScheduler`] override it.
    fn pick_with_origins(&mut self, now: Time, candidates: &[A], origins: &[usize]) -> usize {
        let _ = origins;
        self.pick(now, candidates)
    }

    /// Captures the scheduler's mutable state (RNG position, rotation
    /// cursor, pick count). The default is stateless; stateful schedulers
    /// must capture everything their future picks depend on, or the
    /// engine's checkpoint/restore round trip diverges.
    fn checkpoint(&self) -> SchedulerCheckpoint {
        SchedulerCheckpoint::stateless()
    }

    /// Restores state captured by [`Scheduler::checkpoint`]. May be called
    /// repeatedly with the same checkpoint, and on a different instance of
    /// the same concrete type than the one captured.
    fn restore(&mut self, checkpoint: &SchedulerCheckpoint) {
        let _ = checkpoint;
    }
}

/// Always fires the first enabled action — fully deterministic, favouring
/// components added earlier.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl<A> Scheduler<A> for FifoScheduler {
    fn pick(&mut self, _now: Time, _candidates: &[A]) -> usize {
        0
    }
}

/// Always fires the last enabled action — deterministic, favouring
/// components added later; useful as a cheap second interleaving.
#[derive(Debug, Clone, Copy, Default)]
pub struct LifoScheduler;

impl<A> Scheduler<A> for LifoScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        candidates.len() - 1
    }
}

/// Fires a uniformly random enabled action, from a seeded generator —
/// reproducible randomized interleavings.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a scheduler from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl<A> Scheduler<A> for RandomScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }

    fn checkpoint(&self) -> SchedulerCheckpoint {
        SchedulerCheckpoint::of(&self.rng)
    }

    fn restore(&mut self, checkpoint: &SchedulerCheckpoint) {
        if let Some(rng) = checkpoint.state::<StdRng>() {
            self.rng = rng.clone();
        }
    }
}

/// Rotates fairly over candidate *origins* (components): each pick goes to
/// the first component at or after the previous winner's successor, so a
/// chatty component added early cannot starve later ones the way
/// [`FifoScheduler`] does.
///
/// Within the chosen component, the first of its enabled actions fires.
/// When used through plain [`Scheduler::pick`] (no origin information),
/// it degrades to rotating over candidate indices.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinScheduler {
    /// Next origin id (or index, in the degraded mode) to prefer.
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates a scheduler starting its rotation at the first component.
    #[must_use]
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }
}

impl<A> Scheduler<A> for RoundRobinScheduler {
    fn pick(&mut self, _now: Time, candidates: &[A]) -> usize {
        let idx = self.cursor % candidates.len();
        self.cursor = idx + 1;
        idx
    }

    fn pick_with_origins(&mut self, _now: Time, candidates: &[A], origins: &[usize]) -> usize {
        debug_assert_eq!(candidates.len(), origins.len());
        // Origins arrive ascending; take the first at or past the cursor,
        // wrapping to the front when everyone is behind it.
        let idx = origins.iter().position(|&o| o >= self.cursor).unwrap_or(0);
        self.cursor = origins[idx] + 1;
        idx
    }

    fn checkpoint(&self) -> SchedulerCheckpoint {
        SchedulerCheckpoint::of(&self.cursor)
    }

    fn restore(&mut self, checkpoint: &SchedulerCheckpoint) {
        if let Some(cursor) = checkpoint.state::<usize>() {
            self.cursor = *cursor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("a{i}")).collect()
    }

    #[test]
    fn fifo_picks_first() {
        let mut s = FifoScheduler;
        assert_eq!(s.pick(Time::ZERO, &labels(3)), 0);
    }

    #[test]
    fn lifo_picks_last() {
        let mut s = LifoScheduler;
        assert_eq!(s.pick(Time::ZERO, &labels(3)), 2);
    }

    #[test]
    fn round_robin_rotates_over_origins() {
        let mut s = RoundRobinScheduler::new();
        let c = labels(3);
        // Three candidates from components 0, 2, 5.
        let origins = [0usize, 2, 5];
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 0); // comp 0
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 1); // comp 2
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 2); // comp 5
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &origins), 0); // wraps
    }

    #[test]
    fn round_robin_skips_absent_origins() {
        let mut s = RoundRobinScheduler::new();
        let c = labels(2);
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &[1, 4]), 0);
        // Component 1 no longer offers anything: rotation moves on to 4.
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &[0, 4]), 1);
        // Past the end: wrap to the front.
        assert_eq!(s.pick_with_origins(Time::ZERO, &c, &[0, 4]), 0);
    }

    #[test]
    fn round_robin_without_origins_rotates_indices() {
        let mut s = RoundRobinScheduler::new();
        let c = labels(3);
        let picks: Vec<usize> = (0..5).map(|_| s.pick(Time::ZERO, &c)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn default_pick_with_origins_delegates_to_pick() {
        let mut s = LifoScheduler;
        assert_eq!(
            s.pick_with_origins(Time::ZERO, &labels(4), &[0, 1, 2, 3]),
            3
        );
    }

    #[test]
    fn random_checkpoint_round_trips_into_fresh_instance() {
        let c = labels(5);
        let mut original = RandomScheduler::new(42);
        for _ in 0..13 {
            let _ = original.pick(Time::ZERO, &c);
        }
        let cp = Scheduler::<String>::checkpoint(&original);
        let expected: Vec<usize> = (0..20).map(|_| original.pick(Time::ZERO, &c)).collect();
        // Restoring twice from the same checkpoint reproduces the same
        // continuation both times.
        for _ in 0..2 {
            let mut fresh = RandomScheduler::new(42);
            Scheduler::<String>::restore(&mut fresh, &cp);
            let resumed: Vec<usize> = (0..20).map(|_| fresh.pick(Time::ZERO, &c)).collect();
            assert_eq!(resumed, expected);
        }
    }

    #[test]
    fn round_robin_checkpoint_round_trips_cursor() {
        let c = labels(3);
        let origins = [0usize, 2, 5];
        let mut original = RoundRobinScheduler::new();
        let _ = original.pick_with_origins(Time::ZERO, &c, &origins);
        let _ = original.pick_with_origins(Time::ZERO, &c, &origins);
        let cp = Scheduler::<String>::checkpoint(&original);
        let mut fresh = RoundRobinScheduler::new();
        Scheduler::<String>::restore(&mut fresh, &cp);
        assert_eq!(
            fresh.pick_with_origins(Time::ZERO, &c, &origins),
            original.pick_with_origins(Time::ZERO, &c, &origins)
        );
    }

    #[test]
    fn stateless_schedulers_accept_any_checkpoint() {
        let mut s = FifoScheduler;
        let cp = Scheduler::<String>::checkpoint(&s);
        assert!(cp.state::<u64>().is_none());
        Scheduler::<String>::restore(&mut s, &SchedulerCheckpoint::of(&7u64));
        assert_eq!(s.pick(Time::ZERO, &labels(3)), 0);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let c = labels(5);
        let picks1: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        let picks2: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        assert_eq!(picks1, picks2, "same seed, same schedule");
        assert!(picks1.iter().all(|&i| i < 5));
        // Different seeds should (virtually always) differ somewhere.
        let picks3: Vec<usize> = {
            let mut s = RandomScheduler::new(43);
            (0..20).map(|_| s.pick(Time::ZERO, &c)).collect()
        };
        assert_ne!(picks1, picks3);
    }
}
