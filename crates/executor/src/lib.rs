//! Deterministic discrete-event execution engine for compositions of
//! [`psync_automata`] components.
//!
//! The paper treats a distributed system as the *composition* of automata —
//! node algorithms and channel automata (Section 3.3) — and reasons about
//! the set of executions that composition admits. This crate makes those
//! executions concrete: an [`Engine`] holds a set of timed components plus
//! a set of *clock nodes* (groups of clock components sharing one node
//! clock, the clock-automaton composition of Definition 2.7) and produces
//! recorded [`Execution`](psync_automata::Execution)s by alternating two
//! moves:
//!
//! 1. **Fire** a locally controlled action chosen by the [`Scheduler`]
//!    among all currently enabled ones. The action is applied to *every*
//!    component that has it in its signature — the synchronization rule of
//!    Definition 2.2.
//! 2. **Advance time** (the `ν` action) to the earliest deadline any
//!    component imposes, when nothing is enabled. For clock nodes, each
//!    node's [`ClockStrategy`] chooses how that node's clock moves within
//!    the `C_ε` envelope — the engine validates every choice against
//!    axioms C3 (strict clock increase) and the clock predicate.
//!
//! Every run is a pure function of the components, the scheduler, the
//! clock strategies and their seeds: experiments are exactly reproducible.
//!
//! # Example
//!
//! ```
//! use psync_automata::toys::Beeper;
//! use psync_executor::{Engine, StopReason};
//! use psync_time::{Duration, Time};
//!
//! let mut engine = Engine::builder()
//!     .timed(Beeper::new(Duration::from_millis(10)))
//!     .horizon(Time::ZERO + Duration::from_millis(35))
//!     .build();
//! let run = engine.run().unwrap();
//! assert_eq!(run.stop, StopReason::Horizon);
//! assert_eq!(run.execution.len(), 3); // beeps at 10, 20, 30 ms
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock_driver;
mod driver;
mod engine;
mod error;
mod fasthash;
mod observer;
mod reference;
mod scheduler;
mod wakeheap;

pub use clock_driver::{
    AdvanceCtx, ClockCheckpoint, ClockStrategy, DriftClock, OffsetClock, PerfectClock,
    RandomWalkClock, ScriptedClock,
};
pub use driver::Driver;
pub use engine::{ClockNode, Engine, EngineBuilder, EngineCheckpoint, Run, StopReason};
pub use error::EngineError;
pub use observer::{ClockRead, NoopObserver, Observer};
pub use reference::{ReferenceEngine, ReferenceEngineBuilder};
pub use scheduler::{
    FifoScheduler, LifoScheduler, RandomScheduler, RoundRobinScheduler, Scheduler,
    SchedulerCheckpoint,
};
