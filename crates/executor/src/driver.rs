//! The backend-agnostic driver seam: one trait both execution backends
//! implement.
//!
//! The paper's point (Simulations 1 and 2) is that the *same* algorithm
//! text runs against a logical schedule and against real
//! partially-synchronized clocks. This workspace mirrors that with two
//! backends over identical `Component` code:
//!
//! * the simulator — [`Engine`], virtual time, a seeded scheduler, clock
//!   strategies exploring the `C_ε` envelope; and
//! * the live runtime (`psync-live`) — one OS thread per node, wall-clock
//!   time, `Instant`-backed clocks bounded by a *measured* ε̂, channels
//!   with real delays.
//!
//! [`Driver`] is the seam between them: "drive this system to completion
//! and hand back the captured [`Run`]". Everything downstream of a `Run`
//! — the post-hoc `psync_verify` oracles, metrics absorption, trace
//! tooling — is backend-blind, which is what makes live-vs-sim
//! conformance testable at all: run both drivers, judge both captured
//! executions with the same oracle set.

use psync_automata::Action;

use crate::engine::Run;
use crate::Engine;

/// Drives a system of components to completion and captures the run.
///
/// Implementations differ in *where time comes from* (virtual vs. wall
/// clock) and *who schedules* (seeded scheduler vs. the OS), but agree on
/// the artifact: a [`Run`] whose execution the same oracles judge. Errors
/// are strings because the two backends fail differently (model errors
/// vs. I/O and thread failures); callers report them, they don't match on
/// them.
pub trait Driver<A: Action> {
    /// Short identifier for reports and artifacts: `"sim"`, `"live"`.
    fn backend(&self) -> &'static str;

    /// Runs the system to its natural end (horizon, quiescence, or the
    /// backend's wall-clock budget) and returns the captured run.
    ///
    /// # Errors
    ///
    /// A human-readable description of why the run could not complete —
    /// an [`EngineError`](crate::EngineError) rendering for the
    /// simulator, a channel/thread/envelope failure for a live backend.
    fn drive(&mut self) -> Result<Run<A>, String>;
}

impl<A: Action> Driver<A> for Engine<A> {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn drive(&mut self) -> Result<Run<A>, String> {
        self.run().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::toys::Beeper;
    use psync_time::{Duration, Time};

    #[test]
    fn engine_drives_through_the_trait() {
        let mut engine = Engine::builder()
            .timed(Beeper::new(Duration::from_millis(10)))
            .horizon(Time::ZERO + Duration::from_millis(35))
            .build();
        let driver: &mut dyn Driver<_> = &mut engine;
        assert_eq!(driver.backend(), "sim");
        let run = driver.drive().expect("beeper run completes");
        assert_eq!(run.execution.len(), 3);
    }
}
