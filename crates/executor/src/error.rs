//! Engine failure modes.

use core::fmt;

use psync_time::Time;

/// Why a run could not proceed.
///
/// These are *model* errors: a correct composition of correct components
/// never produces one. They exist so that bugs in user components surface
/// as diagnoses instead of silently-wrong executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A component classified an action as input but refused the step —
    /// a violation of input-enabledness (Definition 2.1 requires each state
    /// to have a transition for each input action).
    InputNotEnabled {
        /// The refusing component.
        component: String,
        /// Debug rendering of the action.
        action: String,
        /// Time of the attempted step.
        now: Time,
    },
    /// A component reported an action as enabled but then refused to
    /// perform it.
    EnabledButRefused {
        /// The inconsistent component.
        component: String,
        /// Debug rendering of the action.
        action: String,
        /// Time of the attempted step.
        now: Time,
    },
    /// Two components both claim to control (output or internal) the same
    /// action — the compositions of Definition 2.2 require
    /// `out(A_i) ∩ out(A_j) = ∅` and `int(A_i) ∩ acts(A_j) = ∅`.
    IncompatibleControllers {
        /// First claiming component.
        first: String,
        /// Second claiming component.
        second: String,
        /// Debug rendering of the action.
        action: String,
    },
    /// Time cannot pass (a deadline is due) but no action is enabled: the
    /// composition has "stopped time", which a feasible automaton must not
    /// do.
    TimeStopped {
        /// The component whose deadline is due.
        component: String,
        /// Current time.
        now: Time,
        /// The due deadline.
        deadline: Time,
    },
    /// A component refused a `ν` advance that its own deadline permitted.
    AdvanceRefused {
        /// The refusing component.
        component: String,
        /// Current time.
        now: Time,
        /// Attempted target.
        target: Time,
    },
    /// A clock strategy produced a clock value violating axiom C3
    /// (strict increase), the clock predicate `C_ε`, or a clock deadline.
    StrategyViolation {
        /// The offending node.
        node: String,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The event limit was reached, which usually indicates a Zeno
    /// composition (infinitely many actions at one time point).
    EventLimitExceeded {
        /// The limit that was hit.
        limit: usize,
        /// Time at which it was hit.
        now: Time,
    },
    /// An injected action ([`Engine::inject`](crate::Engine::inject))
    /// matched no component's signature: it would be recorded without
    /// anyone stepping on it, which is always a plumbing bug in the
    /// driving runtime (wrong node, stale route, mistyped action).
    UnclaimedInjection {
        /// Debug rendering of the injected action.
        action: String,
        /// Time of the attempted injection.
        now: Time,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InputNotEnabled {
                component,
                action,
                now,
            } => write!(
                f,
                "component `{component}` is not input-enabled for {action} at {now}"
            ),
            EngineError::EnabledButRefused {
                component,
                action,
                now,
            } => write!(
                f,
                "component `{component}` reported {action} enabled at {now} but refused the step"
            ),
            EngineError::IncompatibleControllers {
                first,
                second,
                action,
            } => write!(
                f,
                "components `{first}` and `{second}` both control {action}: composition is incompatible"
            ),
            EngineError::TimeStopped {
                component,
                now,
                deadline,
            } => write!(
                f,
                "time stopped at {now}: `{component}` has deadline {deadline} but nothing is enabled"
            ),
            EngineError::AdvanceRefused {
                component,
                now,
                target,
            } => write!(
                f,
                "component `{component}` refused ν from {now} to {target} within its own deadline"
            ),
            EngineError::StrategyViolation { node, reason } => {
                write!(f, "clock strategy for node `{node}` misbehaved: {reason}")
            }
            EngineError::EventLimitExceeded { limit, now } => write!(
                f,
                "event limit {limit} exceeded at {now}: composition is likely Zeno"
            ),
            EngineError::UnclaimedInjection { action, now } => write!(
                f,
                "injected action {action} at {now} matched no component signature"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_culprit() {
        let e = EngineError::InputNotEnabled {
            component: "node-3".into(),
            action: "RECV".into(),
            now: Time::ZERO,
        };
        assert!(e.to_string().contains("node-3"));
        assert!(e.to_string().contains("RECV"));

        let e = EngineError::TimeStopped {
            component: "channel".into(),
            now: Time::ZERO,
            deadline: Time::ZERO,
        };
        assert!(e.to_string().contains("time stopped"));
    }
}
