//! The execution engine: composition + run loop.
//!
//! # Incremental architecture
//!
//! The engine is *incremental*: instead of re-querying every component on
//! every loop iteration it maintains
//!
//! * a per-component **enabled cache** with a dirty set — only components
//!   whose state or clock changed since the last query are re-asked for
//!   their enabled actions;
//! * a static **routing table** built once at [`EngineBuilder::build`] from
//!   the components' [`TimedComponent::action_names`] hints, so firing an
//!   action visits only the components that might have it in signature;
//! * **wake-up heaps** fed by the components'
//!   [`TimedComponent::wake_hint`] promises: a time advance wakes only the
//!   components whose promised wake time has come due (popped from a lazy
//!   min-heap in deterministic `(deadline, component-index)` order) plus
//!   the components that made no promise, instead of advancing and
//!   re-querying all of them — O(woken · log n) per advance instead of
//!   O(n);
//! * a **deadline scratch** that carries each node's minimum clock deadline
//!   from [`compute_target`](Engine::run) to the immediately following
//!   time advance (the states have not changed in between, so the reuse is
//!   exact).
//!
//! The event log is an arena ([`EventArena`]) shared by `Arc`: run
//! snapshots, checkpoints and observers all view the same flat storage,
//! so snapshotting is O(1) and the engine copy-on-writes only when it
//! appends past a still-live snapshot.
//!
//! All of this is invisible in the recorded executions: the candidate
//! order, scheduler consultation and event log are bit-identical to the
//! straightforward scan-everything implementation preserved in
//! [`ReferenceEngine`](crate::ReferenceEngine) (see the
//! `engine_equiv` integration tests).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use psync_automata::ClockComponent;
use psync_automata::{
    Action, ArenaSnapshot, ClockComponentBox, ClockPredicate, ComponentBox, DynState, EventArena,
    Execution, TimedComponent, TimedEvent, WakeHint,
};
use psync_time::{Duration, Time};

use crate::clock_driver::{AdvanceCtx, ClockCheckpoint, ClockStrategy};
use crate::error::EngineError;
use crate::fasthash::FastBuildHasher;
use crate::observer::{ClockRead, Observer};
use crate::scheduler::{FifoScheduler, Scheduler, SchedulerCheckpoint};
use crate::wakeheap::WakeHeap;

/// Default cap on recorded events, guarding against Zeno compositions.
const DEFAULT_MAX_EVENTS: usize = 1_000_000;

/// After this many consecutive estimate-guided advances with no event, the
/// engine falls back to the `Dc + ε` hard cap to guarantee progress.
const IDLE_ADVANCE_FALLBACK: u32 = 8;

struct TimedRuntime<A: Action> {
    comp: ComponentBox<A>,
    state: DynState,
}

struct NodeRuntime<A: Action> {
    /// Interned at `build()`: the engine shares this one allocation into
    /// every event the node performs (an `Arc` refcount bump per event,
    /// never a `String` clone).
    name: Arc<str>,
    comps: Vec<(ClockComponentBox<A>, DynState)>,
    clock: Time,
    strategy: Box<dyn ClockStrategy>,
    pred: ClockPredicate,
}

/// A group of clock components sharing one node clock — the clock-automaton
/// composition of Definition 2.7, plus the clock *behavior* (strategy) and
/// envelope (`ε`) that the paper's clock subsystem would provide.
///
/// # Examples
///
/// ```
/// use psync_automata::toys::ClockBeeper;
/// use psync_executor::{ClockNode, PerfectClock};
/// use psync_time::Duration;
///
/// let node = ClockNode::new("n0", Duration::from_millis(2), PerfectClock)
///     .with(ClockBeeper::new(Duration::from_millis(10)));
/// ```
pub struct ClockNode<A: Action> {
    pub(crate) name: String,
    pub(crate) eps: Duration,
    pub(crate) strategy: Box<dyn ClockStrategy>,
    pub(crate) comps: Vec<ClockComponentBox<A>>,
}

impl<A: Action> ClockNode<A> {
    /// Creates an empty node with skew bound `eps` and a clock strategy.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        eps: Duration,
        strategy: impl ClockStrategy + 'static,
    ) -> Self {
        assert!(!eps.is_negative(), "skew bound must be non-negative");
        ClockNode {
            name: name.into(),
            eps,
            strategy: Box::new(strategy),
            comps: Vec::new(),
        }
    }

    /// Adds a clock component to the node.
    #[must_use]
    pub fn with<C: ClockComponent<Action = A>>(mut self, comp: C) -> Self {
        self.comps.push(ClockComponentBox::new(comp));
        self
    }

    /// Adds an already-boxed clock component to the node.
    #[must_use]
    pub fn with_boxed(mut self, comp: ClockComponentBox<A>) -> Self {
        self.comps.push(comp);
        self
    }

    /// The node's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The time horizon was reached.
    Horizon,
    /// No component had anything left to do and no deadline was pending.
    Quiescent,
    /// An [`Engine::run_until_events`] pause point was reached. The engine
    /// state is exactly the state between two events of the uninterrupted
    /// run: calling `run` (or `run_until_events` again) continues
    /// bit-identically.
    Paused,
}

/// A detached, deep snapshot of an engine's run state, captured by
/// [`Engine::checkpoint`] and resumed by [`Engine::restore`] — the
/// operational form of the paper's pasting lemma (Lemma 2.1): an
/// admissible execution can be cut at any state and resumed from there.
///
/// The snapshot captures *pure run state* only: real time, every
/// component's `DynState` (deep-cloned via `clone_box`), node clocks,
/// clock-strategy state (drift offsets, RNG positions, scripted rejection
/// counts), scheduler state, and the accumulated execution prefix (shared
/// by `Arc`, so a checkpoint is O(components), not O(events)). Static
/// configuration — the components themselves, routing tables, `ε` bounds,
/// `max_events` — is *not* captured: it belongs to the engine a checkpoint
/// is restored into. That makes checkpoints portable across engine
/// instances built from structurally compatible configurations (same
/// component layout), which is exactly what the explorer's prefix-sharing
/// shrink probes need: a probe engine is built from a *different* fault
/// plan and then restored from the base run's checkpoint taken before the
/// plans diverge.
///
/// The engine's derived caches (enabled cache, dirty set, duplicate map,
/// deadline scratch) are deliberately omitted: restore marks everything
/// dirty, and the next refresh rebuilds them from the restored states —
/// the all-dirty rebuild produces bit-identical candidate lists, so the
/// resumed run is indistinguishable from an uninterrupted one.
pub struct EngineCheckpoint<A: Action> {
    pub(crate) now: Time,
    pub(crate) timed_states: Vec<DynState>,
    pub(crate) node_clocks: Vec<Time>,
    pub(crate) node_states: Vec<Vec<DynState>>,
    pub(crate) clock_states: Vec<ClockCheckpoint>,
    pub(crate) scheduler_state: SchedulerCheckpoint,
    pub(crate) events: ArenaSnapshot<A>,
    pub(crate) idle_advances: u32,
    pub(crate) horizon: Option<Time>,
}

impl<A: Action> EngineCheckpoint<A> {
    /// Real time at the moment of capture.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The captured execution prefix (every event recorded before the
    /// checkpoint, oldest first).
    #[must_use]
    pub fn events(&self) -> &[TimedEvent<A>] {
        self.events.events()
    }

    /// The captured prefix as an O(1) arena view, for callers that want to
    /// share the storage onward (shrink-probe ladders, recorded runs).
    #[must_use]
    pub fn events_snapshot(&self) -> &ArenaSnapshot<A> {
        &self.events
    }

    /// Number of events in the captured prefix — the checkpoint's position
    /// in the run.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

/// The result of a completed run: the recorded execution and why it ended.
#[derive(Debug, Clone)]
pub struct Run<A> {
    /// The recorded execution.
    pub execution: Execution<A>,
    /// Why the run ended.
    pub stop: StopReason,
}

/// Builds an [`Engine`] from components, nodes and policies.
pub struct EngineBuilder<A: Action> {
    timed: Vec<ComponentBox<A>>,
    nodes: Vec<ClockNode<A>>,
    scheduler: Box<dyn Scheduler<A>>,
    horizon: Option<Time>,
    max_events: usize,
    observers: Vec<Box<dyn Observer<A>>>,
}

impl<A: Action> Default for EngineBuilder<A> {
    fn default() -> Self {
        EngineBuilder {
            timed: Vec::new(),
            nodes: Vec::new(),
            scheduler: Box::new(FifoScheduler),
            horizon: None,
            max_events: DEFAULT_MAX_EVENTS,
            observers: Vec::new(),
        }
    }
}

impl<A: Action> EngineBuilder<A> {
    /// Adds a timed component (channel, environment, workload, node
    /// algorithm in the timed model…).
    #[must_use]
    pub fn timed<C: TimedComponent<Action = A>>(mut self, comp: C) -> Self {
        self.timed.push(ComponentBox::new(comp));
        self
    }

    /// Adds an already-boxed timed component.
    #[must_use]
    pub fn timed_boxed(mut self, comp: ComponentBox<A>) -> Self {
        self.timed.push(comp);
        self
    }

    /// Adds a clock node (a group of clock components sharing one clock).
    #[must_use]
    pub fn clock_node(mut self, node: ClockNode<A>) -> Self {
        self.nodes.push(node);
        self
    }

    /// Sets the scheduler (default: [`FifoScheduler`]).
    #[must_use]
    pub fn scheduler(mut self, s: impl Scheduler<A> + 'static) -> Self {
        self.scheduler = Box::new(s);
        self
    }

    /// Stops the run when real time reaches `horizon`.
    #[must_use]
    pub fn horizon(mut self, horizon: Time) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Caps the number of recorded events (default 1 000 000).
    #[must_use]
    pub fn max_events(mut self, max: usize) -> Self {
        self.max_events = max;
        self
    }

    /// Attaches an [`Observer`]; may be called several times, observers are
    /// notified in attachment order. Observers are read-only taps — the
    /// recorded execution is bit-identical with or without them.
    #[must_use]
    pub fn observer(mut self, obs: impl Observer<A> + 'static) -> Self {
        self.observers.push(Box::new(obs));
        self
    }

    /// Attaches an already-boxed observer.
    #[must_use]
    pub fn observer_boxed(mut self, obs: Box<dyn Observer<A>>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Builds the engine with all components in their start states and
    /// `now = clock = 0` (axioms S1 and C1).
    ///
    /// This is also where the static **routing table** is assembled: each
    /// component's [`TimedComponent::action_names`] hint is read once, and
    /// components are indexed by the action names they admit. Components
    /// without a hint land in the wildcard set and are visited for every
    /// action, so hint-less components behave exactly as before.
    #[must_use]
    pub fn build(self) -> Engine<A> {
        let timed: Vec<TimedRuntime<A>> = self
            .timed
            .into_iter()
            .map(|comp| {
                let state = comp.initial();
                TimedRuntime { comp, state }
            })
            .collect();
        let nodes: Vec<NodeRuntime<A>> = self
            .nodes
            .into_iter()
            .map(|n| NodeRuntime {
                name: Arc::from(n.name.as_str()),
                comps: n
                    .comps
                    .into_iter()
                    .map(|c| {
                        let s = c.initial();
                        (c, s)
                    })
                    .collect(),
                clock: Time::ZERO,
                strategy: n.strategy,
                pred: ClockPredicate::skew(n.eps),
            })
            .collect();

        // Flat component index space: timed components first, then each
        // node's components, all in insertion order. This is the engine's
        // canonical iteration order; everything below preserves it.
        let mut flat_origin: Vec<Origin> = (0..timed.len()).map(Origin::Timed).collect();
        for (n, node) in nodes.iter().enumerate() {
            flat_origin.extend((0..node.comps.len()).map(|j| Origin::Node(n, j)));
        }

        let mut hinted: HashMap<&'static str, Vec<usize>> = HashMap::new();
        let mut wildcard: Vec<usize> = Vec::new();
        for (id, origin) in flat_origin.iter().enumerate() {
            let hint = match *origin {
                Origin::Timed(i) => timed[i].comp.action_names(),
                Origin::Node(n, j) => nodes[n].comps[j].0.action_names(),
            };
            match hint {
                None => wildcard.push(id),
                Some(names) => {
                    for name in names {
                        let ids = hinted.entry(name).or_default();
                        if ids.last() != Some(&id) {
                            ids.push(id);
                        }
                    }
                }
            }
        }
        // Merge each hinted list with the wildcard ids *once*, here: firing
        // an action then iterates a precomputed ascending visit list with no
        // per-event merge work. (A component is hinted or wildcard, never
        // both, so the merge never produces duplicates.)
        let route: HashMap<&'static str, Rc<[usize]>, FastBuildHasher> = hinted
            .into_iter()
            .map(|(name, ids)| {
                let mut merged = Vec::with_capacity(ids.len() + wildcard.len());
                let (mut i, mut j) = (0, 0);
                while i < ids.len() && j < wildcard.len() {
                    if ids[i] < wildcard[j] {
                        merged.push(ids[i]);
                        i += 1;
                    } else {
                        merged.push(wildcard[j]);
                        j += 1;
                    }
                }
                merged.extend_from_slice(&ids[i..]);
                merged.extend_from_slice(&wildcard[j..]);
                (name, Rc::from(merged))
            })
            .collect();
        let wildcard: Rc<[usize]> = Rc::from(wildcard);

        let flat_count = flat_origin.len();
        let node_count = nodes.len();
        let timed_count = timed.len();
        // The arena is born knowing every node name: events then share the
        // interned `Arc<str>`s, and index-based consumers can resolve a
        // name without touching the events.
        let mut arena = EventArena::new();
        for node in &nodes {
            arena.intern(&node.name);
        }
        Engine {
            timed,
            nodes,
            now: Time::ZERO,
            scheduler: self.scheduler,
            events: Arc::new(arena),
            horizon: self.horizon,
            max_events: self.max_events,
            idle_advances: 0,
            observers: self.observers,
            flat_origin,
            route,
            wildcard,
            enabled_cache: vec![Vec::new(); flat_count],
            dirty: vec![true; flat_count],
            dirty_ids: Vec::new(),
            all_dirty: true,
            seg_len: vec![0; flat_count],
            dup_map: HashMap::default(),
            cand: Vec::new(),
            cand_origin: Vec::new(),
            node_dc_scratch: vec![None; node_count],
            dc_scratch_valid: false,
            wake_cached: vec![WakeHint::Always; timed_count],
            dl_cached: vec![None; timed_count],
            wake_heap: WakeHeap::new(),
            dl_heap: WakeHeap::new(),
            always_ids: Vec::new(),
            in_always: vec![false; timed_count],
            touched_scratch: Vec::new(),
        }
    }
}

/// Where an enabled action came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Timed(usize),
    Node(usize, usize),
}

/// The composed system plus its run state.
///
/// See the [crate docs](crate) for the execution semantics, the
/// crate-level example for typical use, and the module docs (`engine.rs`) for
/// the incremental machinery (routing table, enabled cache, deadline
/// scratch) that keeps the run loop from rescanning every component on
/// every event.
pub struct Engine<A: Action> {
    timed: Vec<TimedRuntime<A>>,
    nodes: Vec<NodeRuntime<A>>,
    now: Time,
    scheduler: Box<dyn Scheduler<A>>,
    events: Arc<EventArena<A>>,
    horizon: Option<Time>,
    max_events: usize,
    idle_advances: u32,
    /// Read-only taps notified at the four observation points (see
    /// [`Observer`]); empty unless attached, in which case every hook site
    /// iterates an empty vector.
    observers: Vec<Box<dyn Observer<A>>>,

    // ---- incremental machinery (derived, never observable in traces) ----
    /// Flat component id → where it lives. Timed components first, then
    /// node components, all in insertion order.
    flat_origin: Vec<Origin>,
    /// Action name → ascending flat ids of the components to visit when
    /// firing an action of that name (hinted components listing the name,
    /// pre-merged with the wildcard ids). Fast-hashed: looked up once per
    /// fired event.
    route: HashMap<&'static str, Rc<[usize]>, FastBuildHasher>,
    /// Flat ids of components without an `action_names` hint (ascending);
    /// the visit list for action names no hint mentions.
    wildcard: Rc<[usize]>,
    /// Per-component cached `enabled()` result; valid iff not dirty.
    enabled_cache: Vec<Vec<A>>,
    /// Components whose state or clock changed since their cache entry was
    /// last refreshed.
    dirty: Vec<bool>,
    /// The ids currently flagged in `dirty`, unordered (sorted on use);
    /// meaningless while `all_dirty` is set. Lets the refresh visit only
    /// the changed components instead of scanning every flag.
    dirty_ids: Vec<usize>,
    /// Every component is dirty (initial state, and after every time
    /// advance) — cheaper than pushing all ids into `dirty_ids`.
    all_dirty: bool,
    /// `seg_len[id]` is the number of candidates component `id`
    /// contributes to `cand` — the length of its segment in the
    /// concatenation invariant (see `refresh_candidates`).
    seg_len: Vec<u32>,
    /// Currently enabled action → the flat id offering it, maintained
    /// incrementally as caches refresh. Two components claiming the same
    /// action is the Definition 2.2 incompatibility; the map detects it in
    /// O(dirty) per event instead of a pairwise scan over all candidates.
    /// Fast-hashed: every offer of every dirty component is hashed on every
    /// refresh, making this the hottest hashing site in the engine.
    dup_map: HashMap<A, usize, FastBuildHasher>,
    /// Scratch: current candidates, concatenation of the caches in flat
    /// order.
    cand: Vec<A>,
    /// Scratch: `cand_origin[i]` is the flat id that offered `cand[i]`
    /// (ascending).
    cand_origin: Vec<usize>,
    /// Per-node minimum clock deadline computed by `compute_target`, reused
    /// by the immediately following `advance_to` (states are unchanged in
    /// between, so the value is exact, not a heuristic).
    node_dc_scratch: Vec<Option<Time>>,
    dc_scratch_valid: bool,
    /// Timed component `id`'s wake hint as of its last cache refresh
    /// (indexed by flat id, which equals the timed index; node components
    /// are not tracked here — their hints are consulted inline per
    /// advance, on the clock-time basis).
    wake_cached: Vec<WakeHint>,
    /// Timed component `id`'s deadline as of the same refresh; meaningful
    /// only while `wake_cached[id]` is not `Always` (an `Always` component
    /// promises nothing, so its deadline is re-queried on every
    /// `compute_target`).
    dl_cached: Vec<Option<Time>>,
    /// Lazy min-heap of `(wake time, timed id)`. An entry is live iff the
    /// component still caches exactly that `At(time)` hint; stale entries
    /// are discarded when popped. Pushes are unconditional on every
    /// refresh — duplicates are cheaper than a lookup structure and are
    /// bounded by `rebuild_heaps`.
    wake_heap: WakeHeap,
    /// Lazy min-heap of `(deadline, timed id)` over the non-`Always` timed
    /// components; an entry is live iff the component still caches that
    /// deadline. Its live top is the earliest timed deadline
    /// `compute_target` needs, found without scanning.
    dl_heap: WakeHeap,
    /// Timed ids currently hinting `Always` (lazy membership: an entry is
    /// live iff `in_always[id]`; stale and duplicate entries are dropped
    /// on iteration or by periodic compaction).
    always_ids: Vec<usize>,
    in_always: Vec<bool>,
    /// Scratch for the ids woken by one time advance.
    touched_scratch: Vec<usize>,
}

impl<A: Action> Engine<A> {
    /// Starts building an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder<A> {
        EngineBuilder::default()
    }

    /// The current real time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The current clock of node `idx` (in insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn node_clock(&self, idx: usize) -> Time {
        self.nodes[idx].clock
    }

    /// Views the state of timed component `idx` as a concrete type, for
    /// tests and diagnostics.
    #[must_use]
    pub fn timed_state<S: 'static>(&self, idx: usize) -> Option<&S> {
        self.timed.get(idx)?.state.downcast_ref::<S>()
    }

    /// The events recorded so far.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent<A>] {
        self.events.events()
    }

    /// Extends (or sets) the horizon and continues the run — incremental
    /// driving for interactive exploration. The returned execution always
    /// contains *all* events since the start, so a sequence of
    /// `run_until` calls observes the same execution a single `run` with
    /// the final horizon would have produced (the engine's state persists
    /// between calls).
    ///
    /// # Examples
    ///
    /// ```
    /// use psync_automata::toys::Beeper;
    /// use psync_executor::Engine;
    /// use psync_time::{Duration, Time};
    ///
    /// let ms = Duration::from_millis;
    /// let mut engine = Engine::builder().timed(Beeper::new(ms(7))).build();
    /// let first = engine.run_until(Time::ZERO + ms(10))?;
    /// assert_eq!(first.execution.len(), 1); // the 7 ms beep
    /// let second = engine.run_until(Time::ZERO + ms(20))?;
    /// assert_eq!(second.execution.len(), 2); // 7 ms and 14 ms
    /// # Ok::<(), psync_executor::EngineError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As for [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is earlier than the current time (time cannot
    /// run backwards).
    pub fn run_until(&mut self, horizon: Time) -> Result<Run<A>, EngineError> {
        assert!(
            horizon >= self.now,
            "horizon {horizon} is before the current time {}",
            self.now
        );
        self.horizon = Some(horizon);
        self.run()
    }

    /// Runs to quiescence or the horizon, consuming the engine's current
    /// state and returning the recorded execution.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] when the composition is ill-formed (see
    /// the error type for the catalogue); the partial event history is
    /// available through [`Engine::events`] afterwards.
    pub fn run(&mut self) -> Result<Run<A>, EngineError> {
        self.run_inner(None)
    }

    /// Runs until the execution holds at least `pause_at` events, then
    /// pauses ([`StopReason::Paused`]) with the engine state exactly as it
    /// is between two events of the uninterrupted run — the natural grain
    /// for [`Engine::checkpoint`]. If the run ends (horizon, quiescence)
    /// before reaching `pause_at` events, the natural stop reason is
    /// returned instead. A paused engine resumes with [`Engine::run`] or a
    /// further `run_until_events`, bit-identically to never having paused.
    ///
    /// Pausing is event-count-based on purpose: a time-based cut could
    /// split a `ν` advance in two, which consults the clock strategies
    /// with different targets than the uninterrupted run would.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run`].
    pub fn run_until_events(&mut self, pause_at: usize) -> Result<Run<A>, EngineError> {
        self.run_inner(Some(pause_at))
    }

    /// Like [`Engine::run_until`], but guarantees `now == horizon` on a
    /// clean return: if the run goes quiescent short of the horizon, time
    /// is advanced through `ν` to the horizon anyway (possibly enabling
    /// clock-deadline work, which is then run too).
    ///
    /// [`Engine::run_until`] deliberately leaves a quiescent engine's
    /// clock where it stopped — the simulator has no use for idle time.
    /// A live runtime does: wall time passes whether or not the node has
    /// work, and an injection ([`Engine::inject`]) must be recorded at
    /// the *current wall time*, not at whenever the node last had
    /// something to do. Quiescence here is exactly the case where
    /// arbitrary delay is legal (no deadline is pending), so pushing `ν`
    /// to the horizon stays inside the model.
    ///
    /// # Errors
    ///
    /// As for [`Engine::run`].
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is earlier than the current time.
    pub fn run_idle_until(&mut self, horizon: Time) -> Result<Run<A>, EngineError> {
        loop {
            let run = self.run_until(horizon)?;
            if self.now >= horizon {
                return Ok(run);
            }
            self.advance_to(horizon)?;
        }
    }

    /// Applies an *environment-supplied* input action at the current time
    /// and records it — exactly as if an external composition partner had
    /// just fired it as its output.
    ///
    /// This is the seam a live runtime drives: an engine that holds only
    /// one node of a distributed system receives that node's message
    /// deliveries (with their *measured* wire delays) and workload
    /// invocations through `inject`, while everything the node itself
    /// controls still fires through the normal scheduling loop. Injection
    /// is synchronous and ordered: the event is appended to the log at
    /// [`Engine::now`], observers see it like any engine-fired event, and
    /// the next [`Engine::run_until`] call resumes with the components
    /// already stepped.
    ///
    /// Every interested component must classify the action as
    /// [`ActionKind::Input`](psync_automata::ActionKind) — the environment
    /// controls an injected action, so a locally-controlled claim is the
    /// same incompatibility as two composed components both claiming an
    /// output. The recorded event carries the clock of the unique node
    /// that steps on it (the `c_i(α)` of Section 4.3), like any other.
    ///
    /// # Errors
    ///
    /// [`EngineError::IncompatibleControllers`] if a component claims the
    /// action as locally controlled; [`EngineError::InputNotEnabled`] if a
    /// component has it in signature but refuses the step;
    /// [`EngineError::UnclaimedInjection`] if no component has it in
    /// signature at all (the injection would vanish without a trace, which
    /// is always a plumbing bug in the caller).
    pub fn inject(&mut self, action: A) -> Result<(), EngineError> {
        self.dc_scratch_valid = false;
        let interested: Rc<[usize]> = self
            .route
            .get(action.name())
            .cloned()
            .unwrap_or_else(|| Rc::clone(&self.wildcard));
        let mut event_clock: Option<(usize, Time)> = None;
        let mut stepped = false;
        let now = self.now;
        for &id in interested.iter() {
            match self.flat_origin[id] {
                Origin::Timed(i) => {
                    let rt = &mut self.timed[i];
                    let Some(k) = rt.comp.classify(&action) else {
                        continue;
                    };
                    if k.is_locally_controlled() {
                        return Err(EngineError::IncompatibleControllers {
                            first: rt.comp.name().to_string(),
                            second: String::from("<injected>"),
                            action: format!("{action:?}"),
                        });
                    }
                    match rt.comp.step(&rt.state, &action, now) {
                        Some(next) => {
                            rt.state = next;
                            stepped = true;
                            if !self.dirty[id] {
                                self.dirty[id] = true;
                                self.dirty_ids.push(id);
                            }
                        }
                        None => {
                            return Err(EngineError::InputNotEnabled {
                                component: rt.comp.name().to_string(),
                                action: format!("{action:?}"),
                                now,
                            })
                        }
                    }
                }
                Origin::Node(n, j) => {
                    let node = &mut self.nodes[n];
                    let clock = node.clock;
                    let (comp, state) = &mut node.comps[j];
                    let Some(k) = comp.classify(&action) else {
                        continue;
                    };
                    if event_clock.is_none() {
                        event_clock = Some((n, clock));
                    }
                    if k.is_locally_controlled() {
                        return Err(EngineError::IncompatibleControllers {
                            first: format!("{}/{}", node.name, comp.name()),
                            second: String::from("<injected>"),
                            action: format!("{action:?}"),
                        });
                    }
                    match comp.step(state, &action, clock) {
                        Some(next) => {
                            *state = next;
                            stepped = true;
                            if !self.dirty[id] {
                                self.dirty[id] = true;
                                self.dirty_ids.push(id);
                            }
                        }
                        None => {
                            return Err(EngineError::InputNotEnabled {
                                component: format!("{}/{}", node.name, comp.name()),
                                action: format!("{action:?}"),
                                now,
                            })
                        }
                    }
                }
            }
        }
        if !stepped {
            return Err(EngineError::UnclaimedInjection {
                action: format!("{action:?}"),
                now,
            });
        }
        let event = TimedEvent {
            node: event_clock.map(|(n, _)| Arc::clone(&self.nodes[n].name)),
            action,
            kind: psync_automata::ActionKind::Input,
            now,
            clock: event_clock.map(|(_, c)| c),
        };
        if !self.observers.is_empty() {
            if let Some((n, clock)) = event_clock {
                let eps = self.nodes[n].pred.eps();
                for obs in &mut self.observers {
                    obs.on_clock_read(ClockRead {
                        node: n,
                        now,
                        clock,
                        eps,
                    });
                }
            }
            let index = self.events.len();
            for obs in &mut self.observers {
                obs.on_event(index, &event);
            }
        }
        Arc::make_mut(&mut self.events).push(event);
        Ok(())
    }

    /// Captures a detached snapshot of the current run state. See
    /// [`EngineCheckpoint`] for what is (and is not) captured. Observers
    /// are notified via [`Observer::on_checkpoint`]; like every hook this
    /// is read-only, so checkpointing never perturbs the run.
    #[must_use = "a checkpoint is only useful if restored or inspected"]
    pub fn checkpoint(&mut self) -> EngineCheckpoint<A> {
        let cp = EngineCheckpoint {
            now: self.now,
            timed_states: self.timed.iter().map(|rt| rt.state.clone()).collect(),
            node_clocks: self.nodes.iter().map(|n| n.clock).collect(),
            node_states: self
                .nodes
                .iter()
                .map(|n| n.comps.iter().map(|(_, s)| s.clone()).collect())
                .collect(),
            clock_states: self.nodes.iter().map(|n| n.strategy.checkpoint()).collect(),
            scheduler_state: self.scheduler.checkpoint(),
            events: ArenaSnapshot::full(Arc::clone(&self.events)),
            idle_advances: self.idle_advances,
            horizon: self.horizon,
        };
        let count = cp.events.len();
        for obs in &mut self.observers {
            obs.on_checkpoint(count);
        }
        cp
    }

    /// Restores the run state captured in `checkpoint`, discarding the
    /// engine's current state. The engine must be structurally compatible
    /// with the one that captured the snapshot: same number of timed
    /// components, nodes and per-node components (their *configurations*
    /// may differ — that is the point of detached checkpoints). Continuing
    /// the run afterwards is bit-identical to continuing the captured
    /// engine, provided the configurations agree on everything the
    /// remaining events depend on.
    ///
    /// Derived caches are not restored; everything is marked dirty and the
    /// next refresh rebuilds them from the restored states, producing
    /// identical candidate lists. Observers are notified via
    /// [`Observer::on_restore`] with the restored prefix, so stateful
    /// observers can rebuild their own context.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shape (component counts) does not match
    /// this engine.
    pub fn restore(&mut self, checkpoint: &EngineCheckpoint<A>) {
        assert_eq!(
            self.timed.len(),
            checkpoint.timed_states.len(),
            "checkpoint shape mismatch: timed component count"
        );
        assert_eq!(
            self.nodes.len(),
            checkpoint.node_clocks.len(),
            "checkpoint shape mismatch: node count"
        );
        self.now = checkpoint.now;
        for (rt, state) in self.timed.iter_mut().zip(&checkpoint.timed_states) {
            rt.state = state.clone();
        }
        for (n, node) in self.nodes.iter_mut().enumerate() {
            node.clock = checkpoint.node_clocks[n];
            let states = &checkpoint.node_states[n];
            assert_eq!(
                node.comps.len(),
                states.len(),
                "checkpoint shape mismatch: components of node {n}"
            );
            for ((_, state), snap) in node.comps.iter_mut().zip(states) {
                *state = snap.clone();
            }
            node.strategy.restore(&checkpoint.clock_states[n]);
        }
        self.scheduler.restore(&checkpoint.scheduler_state);
        // Checkpoints taken by an engine always view their whole arena
        // (appending past a live snapshot copy-on-writes), so this is an
        // `Arc` clone; a proper prefix view materializes a truncated copy.
        self.events = checkpoint.events.to_arena();
        self.idle_advances = checkpoint.idle_advances;
        self.horizon = checkpoint.horizon;
        // Derived caches — including the wake/deadline heaps, which hold
        // no state a checkpoint would need — are rebuilt from the restored
        // states on the next refresh; the all-dirty rebuild yields
        // identical candidate lists and re-notes every hint.
        self.invalidate_caches();
        for obs in &mut self.observers {
            obs.on_restore(checkpoint.events.events());
        }
    }

    /// Forks the run: builds a sibling engine from `builder` and restores
    /// this engine's current state into it. The sibling continues
    /// independently — its events, component states and RNG positions no
    /// longer affect this engine (the shared execution prefix is
    /// copy-on-write). The builder must describe a structurally compatible
    /// system (see [`Engine::restore`]); components are not cloneable, so
    /// the caller supplies the sibling's configuration.
    ///
    /// # Panics
    ///
    /// Panics if `builder` does not match this engine's shape.
    #[must_use = "the fork is a new engine; dropping it discards the fork"]
    pub fn fork(&mut self, builder: EngineBuilder<A>) -> Engine<A> {
        let cp = self.checkpoint();
        let mut sibling = builder.build();
        sibling.restore(&cp);
        sibling
    }

    fn run_inner(&mut self, pause_at: Option<usize>) -> Result<Run<A>, EngineError> {
        loop {
            if let Some(p) = pause_at {
                if self.events.len() >= p {
                    let now = self.now;
                    return Ok(self.finish(StopReason::Paused, now));
                }
            }
            if self.events.len() >= self.max_events {
                return Err(EngineError::EventLimitExceeded {
                    limit: self.max_events,
                    now: self.now,
                });
            }
            if let Some(h) = self.horizon {
                if self.now >= h {
                    return Ok(self.finish(StopReason::Horizon, h));
                }
            }

            self.refresh_candidates()?;
            if !self.cand.is_empty() {
                let (now, depth) = (self.now, self.cand.len());
                for obs in &mut self.observers {
                    obs.on_candidates(now, depth);
                }
                let idx = self
                    .scheduler
                    .pick_with_origins(self.now, &self.cand, &self.cand_origin);
                assert!(
                    idx < self.cand.len(),
                    "scheduler returned out-of-range index"
                );
                // Clone exactly the picked action — the candidate list is
                // maintained in place across events (see
                // `refresh_candidates`), so the other candidates are never
                // re-cloned, and this one slot must stay intact for the
                // next splice.
                let origin = self.flat_origin[self.cand_origin[idx]];
                let action = self.cand[idx].clone();
                self.fire(action, origin)?;
                self.idle_advances = 0;
                continue;
            }

            match self.compute_target(self.idle_advances >= IDLE_ADVANCE_FALLBACK)? {
                None => {
                    let ltime = self.horizon.unwrap_or(self.now).max(self.now);
                    return Ok(self.finish(StopReason::Quiescent, ltime));
                }
                Some(target) => {
                    debug_assert!(target > self.now);
                    let capped = match self.horizon {
                        Some(h) if target > h => h,
                        _ => target,
                    };
                    if capped > self.now {
                        self.advance_to(capped)?;
                        self.idle_advances += 1;
                    }
                    if Some(capped) == self.horizon && capped < target {
                        return Ok(self.finish(StopReason::Horizon, capped));
                    }
                }
            }
        }
    }

    fn finish(&mut self, stop: StopReason, ltime: Time) -> Run<A> {
        // O(1): the run keeps an arena view of the shared event log. The
        // engine copy-on-writes (`Arc::make_mut`) only if it appends again
        // while this snapshot is still alive.
        Run {
            execution: Execution::from_snapshot(
                ArenaSnapshot::full(Arc::clone(&self.events)),
                ltime.max(self.now),
            ),
            stop,
        }
    }

    /// Refreshes the enabled caches of dirty components and patches the
    /// candidate list.
    ///
    /// Invariant (holds whenever the scheduler is consulted): `cand` is
    /// the concatenation of the enabled caches in flat order — the same
    /// order the scan-everything engine produces: timed components in
    /// insertion order, then node components, each component's `enabled()`
    /// result in its own order — `cand_origin[i]` is the flat id owning
    /// `cand[i]`, and `seg_len[id]` is the length of id's segment.
    ///
    /// The list is maintained *in place*: only the dirty components'
    /// segments are spliced out and replaced (a tail memmove), instead of
    /// re-cloning every candidate of every component on every event. An
    /// event typically dirties two components out of many, so this turns
    /// the per-event cost from O(total candidates) clones into O(dirty
    /// segments) clones plus a memmove.
    ///
    /// When *everything* is dirty — the state after any time advance —
    /// per-segment splicing would pay one tail memmove per component for
    /// a list that is being wholly replaced anyway, so that case takes a
    /// flat rebuild instead: same re-queries, same duplicate-map
    /// registrations in the same id order, one append-only pass over the
    /// list. The two paths leave identical state; only the shuffling
    /// differs.
    fn refresh_candidates(&mut self) -> Result<(), EngineError> {
        if self.all_dirty {
            return self.rebuild_candidates();
        }
        // Ascending order keeps both the splice arithmetic and the
        // conflict attribution ("first" vs "second" claimant)
        // identical to a full scan in id order.
        self.dirty_ids.sort_unstable();
        // Pass 1: retire the dirty components' old offers from the
        // duplicate map. Only entries a component owns are removed — by the
        // map's invariant (a conflicting claim ends the run on the spot) an
        // entry under another id belongs to a component that still offers
        // the action.
        for k in 0..self.dirty_ids.len() {
            let id = self.dirty_ids[k];
            for a in &self.enabled_cache[id] {
                if self.dup_map.get(a) == Some(&id) {
                    self.dup_map.remove(a);
                }
            }
        }
        // Pass 2: re-query, re-register, splice. Two distinct components
        // offering the same action value means two controllers: the
        // composition is incompatible (Definition 2.2). The persistent map
        // detects a conflict the moment it first exists — the same loop
        // iteration a pairwise scan over all candidates would — in
        // O(dirty) per event.
        for k in 0..self.dirty_ids.len() {
            let id = self.dirty_ids[k];
            let fresh = match self.flat_origin[id] {
                Origin::Timed(i) => {
                    let rt = &self.timed[i];
                    rt.comp.enabled(&rt.state, self.now)
                }
                Origin::Node(n, j) => {
                    let node = &self.nodes[n];
                    let (comp, state) = &node.comps[j];
                    comp.enabled(state, node.clock)
                }
            };
            for a in &fresh {
                // Entry API: one hash lookup per action instead of a
                // `get` + `insert` pair. Pass 1 retired this component's
                // own offers, so the entry is vacant in the common case;
                // occupied-by-self only happens when a component offers
                // the same action twice, occupied-by-other is the
                // Definition 2.2 incompatibility.
                let owner = match self.dup_map.entry(a.clone()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(v) => *v.insert(id),
                };
                if owner != id {
                    return Err(EngineError::IncompatibleControllers {
                        first: self.origin_name(self.flat_origin[owner]),
                        second: self.origin_name(self.flat_origin[id]),
                        action: format!("{a:?}"),
                    });
                }
            }
            // Replace id's segment of the candidate list. Earlier dirty
            // ids have already been spliced, so the prefix sum over
            // `seg_len` is the segment's current start.
            let start: usize = self.seg_len[..id].iter().map(|&l| l as usize).sum();
            let old_len = self.seg_len[id] as usize;
            self.cand
                .splice(start..start + old_len, fresh.iter().cloned());
            self.cand_origin
                .splice(start..start + old_len, std::iter::repeat_n(id, fresh.len()));
            self.seg_len[id] = u32::try_from(fresh.len()).expect("candidate count fits u32");
            self.enabled_cache[id] = fresh;
            self.dirty[id] = false;
            if id < self.timed.len() {
                self.note_timed(id);
            }
        }
        self.dirty_ids.clear();
        // Lazy structures accumulate stale duplicates; once they exceed a
        // small multiple of the component count, rebuild them exactly from
        // the (now all-fresh) caches.
        let cap = 2 * self.timed.len() + 64;
        if self.wake_heap.len() > cap || self.dl_heap.len() > cap {
            self.rebuild_heaps();
        }
        if self.always_ids.len() > self.timed.len() + 16 {
            self.always_ids.clear();
            for id in 0..self.timed.len() {
                if self.in_always[id] {
                    self.always_ids.push(id);
                }
            }
        }
        Ok(())
    }

    /// The all-dirty refresh: re-queries every component and rebuilds the
    /// candidate list append-only. Every map entry's owner is dirty, so
    /// retiring old offers is one `clear()`; re-registration then visits
    /// ids in the same ascending order as the splice path, keeping
    /// conflict attribution identical.
    fn rebuild_candidates(&mut self) -> Result<(), EngineError> {
        self.dup_map.clear();
        self.cand.clear();
        self.cand_origin.clear();
        // Everything is re-noted below, so the wake structures restart
        // empty instead of accumulating one stale generation per rebuild.
        self.wake_heap.clear();
        self.dl_heap.clear();
        self.always_ids.clear();
        self.in_always.fill(false);
        for id in 0..self.flat_origin.len() {
            let fresh = match self.flat_origin[id] {
                Origin::Timed(i) => {
                    let rt = &self.timed[i];
                    rt.comp.enabled(&rt.state, self.now)
                }
                Origin::Node(n, j) => {
                    let node = &self.nodes[n];
                    let (comp, state) = &node.comps[j];
                    comp.enabled(state, node.clock)
                }
            };
            for a in &fresh {
                let owner = match self.dup_map.entry(a.clone()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(v) => *v.insert(id),
                };
                if owner != id {
                    return Err(EngineError::IncompatibleControllers {
                        first: self.origin_name(self.flat_origin[owner]),
                        second: self.origin_name(self.flat_origin[id]),
                        action: format!("{a:?}"),
                    });
                }
            }
            self.cand.extend(fresh.iter().cloned());
            self.cand_origin
                .extend(std::iter::repeat_n(id, fresh.len()));
            self.seg_len[id] = u32::try_from(fresh.len()).expect("candidate count fits u32");
            self.enabled_cache[id] = fresh;
            self.dirty[id] = false;
            if id < self.timed.len() {
                self.note_timed(id);
            }
        }
        self.all_dirty = false;
        self.dirty_ids.clear();
        Ok(())
    }

    /// Records timed component `id`'s wake hint — and, unless the hint is
    /// `Always`, its deadline — right after its enabled cache was
    /// refreshed. Heap entries are pushed unconditionally: a push per
    /// refresh is cheaper than any in-heap lookup, and a popped or
    /// superseded entry is recognized as stale because it no longer
    /// matches these caches.
    fn note_timed(&mut self, id: usize) {
        let rt = &self.timed[id];
        let hint = rt.comp.wake_hint(&rt.state, self.now);
        self.wake_cached[id] = hint;
        if hint == WakeHint::Always {
            self.dl_cached[id] = None;
            if !self.in_always[id] {
                self.in_always[id] = true;
                self.always_ids.push(id);
            }
            return;
        }
        self.in_always[id] = false;
        if let WakeHint::At(t) = hint {
            self.wake_heap.push(t, id);
        }
        let d = rt.comp.deadline(&rt.state, self.now);
        self.dl_cached[id] = d;
        if let Some(d) = d {
            self.dl_heap.push(d, id);
        }
    }

    /// Rebuilds both heaps exactly from the caches, dropping every stale
    /// duplicate. Only called when nothing is dirty, so every cache entry
    /// is current.
    fn rebuild_heaps(&mut self) {
        self.wake_heap.clear();
        self.dl_heap.clear();
        for id in 0..self.timed.len() {
            match self.wake_cached[id] {
                WakeHint::Always => {}
                hint => {
                    if let WakeHint::At(t) = hint {
                        self.wake_heap.push(t, id);
                    }
                    if let Some(d) = self.dl_cached[id] {
                        self.dl_heap.push(d, id);
                    }
                }
            }
        }
    }

    /// Forgets every derived cache. Called after a mid-advance error
    /// (states may be partially advanced, so nothing cached can be
    /// trusted) and by [`Engine::restore`].
    fn invalidate_caches(&mut self) {
        self.dirty.fill(true);
        self.dirty_ids.clear();
        self.all_dirty = true;
        self.dc_scratch_valid = false;
        self.wake_heap.clear();
        self.dl_heap.clear();
        self.always_ids.clear();
        self.in_always.fill(false);
    }

    fn origin_name(&self, o: Origin) -> String {
        match o {
            Origin::Timed(i) => self.timed[i].comp.name().to_string(),
            Origin::Node(n, j) => {
                format!("{}/{}", self.nodes[n].name, self.nodes[n].comps[j].0.name())
            }
        }
    }

    /// Applies `action` to every component having it in signature.
    ///
    /// Routed: only the components whose `action_names` hint lists
    /// `action.name()` — plus the wildcard components — are visited, in
    /// flat (insertion) order. By the hint contract every skipped
    /// component classifies the action as `None`, so the sequence of
    /// components actually stepped is identical to a full scan.
    fn fire(&mut self, action: A, origin: Origin) -> Result<(), EngineError> {
        let kind = match origin {
            Origin::Timed(i) => self.timed[i].comp.classify(&action),
            Origin::Node(n, j) => self.nodes[n].comps[j].0.classify(&action),
        }
        .expect("origin component must have the action in its signature");
        debug_assert!(kind.is_locally_controlled());
        self.dc_scratch_valid = false;

        // The visit list was merged (routed + wildcard, ascending) at build
        // time; an action name no hint mentions visits the wildcard
        // components alone. The `Rc` clone is a refcount bump, freeing
        // `self` for the mutable component steps below.
        let interested: Rc<[usize]> = self
            .route
            .get(action.name())
            .cloned()
            .unwrap_or_else(|| Rc::clone(&self.wildcard));

        // The clock recorded with the event is the clock of the (unique)
        // node that has the action in its signature — the `c_i(α)` of
        // Section 4.3. Actions touching no clock node carry no clock.
        let mut event_clock: Option<(usize, Time)> = None;

        let now = self.now;
        for &id in interested.iter() {
            match self.flat_origin[id] {
                Origin::Timed(i) => {
                    let rt = &mut self.timed[i];
                    let Some(k) = rt.comp.classify(&action) else {
                        continue;
                    };
                    if k.is_locally_controlled() && Origin::Timed(i) != origin {
                        return Err(EngineError::IncompatibleControllers {
                            first: rt.comp.name().to_string(),
                            second: String::from("<origin>"),
                            action: format!("{action:?}"),
                        });
                    }
                    match rt.comp.step(&rt.state, &action, now) {
                        Some(next) => {
                            rt.state = next;
                            if !self.dirty[id] {
                                self.dirty[id] = true;
                                self.dirty_ids.push(id);
                            }
                        }
                        None if Origin::Timed(i) == origin => {
                            return Err(EngineError::EnabledButRefused {
                                component: rt.comp.name().to_string(),
                                action: format!("{action:?}"),
                                now,
                            })
                        }
                        None => {
                            return Err(EngineError::InputNotEnabled {
                                component: rt.comp.name().to_string(),
                                action: format!("{action:?}"),
                                now,
                            })
                        }
                    }
                }
                Origin::Node(n, j) => {
                    let node = &mut self.nodes[n];
                    let clock = node.clock;
                    let (comp, state) = &mut node.comps[j];
                    let Some(k) = comp.classify(&action) else {
                        continue;
                    };
                    if event_clock.is_none() {
                        event_clock = Some((n, clock));
                    }
                    if k.is_locally_controlled() && Origin::Node(n, j) != origin {
                        return Err(EngineError::IncompatibleControllers {
                            first: format!("{}/{}", node.name, comp.name()),
                            second: String::from("<origin>"),
                            action: format!("{action:?}"),
                        });
                    }
                    match comp.step(state, &action, clock) {
                        Some(next) => {
                            *state = next;
                            if !self.dirty[id] {
                                self.dirty[id] = true;
                                self.dirty_ids.push(id);
                            }
                        }
                        None if Origin::Node(n, j) == origin => {
                            return Err(EngineError::EnabledButRefused {
                                component: format!("{}/{}", node.name, comp.name()),
                                action: format!("{action:?}"),
                                now,
                            })
                        }
                        None => {
                            return Err(EngineError::InputNotEnabled {
                                component: format!("{}/{}", node.name, comp.name()),
                                action: format!("{action:?}"),
                                now,
                            })
                        }
                    }
                }
            }
        }

        // The action moves into the event (it was handed over by value from
        // the candidate list) and the node name is the interned `Arc<str>`
        // shared by every event of that node — neither costs an allocation.
        let event = TimedEvent {
            node: event_clock.map(|(n, _)| Arc::clone(&self.nodes[n].name)),
            action,
            kind,
            now,
            clock: event_clock.map(|(_, c)| c),
        };
        if !self.observers.is_empty() {
            if let Some((n, clock)) = event_clock {
                let eps = self.nodes[n].pred.eps();
                for obs in &mut self.observers {
                    obs.on_clock_read(ClockRead {
                        node: n,
                        now,
                        clock,
                        eps,
                    });
                }
            }
            let index = self.events.len();
            for obs in &mut self.observers {
                obs.on_event(index, &event);
            }
        }
        Arc::make_mut(&mut self.events).push(event);
        Ok(())
    }

    /// The earliest time any component forces an action, or `None` when
    /// time may pass forever.
    ///
    /// Real-time deadlines are taken as-is. A *clock* deadline `Dc` forces
    /// the node clock to stop at `Dc`, which can happen no later than real
    /// time `Dc + ε` (clock predicate `C_ε`); the engine normally aims for
    /// the strategy's own estimate of when its clock reaches `Dc`, so that
    /// fast clocks really do act early. When several estimate-guided
    /// advances in a row produce no event (`pessimistic`), it falls back to
    /// the hard cap to guarantee progress.
    ///
    /// # Errors
    ///
    /// Detects stopped time: a deadline at or before `now` with nothing
    /// enabled (the caller guarantees no candidates exist).
    fn compute_target(&mut self, pessimistic: bool) -> Result<Option<Time>, EngineError> {
        // Track only the minimum and the (flat) index it came from; the
        // component *name* — a `String` the old implementation allocated
        // for every component on every call — is materialised lazily, on
        // the error path alone.
        let mut best: Option<Time> = None;
        let consider = |t: Time, best: &mut Option<Time>| match best {
            Some(b) if *b <= t => {}
            _ => *best = Some(t),
        };
        // ---- timed components: heap fast path -------------------------
        // `Always` components promise nothing across time passage, so
        // their deadlines are re-queried on every call (compacting the
        // membership list as stale entries surface). Everything else
        // cached its deadline at its last refresh; the earliest live one
        // sits at the top of the lazy heap once stale entries are popped.
        // A deadline at or before `now` is an anomaly (nothing is enabled,
        // yet something is due): rerun the legacy scan so the
        // `TimeStopped` error names the same (first-in-flat-order)
        // component the reference engine would.
        let mut anomaly = false;
        let mut k = 0;
        while k < self.always_ids.len() {
            let id = self.always_ids[k];
            if !self.in_always[id] {
                self.always_ids.swap_remove(k);
                continue;
            }
            k += 1;
            let rt = &self.timed[id];
            if let Some(d) = rt.comp.deadline(&rt.state, self.now) {
                if d <= self.now {
                    anomaly = true;
                    break;
                }
                consider(d, &mut best);
            }
        }
        while !anomaly {
            let Some((d, id)) = self.dl_heap.peek() else {
                break;
            };
            let live = self.wake_cached[id] != WakeHint::Always && self.dl_cached[id] == Some(d);
            if !live {
                let _ = self.dl_heap.pop();
                continue;
            }
            if d <= self.now {
                anomaly = true;
            } else {
                consider(d, &mut best);
            }
            break;
        }
        if anomaly {
            best = None;
            for rt in &self.timed {
                if let Some(d) = rt.comp.deadline(&rt.state, self.now) {
                    if d <= self.now {
                        return Err(EngineError::TimeStopped {
                            component: rt.comp.name().to_string(),
                            now: self.now,
                            deadline: d,
                        });
                    }
                    consider(d, &mut best);
                }
            }
        }
        // ---- clock nodes: one legacy pass (it also fills the deadline
        // scratch and must consult each strategy exactly once) -----------
        for (n, node) in self.nodes.iter().enumerate() {
            let mut node_min_dc: Option<Time> = None;
            for (comp, state) in &node.comps {
                if let Some(dc) = comp.clock_deadline(state, node.clock) {
                    let cap = node.pred.latest_now_for(dc);
                    if cap <= self.now {
                        return Err(EngineError::TimeStopped {
                            component: format!("{}/{}", node.name, comp.name()),
                            now: self.now,
                            deadline: cap,
                        });
                    }
                    let aim = if pessimistic {
                        cap
                    } else {
                        node.strategy
                            .when_reaches(self.now, node.clock, dc)
                            .max(self.now + Duration::NANOSECOND)
                            .min(cap)
                    };
                    consider(aim, &mut best);
                    consider(dc, &mut node_min_dc);
                }
            }
            // Remember the node's earliest clock deadline for the
            // `advance_to` that follows: no state changes in between, so
            // the value is still exact there.
            self.node_dc_scratch[n] = node_min_dc;
        }
        self.dc_scratch_valid = true;
        Ok(best)
    }

    /// Performs `ν`, moving real time to `target` and each node clock
    /// along its strategy.
    ///
    /// Only the components that can be *touched* by the advance are woken:
    /// every `Always`-mode timed component plus every timed component
    /// whose promised wake time falls inside the advance, popped from the
    /// wake heap in deterministic order (stale entries discarded against
    /// the caches). Skipped components promised — via their
    /// [`TimedComponent::wake_hint`] — that this advance is the identity
    /// on their state and that their cached enabled set, deadline and hint
    /// remain exact, so neither their state nor their caches are invalid
    /// afterwards. Node components make the same promise on the clock-time
    /// basis and are consulted inline. When the hints wake most of the
    /// system anyway, the next refresh is handed the cheaper all-dirty
    /// rebuild instead of per-segment splices.
    ///
    /// Any mid-advance error leaves partially advanced states behind, so
    /// every error path forgets all derived caches first.
    fn advance_to(&mut self, target: Time) -> Result<(), EngineError> {
        debug_assert!(target > self.now);
        let now = self.now;
        for obs in &mut self.observers {
            obs.on_advance(now, target);
        }
        let use_scratch = self.dc_scratch_valid;
        self.dc_scratch_valid = false;

        // ---- timed components: wake only what the hints allow ----------
        // Ascending id order (after sort+dedup — the lazy structures may
        // yield duplicates) keeps first-refuser error attribution
        // identical to the legacy whole-system scan: a skipped component
        // promised its advance succeeds, so the first refuser among the
        // woken ids is the first refuser outright.
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        let mut k = 0;
        while k < self.always_ids.len() {
            let id = self.always_ids[k];
            if self.in_always[id] {
                touched.push(id);
                k += 1;
            } else {
                self.always_ids.swap_remove(k);
            }
        }
        while let Some((t, id)) = self.wake_heap.pop_le(target) {
            if self.wake_cached[id] == WakeHint::At(t) {
                touched.push(id);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &id in &touched {
            let rt = &mut self.timed[id];
            match rt.comp.advance(&rt.state, now, target) {
                Some(next) => rt.state = next,
                None => {
                    let component = rt.comp.name().to_string();
                    self.touched_scratch = touched;
                    self.invalidate_caches();
                    return Err(EngineError::AdvanceRefused {
                        component,
                        now,
                        target,
                    });
                }
            }
            if !self.dirty[id] {
                self.dirty[id] = true;
                self.dirty_ids.push(id);
            }
        }
        let mut dirtied = touched.len();
        self.touched_scratch = touched;

        // ---- clock nodes: the legacy loop, with hint-gated advances ----
        // Every node is still visited (its strategy must be consulted and
        // its clock validated exactly once per `ν`), but a component whose
        // `clock_wake` promises sleep past the new clock value skips the
        // state-cloning `advance` call and stays clean.
        let mut failed: Option<EngineError> = None;
        let mut flat = self.timed.len();
        'nodes: for (n, node) in self.nodes.iter_mut().enumerate() {
            let base = flat;
            flat += node.comps.len();
            let max_clock = if use_scratch {
                self.node_dc_scratch[n]
            } else {
                node.comps
                    .iter()
                    .filter_map(|(c, s)| c.clock_deadline(s, node.clock))
                    .min()
            };
            if let Some(mc) = max_clock {
                if mc <= node.clock {
                    // A clock deadline is due but nothing fired: the node
                    // has stopped time.
                    failed = Some(EngineError::TimeStopped {
                        component: node.name.to_string(),
                        now,
                        deadline: node.pred.latest_now_for(mc),
                    });
                    break 'nodes;
                }
            }
            let ctx = AdvanceCtx {
                now,
                clock: node.clock,
                target,
                max_clock,
                eps: node.pred.eps(),
            };
            let next_clock = node.strategy.next_clock(ctx);
            if next_clock <= node.clock {
                failed = Some(EngineError::StrategyViolation {
                    node: node.name.to_string(),
                    reason: format!(
                        "clock moved from {} to {next_clock}: axiom C3 requires strict increase",
                        node.clock
                    ),
                });
                break 'nodes;
            }
            if !node.pred.holds(target, next_clock) {
                failed = Some(EngineError::StrategyViolation {
                    node: node.name.to_string(),
                    reason: format!(
                        "clock {next_clock} at real time {target} violates C_ε (ε = {})",
                        node.pred.eps()
                    ),
                });
                break 'nodes;
            }
            if let Some(mc) = max_clock {
                if next_clock > mc {
                    failed = Some(EngineError::StrategyViolation {
                        node: node.name.to_string(),
                        reason: format!("clock {next_clock} passed the deadline {mc}"),
                    });
                    break 'nodes;
                }
            }
            for (j, (comp, state)) in node.comps.iter_mut().enumerate() {
                match comp.clock_wake(state, node.clock) {
                    WakeHint::Never => continue,
                    WakeHint::At(t) if t > next_clock => continue,
                    _ => {}
                }
                match comp.advance(state, node.clock, next_clock) {
                    Some(next) => *state = next,
                    None => {
                        failed = Some(EngineError::AdvanceRefused {
                            component: format!("{}/{}", node.name, comp.name()),
                            now,
                            target,
                        });
                        break 'nodes;
                    }
                }
                let id = base + j;
                if !self.dirty[id] {
                    self.dirty[id] = true;
                    self.dirty_ids.push(id);
                }
                dirtied += 1;
            }
            for obs in self.observers.iter_mut() {
                obs.on_clock_read(ClockRead {
                    node: n,
                    now: target,
                    clock: next_clock,
                    eps: node.pred.eps(),
                });
            }
            node.clock = next_clock;
        }
        if let Some(err) = failed {
            self.invalidate_caches();
            return Err(err);
        }
        if dirtied * 2 >= self.flat_origin.len() {
            self.dirty.fill(true);
            self.dirty_ids.clear();
            self.all_dirty = true;
        }
        self.now = target;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock_driver::{OffsetClock, PerfectClock};
    use crate::scheduler::RandomScheduler;
    use psync_automata::toys::{BeepAction, Beeper, ClockBeeper, Echo, EchoAction};
    use psync_automata::ActionKind;
    use psync_automata::TimedTrace;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    #[test]
    fn beeper_fires_at_exact_times() {
        let mut engine = Engine::builder()
            .timed(Beeper::new(ms(10)))
            .horizon(at(35))
            .build();
        let run = engine.run().unwrap();
        assert_eq!(run.stop, StopReason::Horizon);
        let trace = run.execution.t_trace();
        assert_eq!(
            trace.as_slice(),
            &[
                (BeepAction::Beep { src: 0, seq: 0 }, at(10)),
                (BeepAction::Beep { src: 0, seq: 1 }, at(20)),
                (BeepAction::Beep { src: 0, seq: 2 }, at(30)),
            ]
        );
        assert_eq!(run.execution.ltime(), at(35));
    }

    #[test]
    fn quiescent_system_stops() {
        let mut engine = Engine::builder().timed(Echo::new(ms(1))).build();
        let run = engine.run().unwrap();
        assert_eq!(run.stop, StopReason::Quiescent);
        assert!(run.execution.is_empty());
    }

    #[test]
    fn run_idle_until_advances_a_quiescent_engine_to_the_horizon() {
        let mut engine = Engine::builder().timed(Echo::new(ms(3))).build();
        let run = engine.run_idle_until(at(10)).unwrap();
        assert_eq!(engine.now(), at(10));
        assert!(run.execution.is_empty());
        // An injection lands at the pushed-forward time, and the work it
        // enables runs on the next call — the live-runtime loop shape.
        engine.inject(EchoAction::Ping { id: 7 }).unwrap();
        assert_eq!(engine.events()[0].now, at(10));
        let run = engine.run_idle_until(at(20)).unwrap();
        assert_eq!(engine.now(), at(20));
        assert_eq!(
            run.execution.t_trace().as_slice(),
            &[
                (EchoAction::Ping { id: 7 }, at(10)),
                (EchoAction::Pong { id: 7 }, at(13)),
            ]
        );
    }

    #[test]
    fn clock_beeper_with_perfect_clock_matches_real_time() {
        let node = ClockNode::new("n0", ms(2), PerfectClock).with(ClockBeeper::new(ms(10)));
        let mut engine = Engine::builder().clock_node(node).horizon(at(25)).build();
        let run = engine.run().unwrap();
        let trace = run.execution.t_trace();
        assert_eq!(
            trace.as_slice(),
            &[
                (BeepAction::Beep { src: 0, seq: 0 }, at(10)),
                (BeepAction::Beep { src: 0, seq: 1 }, at(20)),
            ]
        );
        // Events carry the node clock.
        assert_eq!(run.execution.events()[0].clock, Some(at(10)));
    }

    #[test]
    fn slow_clock_delays_beeps_by_eps() {
        // A clock slow by the full ε = 2 ms reads 10 ms only when real time
        // is 12 ms: the beep moves to 12 ms of real time but 10 ms of clock.
        let node = ClockNode::new("n0", ms(2), OffsetClock::new(ms(-2), ms(2)))
            .with(ClockBeeper::new(ms(10)));
        let mut engine = Engine::builder().clock_node(node).horizon(at(25)).build();
        let run = engine.run().unwrap();
        let ev = &run.execution.events()[0];
        assert_eq!(ev.now, at(12));
        assert_eq!(ev.clock, Some(at(10)));
    }

    #[test]
    fn fast_clock_advances_beeps_by_eps() {
        let node = ClockNode::new("n0", ms(2), OffsetClock::new(ms(2), ms(2)))
            .with(ClockBeeper::new(ms(10)));
        let mut engine = Engine::builder().clock_node(node).horizon(at(25)).build();
        let run = engine.run().unwrap();
        let ev = &run.execution.events()[0];
        assert_eq!(ev.now, at(8));
        assert_eq!(ev.clock, Some(at(10)));
    }

    #[test]
    fn clock_trace_eps_close_to_timed_trace() {
        // The clock-model beeper's trace is =_{ε} the timed beeper's trace —
        // a miniature of Theorem 4.7.
        let mut timed_engine = Engine::builder()
            .timed(Beeper::new(ms(10)))
            .horizon(at(100))
            .build();
        let timed_trace = timed_engine.run().unwrap().execution.t_trace();

        let node = ClockNode::new("n0", ms(2), OffsetClock::new(ms(-2), ms(2)))
            .with(ClockBeeper::new(ms(10)));
        let mut clock_engine = Engine::builder().clock_node(node).horizon(at(100)).build();
        let clock_trace = clock_engine.run().unwrap().execution.t_trace();

        use psync_automata::relations::{eps_equivalent, ClassMap};
        let w = eps_equivalent(&timed_trace, &clock_trace, ms(2), &ClassMap::single()).unwrap();
        assert_eq!(w.max_deviation, ms(2));
    }

    #[test]
    fn echo_round_trip_through_engine() {
        // A beeper's beeps drive nothing; pair an Echo with a driver that
        // pings at a fixed time instead.
        #[derive(Debug, Clone)]
        struct PingOnce;
        #[derive(Debug, Clone, PartialEq, Eq)]
        struct PingState {
            fired: bool,
        }
        impl TimedComponent for PingOnce {
            type Action = EchoAction;
            type State = PingState;
            fn name(&self) -> String {
                "ping-once".into()
            }
            fn initial(&self) -> PingState {
                PingState { fired: false }
            }
            fn classify(&self, a: &EchoAction) -> Option<ActionKind> {
                match a {
                    EchoAction::Ping { .. } => Some(ActionKind::Output),
                    EchoAction::Pong { .. } => Some(ActionKind::Input),
                }
            }
            fn step(&self, s: &PingState, a: &EchoAction, now: Time) -> Option<PingState> {
                match a {
                    EchoAction::Ping { .. } if !s.fired && now >= at(5) => {
                        Some(PingState { fired: true })
                    }
                    EchoAction::Pong { .. } => Some(s.clone()),
                    _ => None,
                }
            }
            fn enabled(&self, s: &PingState, now: Time) -> Vec<EchoAction> {
                if !s.fired && now >= at(5) {
                    vec![EchoAction::Ping { id: 1 }]
                } else {
                    Vec::new()
                }
            }
            fn deadline(&self, s: &PingState, _now: Time) -> Option<Time> {
                if s.fired {
                    None
                } else {
                    Some(at(5))
                }
            }
        }

        let mut engine = Engine::builder()
            .timed(PingOnce)
            .timed(Echo::new(ms(3)))
            .build();
        let run = engine.run().unwrap();
        assert_eq!(run.stop, StopReason::Quiescent);
        let trace = run.execution.t_trace();
        assert_eq!(
            trace.as_slice(),
            &[
                (EchoAction::Ping { id: 1 }, at(5)),
                (EchoAction::Pong { id: 1 }, at(8)),
            ]
        );
    }

    #[test]
    fn random_scheduler_is_reproducible() {
        let run_with_seed = |seed: u64| -> TimedTrace<BeepAction> {
            let mut engine = Engine::builder()
                .timed(Beeper::with_src(ms(5), 0))
                .timed(Beeper::with_src(ms(5), 1))
                .scheduler(RandomScheduler::new(seed))
                .horizon(at(50))
                .build();
            engine.run().unwrap().execution.t_trace()
        };
        assert_eq!(run_with_seed(11), run_with_seed(11));
    }

    #[test]
    fn duplicate_controllers_are_rejected() {
        // Two identical beepers offer the *same* action value — an
        // incompatible composition (shared output action).
        let mut engine = Engine::builder()
            .timed(Beeper::new(ms(5)))
            .timed(Beeper::new(ms(5)))
            .horizon(at(20))
            .build();
        let err = engine.run().unwrap_err();
        assert!(matches!(err, EngineError::IncompatibleControllers { .. }));
    }

    #[test]
    fn event_limit_guards_against_zeno() {
        #[derive(Debug, Clone)]
        struct Zeno;
        impl TimedComponent for Zeno {
            type Action = BeepAction;
            type State = u64;
            fn name(&self) -> String {
                "zeno".into()
            }
            fn initial(&self) -> u64 {
                0
            }
            fn classify(&self, _a: &BeepAction) -> Option<ActionKind> {
                Some(ActionKind::Output)
            }
            fn step(&self, s: &u64, _a: &BeepAction, _now: Time) -> Option<u64> {
                Some(s + 1)
            }
            fn enabled(&self, s: &u64, _now: Time) -> Vec<BeepAction> {
                vec![BeepAction::Beep { src: 0, seq: *s }]
            }
            fn deadline(&self, _s: &u64, _now: Time) -> Option<Time> {
                None
            }
        }
        let mut engine = Engine::builder().timed(Zeno).max_events(100).build();
        let err = engine.run().unwrap_err();
        assert!(matches!(
            err,
            EngineError::EventLimitExceeded { limit: 100, .. }
        ));
    }

    #[test]
    fn horizon_before_first_event_yields_empty_run() {
        let mut engine = Engine::builder()
            .timed(Beeper::new(ms(10)))
            .horizon(at(5))
            .build();
        let run = engine.run().unwrap();
        assert_eq!(run.stop, StopReason::Horizon);
        assert!(run.execution.is_empty());
        assert_eq!(run.execution.ltime(), at(5));
    }

    #[test]
    fn two_nodes_keep_independent_clocks() {
        let n0 = ClockNode::new("n0", ms(2), OffsetClock::new(ms(2), ms(2)))
            .with(ClockBeeper::with_src(ms(10), 0));
        let n1 = ClockNode::new("n1", ms(2), OffsetClock::new(ms(-2), ms(2)))
            .with(ClockBeeper::with_src(ms(10), 1));
        let mut engine = Engine::builder()
            .clock_node(n0)
            .clock_node(n1)
            .horizon(at(15))
            .build();
        let run = engine.run().unwrap();
        let evs = run.execution.events();
        assert_eq!(evs.len(), 2);
        // Fast node beeps at real 8, slow node at real 12; both at clock 10.
        assert_eq!(evs[0].now, at(8));
        assert_eq!(evs[1].now, at(12));
        assert_eq!(evs[0].clock, Some(at(10)));
        assert_eq!(evs[1].clock, Some(at(10)));
    }

    fn checkpoint_mix() -> EngineBuilder<BeepAction> {
        Engine::builder()
            .timed(Beeper::with_src(ms(5), 0))
            .timed(Beeper::with_src(ms(7), 1))
            .clock_node(
                ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                    .with(ClockBeeper::with_src(ms(9), 7)),
            )
            .scheduler(RandomScheduler::new(3))
            .horizon(at(200))
    }

    #[test]
    fn pause_and_resume_is_bit_identical_to_straight_run() {
        let straight = checkpoint_mix().build().run().unwrap();
        let mut paused = checkpoint_mix().build();
        let p1 = paused.run_until_events(10).unwrap();
        assert_eq!(p1.stop, StopReason::Paused);
        assert_eq!(p1.execution.len(), 10);
        let p2 = paused.run_until_events(25).unwrap();
        assert_eq!(p2.stop, StopReason::Paused);
        let done = paused.run().unwrap();
        assert_eq!(done.stop, straight.stop);
        assert_eq!(done.execution, straight.execution);
    }

    #[test]
    fn pause_past_the_end_returns_the_natural_stop() {
        let mut engine = checkpoint_mix().build();
        let run = engine.run_until_events(usize::MAX).unwrap();
        assert_eq!(run.stop, StopReason::Horizon);
    }

    #[test]
    fn restore_into_fresh_engine_resumes_bit_identically() {
        let straight = checkpoint_mix().build().run().unwrap();
        let mut base = checkpoint_mix().build();
        let _ = base.run_until_events(12).unwrap();
        let cp = base.checkpoint();
        assert_eq!(cp.event_count(), 12);
        // One checkpoint seeds two independent resumes; both must complete
        // exactly like the uninterrupted run.
        for _ in 0..2 {
            let mut probe = checkpoint_mix().build();
            probe.restore(&cp);
            let resumed = probe.run().unwrap();
            assert_eq!(resumed.stop, straight.stop);
            assert_eq!(resumed.execution, straight.execution);
        }
        // The base engine is untouched by the probes.
        let base_done = base.run().unwrap();
        assert_eq!(base_done.execution, straight.execution);
    }

    #[test]
    fn fork_continues_independently() {
        let straight = checkpoint_mix().build().run().unwrap();
        let mut base = checkpoint_mix().build();
        let _ = base.run_until_events(8).unwrap();
        let mut sibling = base.fork(checkpoint_mix());
        let sibling_run = sibling.run().unwrap();
        assert_eq!(sibling_run.execution, straight.execution);
        let base_run = base.run().unwrap();
        assert_eq!(base_run.execution, straight.execution);
    }
}
