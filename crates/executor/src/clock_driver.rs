//! Clock strategies: how a node's clock moves within the `C_ε` envelope.
//!
//! The paper quantifies over *all* clock behaviors satisfying the clock
//! predicate `C_ε` (`|now − clock| ≤ ε`, Definition 2.5). A
//! [`ClockStrategy`] instantiates one such behavior; the engine validates
//! every choice, so a buggy strategy is diagnosed rather than silently
//! producing an out-of-model run. This substitutes for the paper's assumed
//! physical clock subsystem (NTP / Digital Time Service, Sections 1 and
//! 7.2): adversarial strategies here stress the `ε` bound harder than a
//! real time service would.

use psync_time::{Duration, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a strategy may look at when choosing the next clock value.
#[derive(Debug, Clone, Copy)]
pub struct AdvanceCtx {
    /// Real time before the advance.
    pub now: Time,
    /// The node clock before the advance.
    pub clock: Time,
    /// Real time after the advance (`target > now`).
    pub target: Time,
    /// Latest clock value any component of the node permits (`ν`
    /// precondition), if bounded. Always `> clock` when the strategy is
    /// consulted.
    pub max_clock: Option<Time>,
    /// The skew bound `ε` of the node's clock predicate.
    pub eps: Duration,
}

impl AdvanceCtx {
    /// The window of legal clock values for this advance:
    /// `[max(target − ε, clock + 1ns), min(target + ε, max_clock)]`.
    ///
    /// Non-empty whenever the engine's target computation is correct; the
    /// convenience [`AdvanceCtx::fit`] clamps a desired value into it.
    #[must_use]
    pub fn window(&self) -> (Time, Time) {
        let lo_pred = self
            .target
            .checked_sub_duration(self.eps)
            .unwrap_or(Time::ZERO);
        let lo = lo_pred.max(self.clock + Duration::NANOSECOND);
        let hi_pred = self.target + self.eps;
        let hi = match self.max_clock {
            Some(m) => hi_pred.min(m),
            None => hi_pred,
        };
        (lo, hi)
    }

    /// Clamps `desired` into the legal window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (an engine invariant violation).
    #[must_use]
    pub fn fit(&self, desired: Time) -> Time {
        let (lo, hi) = self.window();
        assert!(
            lo <= hi,
            "empty clock window [{lo}, {hi}] (engine target computation bug)"
        );
        desired.max(lo).min(hi)
    }
}

/// A behavior of one node's clock, consulted on every time-passage step.
///
/// Implementations must return a value in [`AdvanceCtx::window`]; the
/// easiest way is to compute a *desired* reading and pass it through
/// [`AdvanceCtx::fit`].
pub trait ClockStrategy {
    /// The clock value after real time advances to `ctx.target`.
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time;

    /// An *estimate* of the earliest real time at which this clock would
    /// read `target_clock`, given the current `(now, clock)` pair.
    ///
    /// The engine uses the estimate to decide how far to advance time when
    /// the next forcing event is a clock deadline: without it, a fast clock
    /// (reading ahead of real time) would have its early action fired as
    /// late as the `C_ε` envelope allows instead of as early as the clock
    /// actually reaches the deadline. The estimate does not have to be
    /// exact — the engine iterates and independently caps the advance at
    /// `target_clock + ε` — but better estimates converge in fewer steps.
    ///
    /// The default assumes a rate-1 clock: `now + (target_clock − clock)`.
    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        if target_clock <= clock {
            now
        } else {
            now + (target_clock - clock)
        }
    }
}

impl ClockStrategy for Box<dyn ClockStrategy> {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        (**self).next_clock(ctx)
    }

    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        (**self).when_reaches(now, clock, target_clock)
    }
}

/// The clock tracks real time exactly (up to deadline clamping):
/// `clock = now` whenever possible. With this strategy the clock model
/// degenerates to the timed model — useful as a baseline in experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectClock;

impl ClockStrategy for PerfectClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        ctx.fit(ctx.target)
    }
}

/// The clock runs at rate 1 with a constant offset from real time:
/// `clock = now + offset`. The extreme offsets `±ε` are the adversarial
/// corners of the `C_ε` envelope.
///
/// # Examples
///
/// ```
/// use psync_executor::OffsetClock;
/// use psync_time::Duration;
///
/// // A clock permanently fast by the full skew budget.
/// let eps = Duration::from_millis(2);
/// let fast = OffsetClock::new(eps, eps);
/// let _ = fast;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OffsetClock {
    offset: Duration,
}

impl OffsetClock {
    /// Creates a clock with the given constant offset.
    ///
    /// # Panics
    ///
    /// Panics if `|offset| > eps` — such a clock could never satisfy `C_ε`.
    #[must_use]
    pub fn new(offset: Duration, eps: Duration) -> Self {
        assert!(
            offset.abs() <= eps,
            "offset {offset} exceeds the skew bound {eps}"
        );
        OffsetClock { offset }
    }
}

impl ClockStrategy for OffsetClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        ctx.fit(ctx.target.saturating_add_duration(self.offset))
    }

    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        if target_clock <= clock {
            return now;
        }
        // clock(t) = t + offset, so the hit is at target_clock − offset.
        target_clock
            .checked_sub_duration(self.offset)
            .unwrap_or(Time::ZERO)
            .max(now)
    }
}

/// The clock drifts at a constant rate (in parts-per-million) and snaps
/// back to zero offset whenever the drift would exceed the skew bound —
/// the sawtooth shape of an NTP-disciplined clock that periodically
/// resynchronizes to its reference.
#[derive(Debug, Clone)]
pub struct DriftClock {
    rate_ppm: i64,
    offset: Duration,
}

impl DriftClock {
    /// Creates a drifting clock. `rate_ppm` is the drift rate in parts per
    /// million of elapsed real time; positive runs fast, negative slow.
    #[must_use]
    pub fn new(rate_ppm: i64) -> Self {
        DriftClock {
            rate_ppm,
            offset: Duration::ZERO,
        }
    }
}

impl ClockStrategy for DriftClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        let dt = ctx.target - ctx.now;
        let drift = Duration::from_nanos(dt.as_nanos().saturating_mul(self.rate_ppm) / 1_000_000);
        let mut offset = self.offset + drift;
        if offset.abs() > ctx.eps {
            // NTP-style step resynchronization.
            offset = Duration::ZERO;
        }
        let chosen = ctx.fit(ctx.target.saturating_add_duration(offset));
        // Record the offset actually achieved, so clamping feeds back.
        self.offset = chosen - ctx.target;
        chosen
    }
}

/// The clock offset performs a seeded bounded random walk inside
/// `[−ε, +ε]` — a reproducible "jittery clock" adversary.
#[derive(Debug, Clone)]
pub struct RandomWalkClock {
    rng: StdRng,
    step: Duration,
    offset: Duration,
}

impl RandomWalkClock {
    /// Creates a random-walk clock taking offset steps of at most `step`
    /// per advance.
    ///
    /// # Panics
    ///
    /// Panics if `step` is negative.
    #[must_use]
    pub fn new(seed: u64, step: Duration) -> Self {
        assert!(!step.is_negative(), "walk step must be non-negative");
        RandomWalkClock {
            rng: StdRng::seed_from_u64(seed),
            step,
            offset: Duration::ZERO,
        }
    }
}

impl ClockStrategy for RandomWalkClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        let delta = if self.step.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                self.rng
                    .gen_range(-self.step.as_nanos()..=self.step.as_nanos()),
            )
        };
        let mut offset = self.offset + delta;
        if offset > ctx.eps {
            offset = ctx.eps;
        } else if offset < -ctx.eps {
            offset = -ctx.eps;
        }
        let chosen = ctx.fit(ctx.target.saturating_add_duration(offset));
        self.offset = chosen - ctx.target;
        chosen
    }
}

/// The clock follows an explicit fault script: a piecewise-constant offset
/// schedule `clock = now + offset(now)`, where `offset(now)` is the offset
/// of the last segment activated at or before `now`.
///
/// Scripts are *requests*, not guarantees: a segment may ask for an offset
/// beyond `ε`, or for a jump that would move the clock backwards. The
/// engine's `C_ε`/C1–C4 validation makes such readings impossible, so the
/// strategy clamps the desired reading into [`AdvanceCtx::window`] and
/// counts every clamp of an *inadmissible* request in a shared rejection
/// counter. Fault-injection harnesses use the counter to assert that an
/// attempted backward jump really was attempted — and really was rejected —
/// rather than silently scheduled away.
#[derive(Debug, Clone)]
pub struct ScriptedClock {
    /// `(activate_at, offset)` segments, sorted by activation time.
    segments: Vec<(Time, Duration)>,
    /// Count of advances whose scripted reading had to be clamped because
    /// it violated C3 (non-increase) or `C_ε` (skew beyond `ε`).
    rejections: std::rc::Rc<core::cell::Cell<u64>>,
}

impl ScriptedClock {
    /// Creates a scripted clock from `(activate_at, offset)` segments.
    /// Before the first activation the offset is zero. Segments are sorted
    /// by activation time; offsets of any magnitude (and sign) are
    /// accepted — inadmissible readings are clamped and counted at run
    /// time, never executed.
    #[must_use]
    pub fn new(segments: impl IntoIterator<Item = (Time, Duration)>) -> Self {
        let mut segments: Vec<(Time, Duration)> = segments.into_iter().collect();
        segments.sort_by_key(|(at, _)| *at);
        ScriptedClock {
            segments,
            rejections: std::rc::Rc::new(core::cell::Cell::new(0)),
        }
    }

    /// A handle onto the rejection counter: the number of advances whose
    /// scripted reading was inadmissible (attempted backward jump or skew
    /// beyond `ε`) and was clamped by the C1–C4 guard instead of executed.
    #[must_use]
    pub fn rejections(&self) -> std::rc::Rc<core::cell::Cell<u64>> {
        std::rc::Rc::clone(&self.rejections)
    }

    fn offset_at(&self, t: Time) -> Duration {
        self.segments
            .iter()
            .take_while(|(at, _)| *at <= t)
            .last()
            .map_or(Duration::ZERO, |(_, off)| *off)
    }
}

impl ClockStrategy for ScriptedClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        let desired = ctx
            .target
            .saturating_add_duration(self.offset_at(ctx.target));
        let (lo, _) = ctx.window();
        // `desired < lo` is an attempted backward jump or stall (C3) or a
        // reading slower than `target − ε`; skew beyond `ε` is a `C_ε`
        // violation. Deadline clamping (`max_clock`) is normal operation
        // and is deliberately *not* counted.
        if desired < lo || ctx.target.skew(desired) > ctx.eps {
            self.rejections.set(self.rejections.get() + 1);
        }
        ctx.fit(desired)
    }

    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        if target_clock <= clock {
            return now;
        }
        // Rate-1 between segment switches; good enough as an estimate (the
        // engine iterates and independently caps the advance).
        now + (target_clock - clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn ctx(now_ms: i64, clock_ms: i64, target_ms: i64, max_clock: Option<i64>) -> AdvanceCtx {
        AdvanceCtx {
            now: Time::ZERO + ms(now_ms),
            clock: Time::ZERO + ms(clock_ms),
            target: Time::ZERO + ms(target_ms),
            max_clock: max_clock.map(|m| Time::ZERO + ms(m)),
            eps: ms(2),
        }
    }

    fn check_window(strategy: &mut dyn ClockStrategy, c: AdvanceCtx) -> Time {
        let v = strategy.next_clock(c);
        let (lo, hi) = c.window();
        assert!(
            v >= lo && v <= hi,
            "strategy left the window: {v} not in [{lo}, {hi}]"
        );
        assert!(v > c.clock, "axiom C3: clock must strictly increase");
        v
    }

    #[test]
    fn perfect_clock_tracks_now() {
        let v = check_window(&mut PerfectClock, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(10));
    }

    #[test]
    fn perfect_clock_clamps_to_deadline() {
        let v = check_window(&mut PerfectClock, ctx(0, 0, 10, Some(9)));
        assert_eq!(v, Time::ZERO + ms(9));
    }

    #[test]
    fn perfect_clock_recovers_from_fast_start() {
        // Clock ahead of now (e.g. handed over from a fast strategy): the
        // perfect clock still advances strictly but no faster than allowed.
        let v = check_window(&mut PerfectClock, ctx(10, 12, 11, None));
        assert!(v > Time::ZERO + ms(12));
        assert!(v <= Time::ZERO + ms(13)); // target + eps
    }

    #[test]
    fn offset_clock_holds_its_offset() {
        let mut fast = OffsetClock::new(ms(2), ms(2));
        let v = check_window(&mut fast, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(12));

        let mut slow = OffsetClock::new(ms(-2), ms(2));
        let v = check_window(&mut slow, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(8));
    }

    #[test]
    #[should_panic(expected = "exceeds the skew bound")]
    fn offset_beyond_eps_rejected() {
        let _ = OffsetClock::new(ms(3), ms(2));
    }

    #[test]
    fn drift_clock_accumulates_and_resyncs() {
        // 1000 ppm = 1 ms of drift per second of real time.
        let mut d = DriftClock::new(1000);
        let v1 = check_window(&mut d, ctx(0, 0, 1000, None));
        assert_eq!(v1, Time::ZERO + Duration::from_secs(1) + ms(1));
        // After another second the accumulated 2 ms hits ε = 2 ms; one more
        // advance resynchronizes to zero offset.
        let c2 = AdvanceCtx {
            now: Time::ZERO + Duration::from_secs(1),
            clock: v1,
            target: Time::ZERO + Duration::from_secs(2),
            max_clock: None,
            eps: ms(2),
        };
        let v2 = check_window(&mut d, c2);
        assert_eq!(v2, Time::ZERO + Duration::from_secs(2) + ms(2));
        let c3 = AdvanceCtx {
            now: Time::ZERO + Duration::from_secs(2),
            clock: v2,
            target: Time::ZERO + Duration::from_secs(3),
            max_clock: None,
            eps: ms(2),
        };
        let v3 = check_window(&mut d, c3);
        // Offset would be 3 ms > ε, so the clock steps back to offset 0.
        assert_eq!(v3, Time::ZERO + Duration::from_secs(3));
    }

    #[test]
    fn random_walk_stays_in_envelope() {
        let mut w = RandomWalkClock::new(7, Duration::from_micros(500));
        let mut clock = Time::ZERO;
        let mut now = Time::ZERO;
        for i in 1..200 {
            let target = Time::ZERO + ms(i);
            let c = AdvanceCtx {
                now,
                clock,
                target,
                max_clock: None,
                eps: ms(2),
            };
            clock = check_window(&mut w, c);
            assert!(target.skew(clock) <= ms(2));
            now = target;
        }
    }

    #[test]
    fn random_walk_is_reproducible() {
        let run = |seed| {
            let mut w = RandomWalkClock::new(seed, Duration::from_micros(500));
            let mut clock = Time::ZERO;
            let mut now = Time::ZERO;
            let mut out = Vec::new();
            for i in 1..50 {
                let target = Time::ZERO + ms(i);
                clock = w.next_clock(AdvanceCtx {
                    now,
                    clock,
                    target,
                    max_clock: None,
                    eps: ms(2),
                });
                now = target;
                out.push(clock);
            }
            out
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn scripted_clock_follows_segments() {
        let mut c = ScriptedClock::new(vec![
            (Time::ZERO + ms(10), ms(2)),
            (Time::ZERO + ms(20), ms(-2)),
        ]);
        // Before the first activation: zero offset.
        let v = check_window(&mut c, ctx(0, 0, 5, None));
        assert_eq!(v, Time::ZERO + ms(5));
        // Fast segment active.
        let v = check_window(&mut c, ctx(5, 5, 12, None));
        assert_eq!(v, Time::ZERO + ms(14));
        // Slow segment: scripted reading 22 − 2 = 20; window lo is
        // clock + 1ns, which 20 satisfies (clock was 14 at now = 12 …
        // use fresh state below).
        assert_eq!(c.rejections().get(), 0);
    }

    #[test]
    fn scripted_backward_jump_is_clamped_and_counted() {
        // Offset −5 ms with ε = 2 ms: the scripted reading sits below
        // target − ε *and* below the current clock — both a C3 and a C_ε
        // violation. The strategy must clamp to the window and count it.
        let mut c = ScriptedClock::new(vec![(Time::ZERO, ms(-5))]);
        let cx = ctx(10, 10, 11, None);
        let v = check_window(&mut c, cx);
        let (lo, _) = cx.window();
        assert_eq!(v, lo);
        assert_eq!(c.rejections().get(), 1);
        // The counter is shared: a clone handed to the engine still feeds
        // the handle the harness kept.
        let handle = c.rejections();
        let _ = check_window(
            &mut c,
            AdvanceCtx {
                now: Time::ZERO + ms(11),
                clock: v,
                target: Time::ZERO + ms(12),
                max_clock: None,
                eps: ms(2),
            },
        );
        assert_eq!(handle.get(), 2);
    }

    #[test]
    fn scripted_over_eps_is_clamped_and_counted() {
        let mut c = ScriptedClock::new(vec![(Time::ZERO, ms(3))]);
        let cx = ctx(0, 0, 10, None);
        let v = check_window(&mut c, cx);
        assert_eq!(v, Time::ZERO + ms(12)); // clamped to target + ε
        assert_eq!(c.rejections().get(), 1);
    }

    #[test]
    fn scripted_exactly_eps_is_admissible() {
        let mut c = ScriptedClock::new(vec![(Time::ZERO, ms(2))]);
        let v = check_window(&mut c, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(12));
        assert_eq!(c.rejections().get(), 0, "|now − clock| = ε is admissible");
    }

    #[test]
    fn window_respects_all_constraints() {
        let c = ctx(0, 9, 10, Some(11));
        let (lo, hi) = c.window();
        assert_eq!(lo, Time::ZERO + ms(9) + Duration::NANOSECOND);
        assert_eq!(hi, Time::ZERO + ms(11));
    }
}
