//! Clock strategies: how a node's clock moves within the `C_ε` envelope.
//!
//! The paper quantifies over *all* clock behaviors satisfying the clock
//! predicate `C_ε` (`|now − clock| ≤ ε`, Definition 2.5). A
//! [`ClockStrategy`] instantiates one such behavior; the engine validates
//! every choice, so a buggy strategy is diagnosed rather than silently
//! producing an out-of-model run. This substitutes for the paper's assumed
//! physical clock subsystem (NTP / Digital Time Service, Sections 1 and
//! 7.2): adversarial strategies here stress the `ε` bound harder than a
//! real time service would.

use core::any::Any;

use psync_time::{Duration, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An opaque snapshot of one [`ClockStrategy`]'s mutable state, captured
/// by [`ClockStrategy::checkpoint`] and applied by
/// [`ClockStrategy::restore`].
///
/// The snapshot is *detached*: it owns a deep copy of whatever the
/// strategy considers state (drift offsets, RNG positions, rejection
/// counts), so it can be restored into a different strategy instance of
/// the same concrete type — the engine's checkpoint/fork machinery relies
/// on exactly that to resume a run inside a freshly built sibling engine.
/// Restoring is repeatable: one checkpoint may seed many probes.
pub struct ClockCheckpoint(Option<Box<dyn Any>>);

impl ClockCheckpoint {
    /// A checkpoint for a strategy with no mutable state (the default for
    /// pure strategies such as [`PerfectClock`] and [`OffsetClock`]).
    #[must_use]
    pub fn stateless() -> Self {
        ClockCheckpoint(None)
    }

    /// Wraps a deep copy of a strategy's state.
    #[must_use]
    pub fn of<T: Clone + 'static>(state: &T) -> Self {
        ClockCheckpoint(Some(Box::new(state.clone())))
    }

    /// Downcasts the captured state, if any was captured and the type
    /// matches. Strategies ignore checkpoints they do not recognize — a
    /// stateless checkpoint restored into a stateful strategy is a no-op.
    #[must_use]
    pub fn state<T: 'static>(&self) -> Option<&T> {
        self.0.as_ref()?.downcast_ref()
    }
}

impl core::fmt::Debug for ClockCheckpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("ClockCheckpoint(stateful)"),
            None => f.write_str("ClockCheckpoint(stateless)"),
        }
    }
}

/// Everything a strategy may look at when choosing the next clock value.
#[derive(Debug, Clone, Copy)]
pub struct AdvanceCtx {
    /// Real time before the advance.
    pub now: Time,
    /// The node clock before the advance.
    pub clock: Time,
    /// Real time after the advance (`target > now`).
    pub target: Time,
    /// Latest clock value any component of the node permits (`ν`
    /// precondition), if bounded. Always `> clock` when the strategy is
    /// consulted.
    pub max_clock: Option<Time>,
    /// The skew bound `ε` of the node's clock predicate.
    pub eps: Duration,
}

impl AdvanceCtx {
    /// The window of legal clock values for this advance:
    /// `[max(target − ε, clock + 1ns), min(target + ε, max_clock)]`.
    ///
    /// Non-empty whenever the engine's target computation is correct; the
    /// convenience [`AdvanceCtx::fit`] clamps a desired value into it.
    #[must_use]
    pub fn window(&self) -> (Time, Time) {
        let lo_pred = self
            .target
            .checked_sub_duration(self.eps)
            .unwrap_or(Time::ZERO);
        let lo = lo_pred.max(self.clock + Duration::NANOSECOND);
        let hi_pred = self.target + self.eps;
        let hi = match self.max_clock {
            Some(m) => hi_pred.min(m),
            None => hi_pred,
        };
        (lo, hi)
    }

    /// Clamps `desired` into the legal window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (an engine invariant violation).
    #[must_use]
    pub fn fit(&self, desired: Time) -> Time {
        let (lo, hi) = self.window();
        assert!(
            lo <= hi,
            "empty clock window [{lo}, {hi}] (engine target computation bug)"
        );
        desired.max(lo).min(hi)
    }
}

/// A behavior of one node's clock, consulted on every time-passage step.
///
/// Implementations must return a value in [`AdvanceCtx::window`]; the
/// easiest way is to compute a *desired* reading and pass it through
/// [`AdvanceCtx::fit`].
pub trait ClockStrategy {
    /// The clock value after real time advances to `ctx.target`.
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time;

    /// An *estimate* of the earliest real time at which this clock would
    /// read `target_clock`, given the current `(now, clock)` pair.
    ///
    /// The engine uses the estimate to decide how far to advance time when
    /// the next forcing event is a clock deadline: without it, a fast clock
    /// (reading ahead of real time) would have its early action fired as
    /// late as the `C_ε` envelope allows instead of as early as the clock
    /// actually reaches the deadline. The estimate does not have to be
    /// exact — the engine iterates and independently caps the advance at
    /// `target_clock + ε` — but better estimates converge in fewer steps.
    ///
    /// The default assumes a rate-1 clock: `now + (target_clock − clock)`.
    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        if target_clock <= clock {
            now
        } else {
            now + (target_clock - clock)
        }
    }

    /// Captures the strategy's mutable state. The default is stateless:
    /// strategies whose readings are a pure function of the
    /// [`AdvanceCtx`] need not override it. Stateful strategies must
    /// capture *everything* their future readings depend on — the engine's
    /// checkpoint/restore round-trip test fails otherwise.
    fn checkpoint(&self) -> ClockCheckpoint {
        ClockCheckpoint::stateless()
    }

    /// Restores state previously captured by [`ClockStrategy::checkpoint`].
    /// May be called many times on the same checkpoint (one base run seeds
    /// many forked probes) and on a *different* instance of the same
    /// concrete type than the one that was captured.
    fn restore(&mut self, checkpoint: &ClockCheckpoint) {
        let _ = checkpoint;
    }
}

impl ClockStrategy for Box<dyn ClockStrategy> {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        (**self).next_clock(ctx)
    }

    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        (**self).when_reaches(now, clock, target_clock)
    }

    // Checkpointing must reach the *inner* strategy: harnesses hand
    // `Box<dyn ClockStrategy>` values to builders that box again, and the
    // default (stateless) methods on the outer box would silently discard
    // the inner state.
    fn checkpoint(&self) -> ClockCheckpoint {
        (**self).checkpoint()
    }

    fn restore(&mut self, checkpoint: &ClockCheckpoint) {
        (**self).restore(checkpoint);
    }
}

/// The clock tracks real time exactly (up to deadline clamping):
/// `clock = now` whenever possible. With this strategy the clock model
/// degenerates to the timed model — useful as a baseline in experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectClock;

impl ClockStrategy for PerfectClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        ctx.fit(ctx.target)
    }
}

/// The clock runs at rate 1 with a constant offset from real time:
/// `clock = now + offset`. The extreme offsets `±ε` are the adversarial
/// corners of the `C_ε` envelope.
///
/// # Examples
///
/// ```
/// use psync_executor::OffsetClock;
/// use psync_time::Duration;
///
/// // A clock permanently fast by the full skew budget.
/// let eps = Duration::from_millis(2);
/// let fast = OffsetClock::new(eps, eps);
/// let _ = fast;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OffsetClock {
    offset: Duration,
}

impl OffsetClock {
    /// Creates a clock with the given constant offset.
    ///
    /// # Panics
    ///
    /// Panics if `|offset| > eps` — such a clock could never satisfy `C_ε`.
    #[must_use]
    pub fn new(offset: Duration, eps: Duration) -> Self {
        assert!(
            offset.abs() <= eps,
            "offset {offset} exceeds the skew bound {eps}"
        );
        OffsetClock { offset }
    }
}

impl ClockStrategy for OffsetClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        ctx.fit(ctx.target.saturating_add_duration(self.offset))
    }

    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        if target_clock <= clock {
            return now;
        }
        // clock(t) = t + offset, so the hit is at target_clock − offset.
        target_clock
            .checked_sub_duration(self.offset)
            .unwrap_or(Time::ZERO)
            .max(now)
    }
}

/// The clock drifts at a constant rate (in parts-per-million) and snaps
/// back to zero offset whenever the drift would exceed the skew bound —
/// the sawtooth shape of an NTP-disciplined clock that periodically
/// resynchronizes to its reference.
#[derive(Debug, Clone)]
pub struct DriftClock {
    rate_ppm: i64,
    offset: Duration,
}

impl DriftClock {
    /// Creates a drifting clock. `rate_ppm` is the drift rate in parts per
    /// million of elapsed real time; positive runs fast, negative slow.
    #[must_use]
    pub fn new(rate_ppm: i64) -> Self {
        DriftClock {
            rate_ppm,
            offset: Duration::ZERO,
        }
    }
}

impl ClockStrategy for DriftClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        let dt = ctx.target - ctx.now;
        // Euclidean division: truncating `/` would round negative drift
        // toward zero, giving a slow clock (−ppm) a shallower sawtooth
        // than the equally-fast clock (+ppm).
        let drift = Duration::from_nanos(
            dt.as_nanos()
                .saturating_mul(self.rate_ppm)
                .div_euclid(1_000_000),
        );
        let mut offset = self.offset + drift;
        if offset.abs() > ctx.eps {
            // NTP-style step resynchronization.
            offset = Duration::ZERO;
        }
        let chosen = ctx.fit(ctx.target.saturating_add_duration(offset));
        // Record the offset actually achieved, so clamping feeds back.
        self.offset = chosen - ctx.target;
        chosen
    }

    fn checkpoint(&self) -> ClockCheckpoint {
        ClockCheckpoint::of(&self.offset)
    }

    fn restore(&mut self, checkpoint: &ClockCheckpoint) {
        if let Some(offset) = checkpoint.state::<Duration>() {
            self.offset = *offset;
        }
    }
}

/// The clock offset performs a seeded bounded random walk inside
/// `[−ε, +ε]` — a reproducible "jittery clock" adversary.
#[derive(Debug, Clone)]
pub struct RandomWalkClock {
    rng: StdRng,
    step: Duration,
    offset: Duration,
}

impl RandomWalkClock {
    /// Creates a random-walk clock taking offset steps of at most `step`
    /// per advance.
    ///
    /// # Panics
    ///
    /// Panics if `step` is negative.
    #[must_use]
    pub fn new(seed: u64, step: Duration) -> Self {
        assert!(!step.is_negative(), "walk step must be non-negative");
        RandomWalkClock {
            rng: StdRng::seed_from_u64(seed),
            step,
            offset: Duration::ZERO,
        }
    }
}

impl ClockStrategy for RandomWalkClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        let delta = if self.step.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_nanos(
                self.rng
                    .gen_range(-self.step.as_nanos()..=self.step.as_nanos()),
            )
        };
        let mut offset = self.offset + delta;
        if offset > ctx.eps {
            offset = ctx.eps;
        } else if offset < -ctx.eps {
            offset = -ctx.eps;
        }
        let chosen = ctx.fit(ctx.target.saturating_add_duration(offset));
        self.offset = chosen - ctx.target;
        chosen
    }

    fn checkpoint(&self) -> ClockCheckpoint {
        ClockCheckpoint::of(&(self.rng.clone(), self.offset))
    }

    fn restore(&mut self, checkpoint: &ClockCheckpoint) {
        if let Some((rng, offset)) = checkpoint.state::<(StdRng, Duration)>() {
            self.rng = rng.clone();
            self.offset = *offset;
        }
    }
}

/// The clock follows an explicit fault script: a piecewise-constant offset
/// schedule `clock = now + offset(now)`, where `offset(now)` is the offset
/// of the last segment activated at or before `now`.
///
/// Scripts are *requests*, not guarantees: a segment may ask for an offset
/// beyond `ε`, or for a jump that would move the clock backwards. The
/// engine's `C_ε`/C1–C4 validation makes such readings impossible, so the
/// strategy clamps the desired reading into [`AdvanceCtx::window`] and
/// counts every clamp of an *inadmissible* request in a shared rejection
/// counter. Fault-injection harnesses use the counter to assert that an
/// attempted backward jump really was attempted — and really was rejected —
/// rather than silently scheduled away.
#[derive(Debug, Clone)]
pub struct ScriptedClock {
    /// `(activate_at, offset)` segments, sorted by activation time.
    segments: Vec<(Time, Duration)>,
    /// Count of advances whose scripted reading had to be clamped because
    /// it violated C3 (non-increase) or `C_ε` (skew beyond `ε`).
    rejections: std::rc::Rc<core::cell::Cell<u64>>,
}

impl ScriptedClock {
    /// Creates a scripted clock from `(activate_at, offset)` segments.
    /// Before the first activation the offset is zero. Segments are sorted
    /// by activation time; offsets of any magnitude (and sign) are
    /// accepted — inadmissible readings are clamped and counted at run
    /// time, never executed.
    #[must_use]
    pub fn new(segments: impl IntoIterator<Item = (Time, Duration)>) -> Self {
        let mut segments: Vec<(Time, Duration)> = segments.into_iter().collect();
        segments.sort_by_key(|(at, _)| *at);
        ScriptedClock {
            segments,
            rejections: std::rc::Rc::new(core::cell::Cell::new(0)),
        }
    }

    /// A handle onto the rejection counter: the number of advances whose
    /// scripted reading was inadmissible (attempted backward jump or skew
    /// beyond `ε`) and was clamped by the C1–C4 guard instead of executed.
    #[must_use]
    pub fn rejections(&self) -> std::rc::Rc<core::cell::Cell<u64>> {
        std::rc::Rc::clone(&self.rejections)
    }

    fn offset_at(&self, t: Time) -> Duration {
        self.segments
            .iter()
            .take_while(|(at, _)| *at <= t)
            .last()
            .map_or(Duration::ZERO, |(_, off)| *off)
    }
}

impl ClockStrategy for ScriptedClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        let desired = ctx
            .target
            .saturating_add_duration(self.offset_at(ctx.target));
        let (lo, _) = ctx.window();
        // `desired < lo` is an attempted backward jump or stall (C3) or a
        // reading slower than `target − ε`; skew beyond `ε` is a `C_ε`
        // violation. Deadline clamping (`max_clock`) is normal operation
        // and is deliberately *not* counted.
        if desired < lo || ctx.target.skew(desired) > ctx.eps {
            self.rejections.set(self.rejections.get() + 1);
        }
        ctx.fit(desired)
    }

    fn when_reaches(&self, now: Time, clock: Time, target_clock: Time) -> Time {
        if target_clock <= clock {
            return now;
        }
        // Rate-1 between segment switches; good enough as an estimate (the
        // engine iterates and independently caps the advance).
        now + (target_clock - clock)
    }

    // The rejection counter is shared through an `Rc` handle held by the
    // harness. The checkpoint captures its *value*, and restore writes the
    // value back through this instance's own `Rc` — restoring must never
    // alias the captured run's handle, or a probe resumed from the
    // checkpoint would double-count into the base run's counter.
    fn checkpoint(&self) -> ClockCheckpoint {
        ClockCheckpoint::of(&self.rejections.get())
    }

    fn restore(&mut self, checkpoint: &ClockCheckpoint) {
        if let Some(count) = checkpoint.state::<u64>() {
            self.rejections.set(*count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn ctx(now_ms: i64, clock_ms: i64, target_ms: i64, max_clock: Option<i64>) -> AdvanceCtx {
        AdvanceCtx {
            now: Time::ZERO + ms(now_ms),
            clock: Time::ZERO + ms(clock_ms),
            target: Time::ZERO + ms(target_ms),
            max_clock: max_clock.map(|m| Time::ZERO + ms(m)),
            eps: ms(2),
        }
    }

    fn check_window(strategy: &mut dyn ClockStrategy, c: AdvanceCtx) -> Time {
        let v = strategy.next_clock(c);
        let (lo, hi) = c.window();
        assert!(
            v >= lo && v <= hi,
            "strategy left the window: {v} not in [{lo}, {hi}]"
        );
        assert!(v > c.clock, "axiom C3: clock must strictly increase");
        v
    }

    #[test]
    fn perfect_clock_tracks_now() {
        let v = check_window(&mut PerfectClock, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(10));
    }

    #[test]
    fn perfect_clock_clamps_to_deadline() {
        let v = check_window(&mut PerfectClock, ctx(0, 0, 10, Some(9)));
        assert_eq!(v, Time::ZERO + ms(9));
    }

    #[test]
    fn perfect_clock_recovers_from_fast_start() {
        // Clock ahead of now (e.g. handed over from a fast strategy): the
        // perfect clock still advances strictly but no faster than allowed.
        let v = check_window(&mut PerfectClock, ctx(10, 12, 11, None));
        assert!(v > Time::ZERO + ms(12));
        assert!(v <= Time::ZERO + ms(13)); // target + eps
    }

    #[test]
    fn offset_clock_holds_its_offset() {
        let mut fast = OffsetClock::new(ms(2), ms(2));
        let v = check_window(&mut fast, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(12));

        let mut slow = OffsetClock::new(ms(-2), ms(2));
        let v = check_window(&mut slow, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(8));
    }

    #[test]
    #[should_panic(expected = "exceeds the skew bound")]
    fn offset_beyond_eps_rejected() {
        let _ = OffsetClock::new(ms(3), ms(2));
    }

    #[test]
    fn drift_clock_accumulates_and_resyncs() {
        // 1000 ppm = 1 ms of drift per second of real time.
        let mut d = DriftClock::new(1000);
        let v1 = check_window(&mut d, ctx(0, 0, 1000, None));
        assert_eq!(v1, Time::ZERO + Duration::from_secs(1) + ms(1));
        // After another second the accumulated 2 ms hits ε = 2 ms; one more
        // advance resynchronizes to zero offset.
        let c2 = AdvanceCtx {
            now: Time::ZERO + Duration::from_secs(1),
            clock: v1,
            target: Time::ZERO + Duration::from_secs(2),
            max_clock: None,
            eps: ms(2),
        };
        let v2 = check_window(&mut d, c2);
        assert_eq!(v2, Time::ZERO + Duration::from_secs(2) + ms(2));
        let c3 = AdvanceCtx {
            now: Time::ZERO + Duration::from_secs(2),
            clock: v2,
            target: Time::ZERO + Duration::from_secs(3),
            max_clock: None,
            eps: ms(2),
        };
        let v3 = check_window(&mut d, c3);
        // Offset would be 3 ms > ε, so the clock steps back to offset 0.
        assert_eq!(v3, Time::ZERO + Duration::from_secs(3));
    }

    /// Regression (truncating-division drift): with `dt · |rate| / 10⁶`
    /// fractional, the drift must be the *floor* of the ideal value for
    /// both signs, so neither clock ever reads ahead of its ideal drift
    /// line. Truncating division rounded the negative drift toward zero
    /// (−499.9995 → −499 ns), letting the slow clock read ahead of its
    /// line while the fast clock never did — an asymmetric sawtooth.
    #[test]
    fn drift_rounding_is_symmetric_across_rate_sign() {
        let dt_ns = 999_999; // dt · 500 ppm = 499.9995 ns of ideal drift
        let target = Time::ZERO + Duration::from_nanos(dt_ns);
        let advance = AdvanceCtx {
            now: Time::ZERO,
            clock: Time::ZERO,
            target,
            max_clock: None,
            eps: ms(2),
        };
        let fast = check_window(&mut DriftClock::new(500), advance);
        let slow = check_window(&mut DriftClock::new(-500), advance);
        assert_eq!(fast, target + Duration::from_nanos(499));
        assert_eq!(slow, target - Duration::from_nanos(500));
        // Floor bias points the same way on both sides of the line:
        // 499 ≤ 499.9995 and −500 ≤ −499.9995.
        assert_eq!(
            (fast - target) + (slow - target),
            Duration::from_nanos(-1),
            "floor division loses exactly the fractional nanosecond"
        );
        // Exactly divisible drift stays exact in both directions.
        let whole = AdvanceCtx {
            now: Time::ZERO,
            clock: Time::ZERO,
            target: Time::ZERO + ms(1000),
            max_clock: None,
            eps: ms(2),
        };
        assert_eq!(
            check_window(&mut DriftClock::new(500), whole),
            whole.target + Duration::from_micros(500)
        );
        assert_eq!(
            check_window(&mut DriftClock::new(-500), whole),
            whole.target - Duration::from_micros(500)
        );
    }

    #[test]
    fn drift_checkpoint_round_trips_offset() {
        let mut original = DriftClock::new(1000);
        let v1 = original.next_clock(ctx(0, 0, 100, None));
        let cp = original.checkpoint();

        // Restore into a *fresh* instance: it must continue exactly as the
        // original does, twice over (checkpoints are reusable).
        let next = AdvanceCtx {
            now: Time::ZERO + ms(100),
            clock: v1,
            target: Time::ZERO + ms(700),
            max_clock: None,
            eps: ms(2),
        };
        let expected = original.next_clock(next);
        for _ in 0..2 {
            let mut fresh = DriftClock::new(1000);
            fresh.restore(&cp);
            assert_eq!(fresh.next_clock(next), expected);
        }
    }

    #[test]
    fn random_walk_checkpoint_round_trips_rng_and_offset() {
        let mut original = RandomWalkClock::new(99, Duration::from_micros(500));
        let mut clock = Time::ZERO;
        let mut now = Time::ZERO;
        for i in 1..20 {
            let target = Time::ZERO + ms(i);
            clock = original.next_clock(AdvanceCtx {
                now,
                clock,
                target,
                max_clock: None,
                eps: ms(2),
            });
            now = target;
        }
        let cp = original.checkpoint();
        let continuation = |w: &mut RandomWalkClock, mut clock: Time, mut now: Time| {
            let mut out = Vec::new();
            for i in 20..40 {
                let target = Time::ZERO + ms(i);
                clock = w.next_clock(AdvanceCtx {
                    now,
                    clock,
                    target,
                    max_clock: None,
                    eps: ms(2),
                });
                now = target;
                out.push(clock);
            }
            out
        };
        let mut fresh = RandomWalkClock::new(99, Duration::from_micros(500));
        fresh.restore(&cp);
        let resumed = continuation(&mut fresh, clock, now);
        assert_eq!(resumed, continuation(&mut original, clock, now));
    }

    #[test]
    fn scripted_checkpoint_restores_count_without_aliasing() {
        let mut original = ScriptedClock::new(vec![(Time::ZERO, ms(-5))]);
        let _ = original.next_clock(ctx(10, 10, 11, None));
        assert_eq!(original.rejections().get(), 1);
        let cp = original.checkpoint();

        let mut fresh = ScriptedClock::new(vec![(Time::ZERO, ms(-5))]);
        fresh.restore(&cp);
        assert_eq!(fresh.rejections().get(), 1);
        // The restored instance counts into its own handle only.
        let _ = fresh.next_clock(ctx(11, 11, 12, None));
        assert_eq!(fresh.rejections().get(), 2);
        assert_eq!(
            original.rejections().get(),
            1,
            "restore must not alias the captured run's counter"
        );
    }

    #[test]
    fn boxed_strategy_forwards_checkpoints_to_inner() {
        // Builders box strategies that harnesses may already have boxed;
        // the blanket impl on `Box<dyn ClockStrategy>` must reach through,
        // or the inner state silently vanishes from checkpoints.
        let mut boxed: Box<dyn ClockStrategy> = Box::new(DriftClock::new(1000));
        let v1 = boxed.next_clock(ctx(0, 0, 100, None));
        let cp = boxed.checkpoint();
        assert!(
            cp.state::<Duration>().is_some(),
            "outer box returned a stateless checkpoint for a stateful inner strategy"
        );
        let next = AdvanceCtx {
            now: Time::ZERO + ms(100),
            clock: v1,
            target: Time::ZERO + ms(700),
            max_clock: None,
            eps: ms(2),
        };
        let expected = boxed.next_clock(next);
        let mut fresh: Box<dyn ClockStrategy> = Box::new(DriftClock::new(1000));
        fresh.restore(&cp);
        assert_eq!(fresh.next_clock(next), expected);
    }

    #[test]
    fn stateless_checkpoint_is_ignored_by_stateful_strategies() {
        let mut d = DriftClock::new(1000);
        let _ = d.next_clock(ctx(0, 0, 100, None));
        let before = d.checkpoint();
        d.restore(&ClockCheckpoint::stateless());
        assert_eq!(
            d.checkpoint().state::<Duration>(),
            before.state::<Duration>()
        );
    }

    #[test]
    fn random_walk_stays_in_envelope() {
        let mut w = RandomWalkClock::new(7, Duration::from_micros(500));
        let mut clock = Time::ZERO;
        let mut now = Time::ZERO;
        for i in 1..200 {
            let target = Time::ZERO + ms(i);
            let c = AdvanceCtx {
                now,
                clock,
                target,
                max_clock: None,
                eps: ms(2),
            };
            clock = check_window(&mut w, c);
            assert!(target.skew(clock) <= ms(2));
            now = target;
        }
    }

    #[test]
    fn random_walk_is_reproducible() {
        let run = |seed| {
            let mut w = RandomWalkClock::new(seed, Duration::from_micros(500));
            let mut clock = Time::ZERO;
            let mut now = Time::ZERO;
            let mut out = Vec::new();
            for i in 1..50 {
                let target = Time::ZERO + ms(i);
                clock = w.next_clock(AdvanceCtx {
                    now,
                    clock,
                    target,
                    max_clock: None,
                    eps: ms(2),
                });
                now = target;
                out.push(clock);
            }
            out
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn scripted_clock_follows_segments() {
        let mut c = ScriptedClock::new(vec![
            (Time::ZERO + ms(10), ms(2)),
            (Time::ZERO + ms(20), ms(-2)),
        ]);
        // Before the first activation: zero offset.
        let v = check_window(&mut c, ctx(0, 0, 5, None));
        assert_eq!(v, Time::ZERO + ms(5));
        // Fast segment active.
        let v = check_window(&mut c, ctx(5, 5, 12, None));
        assert_eq!(v, Time::ZERO + ms(14));
        // Slow segment: scripted reading 22 − 2 = 20; window lo is
        // clock + 1ns, which 20 satisfies (clock was 14 at now = 12 …
        // use fresh state below).
        assert_eq!(c.rejections().get(), 0);
    }

    #[test]
    fn scripted_backward_jump_is_clamped_and_counted() {
        // Offset −5 ms with ε = 2 ms: the scripted reading sits below
        // target − ε *and* below the current clock — both a C3 and a C_ε
        // violation. The strategy must clamp to the window and count it.
        let mut c = ScriptedClock::new(vec![(Time::ZERO, ms(-5))]);
        let cx = ctx(10, 10, 11, None);
        let v = check_window(&mut c, cx);
        let (lo, _) = cx.window();
        assert_eq!(v, lo);
        assert_eq!(c.rejections().get(), 1);
        // The counter is shared: a clone handed to the engine still feeds
        // the handle the harness kept.
        let handle = c.rejections();
        let _ = check_window(
            &mut c,
            AdvanceCtx {
                now: Time::ZERO + ms(11),
                clock: v,
                target: Time::ZERO + ms(12),
                max_clock: None,
                eps: ms(2),
            },
        );
        assert_eq!(handle.get(), 2);
    }

    #[test]
    fn scripted_over_eps_is_clamped_and_counted() {
        let mut c = ScriptedClock::new(vec![(Time::ZERO, ms(3))]);
        let cx = ctx(0, 0, 10, None);
        let v = check_window(&mut c, cx);
        assert_eq!(v, Time::ZERO + ms(12)); // clamped to target + ε
        assert_eq!(c.rejections().get(), 1);
    }

    #[test]
    fn scripted_exactly_eps_is_admissible() {
        let mut c = ScriptedClock::new(vec![(Time::ZERO, ms(2))]);
        let v = check_window(&mut c, ctx(0, 0, 10, None));
        assert_eq!(v, Time::ZERO + ms(12));
        assert_eq!(c.rejections().get(), 0, "|now − clock| = ε is admissible");
    }

    #[test]
    fn window_respects_all_constraints() {
        let c = ctx(0, 9, 10, Some(11));
        let (lo, hi) = c.window();
        assert_eq!(lo, Time::ZERO + ms(9) + Duration::NANOSECOND);
        assert_eq!(hi, Time::ZERO + ms(11));
    }
}
