//! A deterministic min-heap of `(deadline, component)` wake-up entries.
//!
//! This is the engine's replacement for scanning every enabled component
//! on each time advance: components whose [`WakeHint`] promises a fixed
//! wake time get an entry here, and the advance loop pops only the
//! entries that have come due — O(log n) per pop instead of O(n) per
//! advance.
//!
//! The heap is **lazy**: entries are never removed or updated in place
//! when a component's hint changes. The engine re-pushes on every cache
//! refresh and discards stale entries as they surface at the top, by
//! checking each popped entry against its per-component cache. That keeps
//! pushes O(log n) with no lookup structure, at the cost of duplicates —
//! which the engine bounds by rebuilding the heap from its caches when it
//! grows past a small multiple of the component count.
//!
//! Ordering is a total order on `(Time, usize)`: earlier deadlines first,
//! ties broken by ascending component index. Pop order is therefore a
//! deterministic function of the inserted multiset, independent of
//! insertion order — the property pinned by the tests below and relied on
//! for bit-identical replays.
//!
//! [`WakeHint`]: psync_automata::WakeHint

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use psync_time::Time;

/// A min-heap of `(time, component-index)` pairs with deterministic
/// tie-breaking (lowest index first among equal times).
#[derive(Debug, Clone, Default)]
pub(crate) struct WakeHeap {
    heap: BinaryHeap<Reverse<(Time, usize)>>,
}

impl WakeHeap {
    /// An empty heap.
    pub(crate) fn new() -> Self {
        WakeHeap {
            heap: BinaryHeap::new(),
        }
    }

    /// Inserts an entry. Duplicates are allowed (lazy invalidation).
    pub(crate) fn push(&mut self, time: Time, id: usize) {
        self.heap.push(Reverse((time, id)));
    }

    /// The earliest entry, without removing it.
    pub(crate) fn peek(&self) -> Option<(Time, usize)> {
        self.heap.peek().map(|Reverse(e)| *e)
    }

    /// Removes and returns the earliest entry if its time is `<= limit`.
    pub(crate) fn pop_le(&mut self, limit: Time) -> Option<(Time, usize)> {
        match self.heap.peek() {
            Some(Reverse((t, _))) if *t <= limit => self.heap.pop().map(|Reverse(e)| e),
            _ => None,
        }
    }

    /// Removes and returns the earliest entry unconditionally.
    pub(crate) fn pop(&mut self) -> Option<(Time, usize)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Drops all entries.
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of live entries (including stale duplicates).
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Duration;

    fn at(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    #[test]
    fn pops_in_time_then_index_order() {
        let mut h = WakeHeap::new();
        for &(t, id) in &[(5, 2), (3, 9), (5, 0), (3, 1), (7, 4)] {
            h.push(at(t), id);
        }
        let mut order = Vec::new();
        while let Some(e) = h.pop() {
            order.push(e);
        }
        assert_eq!(
            order,
            vec![(at(3), 1), (at(3), 9), (at(5), 0), (at(5), 2), (at(7), 4)]
        );
    }

    #[test]
    fn pop_order_is_independent_of_insertion_order() {
        // A seeded shuffle of the same multiset must drain identically.
        let entries: Vec<(Time, usize)> = (0..32).map(|i| (at((i % 5) as i64), i)).collect();
        let drain = |mut h: WakeHeap| {
            let mut out = Vec::new();
            while let Some(e) = h.pop() {
                out.push(e);
            }
            out
        };
        let mut reference = WakeHeap::new();
        for &(t, id) in &entries {
            reference.push(t, id);
        }
        let expected = drain(reference);

        // splitmix64-style permutation of insertion order.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut shuffled = entries.clone();
        for i in (1..shuffled.len()).rev() {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 27;
            shuffled.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let mut h = WakeHeap::new();
        for &(t, id) in &shuffled {
            h.push(t, id);
        }
        assert_eq!(drain(h), expected);
    }

    #[test]
    fn pop_le_respects_the_limit() {
        let mut h = WakeHeap::new();
        h.push(at(4), 0);
        h.push(at(2), 1);
        assert_eq!(h.pop_le(at(3)), Some((at(2), 1)));
        assert_eq!(h.pop_le(at(3)), None);
        assert_eq!(h.peek(), Some((at(4), 0)));
        assert_eq!(h.len(), 1);
        h.clear();
        assert_eq!(h.pop(), None);
    }
}
