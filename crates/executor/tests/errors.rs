//! The engine's model-error catalogue: every [`EngineError`] variant is
//! reachable exactly when a component (or strategy) breaks its contract,
//! and never on well-formed compositions.

use psync_automata::toys::BeepAction;
use psync_automata::{ActionKind, ClockComponent, TimedComponent};
use psync_executor::{AdvanceCtx, ClockNode, ClockStrategy, Engine, EngineError, PerfectClock};
use psync_time::{Duration, Time};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn at(n: i64) -> Time {
    Time::ZERO + ms(n)
}

/// Demands an action at 5 ms but never enables one: stops time.
#[derive(Debug, Clone)]
struct TimeStopper;

impl TimedComponent for TimeStopper {
    type Action = BeepAction;
    type State = ();

    fn name(&self) -> String {
        "time-stopper".into()
    }
    fn initial(&self) {}
    fn classify(&self, _: &BeepAction) -> Option<ActionKind> {
        Some(ActionKind::Output)
    }
    fn step(&self, _: &(), _: &BeepAction, _: Time) -> Option<()> {
        None
    }
    fn enabled(&self, _: &(), _: Time) -> Vec<BeepAction> {
        Vec::new()
    }
    fn deadline(&self, _: &(), _: Time) -> Option<Time> {
        Some(at(5))
    }
}

#[test]
fn stopped_time_is_diagnosed() {
    let mut engine = Engine::builder().timed(TimeStopper).build();
    let err = engine.run().unwrap_err();
    match err {
        EngineError::TimeStopped {
            component,
            deadline,
            ..
        } => {
            assert_eq!(component, "time-stopper");
            assert_eq!(deadline, at(5));
        }
        other => panic!("expected TimeStopped, got {other}"),
    }
}

/// Claims an enabled output but refuses to perform it.
#[derive(Debug, Clone)]
struct Refuser;

impl TimedComponent for Refuser {
    type Action = BeepAction;
    type State = ();

    fn name(&self) -> String {
        "refuser".into()
    }
    fn initial(&self) {}
    fn classify(&self, _: &BeepAction) -> Option<ActionKind> {
        Some(ActionKind::Output)
    }
    fn step(&self, _: &(), _: &BeepAction, _: Time) -> Option<()> {
        None
    }
    fn enabled(&self, _: &(), _: Time) -> Vec<BeepAction> {
        vec![BeepAction::Beep { src: 0, seq: 0 }]
    }
    fn deadline(&self, _: &(), _: Time) -> Option<Time> {
        None
    }
}

#[test]
fn enabled_but_refused_is_diagnosed() {
    let mut engine = Engine::builder().timed(Refuser).build();
    let err = engine.run().unwrap_err();
    assert!(
        matches!(err, EngineError::EnabledButRefused { .. }),
        "{err}"
    );
}

/// A beeper-like emitter plus a listener that is *not* input-enabled.
#[derive(Debug, Clone)]
struct Emitter;

impl TimedComponent for Emitter {
    type Action = BeepAction;
    type State = bool; // fired?

    fn name(&self) -> String {
        "emitter".into()
    }
    fn initial(&self) -> bool {
        false
    }
    fn classify(&self, a: &BeepAction) -> Option<ActionKind> {
        matches!(a, BeepAction::Beep { src: 0, .. }).then_some(ActionKind::Output)
    }
    fn step(&self, fired: &bool, _: &BeepAction, _: Time) -> Option<bool> {
        (!fired).then_some(true)
    }
    fn enabled(&self, fired: &bool, now: Time) -> Vec<BeepAction> {
        if !fired && now >= at(1) {
            vec![BeepAction::Beep { src: 0, seq: 0 }]
        } else {
            Vec::new()
        }
    }
    fn deadline(&self, fired: &bool, _: Time) -> Option<Time> {
        (!fired).then_some(at(1))
    }
}

#[derive(Debug, Clone)]
struct DeafListener;

impl TimedComponent for DeafListener {
    type Action = BeepAction;
    type State = ();

    fn name(&self) -> String {
        "deaf-listener".into()
    }
    fn initial(&self) {}
    fn classify(&self, a: &BeepAction) -> Option<ActionKind> {
        matches!(a, BeepAction::Beep { src: 0, .. }).then_some(ActionKind::Input)
    }
    fn step(&self, _: &(), _: &BeepAction, _: Time) -> Option<()> {
        None // violates input-enabledness
    }
    fn enabled(&self, _: &(), _: Time) -> Vec<BeepAction> {
        Vec::new()
    }
    fn deadline(&self, _: &(), _: Time) -> Option<Time> {
        None
    }
}

#[test]
fn input_enabledness_violation_is_diagnosed() {
    let mut engine = Engine::builder().timed(Emitter).timed(DeafListener).build();
    let err = engine.run().unwrap_err();
    match err {
        EngineError::InputNotEnabled { component, .. } => {
            assert_eq!(component, "deaf-listener");
        }
        other => panic!("expected InputNotEnabled, got {other}"),
    }
}

/// A clock strategy that freezes the clock (violates axiom C3).
struct FrozenClock;

impl ClockStrategy for FrozenClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        ctx.clock // not strictly increasing
    }
}

/// A clock strategy that sprints far beyond the C_ε envelope.
struct RunawayClock;

impl ClockStrategy for RunawayClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        ctx.target + ctx.eps + ms(10)
    }
}

#[derive(Debug, Clone)]
struct ClockIdler;

impl ClockComponent for ClockIdler {
    type Action = BeepAction;
    type State = u64;

    fn name(&self) -> String {
        "clock-idler".into()
    }
    fn initial(&self) -> u64 {
        0
    }
    fn classify(&self, _: &BeepAction) -> Option<ActionKind> {
        Some(ActionKind::Output)
    }
    fn step(&self, s: &u64, a: &BeepAction, _: Time) -> Option<u64> {
        match a {
            BeepAction::Beep { seq, .. } if *seq == *s => Some(s + 1),
            _ => None,
        }
    }
    fn enabled(&self, s: &u64, clock: Time) -> Vec<BeepAction> {
        if clock >= Time::ZERO + ms(10) * ((*s as i64) + 1) {
            vec![BeepAction::Beep { src: 0, seq: *s }]
        } else {
            Vec::new()
        }
    }
    fn clock_deadline(&self, s: &u64, _: Time) -> Option<Time> {
        Some(Time::ZERO + ms(10) * ((*s as i64) + 1))
    }
}

#[test]
fn frozen_clock_strategy_is_diagnosed() {
    let node = ClockNode::new("n", ms(1), FrozenClock).with(ClockIdler);
    let mut engine = Engine::builder().clock_node(node).horizon(at(50)).build();
    let err = engine.run().unwrap_err();
    match err {
        EngineError::StrategyViolation { node, reason } => {
            assert_eq!(node, "n");
            assert!(reason.contains("C3"), "reason: {reason}");
        }
        other => panic!("expected StrategyViolation, got {other}"),
    }
}

#[test]
fn runaway_clock_strategy_is_diagnosed() {
    let node = ClockNode::new("n", ms(1), RunawayClock).with(ClockIdler);
    let mut engine = Engine::builder().clock_node(node).horizon(at(50)).build();
    let err = engine.run().unwrap_err();
    assert!(
        matches!(err, EngineError::StrategyViolation { .. }),
        "{err}"
    );
}

#[test]
fn well_formed_clock_node_runs_clean() {
    // Control: the same component with a lawful strategy completes.
    let node = ClockNode::new("n", ms(1), PerfectClock).with(ClockIdler);
    let mut engine = Engine::builder().clock_node(node).horizon(at(35)).build();
    let run = engine.run().unwrap();
    assert_eq!(run.execution.len(), 3); // beeps at clock 10, 20, 30
}

mod incremental {
    use psync_automata::toys::{BeepAction, Beeper};
    use psync_executor::{Engine, StopReason};
    use psync_time::{Duration, Time};

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn run_until_is_equivalent_to_one_shot() {
        let one_shot = {
            let mut e = Engine::builder()
                .timed(Beeper::new(ms(7)))
                .horizon(Time::ZERO + ms(50))
                .build();
            e.run().unwrap().execution
        };
        let incremental = {
            let mut e = Engine::builder().timed(Beeper::new(ms(7))).build();
            for step in [10i64, 23, 36, 50] {
                let run = e.run_until(Time::ZERO + ms(step)).unwrap();
                assert_eq!(run.stop, StopReason::Horizon);
                assert_eq!(e.now(), Time::ZERO + ms(step));
            }
            e.run_until(Time::ZERO + ms(50)).unwrap().execution
        };
        assert_eq!(one_shot.t_trace(), incremental.t_trace());
        assert_eq!(one_shot.ltime(), incremental.ltime());
    }

    #[test]
    fn run_until_observes_partial_prefix() {
        let mut e = Engine::builder().timed(Beeper::new(ms(7))).build();
        let first = e.run_until(Time::ZERO + ms(10)).unwrap();
        assert_eq!(first.execution.len(), 1); // only the 7 ms beep
        let second = e.run_until(Time::ZERO + ms(20)).unwrap();
        assert_eq!(second.execution.len(), 2); // 7 and 14 ms
        assert!(matches!(
            second.execution.events()[1].action,
            BeepAction::Beep { seq: 1, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn run_until_rejects_time_travel() {
        let mut e = Engine::builder().timed(Beeper::new(ms(7))).build();
        let _ = e.run_until(Time::ZERO + ms(20)).unwrap();
        let _ = e.run_until(Time::ZERO + ms(10));
    }
}
