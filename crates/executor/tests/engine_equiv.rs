//! Differential tests: the incremental [`Engine`] must produce executions
//! *identical* — same events, same times, same clock readings, same stop
//! reason — to the scan-everything [`ReferenceEngine`] it replaced.
//!
//! The component mixes are chosen to exercise every piece of the
//! incremental machinery:
//!
//! * toys + clock nodes — dirty-set refresh across time advances and the
//!   deadline scratch;
//! * heartbeaters over FIFO and lossy channels — the routing table with
//!   shared `SENDMSG`/`RECVMSG` names and same-instant event bursts;
//! * heartbeaters over plain reordering channels — wildcard-free routing
//!   with randomized delays.
//!
//! Every mix runs under a seeded [`RandomScheduler`] for several seeds:
//! the scheduler is consulted with the same candidate slice in the same
//! order by both engines, so any divergence in candidate collection,
//! firing order, or time advancement shows up as a differing execution.
//! Origin-aware schedulers are pinned too: both engines now feed
//! [`RoundRobinScheduler`] the candidates' flat component ids, so its
//! per-component rotation must also match pick for pick.

use std::cell::RefCell;
use std::rc::Rc;

use psync_apps::heartbeat::{FdAction, FdParams, Heartbeater, Monitor};
use psync_automata::toys::{Beeper, ClockBeeper};
use psync_automata::{Action, TimedEvent};
use psync_executor::{
    ClockNode, ClockRead, Engine, EngineBuilder, Observer, OffsetClock, PerfectClock,
    RandomScheduler, ReferenceEngine, ReferenceEngineBuilder, RoundRobinScheduler, Scheduler,
};
use psync_net::{Channel, DropSeeded, FifoChannel, LossyChannel, NodeId, SeededDelay};
use psync_time::{DelayBounds, Duration, Time};

const SEEDS: [u64; 6] = [1, 7, 42, 99, 1234, 987_654_321];

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn at(n: i64) -> Time {
    Time::ZERO + ms(n)
}

/// Builds the same system twice (the builders are separate types, so the
/// mix is described once as a pair of closures), runs both engines with
/// identically seeded schedulers, and requires identical results.
fn assert_equivalent<A: Action>(
    label: &str,
    build_new: impl Fn(EngineBuilder<A>) -> EngineBuilder<A>,
    build_ref: impl Fn(ReferenceEngineBuilder<A>) -> ReferenceEngineBuilder<A>,
) {
    assert_equivalent_sched(label, RandomScheduler::new, build_new, build_ref);
}

/// As [`assert_equivalent`], with the scheduler family chosen by the
/// caller — used to pin origin-aware schedulers as well as seeded ones.
fn assert_equivalent_sched<A: Action, S: Scheduler<A> + 'static>(
    label: &str,
    sched: impl Fn(u64) -> S,
    build_new: impl Fn(EngineBuilder<A>) -> EngineBuilder<A>,
    build_ref: impl Fn(ReferenceEngineBuilder<A>) -> ReferenceEngineBuilder<A>,
) {
    for seed in SEEDS {
        let mut fast: Engine<A> = build_new(Engine::builder()).scheduler(sched(seed)).build();
        let mut slow: ReferenceEngine<A> = build_ref(ReferenceEngine::builder())
            .scheduler(sched(seed))
            .build();
        let fast_run = fast
            .run()
            .unwrap_or_else(|e| panic!("{label}/{seed}: incremental engine failed: {e}"));
        let slow_run = slow
            .run()
            .unwrap_or_else(|e| panic!("{label}/{seed}: reference engine failed: {e}"));
        assert_eq!(
            fast_run.stop, slow_run.stop,
            "{label}/{seed}: stop reasons diverge"
        );
        assert_eq!(
            fast_run.execution, slow_run.execution,
            "{label}/{seed}: executions diverge"
        );
        assert!(
            !fast_run.execution.is_empty(),
            "{label}/{seed}: vacuous comparison — the mix produced no events"
        );
    }
}

#[test]
fn toys_and_clock_nodes_are_equivalent() {
    // Two interleaving beepers (simultaneously enabled every 35 ms) and
    // two clock nodes whose skewed clocks shift their beeps off the
    // real-time grid.
    assert_equivalent::<psync_automata::toys::BeepAction>(
        "toys",
        |b| {
            b.timed(Beeper::with_src(ms(5), 0))
                .timed(Beeper::with_src(ms(7), 1))
                .clock_node(
                    ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                        .with(ClockBeeper::with_src(ms(9), 7)),
                )
                .clock_node(
                    ClockNode::new("true", ms(1), PerfectClock)
                        .with(ClockBeeper::with_src(ms(11), 8)),
                )
                .horizon(at(200))
        },
        |b| {
            b.timed(Beeper::with_src(ms(5), 0))
                .timed(Beeper::with_src(ms(7), 1))
                .clock_node(
                    ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                        .with(ClockBeeper::with_src(ms(9), 7)),
                )
                .clock_node(
                    ClockNode::new("true", ms(1), PerfectClock)
                        .with(ClockBeeper::with_src(ms(11), 8)),
                )
                .horizon(at(200))
        },
    );
}

#[test]
fn heartbeats_over_fifo_and_lossy_channels_are_equivalent() {
    // Full failure-detector pair in both directions: node 0 heartbeats to
    // node 1 over a FIFO channel, node 1 heartbeats back over a lossy
    // channel that drops ~30% of messages. All four SENDMSG/RECVMSG
    // routes share action names, exercising the routing table's
    // many-components-per-name path.
    let bounds = DelayBounds::new(ms(1), ms(4)).unwrap();
    let params = FdParams {
        period: ms(10),
        timeout: ms(25),
    };
    assert_equivalent::<FdAction>(
        "fifo+lossy",
        |b| {
            b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(10)))
                .timed(FifoChannel::new(
                    NodeId(0),
                    NodeId(1),
                    bounds,
                    SeededDelay::new(5),
                ))
                .timed(Monitor::new(NodeId(1), NodeId(0), params))
                .timed(Heartbeater::new(NodeId(1), NodeId(0), ms(10)))
                .timed(LossyChannel::new(
                    NodeId(1),
                    NodeId(0),
                    bounds,
                    SeededDelay::new(6),
                    DropSeeded::new(7, 30),
                ))
                .timed(Monitor::new(NodeId(0), NodeId(1), params))
                .horizon(at(400))
        },
        |b| {
            b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(10)))
                .timed(FifoChannel::new(
                    NodeId(0),
                    NodeId(1),
                    bounds,
                    SeededDelay::new(5),
                ))
                .timed(Monitor::new(NodeId(1), NodeId(0), params))
                .timed(Heartbeater::new(NodeId(1), NodeId(0), ms(10)))
                .timed(LossyChannel::new(
                    NodeId(1),
                    NodeId(0),
                    bounds,
                    SeededDelay::new(6),
                    DropSeeded::new(7, 30),
                ))
                .timed(Monitor::new(NodeId(0), NodeId(1), params))
                .horizon(at(400))
        },
    );
}

#[test]
fn heartbeats_over_reordering_channels_are_equivalent() {
    // The plain (non-FIFO) channel with randomized delays produces many
    // simultaneously deliverable messages: large candidate sets for the
    // scheduler, and bursts of same-instant events for the dirty set.
    let bounds = DelayBounds::new(ms(0), ms(9)).unwrap();
    let params = FdParams {
        period: ms(5),
        timeout: ms(30),
    };
    assert_equivalent::<FdAction>(
        "reordering",
        |b| {
            b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(5)))
                .timed(Channel::new(
                    NodeId(0),
                    NodeId(1),
                    bounds,
                    SeededDelay::new(11),
                ))
                .timed(Monitor::new(NodeId(1), NodeId(0), params))
                .horizon(at(300))
        },
        |b| {
            b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(5)))
                .timed(Channel::new(
                    NodeId(0),
                    NodeId(1),
                    bounds,
                    SeededDelay::new(11),
                ))
                .timed(Monitor::new(NodeId(1), NodeId(0), params))
                .horizon(at(300))
        },
    );
}

#[test]
fn round_robin_toys_and_clock_nodes_are_equivalent() {
    // The rotation is keyed on flat component ids: both engines must
    // number components identically (timed first, then node components in
    // insertion order) for the cursor to land on the same candidates.
    let mix_new = |b: EngineBuilder<psync_automata::toys::BeepAction>| {
        b.timed(Beeper::with_src(ms(5), 0))
            .timed(Beeper::with_src(ms(7), 1))
            .clock_node(
                ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                    .with(ClockBeeper::with_src(ms(9), 7)),
            )
            .clock_node(
                ClockNode::new("true", ms(1), PerfectClock).with(ClockBeeper::with_src(ms(11), 8)),
            )
            .horizon(at(200))
    };
    let mix_ref = |b: ReferenceEngineBuilder<psync_automata::toys::BeepAction>| {
        b.timed(Beeper::with_src(ms(5), 0))
            .timed(Beeper::with_src(ms(7), 1))
            .clock_node(
                ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                    .with(ClockBeeper::with_src(ms(9), 7)),
            )
            .clock_node(
                ClockNode::new("true", ms(1), PerfectClock).with(ClockBeeper::with_src(ms(11), 8)),
            )
            .horizon(at(200))
    };
    assert_equivalent_sched("rr-toys", |_| RoundRobinScheduler::new(), mix_new, mix_ref);
}

#[test]
fn round_robin_heartbeats_over_channels_are_equivalent() {
    // Large same-instant candidate sets from the reordering channel give
    // the rotation real choices; a flat-id mismatch between the engines
    // would skew every subsequent pick.
    let bounds = DelayBounds::new(ms(0), ms(9)).unwrap();
    let params = FdParams {
        period: ms(5),
        timeout: ms(30),
    };
    assert_equivalent_sched::<FdAction, _>(
        "rr-reordering",
        |_| RoundRobinScheduler::new(),
        |b| {
            b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(5)))
                .timed(Channel::new(
                    NodeId(0),
                    NodeId(1),
                    bounds,
                    SeededDelay::new(11),
                ))
                .timed(Monitor::new(NodeId(1), NodeId(0), params))
                .horizon(at(300))
        },
        |b| {
            b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(5)))
                .timed(Channel::new(
                    NodeId(0),
                    NodeId(1),
                    bounds,
                    SeededDelay::new(11),
                ))
                .timed(Monitor::new(NodeId(1), NodeId(0), params))
                .horizon(at(300))
        },
    );
}

/// Writes every observer hook invocation into a shared log, so two
/// engines' hook streams can be compared line for line.
struct RecordingObserver {
    log: Rc<RefCell<Vec<String>>>,
}

impl RecordingObserver {
    fn new() -> (RecordingObserver, Rc<RefCell<Vec<String>>>) {
        let log = Rc::new(RefCell::new(Vec::new()));
        (
            RecordingObserver {
                log: Rc::clone(&log),
            },
            log,
        )
    }
}

impl<A: Action> Observer<A> for RecordingObserver {
    fn on_candidates(&mut self, now: Time, depth: usize) {
        self.log
            .borrow_mut()
            .push(format!("candidates now={now} depth={depth}"));
    }

    fn on_clock_read(&mut self, read: ClockRead) {
        self.log.borrow_mut().push(format!(
            "read node={} now={} clock={} eps={}",
            read.node, read.now, read.clock, read.eps
        ));
    }

    fn on_event(&mut self, index: usize, event: &TimedEvent<A>) {
        self.log.borrow_mut().push(format!(
            "event[{index}] {:?} kind={:?} now={} clock={:?}",
            event.action, event.kind, event.now, event.clock
        ));
    }

    fn on_advance(&mut self, from: Time, to: Time) {
        self.log
            .borrow_mut()
            .push(format!("advance {from} -> {to}"));
    }
}

/// The toys + clock-nodes mix with an observer attached to both engines:
/// the full hook streams (candidates, clock reads, events, advances) must
/// be identical line for line — the observer contract says both engines
/// invoke the same hooks at the same points in the same order.
#[test]
fn observer_hook_streams_are_identical_across_engines() {
    type A = psync_automata::toys::BeepAction;
    let mix_new = |b: EngineBuilder<A>| {
        b.timed(Beeper::with_src(ms(5), 0))
            .clock_node(
                ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                    .with(ClockBeeper::with_src(ms(9), 7)),
            )
            .clock_node(
                ClockNode::new("true", ms(1), PerfectClock).with(ClockBeeper::with_src(ms(11), 8)),
            )
            .horizon(at(150))
    };
    let mix_ref = |b: ReferenceEngineBuilder<A>| {
        b.timed(Beeper::with_src(ms(5), 0))
            .clock_node(
                ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                    .with(ClockBeeper::with_src(ms(9), 7)),
            )
            .clock_node(
                ClockNode::new("true", ms(1), PerfectClock).with(ClockBeeper::with_src(ms(11), 8)),
            )
            .horizon(at(150))
    };
    for seed in SEEDS {
        let (obs_fast, log_fast) = RecordingObserver::new();
        let (obs_slow, log_slow) = RecordingObserver::new();
        let mut fast = mix_new(Engine::builder())
            .observer(obs_fast)
            .scheduler(RandomScheduler::new(seed))
            .build();
        let mut slow = mix_ref(ReferenceEngine::builder())
            .observer(obs_slow)
            .scheduler(RandomScheduler::new(seed))
            .build();
        let fast_run = fast.run().unwrap();
        let slow_run = slow.run().unwrap();
        assert_eq!(fast_run.execution, slow_run.execution);
        let log_fast = log_fast.borrow();
        let log_slow = log_slow.borrow();
        assert!(
            log_fast.iter().any(|l| l.starts_with("read")),
            "seed {seed}: clock nodes must produce clock-read hooks"
        );
        assert!(log_fast.iter().any(|l| l.starts_with("candidates")));
        assert!(log_fast.iter().any(|l| l.starts_with("advance")));
        assert_eq!(
            *log_fast, *log_slow,
            "seed {seed}: observer hook streams diverge"
        );
    }
}

/// Attaching observers must not perturb the run: the execution with a
/// recording observer attached is bit-identical to the detached run, for
/// both engines.
#[test]
fn attached_observer_leaves_execution_identical_to_detached_run() {
    let bounds = DelayBounds::new(ms(1), ms(4)).unwrap();
    let params = FdParams {
        period: ms(10),
        timeout: ms(25),
    };
    let mix = |b: EngineBuilder<FdAction>| {
        b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(10)))
            .timed(FifoChannel::new(
                NodeId(0),
                NodeId(1),
                bounds,
                SeededDelay::new(5),
            ))
            .timed(Monitor::new(NodeId(1), NodeId(0), params))
            .horizon(at(300))
    };
    let mix_ref = |b: ReferenceEngineBuilder<FdAction>| {
        b.timed(Heartbeater::new(NodeId(0), NodeId(1), ms(10)))
            .timed(FifoChannel::new(
                NodeId(0),
                NodeId(1),
                bounds,
                SeededDelay::new(5),
            ))
            .timed(Monitor::new(NodeId(1), NodeId(0), params))
            .horizon(at(300))
    };
    for seed in SEEDS {
        let detached = mix(Engine::builder())
            .scheduler(RandomScheduler::new(seed))
            .build()
            .run()
            .unwrap();
        let (observer, log) = RecordingObserver::new();
        let attached = mix(Engine::builder())
            .observer(observer)
            .scheduler(RandomScheduler::new(seed))
            .build()
            .run()
            .unwrap();
        assert_eq!(
            detached.execution, attached.execution,
            "seed {seed}: observer perturbed the incremental engine"
        );
        assert_eq!(detached.stop, attached.stop);
        assert!(!log.borrow().is_empty());

        let ref_detached = mix_ref(ReferenceEngine::builder())
            .scheduler(RandomScheduler::new(seed))
            .build()
            .run()
            .unwrap();
        let (observer, _log) = RecordingObserver::new();
        let ref_attached = mix_ref(ReferenceEngine::builder())
            .observer(observer)
            .scheduler(RandomScheduler::new(seed))
            .build()
            .run()
            .unwrap();
        assert_eq!(
            ref_detached.execution, ref_attached.execution,
            "seed {seed}: observer perturbed the reference engine"
        );
    }
}

#[test]
fn incremental_run_until_matches_single_run() {
    // Arc-backed snapshots: driving the incremental engine in four slices
    // observes the same executions a reference engine sees in one shot,
    // and earlier snapshots stay valid after the engine appends past them.
    let build = || {
        Engine::builder()
            .timed(Beeper::with_src(ms(5), 0))
            .timed(Beeper::with_src(ms(7), 1))
            .scheduler(RandomScheduler::new(3))
    };
    let mut sliced = build().build();
    let s1 = sliced.run_until(at(50)).unwrap();
    let s2 = sliced.run_until(at(100)).unwrap();
    let s3 = sliced.run_until(at(150)).unwrap();
    let s4 = sliced.run_until(at(200)).unwrap();

    let mut whole = ReferenceEngine::builder()
        .timed(Beeper::with_src(ms(5), 0))
        .timed(Beeper::with_src(ms(7), 1))
        .scheduler(RandomScheduler::new(3))
        .horizon(at(200))
        .build();
    let w = whole.run().unwrap();

    assert_eq!(s4.execution, w.execution);
    // Prefix property: each earlier snapshot is an unchanged prefix.
    for (i, s) in [&s1, &s2, &s3].into_iter().enumerate() {
        let n = s.execution.len();
        assert_eq!(
            s.execution.events(),
            &w.execution.events()[..n],
            "slice {i} is not a prefix"
        );
    }
    assert!(s1.execution.len() < s4.execution.len());
}
