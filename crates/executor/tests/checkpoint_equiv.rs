//! Differential tests for [`Engine::checkpoint`] / [`Engine::restore`]:
//! resuming from a snapshot must be bit-identical to never having paused.
//!
//! This is the executable form of the paper's Lemma 2.1 (pasting): a
//! checkpoint captures everything the suffix of a run depends on — the
//! component states, the node clocks, the clock-strategy and scheduler
//! positions, and the recorded prefix — so the pasted run
//! `prefix ⌢ suffix-from-checkpoint` *is* the uninterrupted run, event
//! for event, clock reading for clock reading.
//!
//! The sweep is deliberately adversarial on the clock side: every
//! [`ClockStrategy`] the crate ships (perfect, constant-offset, drifting,
//! random-walk, scripted — including a scripted backward jump the C1–C4
//! guard clamps and counts) runs in one fleet, so any strategy whose
//! snapshot misses hidden state (an RNG, an accumulated offset, a
//! rejection counter) diverges somewhere in the index sweep. Both the
//! incremental [`Engine`] and the scan-everything [`ReferenceEngine`]
//! are covered, and — since both speak the same [`EngineCheckpoint`]
//! type — checkpoints are also transplanted *across* the two
//! implementations.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use psync_apps::heartbeat::{FdAction, FdParams, Heartbeater, Monitor};
use psync_automata::toys::{BeepAction, Beeper, ClockBeeper};
use psync_automata::{Action, TimedEvent};
use psync_executor::{
    ClockNode, DriftClock, Engine, Observer, OffsetClock, PerfectClock, RandomScheduler,
    RandomWalkClock, ReferenceEngine, Run, ScriptedClock, StopReason,
};
use psync_net::{DropSeeded, FifoChannel, LossyChannel, NodeId, SeededDelay};
use psync_time::{DelayBounds, Duration, Time};

const SEEDS: [u64; 6] = [1, 7, 42, 99, 1234, 987_654_321];

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn at(n: i64) -> Time {
    Time::ZERO + ms(n)
}

/// The adversary clock fleet: one node per shipped [`ClockStrategy`],
/// each driving a `ClockBeeper` whose beep times expose the node clock,
/// plus a real-time `Beeper` so timed and clock deadlines interleave.
/// The scripted node attempts a backward jump at 60 ms that the guard
/// must clamp — its rejection counter is part of the snapshot too.
///
/// The mix is written as a macro because the two engines' builders are
/// distinct types with identical builder vocabularies.
macro_rules! fleet_mix {
    ($b:expr, $seed:expr) => {
        $b.timed(Beeper::with_src(ms(5), 0))
            .clock_node(
                ClockNode::new("perfect", ms(2), PerfectClock)
                    .with(ClockBeeper::with_src(ms(9), 10)),
            )
            .clock_node(
                ClockNode::new("offset", ms(2), OffsetClock::new(ms(2), ms(2)))
                    .with(ClockBeeper::with_src(ms(11), 11)),
            )
            .clock_node(
                ClockNode::new("drift", ms(2), DriftClock::new(400))
                    .with(ClockBeeper::with_src(ms(7), 12)),
            )
            .clock_node(
                ClockNode::new("walk", ms(2), RandomWalkClock::new($seed ^ 0xA5, ms(1)))
                    .with(ClockBeeper::with_src(ms(13), 13)),
            )
            .clock_node(
                ClockNode::new(
                    "scripted",
                    ms(2),
                    ScriptedClock::new([(at(30), ms(2)), (at(60), ms(-2))]),
                )
                .with(ClockBeeper::with_src(ms(10), 14)),
            )
            .horizon(at(150))
    };
}

fn fleet_engine(seed: u64) -> Engine<BeepAction> {
    fleet_mix!(Engine::builder(), seed)
        .scheduler(RandomScheduler::new(seed))
        .build()
}

fn fleet_reference(seed: u64) -> ReferenceEngine<BeepAction> {
    fleet_mix!(ReferenceEngine::builder(), seed)
        .scheduler(RandomScheduler::new(seed))
        .build()
}

fn assert_same_run<A: Action>(label: &str, resumed: &Run<A>, straight: &Run<A>) {
    assert_eq!(resumed.stop, straight.stop, "{label}: stop reasons diverge");
    assert_eq!(
        resumed.execution, straight.execution,
        "{label}: executions diverge"
    );
}

/// Checkpoint at *every* event index of the fleet run, restore each
/// snapshot into a freshly built engine, run to the horizon: every
/// resumed run must equal the uninterrupted one. The recorder is a
/// single engine paused index by index, so repeated pause/checkpoint
/// cycles are exercised as well as the restores.
#[test]
fn every_prefix_checkpoint_resumes_bit_identically() {
    for seed in SEEDS {
        let straight = fleet_engine(seed).run().unwrap();
        let n = straight.execution.len();
        assert!(n > 50, "seed {seed}: fleet produced only {n} events");
        assert_eq!(straight.stop, StopReason::Horizon);

        let mut recorder = fleet_engine(seed);
        for k in 0..=n {
            let paused = recorder.run_until_events(k).unwrap();
            assert_eq!(paused.stop, StopReason::Paused, "seed {seed}, index {k}");
            assert_eq!(paused.execution.len(), k, "seed {seed}: pause overshoots");
            let cp = recorder.checkpoint();
            let mut resumed = fleet_engine(seed);
            resumed.restore(&cp);
            let run = resumed.run().unwrap();
            assert_same_run(&format!("seed {seed}, index {k}"), &run, &straight);
        }
        // The paused-and-checkpointed recorder itself also finishes
        // identically: checkpointing is read-only.
        let rest = recorder.run().unwrap();
        assert_same_run(&format!("seed {seed}, recorder"), &rest, &straight);
    }
}

/// The same every-index sweep for the [`ReferenceEngine`] — its simpler
/// scan loop shares the snapshot type and must honour the same contract.
#[test]
fn reference_engine_checkpoints_resume_bit_identically() {
    for seed in SEEDS {
        let straight = fleet_reference(seed).run().unwrap();
        let n = straight.execution.len();
        let mut recorder = fleet_reference(seed);
        for k in 0..=n {
            recorder.run_until_events(k).unwrap();
            let cp = recorder.checkpoint();
            let mut resumed = fleet_reference(seed);
            resumed.restore(&cp);
            let run = resumed.run().unwrap();
            assert_same_run(&format!("seed {seed}, index {k}"), &run, &straight);
        }
    }
}

/// Checkpoints transplant across engine implementations: a snapshot
/// taken by the incremental engine resumes inside the reference engine
/// (and vice versa) to the same run both would produce alone. This pins
/// that the snapshot contains *all* run state and nothing
/// implementation-private.
#[test]
fn checkpoints_transfer_across_engine_implementations() {
    for seed in SEEDS {
        let straight = fleet_engine(seed).run().unwrap();
        let n = straight.execution.len();
        for k in (0..=n).step_by(5) {
            let mut fast = fleet_engine(seed);
            fast.run_until_events(k).unwrap();
            let mut slow = fleet_reference(seed);
            slow.restore(&fast.checkpoint());
            let run = slow.run().unwrap();
            assert_same_run(
                &format!("fast->ref seed {seed}, index {k}"),
                &run,
                &straight,
            );

            let mut slow = fleet_reference(seed);
            slow.run_until_events(k).unwrap();
            let mut fast = fleet_engine(seed);
            fast.restore(&slow.checkpoint());
            let run = fast.run().unwrap();
            assert_same_run(
                &format!("ref->fast seed {seed}, index {k}"),
                &run,
                &straight,
            );
        }
    }
}

/// Restoring *backwards* — checkpoint, keep running (which pushes fresh
/// entries into the wake/deadline heaps, re-hints components, and grows
/// the shared event arena past the snapshot), then restore the old
/// snapshot — must leave no trace of the abandoned continuation. The
/// heaps are lazily invalidated, so after the rollback they still hold
/// entries from the discarded future; restore's all-dirty rebuild must
/// make every one of them unreachable. The snapshot's own event view
/// must also be unaffected by the arena growing underneath it
/// (copy-on-write, never truncation).
#[test]
fn restore_after_heap_mutating_advances_is_bit_identical() {
    for seed in SEEDS {
        let straight = fleet_engine(seed).run().unwrap();
        let n = straight.execution.len();
        for k in [0, 1, n / 4, n / 2, 3 * n / 4] {
            let mut engine = fleet_engine(seed);
            engine.run_until_events(k).unwrap();
            let cp = engine.checkpoint();
            let frozen = cp.events().to_vec();

            // Mutate the scheduler state: many fires and time advances
            // past the snapshot, each re-hinting components and pushing
            // heap entries the rollback will orphan.
            engine.run_until_events(k + 25).unwrap();
            assert_eq!(
                cp.events(),
                &frozen[..],
                "seed {seed}, index {k}: the snapshot's event view moved while the engine ran on"
            );

            engine.restore(&cp);
            // A second snapshot taken right after the rollback sees the
            // same prefix — the arena rewound, not just the counter.
            assert_eq!(
                engine.checkpoint().events(),
                &frozen[..],
                "seed {seed}, index {k}: rollback left extra events in the arena"
            );
            let run = engine.run().unwrap();
            assert_same_run(&format!("seed {seed}, rollback at {k}"), &run, &straight);
        }
    }
}

/// [`Engine::fork`] mid-run: the sibling and the original continue
/// independently and both land on the uninterrupted run — the shared
/// prefix is copy-on-write, so neither continuation can disturb the
/// other.
#[test]
fn forked_sibling_and_original_continue_identically() {
    for seed in SEEDS {
        let straight = fleet_engine(seed).run().unwrap();
        let mid = straight.execution.len() / 2;
        let mut original = fleet_engine(seed);
        original.run_until_events(mid).unwrap();
        let mut sibling = original
            .fork(fleet_mix!(Engine::builder(), seed).scheduler(RandomScheduler::new(seed)));
        // Finish the sibling first so any prefix aliasing bug would
        // corrupt the original's continuation.
        let sibling_run = sibling.run().unwrap();
        let original_run = original.run().unwrap();
        assert_same_run(&format!("seed {seed}, sibling"), &sibling_run, &straight);
        assert_same_run(&format!("seed {seed}, original"), &original_run, &straight);
    }
}

/// Channels carry real message state (in-flight envelopes, FIFO queues,
/// drop RNGs): the heartbeat failure-detector pair over FIFO + lossy
/// channels must also resume bit-identically from every index.
#[test]
fn heartbeat_channel_state_survives_checkpoint_restore() {
    let bounds = DelayBounds::new(ms(1), ms(4)).unwrap();
    let params = FdParams {
        period: ms(10),
        timeout: ms(25),
    };
    let build = |seed: u64| -> Engine<FdAction> {
        Engine::builder()
            .timed(Heartbeater::new(NodeId(0), NodeId(1), ms(10)))
            .timed(FifoChannel::new(
                NodeId(0),
                NodeId(1),
                bounds,
                SeededDelay::new(5),
            ))
            .timed(Monitor::new(NodeId(1), NodeId(0), params))
            .timed(Heartbeater::new(NodeId(1), NodeId(0), ms(10)))
            .timed(LossyChannel::new(
                NodeId(1),
                NodeId(0),
                bounds,
                SeededDelay::new(6),
                DropSeeded::new(7, 30),
            ))
            .timed(Monitor::new(NodeId(0), NodeId(1), params))
            .horizon(at(400))
            .scheduler(RandomScheduler::new(seed))
            .build()
    };
    for seed in SEEDS {
        let straight = build(seed).run().unwrap();
        let n = straight.execution.len();
        assert!(
            n > 50,
            "seed {seed}: heartbeat mix produced only {n} events"
        );
        let mut recorder = build(seed);
        for k in 0..=n {
            recorder.run_until_events(k).unwrap();
            let cp = recorder.checkpoint();
            let mut resumed = build(seed);
            resumed.restore(&cp);
            let run = resumed.run().unwrap();
            assert_same_run(&format!("seed {seed}, index {k}"), &run, &straight);
        }
    }
}

/// Logs the checkpoint-related hooks plus every event, so the resumed
/// engine's hook stream can be aligned against the straight run's.
struct CheckpointObserver {
    log: Rc<RefCell<Vec<String>>>,
}

impl CheckpointObserver {
    fn new() -> (CheckpointObserver, Rc<RefCell<Vec<String>>>) {
        let log = Rc::new(RefCell::new(Vec::new()));
        (
            CheckpointObserver {
                log: Rc::clone(&log),
            },
            log,
        )
    }
}

impl<A: Action> Observer<A> for CheckpointObserver {
    fn on_event(&mut self, index: usize, event: &TimedEvent<A>) {
        self.log.borrow_mut().push(format!(
            "event[{index}] {:?} kind={:?} now={} clock={:?}",
            event.action, event.kind, event.now, event.clock
        ));
    }

    fn on_checkpoint(&mut self, events: usize) {
        self.log.borrow_mut().push(format!("checkpoint n={events}"));
    }

    fn on_restore(&mut self, events: &[TimedEvent<A>]) {
        self.log
            .borrow_mut()
            .push(format!("restore n={}", events.len()));
    }
}

fn event_lines(log: &[String]) -> Vec<String> {
    log.iter()
        .filter(|l| l.starts_with("event"))
        .cloned()
        .collect()
}

/// A restored engine's observers see exactly the suffix: `on_restore`
/// with the k-event prefix, then event hooks identical line for line to
/// the straight run's events `k..`. The recorder's observer sees the
/// matching `on_checkpoint` notifications.
#[test]
fn observer_streams_after_restore_match_the_straight_suffix() {
    for seed in SEEDS {
        let (obs, straight_log) = CheckpointObserver::new();
        let straight = fleet_mix!(Engine::builder(), seed)
            .observer(obs)
            .scheduler(RandomScheduler::new(seed))
            .build()
            .run()
            .unwrap();
        let straight_events = event_lines(&straight_log.borrow());
        assert_eq!(straight_events.len(), straight.execution.len());

        let n = straight.execution.len();
        for k in [0, 1, n / 3, n / 2, n - 1, n] {
            let (obs, recorder_log) = CheckpointObserver::new();
            let mut recorder = fleet_mix!(Engine::builder(), seed)
                .observer(obs)
                .scheduler(RandomScheduler::new(seed))
                .build();
            recorder.run_until_events(k).unwrap();
            let cp = recorder.checkpoint();
            assert_eq!(
                recorder_log.borrow().last().map(String::as_str),
                Some(format!("checkpoint n={k}").as_str()),
                "seed {seed}, index {k}: recorder missed the checkpoint hook"
            );

            let (obs, resumed_log) = CheckpointObserver::new();
            let mut resumed = fleet_mix!(Engine::builder(), seed)
                .observer(obs)
                .scheduler(RandomScheduler::new(seed))
                .build();
            resumed.restore(&cp);
            let run = resumed.run().unwrap();
            assert_same_run(&format!("seed {seed}, index {k}"), &run, &straight);

            let resumed_log = resumed_log.borrow();
            assert_eq!(
                resumed_log.first().map(String::as_str),
                Some(format!("restore n={k}").as_str()),
                "seed {seed}, index {k}: restore hook missing or out of order"
            );
            assert_eq!(
                event_lines(&resumed_log),
                straight_events[k..],
                "seed {seed}, index {k}: resumed event hooks diverge from the straight suffix"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random seeds and random pause points over the adversary fleet:
    /// for any seed and any index, restoring the index-k snapshot into a
    /// fresh engine of either implementation reproduces the straight
    /// run exactly.
    #[test]
    fn any_pause_point_resumes_identically(seed in 0u64..u64::MAX, pause in 0usize..400) {
        let straight = fleet_engine(seed).run().unwrap();
        let k = pause.min(straight.execution.len());

        let mut recorder = fleet_engine(seed);
        recorder.run_until_events(k).unwrap();
        let cp = recorder.checkpoint();

        let mut resumed = fleet_engine(seed);
        resumed.restore(&cp);
        let run = resumed.run().unwrap();
        prop_assert_eq!(run.stop, straight.stop);
        prop_assert_eq!(&run.execution, &straight.execution);

        let mut crossed = fleet_reference(seed);
        crossed.restore(&cp);
        let run = crossed.run().unwrap();
        prop_assert_eq!(run.stop, straight.stop);
        prop_assert_eq!(&run.execution, &straight.execution);
    }
}
