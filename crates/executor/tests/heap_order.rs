//! Deterministic tie-breaking of the wake-up heap: when many components
//! share a deadline, the heap engine must wake and fire them in exactly
//! the order the scan-everything [`ReferenceEngine`] does — ties broken
//! by `(deadline, component_index)`, never by heap insertion history.
//!
//! The mixes here are chosen to flood the heap with *equal* deadlines:
//! banks of beepers sharing one period, pushed and re-pushed in varying
//! orders as the run progresses (every fire re-hints the component, so
//! the heap sees the same `(deadline, id)` pairs arrive along different
//! insertion sequences on different seeds). The `WakeHeap` unit tests
//! pin the pop order of the raw heap; these tests pin the property that
//! actually matters downstream — the *execution* is a pure function of
//! components + scheduler + seed, identical across engines and across
//! repeated runs.

use psync_automata::toys::{BeepAction, Beeper, ClockBeeper};
use psync_automata::Action;
use psync_executor::{
    ClockNode, Engine, EngineBuilder, OffsetClock, PerfectClock, RandomScheduler, ReferenceEngine,
    ReferenceEngineBuilder, RoundRobinScheduler, Scheduler,
};
use psync_time::{Duration, Time};

const SEEDS: [u64; 6] = [1, 7, 42, 99, 1234, 987_654_321];

/// Beepers sharing one period: every one of them hints `At(t)` for the
/// *same* `t`, so each advance pops a full run of equal-deadline heap
/// entries.
const TIED_BEEPERS: u32 = 6;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn at(n: i64) -> Time {
    Time::ZERO + ms(n)
}

fn tied_mix_new(mut b: EngineBuilder<BeepAction>) -> EngineBuilder<BeepAction> {
    for src in 0..TIED_BEEPERS {
        b = b.timed(Beeper::with_src(ms(5), src));
    }
    // One off-grid beeper so the heap also holds a *distinct* smaller
    // deadline between bursts, and two clock nodes so ties coexist with
    // the uncached clock-component wake path.
    b.timed(Beeper::with_src(ms(3), 100))
        .clock_node(
            ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                .with(ClockBeeper::with_src(ms(5), 200)),
        )
        .clock_node(
            ClockNode::new("true", ms(1), PerfectClock).with(ClockBeeper::with_src(ms(5), 201)),
        )
        .horizon(at(120))
}

fn tied_mix_ref(mut b: ReferenceEngineBuilder<BeepAction>) -> ReferenceEngineBuilder<BeepAction> {
    for src in 0..TIED_BEEPERS {
        b = b.timed(Beeper::with_src(ms(5), src));
    }
    b.timed(Beeper::with_src(ms(3), 100))
        .clock_node(
            ClockNode::new("fast", ms(2), OffsetClock::new(ms(2), ms(2)))
                .with(ClockBeeper::with_src(ms(5), 200)),
        )
        .clock_node(
            ClockNode::new("true", ms(1), PerfectClock).with(ClockBeeper::with_src(ms(5), 201)),
        )
        .horizon(at(120))
}

fn run_both<A: Action, S: Scheduler<A> + 'static>(
    label: &str,
    sched: impl Fn() -> S,
    build_new: impl Fn(EngineBuilder<A>) -> EngineBuilder<A>,
    build_ref: impl Fn(ReferenceEngineBuilder<A>) -> ReferenceEngineBuilder<A>,
) -> psync_executor::Run<A> {
    let mut fast: Engine<A> = build_new(Engine::builder()).scheduler(sched()).build();
    let mut slow: ReferenceEngine<A> = build_ref(ReferenceEngine::builder())
        .scheduler(sched())
        .build();
    let fast_run = fast
        .run()
        .unwrap_or_else(|e| panic!("{label}: heap engine failed: {e}"));
    let slow_run = slow
        .run()
        .unwrap_or_else(|e| panic!("{label}: reference engine failed: {e}"));
    assert_eq!(
        fast_run.stop, slow_run.stop,
        "{label}: stop reasons diverge"
    );
    assert_eq!(
        fast_run.execution, slow_run.execution,
        "{label}: executions diverge"
    );
    assert!(
        !fast_run.execution.is_empty(),
        "{label}: vacuous comparison — the mix produced no events"
    );
    fast_run
}

/// Equal-deadline bursts under a seeded scheduler: for every seed the
/// heap engine's execution is bit-identical to the reference's, and
/// running the same seed twice reproduces the same execution — the pop
/// order of tied entries depends only on `(deadline, component_index)`.
#[test]
fn tied_deadlines_match_the_reference_for_every_seed() {
    for seed in SEEDS {
        let label = format!("tied/{seed}");
        let first = run_both(
            &label,
            || RandomScheduler::new(seed),
            tied_mix_new,
            tied_mix_ref,
        );
        let again = run_both(
            &label,
            || RandomScheduler::new(seed),
            tied_mix_new,
            tied_mix_ref,
        );
        assert_eq!(
            first.execution, again.execution,
            "{label}: same seed, different execution"
        );
    }
}

/// The round-robin scheduler sees candidates in flat-component-id order,
/// so its rotation is a direct window onto tie-breaking: if the heap
/// ever surfaced tied components in a different order than the
/// reference's linear scan, the rotation would diverge pick for pick.
/// The first burst is pinned explicitly: all six tied beepers fire at
/// t = 5 ms, in ascending component-index (= src) order.
#[test]
fn round_robin_rotation_pins_the_tie_break_order() {
    let run = run_both(
        "rr-tied",
        RoundRobinScheduler::new,
        tied_mix_new,
        tied_mix_ref,
    );
    let first_burst: Vec<u32> = run
        .execution
        .events()
        .iter()
        .filter(|e| e.now == at(5))
        .filter_map(|e| match &e.action {
            BeepAction::Beep { src, .. } if *src < TIED_BEEPERS => Some(*src),
            _ => None,
        })
        .collect();
    assert_eq!(
        first_burst,
        (0..TIED_BEEPERS).collect::<Vec<_>>(),
        "tied beepers must fire in component-index order under round-robin"
    );
}

/// Tie-breaking survives heap churn: pausing and resuming (which leaves
/// the lazy heaps holding stale entries for every re-hinted component)
/// must not change how later ties resolve.
#[test]
fn ties_resolve_identically_across_pause_and_resume() {
    for seed in SEEDS {
        let mut paused: Engine<BeepAction> = tied_mix_new(Engine::builder())
            .scheduler(RandomScheduler::new(seed))
            .build();
        let mut straight: Engine<BeepAction> = tied_mix_new(Engine::builder())
            .scheduler(RandomScheduler::new(seed))
            .build();
        // Walk the paused engine forward in small steps so every burst
        // boundary is crossed with stale heap entries still queued.
        let mut target = 4usize;
        let paused_run = loop {
            let run = paused.run_until_events(target).unwrap();
            if run.stop != psync_executor::StopReason::Paused {
                break run;
            }
            target += 4;
        };
        let straight_run = straight.run().unwrap();
        assert_eq!(
            paused_run.execution, straight_run.execution,
            "seed {seed}: pausing changed tie resolution"
        );
    }
}
