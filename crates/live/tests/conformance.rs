//! Live-vs-sim conformance: the same register algorithm, run once on the
//! simulator and once on real threads, both judged by the same oracle
//! set through the same [`Driver`] seam.
//!
//! This is the payoff of the dual-backend design. `AlgorithmS` is
//! *identical code* in both runs — only where time and scheduling come
//! from differs — and both backends end in a captured
//! [`psync_automata::Execution`], so `psync_verify` judges them with the
//! same oracle constructors. The tolerances differ only by what each
//! backend *measured*: the sim is judged at its configured ε and
//! `[d₁, d₂]`; the live run at its probe-measured ε̂ and its declared
//! envelope.

use psync_core::{build_dc, NodeSpec};
use psync_executor::{ClockStrategy, Driver, PerfectClock, StopReason};
use psync_live::{judge_live_register, LiveConfig, LiveRegister};
use psync_net::{MinDelay, SysAction, Topology};
use psync_register::{AlgorithmS, ClosedLoopWorkload, RegAction, RegisterParams};
use psync_time::{DelayBounds, Duration, Time};

const NODES: usize = 3;
const OPS_PER_NODE: u32 = 4;

fn response_count(exec: &psync_automata::Execution<RegAction>) -> usize {
    exec.events()
        .iter()
        .filter(|e| match &e.action {
            SysAction::App(op) => op.is_response(),
            _ => false,
        })
        .count()
}

/// The simulator half: a complete-topology register system with perfect
/// clocks and minimum-delay channels, driven through the `Driver` trait.
fn sim_run() -> (psync_executor::Run<RegAction>, Duration, DelayBounds) {
    let topo = Topology::complete(NODES);
    let physical =
        DelayBounds::new(Duration::from_millis(2), Duration::from_millis(6)).expect("valid");
    let eps = Duration::from_millis(1);
    let params = RegisterParams::for_clock_model(
        &topo,
        physical,
        eps,
        Duration::from_millis(3),
        Duration::from_micros(100),
    );
    let algorithms: Vec<NodeSpec<_, _>> = topo
        .nodes()
        .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
        .collect();
    let strategies: Vec<Box<dyn ClockStrategy>> = (0..NODES)
        .map(|_| Box::new(PerfectClock) as Box<dyn ClockStrategy>)
        .collect();
    let think =
        DelayBounds::new(Duration::from_millis(1), Duration::from_millis(6)).expect("valid");
    let workload = ClosedLoopWorkload::new(&topo, 0xC0FF_EE11, think, OPS_PER_NODE);
    let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
        Box::new(MinDelay)
    })
    .timed(workload)
    .horizon(Time::ZERO + Duration::from_secs(2))
    .max_events(250_000)
    .build();

    let driver: &mut dyn Driver<RegAction> = &mut engine;
    assert_eq!(driver.backend(), "sim");
    let run = driver.drive().expect("sim run completes");
    (run, eps, physical)
}

#[test]
fn live_and_sim_runs_pass_the_same_oracle_set() {
    // --- Simulated backend -------------------------------------------
    let (sim, sim_eps, sim_bounds) = sim_run();
    assert_eq!(
        sim.stop,
        StopReason::Quiescent,
        "sim workload should drain before the horizon"
    );
    assert_eq!(
        response_count(&sim.execution),
        NODES * OPS_PER_NODE as usize
    );
    let sim_violations = judge_live_register(&sim.execution, NODES, sim_eps, sim_bounds);
    assert!(
        sim_violations.is_empty(),
        "sim run failed oracles: {sim_violations:?}"
    );

    // --- Live backend ------------------------------------------------
    let cfg = LiveConfig {
        nodes: NODES,
        ops_per_node: OPS_PER_NODE,
        ..LiveConfig::default()
    };
    let bounds = cfg.bounds;
    let mut live = LiveRegister::new(cfg);
    let driver: &mut dyn Driver<RegAction> = &mut live;
    assert_eq!(driver.backend(), "live");
    let run = driver.drive().expect("live run completes");
    let report = live.report().expect("live report recorded");

    assert_eq!(
        run.stop,
        StopReason::Quiescent,
        "live workload should complete within budget ({} of {} ops)",
        report.ops_completed,
        report.ops_requested
    );
    assert_eq!(
        response_count(&run.execution),
        NODES * OPS_PER_NODE as usize
    );

    // The online monitor judged the run as it happened...
    assert!(
        report.monitor.violations.is_empty(),
        "online monitors flagged: {:?}",
        report.monitor.violations
    );
    // ...and the post-hoc oracles re-judge the captured execution at the
    // measured ε̂ — the same checks that accepted the sim run, with
    // tolerances widened only by what the probes measured.
    let live_violations = judge_live_register(&run.execution, NODES, report.eps_hat, bounds);
    assert!(
        live_violations.is_empty(),
        "live run failed oracles: {live_violations:?}"
    );

    // The live trace is a real concurrent history: every delivery stayed
    // inside the declared envelope and the measured worst delay is sane.
    assert!(report.deliveries > 0, "writes must have crossed the wire");
    assert!(report.max_delivery_delay >= bounds.min());
    assert!(report.max_delivery_delay <= bounds.max());
    assert!(report.latency.count == u64::from(OPS_PER_NODE) * NODES as u64);
    assert!(report.latency.p50 <= report.latency.max);
}

/// A live run with deliberately skewed clocks: the skew must show up in
/// the measured ε̂ (that is what "measured" means), and the run must
/// still pass every oracle at the measured bound.
#[test]
fn skewed_clocks_widen_the_measured_eps_and_still_conform() {
    let skew = Duration::from_millis(2);
    let cfg = LiveConfig {
        nodes: 2,
        ops_per_node: 2,
        offsets: vec![Duration::ZERO, skew],
        ..LiveConfig::default()
    };
    let bounds = cfg.bounds;
    let mut live = LiveRegister::new(cfg);
    let run = live.drive().expect("skewed live run completes");
    let report = live.report().expect("report recorded");

    assert!(
        report.eps_measurement.measured >= Duration::from_millis(1),
        "probes measured {} — the 2 ms offset should be visible",
        report.eps_measurement.measured
    );
    let violations = judge_live_register(&run.execution, 2, report.eps_hat, bounds);
    assert!(violations.is_empty(), "skewed run failed: {violations:?}");
    assert!(report.monitor.violations.is_empty());

    // The probe-measured bound should beat what in-band synchronization
    // over the declared envelope could promise: RTT probes see actual
    // scheduling latency (microseconds), not the full `d₂ − d₁` width a
    // message-passing synchronizer must assume.
    let predicted = psync_sync::predicted_eps_hat(
        bounds.min(),
        bounds.max(),
        200,
        Time::ZERO + Duration::from_secs(1),
    );
    assert!(
        report.eps_hat < predicted,
        "measured ε̂ {} should undercut the predicted in-band bound {}",
        report.eps_hat,
        predicted
    );
}
