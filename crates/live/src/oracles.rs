//! The post-hoc oracle set for a captured live register run.
//!
//! A live run ends as an ordinary [`Execution`], so `psync_verify`
//! re-judges it exactly like a simulated one. The set here is the live
//! counterpart of the explorer's register oracles: linearizability over
//! the application trace, `C_ε` at the *measured* ε̂, per-edge FIFO, and
//! the delivery envelope over the *measured* wire delays. (The sim-only
//! `replay(workload)` oracle has no live analogue — the workload is the
//! load generator, not a component in the composition.)

use psync_automata::Execution;
use psync_automata::Verdict;
use psync_core::app_trace;
use psync_net::SysAction;
use psync_obs::CEpsOracle;
use psync_register::{RegAction, Value};
use psync_time::{DelayBounds, Duration};
use psync_verify::{check_fifo_per_edge, FnOracle, LinearizableRegister, Oracle, ProblemOracle};

use crate::monitor::{envelope_oracle_name, EnvelopeStream};
use psync_automata::Action;
use psync_verify::StreamOracle;

/// Sweeps a recorded execution through the delivery-envelope check:
/// every `ERECVMSG` between `d₁` and `d₂` after its `ESENDMSG`.
pub fn check_delivery_envelope<M, O>(
    exec: &Execution<SysAction<M, O>>,
    bounds: DelayBounds,
) -> Verdict
where
    M: Clone + Eq + std::hash::Hash + core::fmt::Debug + 'static,
    O: Action,
{
    let mut stream = EnvelopeStream::new(bounds.min(), bounds.max());
    for (i, event) in exec.events().iter().enumerate() {
        StreamOracle::<SysAction<M, O>>::observe_event(&mut stream, i, event);
    }
    StreamOracle::<SysAction<M, O>>::finish(&mut stream, exec.ltime())
}

/// The oracle set a captured live register run must satisfy.
///
/// `n` is the node count, `eps_hat` the measured bound the run used,
/// `bounds` the declared wire envelope. The same constructors, fed a sim
/// run's parameters, judge a simulated register run — that symmetry is
/// the live-vs-sim conformance test.
#[must_use]
pub fn live_register_oracles(
    n: usize,
    eps_hat: Duration,
    bounds: DelayBounds,
) -> Vec<Box<dyn Oracle<RegAction>>> {
    vec![
        Box::new(ProblemOracle::new(
            LinearizableRegister::new(n, Value::INITIAL),
            app_trace,
        )),
        Box::new(CEpsOracle::new(eps_hat)),
        Box::new(FnOracle::new("fifo per edge", check_fifo_per_edge)),
        Box::new(FnOracle::new(
            envelope_oracle_name(bounds.min(), bounds.max()),
            move |exec: &Execution<RegAction>| check_delivery_envelope(exec, bounds),
        )),
    ]
}

/// The stream-oracle set the live monitor runs *during* the run: the
/// online faces of [`live_register_oracles`]'s envelope and `C_ε`
/// checks. (Linearizability and FIFO stay post-hoc: they are cheap once
/// and not usefully incremental here.)
#[must_use]
pub fn live_register_monitors(
    eps_hat: Duration,
    bounds: DelayBounds,
) -> Vec<Box<dyn StreamOracle<RegAction>>> {
    vec![
        Box::new(crate::monitor::CEpsStream::new(eps_hat)),
        Box::new(EnvelopeStream::new(bounds.min(), bounds.max())),
    ]
}

/// Judges a captured execution against [`live_register_oracles`],
/// returning violations in oracle order (the `check_all` shape).
#[must_use]
pub fn judge_live_register(
    exec: &Execution<RegAction>,
    n: usize,
    eps_hat: Duration,
    bounds: DelayBounds,
) -> Vec<(String, String)> {
    let oracles = live_register_oracles(n, eps_hat, bounds);
    let mut violations = Vec::new();
    for oracle in &oracles {
        if let Verdict::Violated(why) = oracle.check(exec) {
            violations.push((oracle.name(), why));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Time;

    #[test]
    fn the_live_oracle_set_covers_four_properties() {
        let bounds = DelayBounds::new(Duration::from_millis(1), Duration::from_millis(10)).unwrap();
        let oracles = live_register_oracles(3, Duration::from_millis(2), bounds);
        let names: Vec<String> = oracles.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 4);
        assert!(names.iter().any(|n| n.contains("linearizable")));
        assert!(names.iter().any(|n| n.contains("C_eps")));
        assert!(names.iter().any(|n| n.contains("fifo")));
        assert!(names.iter().any(|n| n.contains("delivery")));
    }

    #[test]
    fn an_empty_execution_passes_every_oracle() {
        let bounds = DelayBounds::new(Duration::from_millis(1), Duration::from_millis(10)).unwrap();
        let exec = Execution::new(Vec::new(), Time::ZERO);
        assert!(judge_live_register(&exec, 3, Duration::from_millis(1), bounds).is_empty());
    }
}
