//! The live execution backend: the paper's algorithms on real OS
//! threads, real monotonic clocks, and real (in-process) wires.
//!
//! The simulator (`psync-executor`) explores the clock model
//! adversarially: virtual time, seeded schedulers, clock strategies
//! probing the corners of the `C_ε` envelope. This crate runs the *same*
//! component code — [`psync_core::transform_node`]'s `A^c_{i,ε}`
//! composition, verbatim — as a deployment would:
//!
//! * **one OS thread per node** ([`LiveRegister`]), each owning a
//!   single-node engine driven to wall time and fed external inputs
//!   through [`Engine::inject`](psync_executor::Engine::inject);
//! * **monotonic clocks** ([`MonotonicClock`]): every clock consultation
//!   reads [`std::time::Instant`] (plus the node's configured offset),
//!   clamped into the envelope the engine enforces;
//! * **a measured ε̂** ([`measure_eps_hat`]): RTT probes against the
//!   actual node clocks bound the skew *before* the run, and every
//!   downstream consumer — engine envelopes, register parameters, the
//!   `C_ε` oracle — is priced off that measured bound, closing the loop
//!   `psync-sync` opened;
//! * **measured wire delays** ([`wire`]): per-edge FIFO channels whose
//!   delivery delays are enforced at `d₁` (hold-back) and *checked*
//!   against `d₂` by the envelope monitors;
//! * **online judging** ([`LiveMonitor`]): a monitor thread owns an
//!   [`OnlineJudge`](psync_obs::OnlineJudge) over stream oracles and
//!   judges the merged event stream as it happens, stopping the run the
//!   moment a violation is certain;
//! * **capture** — the run ends as an ordinary
//!   [`Execution`](psync_automata::Execution) inside a
//!   [`Run`](psync_executor::Run), so `psync_verify`'s post-hoc oracles
//!   ([`live_register_oracles`]) re-judge live runs exactly like
//!   simulated ones. Both backends sit behind the
//!   [`Driver`](psync_executor::Driver) seam.
//!
//! This is the workspace's answer to the paper's deployment story
//! (Sections 1 and 7): the algorithms were *designed* against `[d₁, d₂]`
//! and `C_ε`; here those are measured quantities of a running system,
//! not simulation parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod monitor;
pub mod oracles;
pub mod probe;
pub mod runtime;
pub mod wire;

pub use clock::{wall_time, MonotonicClock, WallClock};
pub use monitor::{CEpsStream, EnvelopeStream, LiveMonitor, MonitorMsg, MonitorOutcome};
pub use oracles::{
    check_delivery_envelope, judge_live_register, live_register_monitors, live_register_oracles,
};
pub use probe::{measure_eps_hat, EpsHatMeasurement};
pub use runtime::{LatencyStats, LiveConfig, LiveRegister, LiveReport};
pub use wire::{Inbox, WireMsg};
