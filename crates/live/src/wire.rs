//! The live wire: per-edge in-process channels carrying real, measured
//! delays.
//!
//! Each directed edge `(i, j)` of the topology is one
//! [`std::sync::mpsc`] channel — FIFO by construction, like the paper's
//! channels. A [`WireMsg`] carries the envelope, the sender's clock stamp
//! (the `ESENDMSG` stamp of Section 4.2), and the model time the send
//! fired. The receiving node's [`Inbox`] holds messages back until the
//! declared minimum delay `d₁` has elapsed on the model timeline, so the
//! *measured* delivery delay of every message is at least `d₁` by
//! construction; the upper edge `d₂` is not enforced, only measured —
//! the envelope monitors and post-hoc oracles flag a machine too loaded
//! to honor the declared bound, which is exactly what "the declared
//! `[d₁, d₂]` envelope was violated" should mean for a live run.

use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, TryRecvError};

use psync_net::Envelope;
use psync_time::{Duration, Time};

/// One message on the live wire.
#[derive(Debug, Clone)]
pub struct WireMsg<M> {
    /// The payload envelope, exactly as `ESENDMSG` carried it.
    pub env: Envelope<M>,
    /// The sender's clock stamp at the send.
    pub stamp: Time,
    /// Model time at which the sender's `ESENDMSG` fired.
    pub sent: Time,
}

/// The receiving end of one in-edge: the channel plus the `d₁` hold-back
/// buffer.
#[derive(Debug)]
pub struct Inbox<M> {
    rx: Receiver<WireMsg<M>>,
    held: VecDeque<WireMsg<M>>,
    disconnected: bool,
}

impl<M> Inbox<M> {
    /// Wraps the receiving end of an edge channel.
    #[must_use]
    pub fn new(rx: Receiver<WireMsg<M>>) -> Inbox<M> {
        Inbox {
            rx,
            held: VecDeque::new(),
            disconnected: false,
        }
    }

    /// Drains the channel and returns every message whose `d₁` hold-back
    /// has expired at model time `now`, preserving wire (FIFO) order.
    ///
    /// A message is due once `now ≥ sent + d₁`. Because sends on one edge
    /// carry non-decreasing `sent` times, a not-yet-due head blocks the
    /// rest — release order equals send order, per edge.
    pub fn due(&mut self, now: Time, d1: Duration) -> Vec<WireMsg<M>> {
        loop {
            match self.rx.try_recv() {
                Ok(msg) => self.held.push_back(msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
        let mut out = Vec::new();
        while let Some(head) = self.held.front() {
            if now < head.sent + d1 {
                break;
            }
            out.push(self.held.pop_front().expect("front checked"));
        }
        out
    }

    /// True once the sender is gone *and* every held message has been
    /// released.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.disconnected && self.held.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_net::{MsgId, NodeId};
    use std::sync::mpsc;

    fn msg(seq: u32, sent_ms: i64) -> WireMsg<u32> {
        WireMsg {
            env: Envelope {
                src: NodeId(0),
                dst: NodeId(1),
                id: MsgId::from_parts(NodeId(0), seq),
                payload: seq,
            },
            stamp: Time::ZERO + Duration::from_millis(sent_ms),
            sent: Time::ZERO + Duration::from_millis(sent_ms),
        }
    }

    #[test]
    fn holdback_enforces_d1_and_preserves_fifo() {
        let (tx, rx) = mpsc::channel();
        let mut inbox = Inbox::new(rx);
        tx.send(msg(0, 10)).unwrap();
        tx.send(msg(1, 12)).unwrap();
        let d1 = Duration::from_millis(5);

        let at = |ms| Time::ZERO + Duration::from_millis(ms);
        assert!(inbox.due(at(14), d1).is_empty(), "nothing due before d1");
        // At 15 ms only the first message has aged d1; the second, though
        // received, stays behind it.
        let due = inbox.due(at(15), d1);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].env.payload, 0);
        let due = inbox.due(at(17), d1);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].env.payload, 1);

        assert!(!inbox.drained());
        drop(tx);
        assert!(inbox.due(at(18), d1).is_empty());
        assert!(inbox.drained());
    }
}
