//! Wall-clock-backed node clocks: [`WallClock`] readings from a shared
//! [`Instant`] origin, and [`MonotonicClock`], the [`ClockStrategy`] that
//! feeds them to an engine.
//!
//! The simulator's strategies *choose* clock behaviors inside the `C_ε`
//! envelope; the live backend has no choice to make — the clock is
//! whatever the OS monotonic clock reads when consulted, plus the node's
//! configured offset (standing in for oscillator error). The engine still
//! validates every reading against the envelope, and
//! [`AdvanceCtx::fit`](psync_executor::AdvanceCtx) clamps readings the
//! envelope forbids — exactly the discipline a real time service (NTP,
//! DTS; paper Sections 1 and 7.2) applies to a free-running oscillator.

use std::time::Instant;

use psync_executor::{AdvanceCtx, ClockStrategy};
use psync_time::{Duration, Time};

/// A node's physical clock: a shared monotonic origin plus a fixed
/// per-node offset.
///
/// All clocks of one live system share the `origin`, so `Time::ZERO` on
/// the model timeline is the same wall instant everywhere; the offset is
/// the node's deliberate skew (zero for an honest clock, nonzero to
/// exercise the ε budget with real threads).
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Instant,
    offset: Duration,
}

impl WallClock {
    /// A clock reading `origin.elapsed() + offset`.
    #[must_use]
    pub fn new(origin: Instant, offset: Duration) -> WallClock {
        WallClock { origin, offset }
    }

    /// The current reading, on the model timeline (`Time::ZERO` = origin).
    #[must_use]
    pub fn now(&self) -> Time {
        wall_time(self.origin).saturating_add_duration(self.offset)
    }

    /// The configured offset from the shared origin.
    #[must_use]
    pub fn offset(&self) -> Duration {
        self.offset
    }

    /// The shared origin instant.
    #[must_use]
    pub fn origin_instant(&self) -> Instant {
        self.origin
    }
}

/// The shared reference timeline: `origin.elapsed()` as a model [`Time`].
///
/// This is the live backend's *real time* — the `now` axis of the clock
/// predicate `C_ε`, against which every [`WallClock`] is skewed by its
/// offset (plus scheduling noise).
#[must_use]
pub fn wall_time(origin: Instant) -> Time {
    let ns = origin.elapsed().as_nanos();
    let ns = i64::try_from(ns).unwrap_or(i64::MAX);
    Time::ZERO + Duration::from_nanos(ns)
}

/// The live [`ClockStrategy`]: every consultation reads the node's
/// [`WallClock`] *at that moment* and clamps the reading into the legal
/// window.
///
/// The clamp matters on two edges. When the engine catches up after the
/// driving loop slept, the wall reading runs ahead of the advance target
/// and `fit` pulls it back to `target + ε` — the same cap the envelope
/// puts on any fast clock. When a `ν` precondition bounds the clock
/// (`max_clock`), `fit` respects it. Readings inside the window pass
/// through untouched, so under a tight driving loop the recorded clock
/// *is* the monotonic clock.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    wall: WallClock,
}

impl MonotonicClock {
    /// Drives a node clock from `wall`.
    #[must_use]
    pub fn new(wall: WallClock) -> MonotonicClock {
        MonotonicClock { wall }
    }
}

impl ClockStrategy for MonotonicClock {
    fn next_clock(&mut self, ctx: AdvanceCtx) -> Time {
        ctx.fit(self.wall.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_applies_its_offset() {
        let origin = Instant::now();
        let honest = WallClock::new(origin, Duration::ZERO);
        let fast = WallClock::new(origin, Duration::from_millis(5));
        let (h, f) = (honest.now(), fast.now());
        let gap = f.skew(h);
        // The two reads are a few ns apart in real time, 5 ms in offset.
        assert!(gap >= Duration::from_millis(4), "gap {gap}");
        assert!(gap <= Duration::from_millis(6), "gap {gap}");
    }

    #[test]
    fn monotonic_clock_readings_stay_in_the_window() {
        let origin = Instant::now();
        let mut strat = MonotonicClock::new(WallClock::new(origin, Duration::from_millis(2)));
        // An advance whose target is far behind the wall reading: the
        // strategy must clamp to target + ε rather than leak wall time.
        let eps = Duration::from_millis(1);
        let ctx = AdvanceCtx {
            now: Time::ZERO,
            clock: Time::ZERO,
            target: Time::ZERO + Duration::from_nanos(10),
            max_clock: None,
            eps,
        };
        let reading = strat.next_clock(ctx);
        assert_eq!(reading, ctx.target + eps);
    }
}
