//! Online judging of a live run: stream oracles fed from the node
//! threads through a watermark-merged channel, owned by one monitor
//! thread.
//!
//! [`OnlineJudge`] is deliberately single-threaded (an `Rc` handle, like
//! the rest of the observer pipeline), so the live backend gives it a
//! thread of its own: node threads send every recorded event plus a
//! per-iteration watermark ("my engine has reached model time `t`"), and
//! the monitor releases events to the judge only up to the minimum
//! watermark, in `(time, node)` order — the same globally-ordered stream
//! a simulator observer would see. A violation any oracle declares
//! *certain* flips the shared stop flag, and the node threads wind the
//! run down early: judging the live trace *as it happens*, not after.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use psync_automata::{Action, TimedEvent, Verdict};
use psync_executor::ClockRead;
use psync_net::{MsgId, SysAction};
use psync_obs::{CEpsMonitor, OnlineJudge};
use psync_time::{Duration, Time};
use psync_verify::StreamOracle;

/// What a node thread reports to the monitor.
#[derive(Debug)]
pub enum MonitorMsg<A: Action> {
    /// One newly recorded event of `node`'s engine.
    Event {
        /// Reporting node index.
        node: usize,
        /// The recorded event, verbatim.
        event: TimedEvent<A>,
    },
    /// `node`'s engine has reached model time `now`; every event it will
    /// ever report from now on is later than this.
    Watermark {
        /// Reporting node index.
        node: usize,
        /// The engine's current model time.
        now: Time,
    },
    /// `node` has finished: no further events will come from it.
    Done {
        /// Reporting node index.
        node: usize,
    },
}

/// The monitor thread's final word.
#[derive(Debug)]
pub struct MonitorOutcome {
    /// Every violation, in oracle order — the shape
    /// [`psync_verify::check_all`] produces.
    pub violations: Vec<(String, String)>,
    /// The first violation that became certain *during* the run, if any
    /// (it is also in `violations`).
    pub certain: Option<(String, String)>,
    /// Events fed to the judge.
    pub events_judged: u64,
}

/// Handle to a spawned monitor thread.
#[derive(Debug)]
pub struct LiveMonitor {
    handle: JoinHandle<MonitorOutcome>,
}

impl LiveMonitor {
    /// Spawns the monitor for an `n`-node run.
    ///
    /// `make_oracles` runs *on the monitor thread* (stream oracles, like
    /// the judge, need not be `Send`); `eps` is attached to every clock
    /// reading fed to the judge; `stop` is flipped the moment any oracle
    /// is certain.
    pub fn spawn<A, F>(
        n: usize,
        eps: Duration,
        make_oracles: F,
        stop: Arc<AtomicBool>,
    ) -> (Sender<MonitorMsg<A>>, LiveMonitor)
    where
        A: Action + Send,
        F: FnOnce() -> Vec<Box<dyn StreamOracle<A>>> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let handle = thread::Builder::new()
            .name("psync-live-monitor".into())
            .spawn(move || monitor_loop(n, eps, make_oracles(), &stop, &rx))
            .expect("spawning the monitor thread");
        (tx, LiveMonitor { handle })
    }

    /// Waits for the monitor to finish judging.
    ///
    /// # Panics
    ///
    /// Panics if the monitor thread panicked.
    #[must_use]
    pub fn join(self) -> MonitorOutcome {
        self.handle.join().expect("monitor thread panicked")
    }
}

fn monitor_loop<A: Action>(
    n: usize,
    eps: Duration,
    oracles: Vec<Box<dyn StreamOracle<A>>>,
    stop: &AtomicBool,
    rx: &Receiver<MonitorMsg<A>>,
) -> MonitorOutcome {
    let judge = OnlineJudge::new(oracles);
    let mut observer = judge.observer();
    let mut queues: Vec<VecDeque<TimedEvent<A>>> = (0..n).map(|_| VecDeque::new()).collect();
    let mut marks = vec![Time::ZERO; n];
    let mut done = vec![false; n];
    let mut fed: u64 = 0;
    let mut end = Time::ZERO;

    // The channel closes when every node (and the runtime) dropped its
    // sender; Done messages normally end the loop before that.
    while let Ok(msg) = rx.recv() {
        match msg {
            MonitorMsg::Event { node, event } => queues[node].push_back(event),
            MonitorMsg::Watermark { node, now } => {
                end = end.max(now);
                marks[node] = marks[node].max(now);
            }
            MonitorMsg::Done { node } => {
                done[node] = true;
                marks[node] = Time::MAX;
            }
        }
        release(&mut queues, &marks, eps, &mut observer, &mut fed);
        if judge.certain().is_some() {
            // Keep draining so node threads never block on a full
            // channel; the flag tells them to wind down.
            stop.store(true, Ordering::Relaxed);
        }
        if done.iter().all(|d| *d) && queues.iter().all(VecDeque::is_empty) {
            break;
        }
    }
    // Stragglers (senders dropped without Done, e.g. after an engine
    // error): release everything that is left.
    marks.fill(Time::MAX);
    release(&mut queues, &marks, eps, &mut observer, &mut fed);

    let certain = judge.certain();
    MonitorOutcome {
        violations: judge.finish(end),
        certain,
        events_judged: fed,
    }
}

/// Feeds every queued event not later than the minimum watermark, merged
/// in `(time, node)` order, to the judge's observer.
fn release<A: Action>(
    queues: &mut [VecDeque<TimedEvent<A>>],
    marks: &[Time],
    eps: Duration,
    observer: &mut impl psync_executor::Observer<A>,
    fed: &mut u64,
) {
    let frontier = marks.iter().copied().fold(Time::MAX, Time::min);
    loop {
        let mut pick: Option<(Time, usize)> = None;
        for (node, q) in queues.iter().enumerate() {
            if let Some(head) = q.front() {
                if head.now <= frontier && pick.is_none_or(|(t, _)| head.now < t) {
                    pick = Some((head.now, node));
                }
            }
        }
        let Some((_, node)) = pick else { break };
        let event = queues[node].pop_front().expect("head checked");
        if let Some(clock) = event.clock {
            observer.on_clock_read(ClockRead {
                node,
                now: event.now,
                clock,
                eps,
            });
        }
        let index = usize::try_from(*fed).unwrap_or(usize::MAX);
        observer.on_event(index, &event);
        *fed += 1;
    }
}

/// Streaming `C_ε`: the live face of
/// [`CEpsOracle`](psync_obs::CEpsOracle), name-compatible for parity.
pub struct CEpsStream {
    eps: Duration,
    monitor: CEpsMonitor,
}

impl CEpsStream {
    /// Checks every clock reading against the fixed bound `eps`.
    #[must_use]
    pub fn new(eps: Duration) -> CEpsStream {
        CEpsStream {
            eps,
            monitor: CEpsMonitor::with_eps(eps),
        }
    }
}

impl<A: Action> StreamOracle<A> for CEpsStream {
    fn name(&self) -> String {
        format!("C_eps(ε={})", self.eps)
    }

    fn observe_event(&mut self, _index: usize, _event: &TimedEvent<A>) {}

    fn observe_clock(&mut self, node: usize, now: Time, clock: Time, _eps: Duration) {
        self.monitor.observe(ClockRead {
            node,
            now,
            clock,
            eps: self.eps,
        });
    }

    fn violation(&self) -> Option<String> {
        match self.monitor.verdict() {
            Verdict::Holds => None,
            Verdict::Violated(why) => Some(why),
        }
    }

    fn finish(&mut self, _end: Time) -> Verdict {
        self.monitor.verdict()
    }
}

/// Streaming delivery-envelope check: every `ERECVMSG` must arrive
/// between `d₁` and `d₂` (model time) after its `ESENDMSG`.
///
/// On the live backend the delay is *measured* — the actual time between
/// the sender's engine recording the send and the receiver's engine
/// recording the delivery — so a violation means the machine failed to
/// honor the envelope the run declared, and everything priced off
/// `[d₁, d₂]` (register latencies, ε̂ predictions) is suspect.
pub struct EnvelopeStream {
    d1: Duration,
    d2: Duration,
    sends: std::collections::HashMap<MsgId, Time>,
    delivered: u64,
    worst: Duration,
    violation: Option<String>,
}

impl EnvelopeStream {
    /// Checks deliveries against `[d1, d2]`.
    #[must_use]
    pub fn new(d1: Duration, d2: Duration) -> EnvelopeStream {
        EnvelopeStream {
            d1,
            d2,
            sends: std::collections::HashMap::new(),
            delivered: 0,
            worst: Duration::ZERO,
            violation: None,
        }
    }

    fn observe_sys<M, O>(&mut self, event: &TimedEvent<SysAction<M, O>>)
    where
        M: Clone + Eq + std::hash::Hash + core::fmt::Debug + 'static,
        O: Action,
    {
        match &event.action {
            SysAction::ESend(env, _) => {
                self.sends.entry(env.id).or_insert(event.now);
            }
            SysAction::ERecv(env, _) => {
                let Some(&sent) = self.sends.get(&env.id) else {
                    self.fail(format!(
                        "message {:?} delivered at {} without a recorded send",
                        env.id, event.now
                    ));
                    return;
                };
                let delay = event.now.skew(sent);
                self.delivered += 1;
                self.worst = self.worst.max(delay);
                if delay < self.d1 || delay > self.d2 {
                    self.fail(format!(
                        "message {:?} took {} on the wire: outside the declared [{}, {}]",
                        env.id, delay, self.d1, self.d2
                    ));
                }
            }
            _ => {}
        }
    }

    fn fail(&mut self, why: String) {
        if self.violation.is_none() {
            self.violation = Some(why);
        }
    }
}

/// The name both the stream and post-hoc envelope checks report under.
#[must_use]
pub fn envelope_oracle_name(d1: Duration, d2: Duration) -> String {
    format!("delivery[{d1}, {d2}]")
}

impl<M, O> StreamOracle<SysAction<M, O>> for EnvelopeStream
where
    M: Clone + Eq + std::hash::Hash + core::fmt::Debug + 'static,
    O: Action,
{
    fn name(&self) -> String {
        envelope_oracle_name(self.d1, self.d2)
    }

    fn observe_event(&mut self, _index: usize, event: &TimedEvent<SysAction<M, O>>) {
        self.observe_sys(event);
    }

    fn violation(&self) -> Option<String> {
        self.violation.clone()
    }

    fn finish(&mut self, _end: Time) -> Verdict {
        match &self.violation {
            None => Verdict::Holds,
            Some(why) => Verdict::Violated(why.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::ActionKind;
    use psync_net::{Envelope, NodeId};

    type A = SysAction<u32, psync_automata::toys::EchoAction>;

    fn ev(action: A, ms: i64, clock_ms: Option<i64>) -> TimedEvent<A> {
        TimedEvent {
            action,
            kind: ActionKind::Output,
            now: Time::ZERO + Duration::from_millis(ms),
            clock: clock_ms.map(|c| Time::ZERO + Duration::from_millis(c)),
            node: None,
        }
    }

    fn wire(seq: u32) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId::from_parts(NodeId(0), seq),
            payload: seq,
        }
    }

    #[test]
    fn envelope_stream_flags_late_deliveries() {
        let mut s = EnvelopeStream::new(Duration::from_millis(1), Duration::from_millis(5));
        let stamp = Time::ZERO;
        StreamOracle::<A>::observe_event(
            &mut s,
            0,
            &ev(SysAction::ESend(wire(0), stamp), 10, None),
        );
        StreamOracle::<A>::observe_event(
            &mut s,
            1,
            &ev(SysAction::ERecv(wire(0), stamp), 13, None),
        );
        assert!(StreamOracle::<A>::violation(&s).is_none());
        StreamOracle::<A>::observe_event(
            &mut s,
            2,
            &ev(SysAction::ESend(wire(1), stamp), 20, None),
        );
        StreamOracle::<A>::observe_event(
            &mut s,
            3,
            &ev(SysAction::ERecv(wire(1), stamp), 26, None),
        );
        let why = StreamOracle::<A>::violation(&s).expect("6 ms exceeds d2 = 5 ms");
        assert!(why.contains("outside the declared"), "{why}");
    }

    #[test]
    fn ceps_stream_matches_the_posthoc_name_and_verdict() {
        let eps = Duration::from_millis(2);
        let mut s = CEpsStream::new(eps);
        assert_eq!(
            StreamOracle::<A>::name(&s),
            psync_verify::Oracle::<A>::name(&psync_obs::CEpsOracle::new(eps))
        );
        StreamOracle::<A>::observe_clock(
            &mut s,
            0,
            Time::ZERO + Duration::from_millis(10),
            Time::ZERO + Duration::from_millis(11),
            eps,
        );
        assert!(StreamOracle::<A>::violation(&s).is_none());
        StreamOracle::<A>::observe_clock(
            &mut s,
            1,
            Time::ZERO + Duration::from_millis(20),
            Time::ZERO + Duration::from_millis(25),
            eps,
        );
        assert!(StreamOracle::<A>::violation(&s).is_some());
    }

    #[test]
    fn monitor_merges_by_watermark_and_flips_stop_on_certain() {
        let stop = Arc::new(AtomicBool::new(false));
        let eps = Duration::from_millis(1);
        let (tx, monitor) = LiveMonitor::spawn::<A, _>(
            2,
            eps,
            move || vec![Box::new(CEpsStream::new(eps))],
            Arc::clone(&stop),
        );
        // Node 1's event violates C_ε, but is only released once node 0's
        // watermark passes it.
        tx.send(MonitorMsg::Event {
            node: 1,
            event: ev(SysAction::Tau { node: NodeId(1) }, 10, Some(20)),
        })
        .unwrap();
        tx.send(MonitorMsg::Watermark {
            node: 1,
            now: Time::ZERO + Duration::from_millis(10),
        })
        .unwrap();
        tx.send(MonitorMsg::Watermark {
            node: 0,
            now: Time::ZERO + Duration::from_millis(12),
        })
        .unwrap();
        tx.send(MonitorMsg::Done { node: 0 }).unwrap();
        tx.send(MonitorMsg::Done { node: 1 }).unwrap();
        drop(tx);
        let outcome = monitor.join();
        assert_eq!(outcome.events_judged, 1);
        assert!(outcome.certain.is_some(), "C_ε breach should be certain");
        assert_eq!(outcome.violations.len(), 1);
        assert!(stop.load(Ordering::Relaxed), "stop flag should be set");
    }
}
