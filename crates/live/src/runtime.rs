//! The thread-backed runtime: one OS thread per node, each driving its
//! own single-node engine against wall time.
//!
//! Engines (and the whole component stack) are deliberately
//! single-threaded, so the runtime never shares one: each node thread
//! *constructs* its node — the same `A^c_{i,ε}` composition
//! [`transform_node`] builds for the simulator — inside its own engine,
//! clocked by [`MonotonicClock`]. The thread's driving loop is:
//!
//! 1. `run_idle_until(wall)` — let the engine catch up to wall time,
//!    firing everything the node itself controls (sends, internal
//!    updates, responses);
//! 2. inject due wire deliveries and workload invocations
//!    ([`Engine::inject`]) at the current wall time;
//! 3. harvest newly recorded events: `ESENDMSG`s go onto the wire
//!    ([`crate::wire`]), responses complete the closed-loop workload,
//!    everything is streamed to the monitor thread;
//! 4. sleep one quantum.
//!
//! Wire delays are therefore *measured*: an `ERECVMSG` lands at the wall
//! time its injection ran, at least `d₁` after the send by the inbox's
//! hold-back, and within `d₂` only if the machine kept up — which the
//! envelope monitors check. When the run ends, the per-node event logs
//! merge (stably, by time then node) into one [`Execution`] that the
//! post-hoc oracles judge exactly like a simulated run's.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use psync_automata::{Execution, TimedEvent};
use psync_core::{transform_node, NodeSpec};
use psync_executor::{Driver, Engine, Run, StopReason};
use psync_net::{NodeId, SysAction, Topology};
use psync_obs::{MetricsHub, MetricsSnapshot};
use psync_register::{AlgorithmS, RegAction, RegMsg, RegisterOp, RegisterParams, Value};
use psync_time::{DelayBounds, Duration, Time};

use crate::clock::{wall_time, MonotonicClock, WallClock};
use crate::monitor::{LiveMonitor, MonitorMsg, MonitorOutcome};
use crate::oracles::live_register_monitors;
use crate::probe::{measure_eps_hat, EpsHatMeasurement};
use crate::wire::{Inbox, WireMsg};

/// Configuration of a live register run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Node (= thread) count; the topology is complete.
    pub nodes: usize,
    /// The declared wire envelope `[d₁, d₂]`: `d₁` is enforced by
    /// hold-back, `d₂` is the budget the machine must keep — monitors
    /// flag deliveries outside it.
    pub bounds: DelayBounds,
    /// Additive floor on the measured ε̂, covering what RTT probes cannot
    /// see (the driving loop's quantum, scheduling noise between clock
    /// consultations).
    pub eps_floor: Duration,
    /// Per-node clock offsets (empty = all honest). Offsets within the
    /// measured ε̂ exercise the envelope with real threads.
    pub offsets: Vec<Duration>,
    /// Closed-loop operations per node (writes and reads alternate).
    pub ops_per_node: u32,
    /// Think-time range between a response and the next invocation.
    pub think: DelayBounds,
    /// Sleep per driving-loop iteration.
    pub quantum: std::time::Duration,
    /// Hard wall-clock budget; exceeding it ends the run as `Horizon`.
    pub budget: std::time::Duration,
    /// RTT probe rounds per node for the ε̂ measurement.
    pub probe_rounds: usize,
    /// Seed for the deterministic think-time sequence.
    pub seed: u64,
    /// Per-node engine event cap.
    pub max_events: usize,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            nodes: 3,
            bounds: DelayBounds::new(Duration::from_millis(1), Duration::from_millis(80))
                .expect("static bounds are valid"),
            eps_floor: Duration::from_millis(1),
            offsets: Vec::new(),
            ops_per_node: 6,
            think: DelayBounds::new(Duration::from_millis(1), Duration::from_millis(4))
                .expect("static bounds are valid"),
            quantum: std::time::Duration::from_micros(300),
            budget: std::time::Duration::from_secs(20),
            probe_rounds: 8,
            seed: 0x11FE_C10C,
            max_events: 250_000,
        }
    }
}

/// Latency percentiles over the completed operations, in model time.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Completed operations measured.
    pub count: u64,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst case.
    pub max: Duration,
}

impl LatencyStats {
    fn from_samples(mut samples: Vec<Duration>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        // Nearest-rank percentiles: the smallest sample with at least a
        // `q` fraction of the data at or below it.
        let pick = |q: f64| {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            #[allow(clippy::cast_precision_loss)]
            let rank = (samples.len() as f64 * q).ceil() as usize;
            samples[rank.clamp(1, samples.len()) - 1]
        };
        LatencyStats {
            count: samples.len() as u64,
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Everything a live run reports beyond the captured execution.
#[derive(Debug)]
pub struct LiveReport {
    /// Node count.
    pub nodes: usize,
    /// The ε̂ the run used (measured + floor).
    pub eps_hat: Duration,
    /// The ε̂ probe sweep, including the raw per-node brackets.
    pub eps_measurement: EpsHatMeasurement,
    /// Operations completed across all nodes.
    pub ops_completed: u64,
    /// Operations requested (`nodes × ops_per_node`).
    pub ops_requested: u64,
    /// Wall-clock duration of the run phase (after probing).
    pub wall_elapsed: std::time::Duration,
    /// Completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Operation latency percentiles (invocation to response, model time).
    pub latency: LatencyStats,
    /// Messages delivered across all edges.
    pub deliveries: u64,
    /// Worst measured wire delay.
    pub max_delivery_delay: Duration,
    /// The online monitor's verdicts.
    pub monitor: MonitorOutcome,
    /// Per-node engine metrics snapshots, in node order.
    pub snapshots: Vec<MetricsSnapshot>,
    /// The algorithm's theoretical read latency for these parameters.
    pub read_latency: Duration,
    /// The algorithm's theoretical write latency for these parameters.
    pub write_latency: Duration,
}

/// The live register system: [`AlgorithmS`] on real threads, driven
/// through the same [`Driver`] seam as the simulator.
#[derive(Debug)]
pub struct LiveRegister {
    cfg: LiveConfig,
    report: Option<LiveReport>,
}

struct NodeOutcome {
    events: Vec<TimedEvent<RegAction>>,
    end: Time,
    latencies: Vec<Duration>,
    delays: Vec<Duration>,
    snapshot: MetricsSnapshot,
    completed: u32,
    error: Option<String>,
}

struct NodeCtx {
    id: usize,
    topo: Topology,
    params: RegisterParams,
    eps: Duration,
    clock: WallClock,
    origin: Instant,
    outs: HashMap<NodeId, Sender<WireMsg<RegMsg>>>,
    inboxes: Vec<Inbox<RegMsg>>,
    monitor: Sender<MonitorMsg<RegAction>>,
    stop: Arc<AtomicBool>,
    done_nodes: Arc<AtomicUsize>,
    finish_at: Arc<Mutex<Option<Time>>>,
    budget_deadline: Time,
    grace: Duration,
    cfg: LiveConfig,
}

impl LiveRegister {
    /// A live register system with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent: fewer than two nodes,
    /// zero probe rounds, or an offsets list of the wrong length.
    #[must_use]
    pub fn new(cfg: LiveConfig) -> LiveRegister {
        assert!(cfg.nodes >= 2, "a register system needs at least 2 nodes");
        assert!(
            cfg.offsets.is_empty() || cfg.offsets.len() == cfg.nodes,
            "offsets must be empty or one per node"
        );
        assert!(cfg.probe_rounds > 0, "at least one probe round required");
        LiveRegister { cfg, report: None }
    }

    /// The report of the last [`Driver::drive`] call, if any.
    #[must_use]
    pub fn report(&self) -> Option<&LiveReport> {
        self.report.as_ref()
    }

    /// Takes ownership of the last run's report, leaving `None` behind.
    #[must_use]
    pub fn take_report(&mut self) -> Option<LiveReport> {
        self.report.take()
    }

    /// The configuration this system runs with.
    #[must_use]
    pub fn config(&self) -> &LiveConfig {
        &self.cfg
    }

    #[allow(clippy::too_many_lines)]
    fn run_live(&mut self) -> Result<Run<RegAction>, String> {
        let cfg = self.cfg.clone();
        let topo = Topology::complete(cfg.nodes);
        let offsets: Vec<Duration> = if cfg.offsets.is_empty() {
            vec![Duration::ZERO; cfg.nodes]
        } else {
            cfg.offsets.clone()
        };

        // Probe ε̂ against throwaway clocks, then re-origin for the run so
        // model time zero is the start of the run phase, not of probing.
        let probe_origin = Instant::now();
        let probe_clocks: Vec<WallClock> = offsets
            .iter()
            .map(|&o| WallClock::new(probe_origin, o))
            .collect();
        let eps_measurement = measure_eps_hat(&probe_clocks, cfg.probe_rounds, cfg.eps_floor);
        let eps_hat = eps_measurement.eps_hat;

        let params = RegisterParams::for_clock_model(
            &topo,
            cfg.bounds,
            eps_hat,
            Duration::from_nanos(cfg.bounds.max().as_nanos() / 2),
            Duration::from_millis(1),
        );
        let grace = params.write_latency()
            + params.delta
            + eps_hat * 2
            + Duration::from_nanos(i64::try_from(cfg.quantum.as_nanos()).unwrap_or(i64::MAX) * 4)
            + Duration::from_millis(20);

        let stop = Arc::new(AtomicBool::new(false));
        let done_nodes = Arc::new(AtomicUsize::new(0));
        let finish_at = Arc::new(Mutex::new(None::<Time>));
        let completed_total = Arc::new(AtomicU64::new(0));

        let (monitor_tx, monitor) = LiveMonitor::spawn(
            cfg.nodes,
            eps_hat,
            {
                let bounds = cfg.bounds;
                move || live_register_monitors(eps_hat, bounds)
            },
            Arc::clone(&stop),
        );

        // One mpsc channel per directed edge; senders to the source
        // thread, the receiver (wrapped in a hold-back inbox) to the
        // destination thread.
        let mut outs: Vec<HashMap<NodeId, Sender<WireMsg<RegMsg>>>> =
            (0..cfg.nodes).map(|_| HashMap::new()).collect();
        let mut inboxes: Vec<Vec<Inbox<RegMsg>>> = (0..cfg.nodes).map(|_| Vec::new()).collect();
        for &(i, j) in topo.edges() {
            let (tx, rx) = mpsc::channel();
            outs[i.0].insert(j, tx);
            inboxes[j.0].push(Inbox::new(rx));
        }

        let run_origin = Instant::now();
        let budget_deadline = Time::ZERO
            + Duration::from_nanos(i64::try_from(cfg.budget.as_nanos()).unwrap_or(i64::MAX));
        let mut handles = Vec::with_capacity(cfg.nodes);
        for (id, (node_outs, node_inboxes)) in outs.into_iter().zip(inboxes).enumerate() {
            let ctx = NodeCtx {
                id,
                topo: topo.clone(),
                params: params.clone(),
                eps: eps_hat,
                clock: WallClock::new(run_origin, offsets[id]),
                origin: run_origin,
                outs: node_outs,
                inboxes: node_inboxes,
                monitor: monitor_tx.clone(),
                stop: Arc::clone(&stop),
                done_nodes: Arc::clone(&done_nodes),
                finish_at: Arc::clone(&finish_at),
                budget_deadline,
                grace,
                cfg: cfg.clone(),
            };
            let completed_total = Arc::clone(&completed_total);
            let handle = thread::Builder::new()
                .name(format!("psync-live-node-{id}"))
                .spawn(move || {
                    let outcome = drive_node(ctx);
                    completed_total.fetch_add(u64::from(outcome.completed), Ordering::Relaxed);
                    outcome
                })
                .map_err(|e| format!("spawning node thread {id}: {e}"))?;
            handles.push(handle);
        }
        drop(monitor_tx);

        let mut outcomes = Vec::with_capacity(cfg.nodes);
        for (id, handle) in handles.into_iter().enumerate() {
            outcomes.push(
                handle
                    .join()
                    .map_err(|_| format!("node thread {id} panicked"))?,
            );
        }
        let wall_elapsed = run_origin.elapsed();
        let monitor_outcome = monitor.join();

        let errors: Vec<String> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(id, o)| o.error.as_ref().map(|e| format!("node {id}: {e}")))
            .collect();
        if !errors.is_empty() {
            return Err(errors.join("; "));
        }

        // Merge the per-node logs into one execution: stable by (time,
        // node), which keeps each node's own order for simultaneous
        // events.
        let mut tagged: Vec<(TimedEvent<RegAction>, usize)> = Vec::new();
        let mut end = Time::ZERO;
        for (id, outcome) in outcomes.iter().enumerate() {
            end = end.max(outcome.end);
            for event in &outcome.events {
                tagged.push((event.clone(), id));
            }
        }
        tagged.sort_by_key(|(event, id)| (event.now, *id));
        let events: Vec<TimedEvent<RegAction>> = tagged.into_iter().map(|(e, _)| e).collect();
        let execution = Execution::new(events, end);

        let ops_requested = u64::from(cfg.ops_per_node) * cfg.nodes as u64;
        let ops_completed = completed_total.load(Ordering::Relaxed);
        let mut latencies = Vec::new();
        let mut delays = Vec::new();
        let mut snapshots = Vec::with_capacity(cfg.nodes);
        for outcome in outcomes {
            latencies.extend(outcome.latencies);
            delays.extend(outcome.delays);
            snapshots.push(outcome.snapshot);
        }
        let stop_reason = if ops_completed == ops_requested {
            StopReason::Quiescent
        } else {
            StopReason::Horizon
        };
        let ops_per_sec = if wall_elapsed.as_secs_f64() > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                ops_completed as f64 / wall_elapsed.as_secs_f64()
            }
        } else {
            0.0
        };
        self.report = Some(LiveReport {
            nodes: cfg.nodes,
            eps_hat,
            eps_measurement,
            ops_completed,
            ops_requested,
            wall_elapsed,
            ops_per_sec,
            latency: LatencyStats::from_samples(latencies),
            deliveries: delays.len() as u64,
            max_delivery_delay: delays.iter().copied().fold(Duration::ZERO, Duration::max),
            monitor: monitor_outcome,
            snapshots,
            read_latency: params.read_latency(),
            write_latency: params.write_latency(),
        });
        Ok(Run {
            execution,
            stop: stop_reason,
        })
    }
}

impl Driver<RegAction> for LiveRegister {
    fn backend(&self) -> &'static str {
        "live"
    }

    fn drive(&mut self) -> Result<Run<RegAction>, String> {
        self.run_live()
    }
}

/// One node's thread body: build the node in-thread, then drive it
/// against wall time until the system winds down.
#[allow(clippy::too_many_lines)]
fn drive_node(mut ctx: NodeCtx) -> NodeOutcome {
    let me = NodeId(ctx.id);
    let spec = NodeSpec::new(me, AlgorithmS::new(me, ctx.params.clone()));
    let node = transform_node(spec, &ctx.topo, ctx.eps, MonotonicClock::new(ctx.clock));
    let hub = MetricsHub::new();
    let mut engine = Engine::builder()
        .clock_node(node)
        .observer(hub.engine_observer().without_checkpoint_counters())
        .max_events(ctx.cfg.max_events)
        .build();

    let d1 = ctx.cfg.bounds.min();
    let mut harvested = 0usize;
    let mut rng = ctx.cfg.seed ^ (0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(ctx.id as u64 + 1));
    let mut latencies = Vec::new();
    let mut delays = Vec::new();
    let mut issued = 0u32;
    let mut completed = 0u32;
    let mut inflight: Option<Time> = None;
    let mut next_op_at = Time::ZERO + think(&mut rng, ctx.cfg.think);
    let mut reported_done = ctx.cfg.ops_per_node == 0;
    if reported_done {
        node_finished(&ctx, Time::ZERO);
    }
    let mut error = None;

    loop {
        let wall = wall_time(ctx.origin);
        if ctx.stop.load(Ordering::Relaxed) {
            break;
        }
        if wall >= ctx.budget_deadline {
            ctx.stop.store(true, Ordering::Relaxed);
            break;
        }

        // 1. Let the engine catch up to wall time; everything the node
        //    controls (sends, updates, responses) fires in here.
        if let Err(e) = engine.run_idle_until(wall) {
            error = Some(e.to_string());
            ctx.stop.store(true, Ordering::Relaxed);
            break;
        }

        // 2. Inject due wire deliveries at the current wall time: the
        //    measured delay is `now − sent`, at least d₁ by hold-back.
        let mut inject_err = None;
        for inbox in &mut ctx.inboxes {
            for msg in inbox.due(wall, d1) {
                delays.push(engine.now().skew(msg.sent));
                if let Err(e) = engine.inject(SysAction::ERecv(msg.env, msg.stamp)) {
                    inject_err = Some(e.to_string());
                    break;
                }
            }
        }
        // 3. Closed-loop workload: one op in flight per node, writes and
        //    reads alternating.
        if inject_err.is_none()
            && inflight.is_none()
            && issued < ctx.cfg.ops_per_node
            && wall >= next_op_at
        {
            let op = if issued.is_multiple_of(2) {
                RegisterOp::Write {
                    node: me,
                    value: Value::unique(me, issued),
                }
            } else {
                RegisterOp::Read { node: me }
            };
            match engine.inject(SysAction::App(op)) {
                Ok(()) => {
                    inflight = Some(engine.now());
                    issued += 1;
                }
                Err(e) => inject_err = Some(e.to_string()),
            }
        }
        if let Some(e) = inject_err {
            error = Some(e);
            ctx.stop.store(true, Ordering::Relaxed);
            break;
        }

        // 4. Harvest newly recorded events: sends go onto the wire,
        //    responses complete the loop, everything goes to the monitor.
        let events = engine.events();
        for event in &events[harvested..] {
            match &event.action {
                SysAction::ESend(env, stamp) => {
                    if let Some(tx) = ctx.outs.get(&env.dst) {
                        // A receiver that already wound down just drops
                        // the message; the envelope monitor never sees a
                        // delivery for it, which is fine — at-most-once
                        // is all the wire promises after shutdown.
                        let _ = tx.send(WireMsg {
                            env: env.clone(),
                            stamp: *stamp,
                            sent: event.now,
                        });
                    }
                }
                SysAction::App(op) if op.is_response() && op.node() == me => {
                    if let Some(started) = inflight.take() {
                        latencies.push(event.now.skew(started));
                        completed += 1;
                        next_op_at = event.now + think(&mut rng, ctx.cfg.think);
                        if completed == ctx.cfg.ops_per_node && !reported_done {
                            reported_done = true;
                            node_finished(&ctx, event.now);
                        }
                    }
                }
                _ => {}
            }
            let _ = ctx.monitor.send(MonitorMsg::Event {
                node: ctx.id,
                event: event.clone(),
            });
        }
        harvested = events.len();
        let _ = ctx.monitor.send(MonitorMsg::Watermark {
            node: ctx.id,
            now: engine.now(),
        });

        // 5. Wind down once every node has finished and the grace period
        //    (covering in-flight messages and trailing updates) passed.
        if let Some(finish) = *ctx.finish_at.lock().expect("finish_at lock") {
            if wall >= finish {
                break;
            }
        }
        thread::sleep(ctx.cfg.quantum);
    }

    let _ = ctx.monitor.send(MonitorMsg::Done { node: ctx.id });
    NodeOutcome {
        events: engine.events().to_vec(),
        end: engine.now(),
        latencies,
        delays,
        snapshot: hub.snapshot(),
        completed,
        error,
    }
}

/// Records that this node's workload finished; the last node to finish
/// sets the system-wide wind-down time.
fn node_finished(ctx: &NodeCtx, now: Time) {
    let finished = ctx.done_nodes.fetch_add(1, Ordering::Relaxed) + 1;
    if finished == ctx.cfg.nodes {
        let mut finish = ctx.finish_at.lock().expect("finish_at lock");
        *finish = Some(now + ctx.grace);
    }
}

/// Deterministic think-time: xorshift64* over the configured range.
fn think(state: &mut u64, range: DelayBounds) -> Duration {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    let width = range.width().as_nanos();
    if width <= 0 {
        return range.min();
    }
    #[allow(clippy::cast_possible_wrap)]
    let span = (x % (width as u64 + 1)) as i64;
    range.min() + Duration::from_nanos(span)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn think_times_stay_in_range_and_are_deterministic() {
        let range = DelayBounds::new(Duration::from_millis(1), Duration::from_millis(4)).unwrap();
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            let t = think(&mut a, range);
            assert!(t >= range.min() && t <= range.max(), "{t} out of range");
            assert_eq!(t, think(&mut b, range));
        }
    }

    #[test]
    fn latency_stats_pick_percentiles_from_sorted_samples() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = LatencyStats::from_samples(samples);
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(stats.max, Duration::from_millis(100));
    }

    #[test]
    fn a_small_live_run_completes_and_captures_an_execution() {
        let mut live = LiveRegister::new(LiveConfig {
            nodes: 2,
            ops_per_node: 2,
            ..LiveConfig::default()
        });
        assert_eq!(live.backend(), "live");
        let run = live.drive().expect("live run completes");
        let report = live.report().expect("report recorded");
        assert_eq!(report.ops_completed, 4);
        assert_eq!(run.stop, StopReason::Quiescent);
        assert!(!run.execution.is_empty());
        assert!(report.monitor.violations.is_empty(), "{:?}", report.monitor);
        assert!(report.latency.count == 4);
        assert!(report.eps_hat >= LiveConfig::default().eps_floor);
    }
}
