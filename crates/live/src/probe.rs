//! Measuring ε̂ before a live run: RTT probes against the actual node
//! clocks, scheduled by the actual OS.
//!
//! `psync-sync` measures ε̂ *inside* the model, as clock components
//! exchanging timestamped probes over `[d₁, d₂]` channels. The live
//! backend needs the bound *before* the engines exist — it parameterizes
//! them — so the measurement here is the systems-flavored equivalent: the
//! harness thread (whose wall clock *is* the reference timeline, offset
//! zero) pings one responder thread per node, each answering with its
//! [`WallClock`] reading, and brackets the node's skew by the classic
//! midpoint argument: `|offset_i| ≤ |c_i − mid(t₀,t₁)| + (t₁ − t₀)/2`.
//!
//! The best (smallest) bracket per node over `rounds` probes survives;
//! ε̂ is the worst node's bracket plus the caller's floor, which covers
//! what the probes cannot see — the driving loop's quantum and
//! scheduling noise between consultations.

use std::sync::mpsc;
use std::thread;

use psync_time::Duration;

use crate::clock::WallClock;

/// The result of an ε̂ probe sweep.
#[derive(Debug, Clone)]
pub struct EpsHatMeasurement {
    /// The bound the run should use: `max(measured, 0) + floor`.
    pub eps_hat: Duration,
    /// The raw worst-node skew bracket, before the floor.
    pub measured: Duration,
    /// Best bracket per node, in node order.
    pub per_node: Vec<Duration>,
    /// Probe rounds taken per node.
    pub rounds: usize,
}

/// Brackets every clock's skew from the reference timeline by RTT probing
/// one responder thread per clock, and returns `max(bracket) + floor` as
/// the ε̂ for the run.
///
/// The responders are real threads: the brackets include genuine
/// scheduling and channel latency, which is the point — a loaded machine
/// yields an honestly larger ε̂, and every consumer (engine envelopes,
/// oracles, register parameters) is priced off the measured value.
///
/// # Panics
///
/// Panics if `clocks` is empty, `rounds` is zero, or `floor` is negative.
#[must_use]
pub fn measure_eps_hat(clocks: &[WallClock], rounds: usize, floor: Duration) -> EpsHatMeasurement {
    assert!(!clocks.is_empty(), "at least one clock required");
    assert!(rounds > 0, "at least one probe round required");
    assert!(!floor.is_negative(), "floor must be non-negative");

    // The reference clock: offset zero over the same origin, i.e. the
    // `now` axis the engines will run on.
    let reference = WallClock::new_reference_of(clocks[0]);

    let mut per_node = Vec::with_capacity(clocks.len());
    for &clock in clocks {
        let (probe_tx, probe_rx) = mpsc::channel::<mpsc::Sender<psync_time::Time>>();
        let responder = thread::spawn(move || {
            while let Ok(reply) = probe_rx.recv() {
                // A dropped prober just ends the round early.
                let _ = reply.send(clock.now());
            }
        });
        let mut best: Option<Duration> = None;
        for _ in 0..rounds {
            let (reply_tx, reply_rx) = mpsc::channel();
            let t0 = reference.now();
            if probe_tx.send(reply_tx).is_err() {
                break;
            }
            let Ok(reading) = reply_rx.recv() else { break };
            let t1 = reference.now();
            let rtt = t1.skew(t0);
            let mid = t0 + Duration::from_nanos(rtt.as_nanos() / 2);
            let bracket = reading.skew(mid) + Duration::from_nanos(rtt.as_nanos() / 2);
            best = Some(match best {
                Some(b) => b.min(bracket),
                None => bracket,
            });
        }
        drop(probe_tx);
        responder.join().expect("probe responder panicked");
        per_node.push(best.expect("at least one probe round completed"));
    }

    let measured = per_node.iter().copied().fold(Duration::ZERO, Duration::max);
    EpsHatMeasurement {
        eps_hat: measured.max_zero() + floor,
        measured,
        per_node,
        rounds,
    }
}

impl WallClock {
    /// The zero-offset clock over the same origin as `other` — the
    /// reference timeline for probing.
    fn new_reference_of(other: WallClock) -> WallClock {
        WallClock::new(other.origin_instant(), Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn honest_clocks_measure_tight_and_floor_dominates() {
        let origin = Instant::now();
        let clocks: Vec<WallClock> = (0..3)
            .map(|_| WallClock::new(origin, Duration::ZERO))
            .collect();
        let floor = Duration::from_micros(200);
        let m = measure_eps_hat(&clocks, 8, floor);
        assert_eq!(m.per_node.len(), 3);
        assert!(m.eps_hat >= floor);
        assert_eq!(m.eps_hat, m.measured.max_zero() + floor);
    }

    #[test]
    fn a_skewed_clock_is_caught_by_the_probes() {
        let origin = Instant::now();
        let skew = Duration::from_millis(4);
        let clocks = vec![
            WallClock::new(origin, Duration::ZERO),
            WallClock::new(origin, skew),
        ];
        let m = measure_eps_hat(&clocks, 8, Duration::ZERO);
        // The bracket contains the true offset plus RTT noise; it can
        // never undershoot the offset by more than the RTT it saw.
        assert!(
            m.measured >= Duration::from_millis(3),
            "measured {} should expose the 4 ms offset",
            m.measured
        );
        assert!(
            m.measured <= Duration::from_millis(40),
            "measured {} wildly above the 4 ms offset",
            m.measured
        );
    }
}
