//! The binary product of two timed components — composition
//! (Definition 2.2) packaged as a single component.
//!
//! The execution engine composes whole systems itself; [`Pair`] is for the
//! cases where *one slot* must hold several automata — most commonly a
//! node that runs two protocol roles at once (say, a heartbeat emitter and
//! a monitor), which the Simulation 1 node transformation then treats as a
//! single node algorithm. Nest pairs for more than two parts.

use psync_time::Time;

use crate::{ActionKind, TimedComponent};

/// Two timed components over one action alphabet, acting as one.
///
/// Shared actions synchronize: an action in both signatures steps both
/// parts (and fails if either refuses). Classification prefers the
/// locally-controlled role, mirroring composition: if one part outputs an
/// action the other consumes, the pair classifies it as an output
/// (hide it with [`Hidden`](crate::Hidden) if it should be internal).
///
/// # Examples
///
/// ```
/// use psync_automata::toys::{Beeper, Echo};
/// use psync_automata::{Pair, TimedComponent};
/// use psync_time::{Duration, Time};
///
/// // One "node" that both beeps and echoes — two roles, one component.
/// // (The two toys have different action types in reality; pairs require a
/// // shared alphabet, so this example pairs two beepers.)
/// let node = Pair::new(
///     Beeper::with_src(Duration::from_millis(5), 0),
///     Beeper::with_src(Duration::from_millis(7), 1),
/// );
/// let s0 = node.initial();
/// assert_eq!(node.deadline(&s0, Time::ZERO), Some(Time::ZERO + Duration::from_millis(5)));
/// ```
#[derive(Debug, Clone)]
pub struct Pair<A, B> {
    a: A,
    b: B,
}

impl<A, B> Pair<A, B> {
    /// Pairs two components.
    pub fn new(a: A, b: B) -> Self {
        Pair { a, b }
    }
}

/// The state of a [`Pair`]: both parts' states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairState<SA, SB> {
    /// First part's state.
    pub a: SA,
    /// Second part's state.
    pub b: SB,
}

impl<A, B> TimedComponent for Pair<A, B>
where
    A: TimedComponent,
    B: TimedComponent<Action = A::Action>,
{
    type Action = A::Action;
    type State = PairState<A::State, B::State>;

    fn name(&self) -> String {
        format!("({} ∥ {})", self.a.name(), self.b.name())
    }

    fn initial(&self) -> Self::State {
        PairState {
            a: self.a.initial(),
            b: self.b.initial(),
        }
    }

    fn classify(&self, act: &Self::Action) -> Option<ActionKind> {
        match (self.a.classify(act), self.b.classify(act)) {
            (Some(k), _) if k.is_locally_controlled() => Some(k),
            (_, Some(k)) => Some(k),
            (k, None) => k,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        // The pair's signature is the union of the parts' signatures; if
        // either part is a wildcard the pair must be one too.
        let mut names = self.a.action_names()?;
        names.extend(self.b.action_names()?);
        names.sort_unstable();
        names.dedup();
        Some(names)
    }

    fn step(&self, s: &Self::State, act: &Self::Action, now: Time) -> Option<Self::State> {
        let in_a = self.a.classify(act).is_some();
        let in_b = self.b.classify(act).is_some();
        if !in_a && !in_b {
            return None;
        }
        Some(PairState {
            a: if in_a {
                self.a.step(&s.a, act, now)?
            } else {
                s.a.clone()
            },
            b: if in_b {
                self.b.step(&s.b, act, now)?
            } else {
                s.b.clone()
            },
        })
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        let mut out = self.a.enabled(&s.a, now);
        out.extend(self.b.enabled(&s.b, now));
        out
    }

    fn deadline(&self, s: &Self::State, now: Time) -> Option<Time> {
        match (self.a.deadline(&s.a, now), self.b.deadline(&s.b, now)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        }
    }

    fn advance(&self, s: &Self::State, now: Time, target: Time) -> Option<Self::State> {
        Some(PairState {
            a: self.a.advance(&s.a, now, target)?,
            b: self.b.advance(&s.b, now, target)?,
        })
    }

    fn wake_hint(&self, s: &Self::State, now: Time) -> crate::WakeHint {
        // The pair wakes when either part does.
        self.a
            .wake_hint(&s.a, now)
            .earlier(self.b.wake_hint(&s.b, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::{BeepAction, Beeper};
    use psync_time::Duration;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn pair() -> Pair<Beeper, Beeper> {
        Pair::new(Beeper::with_src(ms(5), 0), Beeper::with_src(ms(7), 1))
    }

    #[test]
    fn deadline_is_min_of_parts() {
        let p = pair();
        let s0 = p.initial();
        assert_eq!(p.deadline(&s0, Time::ZERO), Some(at(5)));
        let s1 = p
            .step(&s0, &BeepAction::Beep { src: 0, seq: 0 }, at(5))
            .unwrap();
        assert_eq!(p.deadline(&s1, at(5)), Some(at(7)));
    }

    #[test]
    fn steps_touch_only_owning_part() {
        let p = pair();
        let s0 = p.initial();
        let s1 = p
            .step(&s0, &BeepAction::Beep { src: 1, seq: 0 }, at(7))
            .unwrap();
        assert_eq!(s1.a, s0.a, "part a untouched");
        assert_ne!(s1.b, s0.b);
        assert!(p
            .step(&s0, &BeepAction::Beep { src: 9, seq: 0 }, at(7))
            .is_none());
    }

    #[test]
    fn enabled_is_union() {
        let p = pair();
        let s0 = p.initial();
        assert_eq!(p.enabled(&s0, at(4)).len(), 0);
        assert_eq!(p.enabled(&s0, at(5)).len(), 1);
        assert_eq!(p.enabled(&s0, at(7)).len(), 2);
    }

    #[test]
    fn advance_respects_both_deadlines() {
        let p = pair();
        let s0 = p.initial();
        assert!(p.advance(&s0, Time::ZERO, at(5)).is_some());
        assert!(p.advance(&s0, Time::ZERO, at(6)).is_none());
    }
}
