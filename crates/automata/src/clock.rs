//! The clock automaton model (Definitions 2.3–2.7).

use core::fmt::Debug;

use psync_time::{Duration, Time};

use crate::component::DynState;
use crate::{Action, ActionKind, WakeHint};

/// A clock automaton (Definition 2.3): a timed automaton with an extra
/// `clock` state component, whose transitions may depend on `clock` but
/// never on `now`.
///
/// As with [`TimedComponent`](crate::TimedComponent), the `clock` component
/// is owned by the execution engine (one clock per *node*, shared by all
/// clock components composed at that node — the clock-automaton composition
/// of Definition 2.7) and passed into every call. Because the trait never
/// receives `now`, every implementation is **ε-time independent**
/// (Definition 2.6) by construction: its transition relation cannot depend
/// on real time.
///
/// # Relation to the paper's axioms
///
/// * **C1** (`clock = 0` in start states) — the engine starts node clocks at
///   [`Time::ZERO`] (strategies may immediately skew them within `C_ε`).
/// * **C2** (non-`ν` actions leave `clock` unchanged) — [`step`] cannot
///   touch the clock.
/// * **C3** (`ν` strictly increases `clock`) — the engine's clock
///   strategies always advance the clock by at least one representable
///   instant per time-passage step.
/// * **C4** (density) — as for S5, guaranteed by the deadline discipline:
///   [`advance`] must succeed exactly when `target ≤ clock_deadline(s,
///   clock)`.
///
/// [`step`]: ClockComponent::step
/// [`advance`]: ClockComponent::advance
pub trait ClockComponent: 'static {
    /// The action alphabet of the system this component is part of.
    type Action: Action;
    /// The `cbasic` part of the state (everything except `now` and `clock`).
    type State: Clone + Debug + 'static;

    /// A human-readable name for diagnostics.
    fn name(&self) -> String;

    /// The start state (`clock = 0` is supplied by the engine, axiom C1).
    fn initial(&self) -> Self::State;

    /// Classifies `a` in this component's signature.
    fn classify(&self, a: &Self::Action) -> Option<ActionKind>;

    /// The [`Action::name`]s of every action in this component's signature,
    /// or `None` when the signature cannot be enumerated statically.
    ///
    /// Same routing-hint contract as
    /// [`TimedComponent::action_names`](crate::TimedComponent::action_names):
    /// whenever `classify(a)` is `Some`, `a.name()` must appear in the
    /// list; over-approximation is safe; `None` (the default) means the
    /// engine routes every action here.
    fn action_names(&self) -> Option<Vec<&'static str>> {
        None
    }

    /// Applies the non-time-passage action `a` when the node clock reads
    /// `clock`, or `None` if `a` is not enabled.
    fn step(&self, s: &Self::State, a: &Self::Action, clock: Time) -> Option<Self::State>;

    /// The locally controlled actions enabled in `s` at clock time `clock`.
    fn enabled(&self, s: &Self::State, clock: Time) -> Vec<Self::Action>;

    /// The latest *clock* value to which `ν` may advance, or `None` if the
    /// clock may advance without bound.
    ///
    /// This is the clock-time analogue of
    /// [`TimedComponent::deadline`](crate::TimedComponent::deadline): for
    /// example the receive buffer `R_{ji,ε}` of Figure 2 refuses to let the
    /// clock pass the send-timestamp `c` of any buffered message.
    fn clock_deadline(&self, s: &Self::State, clock: Time) -> Option<Time>;

    /// Applies `ν`, advancing the node clock from `clock` to `target`
    /// (`target > clock`), or `None` if forbidden.
    ///
    /// Must succeed whenever `target ≤ clock_deadline(s, clock)`. The
    /// default implementation leaves the state unchanged within deadline.
    fn advance(&self, s: &Self::State, clock: Time, target: Time) -> Option<Self::State> {
        debug_assert!(target > clock, "ν must strictly increase clock (axiom C3)");
        match self.clock_deadline(s, clock) {
            Some(d) if target > d => None,
            _ => Some(s.clone()),
        }
    }

    /// How far the *node clock* may advance before this component must be
    /// re-examined — [`TimedComponent::wake_hint`] in local clock time.
    ///
    /// The contract is the same promise with `clock` substituted for `now`:
    /// [`WakeHint::At(t)`](WakeHint::At) says `enabled`, `clock_deadline`,
    /// `advance` and `clock_wake` are unaffected by clock values strictly
    /// below `t`. The default, [`WakeHint::Always`], promises nothing.
    ///
    /// [`TimedComponent::wake_hint`]: crate::TimedComponent::wake_hint
    fn clock_wake(&self, s: &Self::State, clock: Time) -> WakeHint {
        let _ = (s, clock);
        WakeHint::Always
    }
}

/// Object-safe erased view of a [`ClockComponent`].
pub(crate) trait DynClock<A: Action> {
    fn initial_dyn(&self) -> DynState;
    fn classify_dyn(&self, a: &A) -> Option<ActionKind>;
    fn action_names_dyn(&self) -> Option<Vec<&'static str>>;
    fn step_dyn(&self, s: &DynState, a: &A, clock: Time) -> Option<DynState>;
    fn enabled_dyn(&self, s: &DynState, clock: Time) -> Vec<A>;
    fn clock_deadline_dyn(&self, s: &DynState, clock: Time) -> Option<Time>;
    fn advance_dyn(&self, s: &DynState, clock: Time, target: Time) -> Option<DynState>;
    fn clock_wake_dyn(&self, s: &DynState, clock: Time) -> WakeHint;
}

struct Eraser<C>(C);

impl<A: Action, C: ClockComponent<Action = A>> DynClock<A> for Eraser<C> {
    fn initial_dyn(&self) -> DynState {
        DynState::of(self.0.initial())
    }

    fn classify_dyn(&self, a: &A) -> Option<ActionKind> {
        self.0.classify(a)
    }

    fn action_names_dyn(&self) -> Option<Vec<&'static str>> {
        self.0.action_names()
    }

    fn step_dyn(&self, s: &DynState, a: &A, clock: Time) -> Option<DynState> {
        self.0.step(expect::<C>(s), a, clock).map(DynState::of)
    }

    fn enabled_dyn(&self, s: &DynState, clock: Time) -> Vec<A> {
        self.0.enabled(expect::<C>(s), clock)
    }

    fn clock_deadline_dyn(&self, s: &DynState, clock: Time) -> Option<Time> {
        self.0.clock_deadline(expect::<C>(s), clock)
    }

    fn advance_dyn(&self, s: &DynState, clock: Time, target: Time) -> Option<DynState> {
        self.0
            .advance(expect::<C>(s), clock, target)
            .map(DynState::of)
    }

    fn clock_wake_dyn(&self, s: &DynState, clock: Time) -> WakeHint {
        self.0.clock_wake(expect::<C>(s), clock)
    }
}

fn expect<C: ClockComponent>(s: &DynState) -> &C::State {
    s.downcast_ref::<C::State>()
        .expect("DynState passed to a clock component of a different type")
}

/// A boxed, type-erased [`ClockComponent`] — the unit from which nodes of a
/// clock-model distributed system are composed (Definition 2.7).
pub struct ClockComponentBox<A: Action> {
    inner: Box<dyn DynClock<A>>,
    /// The diagnostic name, computed once at boxing time so
    /// [`ClockComponentBox::name`] hands out `&str` without a per-call
    /// `String` allocation (the execution engine reads names in hot loops).
    name: std::sync::Arc<str>,
}

impl<A: Action> ClockComponentBox<A> {
    /// Boxes a concrete clock component.
    #[must_use]
    pub fn new<C: ClockComponent<Action = A>>(component: C) -> Self {
        let name = std::sync::Arc::from(component.name().as_str());
        ClockComponentBox {
            inner: Box::new(Eraser(component)),
            name,
        }
    }

    /// The component's diagnostic name (cached at boxing time).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cached diagnostic name as a shareable `Arc<str>` — the
    /// execution engine interns this into every emitted event without
    /// further allocation.
    #[must_use]
    pub fn name_arc(&self) -> std::sync::Arc<str> {
        std::sync::Arc::clone(&self.name)
    }

    /// The component's start state.
    #[must_use]
    pub fn initial(&self) -> DynState {
        self.inner.initial_dyn()
    }

    /// Classifies `a` in the component's signature.
    #[must_use]
    pub fn classify(&self, a: &A) -> Option<ActionKind> {
        self.inner.classify_dyn(a)
    }

    /// The signature's action names, when statically enumerable
    /// (see [`ClockComponent::action_names`]).
    #[must_use]
    pub fn action_names(&self) -> Option<Vec<&'static str>> {
        self.inner.action_names_dyn()
    }

    /// Applies a non-time-passage action at clock time `clock`.
    #[must_use]
    pub fn step(&self, s: &DynState, a: &A, clock: Time) -> Option<DynState> {
        self.inner.step_dyn(s, a, clock)
    }

    /// Enabled locally controlled actions at clock time `clock`.
    #[must_use]
    pub fn enabled(&self, s: &DynState, clock: Time) -> Vec<A> {
        self.inner.enabled_dyn(s, clock)
    }

    /// Latest clock value to which `ν` may advance.
    #[must_use]
    pub fn clock_deadline(&self, s: &DynState, clock: Time) -> Option<Time> {
        self.inner.clock_deadline_dyn(s, clock)
    }

    /// Applies `ν`, advancing the clock to `target`.
    #[must_use]
    pub fn advance(&self, s: &DynState, clock: Time, target: Time) -> Option<DynState> {
        self.inner.advance_dyn(s, clock, target)
    }

    /// The component's clock-time-dependence promise
    /// (see [`ClockComponent::clock_wake`]).
    #[must_use]
    pub fn clock_wake(&self, s: &DynState, clock: Time) -> WakeHint {
        self.inner.clock_wake_dyn(s, clock)
    }
}

/// A [`ClockComponentBox`] is itself a [`ClockComponent`] (over the erased
/// [`DynState`]), so adapters like [`HiddenClock`] compose over
/// already-boxed components.
impl<A: Action> ClockComponent for ClockComponentBox<A> {
    type Action = A;
    type State = DynState;

    fn name(&self) -> String {
        ClockComponentBox::name(self).to_string()
    }

    fn initial(&self) -> DynState {
        ClockComponentBox::initial(self)
    }

    fn classify(&self, a: &A) -> Option<ActionKind> {
        ClockComponentBox::classify(self, a)
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        ClockComponentBox::action_names(self)
    }

    fn step(&self, s: &DynState, a: &A, clock: Time) -> Option<DynState> {
        ClockComponentBox::step(self, s, a, clock)
    }

    fn enabled(&self, s: &DynState, clock: Time) -> Vec<A> {
        ClockComponentBox::enabled(self, s, clock)
    }

    fn clock_deadline(&self, s: &DynState, clock: Time) -> Option<Time> {
        ClockComponentBox::clock_deadline(self, s, clock)
    }

    fn advance(&self, s: &DynState, clock: Time, target: Time) -> Option<DynState> {
        ClockComponentBox::advance(self, s, clock, target)
    }

    fn clock_wake(&self, s: &DynState, clock: Time) -> WakeHint {
        ClockComponentBox::clock_wake(self, s, clock)
    }
}

impl<A: Action> Debug for ClockComponentBox<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClockComponentBox")
            .field("name", &self.name())
            .finish()
    }
}

/// The parallel composition of clock components sharing one clock — the
/// clock-automaton composition of Definition 2.7, packaged as a single
/// [`ClockComponent`].
///
/// The execution engine's `ClockNode` composes clock components itself;
/// `ClockComposite` exists for the cases where a *whole node* must be
/// treated as one clock automaton again — most importantly as the input to
/// the MMT transformation `M(A^c_{i,ε}, ℓ)` (Definition 5.1), which
/// simulates the complete node `A^c_{i,ε} = C(A_i, ε) ∥ S_{ij,ε} ∥ R_{ji,ε}`.
///
/// Compatibility (`out ∩ out = ∅`, `int ∩ acts = ∅`, Definition 2.2) is
/// checked dynamically: a shared locally-controlled action is reported at
/// step time by the engine.
pub struct ClockComposite<A: Action> {
    name: String,
    parts: Vec<ClockComponentBox<A>>,
}

/// The state of a [`ClockComposite`]: one erased state per part.
pub type CompositeState = Vec<DynState>;

impl<A: Action> ClockComposite<A> {
    /// Composes the given clock components under one name.
    #[must_use]
    pub fn new(name: impl Into<String>, parts: Vec<ClockComponentBox<A>>) -> Self {
        ClockComposite {
            name: name.into(),
            parts,
        }
    }

    /// The composed parts.
    #[must_use]
    pub fn parts(&self) -> &[ClockComponentBox<A>] {
        &self.parts
    }
}

impl<A: Action> ClockComponent for ClockComposite<A> {
    type Action = A;
    type State = CompositeState;

    fn name(&self) -> String {
        self.name.clone()
    }

    fn initial(&self) -> CompositeState {
        self.parts.iter().map(ClockComponentBox::initial).collect()
    }

    fn classify(&self, a: &A) -> Option<ActionKind> {
        // An action locally controlled by any part is controlled by the
        // composite; otherwise it is an input if any part takes it.
        let mut seen_input = false;
        for p in &self.parts {
            match p.classify(a) {
                Some(k) if k.is_locally_controlled() => return Some(k),
                Some(ActionKind::Input) => seen_input = true,
                _ => {}
            }
        }
        seen_input.then_some(ActionKind::Input)
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        // The composite's signature is the union of its parts'; one
        // unenumerable part makes the whole composite a wildcard.
        let mut names: Vec<&'static str> = Vec::new();
        for p in &self.parts {
            names.extend(p.action_names()?);
        }
        names.sort_unstable();
        names.dedup();
        Some(names)
    }

    fn step(&self, s: &CompositeState, a: &A, clock: Time) -> Option<CompositeState> {
        let mut next = s.clone();
        let mut touched = false;
        for (i, p) in self.parts.iter().enumerate() {
            if p.classify(a).is_some() {
                touched = true;
                next[i] = p.step(&s[i], a, clock)?;
            }
        }
        touched.then_some(next)
    }

    fn enabled(&self, s: &CompositeState, clock: Time) -> Vec<A> {
        self.parts
            .iter()
            .zip(s)
            .flat_map(|(p, ps)| p.enabled(ps, clock))
            .collect()
    }

    fn clock_deadline(&self, s: &CompositeState, clock: Time) -> Option<Time> {
        self.parts
            .iter()
            .zip(s)
            .filter_map(|(p, ps)| p.clock_deadline(ps, clock))
            .min()
    }

    fn advance(&self, s: &CompositeState, clock: Time, target: Time) -> Option<CompositeState> {
        let mut next = Vec::with_capacity(s.len());
        for (p, ps) in self.parts.iter().zip(s) {
            next.push(p.advance(ps, clock, target)?);
        }
        Some(next)
    }

    fn clock_wake(&self, s: &CompositeState, clock: Time) -> WakeHint {
        // The composite wakes when any part does.
        self.parts
            .iter()
            .zip(s)
            .map(|(p, ps)| p.clock_wake(ps, clock))
            .fold(WakeHint::Never, WakeHint::earlier)
    }
}

/// The hiding operator for clock components: reclassifies selected output
/// actions as internal (Section 2.1), the clock-model counterpart of
/// [`Hidden`](crate::Hidden).
///
/// The node transformation `A^c_{i,ε}` of Section 4.2 hides the
/// `SENDMSG_i(j, m)` and `RECVMSG_i(j, m)` actions exchanged between the
/// simulated algorithm and its send/receive buffers; `psync-core` uses
/// `HiddenClock` for exactly that.
pub struct HiddenClock<C, F> {
    inner: C,
    hide: F,
}

impl<C, F> HiddenClock<C, F> {
    /// Wraps `inner`, hiding every output action for which `hide` is true.
    pub fn new(inner: C, hide: F) -> Self {
        HiddenClock { inner, hide }
    }
}

impl<C, F> ClockComponent for HiddenClock<C, F>
where
    C: ClockComponent,
    F: Fn(&C::Action) -> bool + 'static,
{
    type Action = C::Action;
    type State = C::State;

    fn name(&self) -> String {
        format!("hide({})", self.inner.name())
    }

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match self.inner.classify(a) {
            Some(ActionKind::Output) if (self.hide)(a) => Some(ActionKind::Internal),
            other => other,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        // Hiding reclassifies actions, never changes signature membership.
        self.inner.action_names()
    }

    fn step(&self, s: &Self::State, a: &Self::Action, clock: Time) -> Option<Self::State> {
        self.inner.step(s, a, clock)
    }

    fn enabled(&self, s: &Self::State, clock: Time) -> Vec<Self::Action> {
        self.inner.enabled(s, clock)
    }

    fn clock_deadline(&self, s: &Self::State, clock: Time) -> Option<Time> {
        self.inner.clock_deadline(s, clock)
    }

    fn advance(&self, s: &Self::State, clock: Time, target: Time) -> Option<Self::State> {
        self.inner.advance(s, clock, target)
    }

    fn clock_wake(&self, s: &Self::State, clock: Time) -> WakeHint {
        self.inner.clock_wake(s, clock)
    }
}

/// A clock predicate (Definition 2.4): a relation between `now` and `clock`
/// that every reachable state of a clock automaton must satisfy.
///
/// The paper's central instance is `C_ε` (Definition 2.5), built with
/// [`ClockPredicate::skew`]: `|now − clock| ≤ ε`.
///
/// # Examples
///
/// ```
/// use psync_automata::ClockPredicate;
/// use psync_time::{Duration, Time};
///
/// let c_eps = ClockPredicate::skew(Duration::from_millis(2));
/// let now = Time::ZERO + Duration::from_millis(10);
/// assert!(c_eps.holds(now, now + Duration::from_millis(2)));
/// assert!(!c_eps.holds(now, now + Duration::from_millis(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockPredicate {
    eps: Duration,
}

impl ClockPredicate {
    /// The predicate `C_ε`: `(now, clock)` satisfies it iff
    /// `|now − clock| ≤ ε`.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is negative.
    #[must_use]
    pub fn skew(eps: Duration) -> Self {
        assert!(!eps.is_negative(), "clock skew bound must be non-negative");
        ClockPredicate { eps }
    }

    /// The skew bound `ε`.
    #[must_use]
    pub const fn eps(&self) -> Duration {
        self.eps
    }

    /// `true` iff `(now, clock) ∈ C_ε`.
    #[must_use]
    pub fn holds(&self, now: Time, clock: Time) -> bool {
        now.skew(clock) <= self.eps
    }

    /// The latest real time at which the clock can still read `clock_value`
    /// without violating the predicate: `clock_value + ε`.
    ///
    /// The engine uses this to convert *clock* deadlines into *real-time*
    /// advance limits.
    #[must_use]
    pub fn latest_now_for(&self, clock_value: Time) -> Time {
        clock_value + self.eps
    }

    /// The interval of clock readings permitted at real time `now`:
    /// `[max(now − ε, 0), now + ε]`.
    #[must_use]
    pub fn clock_range(&self, now: Time) -> (Time, Time) {
        let lo = now.checked_sub_duration(self.eps).unwrap_or(Time::ZERO);
        (lo, now + self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Duration;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn skew_predicate_is_symmetric_band() {
        let p = ClockPredicate::skew(ms(2));
        let now = Time::ZERO + ms(100);
        assert!(p.holds(now, now));
        assert!(p.holds(now, now + ms(2)));
        assert!(p.holds(now, now - ms(2)));
        assert!(!p.holds(now, now + ms(2) + Duration::NANOSECOND));
        assert!(!p.holds(now, now - ms(2) - Duration::NANOSECOND));
    }

    #[test]
    fn zero_skew_forces_equality() {
        let p = ClockPredicate::skew(Duration::ZERO);
        let now = Time::ZERO + ms(5);
        assert!(p.holds(now, now));
        assert!(!p.holds(now, now + Duration::NANOSECOND));
    }

    #[test]
    fn latest_now_for_clock_deadline() {
        let p = ClockPredicate::skew(ms(2));
        let d = Time::ZERO + ms(10);
        assert_eq!(p.latest_now_for(d), Time::ZERO + ms(12));
    }

    #[test]
    fn clock_range_clamps_at_zero() {
        let p = ClockPredicate::skew(ms(2));
        let (lo, hi) = p.clock_range(Time::ZERO + ms(1));
        assert_eq!(lo, Time::ZERO);
        assert_eq!(hi, Time::ZERO + ms(3));
        let (lo2, hi2) = p.clock_range(Time::ZERO + ms(10));
        assert_eq!(lo2, Time::ZERO + ms(8));
        assert_eq!(hi2, Time::ZERO + ms(12));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_eps_rejected() {
        let _ = ClockPredicate::skew(ms(-1));
    }
}
