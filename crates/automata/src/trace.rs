//! Timed sequences and timed traces (Section 2.1).

use core::fmt;

use psync_time::Time;

use crate::Action;

/// A *timed sequence* over a set of actions: a sequence of `(action, time)`
/// pairs with non-decreasing times (Section 2.1 of the paper).
///
/// Both *timed schedules* (`t-sched(α)`, all non-time-passage actions of an
/// execution) and *timed traces* (`t-trace(α)`, the visible actions only)
/// are values of this type; which one you hold depends on which projection
/// of an [`Execution`](crate::Execution) produced it.
///
/// # Examples
///
/// ```
/// use psync_automata::TimedTrace;
/// use psync_time::{Duration, Time};
///
/// let mut trace: TimedTrace<&'static str> = TimedTrace::new();
/// trace.push("a", Time::ZERO);
/// trace.push("b", Time::ZERO + Duration::from_millis(1));
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.get(1), Some((&"b", Time::ZERO + Duration::from_millis(1))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedTrace<A> {
    entries: Vec<(A, Time)>,
}

impl<A> Default for TimedTrace<A> {
    fn default() -> Self {
        TimedTrace::new()
    }
}

impl<A> TimedTrace<A> {
    /// The empty timed sequence.
    #[must_use]
    pub const fn new() -> Self {
        TimedTrace {
            entries: Vec::new(),
        }
    }

    /// Appends an `(action, time)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `time` is smaller than the time of the last entry (timed
    /// sequences have non-decreasing times).
    pub fn push(&mut self, action: A, time: Time) {
        if let Some((_, last)) = self.entries.last() {
            assert!(
                time >= *last,
                "timed sequence times must be non-decreasing ({time} after {last})"
            );
        }
        self.entries.push((action, time));
    }

    /// Number of action-time pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`-th pair (0-based), if present.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<(&A, Time)> {
        self.entries.get(i).map(|(a, t)| (a, *t))
    }

    /// Iterates over `(action, time)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, Time)> + '_ {
        self.entries.iter().map(|(a, t)| (a, *t))
    }

    /// The time of the last pair, if any.
    #[must_use]
    pub fn last_time(&self) -> Option<Time> {
        self.entries.last().map(|(_, t)| *t)
    }

    /// The projection of this sequence onto the actions satisfying `keep`
    /// (the paper's `β|(B × ℜ⁺)` notation).
    #[must_use]
    pub fn project(&self, mut keep: impl FnMut(&A) -> bool) -> TimedTrace<A>
    where
        A: Clone,
    {
        TimedTrace {
            entries: self
                .entries
                .iter()
                .filter(|(a, _)| keep(a))
                .cloned()
                .collect(),
        }
    }

    /// Applies `f` to every action, keeping the times (used when relabelling
    /// between models, e.g. stripping clock tags from `ESENDMSG` to compare
    /// against `SENDMSG` traces).
    #[must_use]
    pub fn map<B>(&self, mut f: impl FnMut(&A) -> B) -> TimedTrace<B>
    where
        A: Clone,
    {
        TimedTrace {
            entries: self.entries.iter().map(|(a, t)| (f(a), *t)).collect(),
        }
    }

    /// Consumes the sequence, yielding its pairs.
    #[must_use]
    pub fn into_vec(self) -> Vec<(A, Time)> {
        self.entries
    }

    /// Borrows the underlying pairs.
    #[must_use]
    pub fn as_slice(&self) -> &[(A, Time)] {
        &self.entries
    }
}

impl<A: Clone> TimedTrace<A> {
    /// Builds a timed sequence from pairs, validating monotonicity.
    ///
    /// # Panics
    ///
    /// Panics if times are not non-decreasing.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (A, Time)>) -> Self {
        let mut t = TimedTrace::new();
        for (a, time) in pairs {
            t.push(a, time);
        }
        t
    }
}

impl<A: Action> fmt::Display for TimedTrace<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (a, t)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({a:?}, {t})")?;
        }
        write!(f, "]")
    }
}

impl<A> FromIterator<(A, Time)> for TimedTrace<A> {
    /// # Panics
    ///
    /// Panics if times are not non-decreasing.
    fn from_iter<I: IntoIterator<Item = (A, Time)>>(iter: I) -> Self {
        let mut t = TimedTrace::new();
        for (a, time) in iter {
            t.push(a, time);
        }
        t
    }
}

/// Stably reorders `(action, time)` pairs into non-decreasing time order,
/// *retaining the original order of pairs with equal times* — the `γ_α`
/// construction of Definition 4.2.
///
/// The input need not be monotone (in the proof of Theorem 4.6 the pairs
/// carry per-node *clock* values, which different nodes report out of
/// order); the output is a valid [`TimedTrace`].
///
/// # Examples
///
/// ```
/// use psync_automata::reorder_by_time;
/// use psync_time::{Duration, Time};
///
/// let t0 = Time::ZERO;
/// let t1 = Time::ZERO + Duration::from_millis(1);
/// let gamma = reorder_by_time(vec![("b", t1), ("a", t0), ("c", t1)]);
/// assert_eq!(gamma.as_slice(), &[("a", t0), ("b", t1), ("c", t1)]);
/// ```
#[must_use]
pub fn reorder_by_time<A: Clone>(pairs: Vec<(A, Time)>) -> TimedTrace<A> {
    let mut indexed: Vec<(usize, (A, Time))> = pairs.into_iter().enumerate().collect();
    // Stable by construction: sort_by_key on (time, original index).
    indexed.sort_by_key(|(i, (_, t))| (*t, *i));
    TimedTrace {
        entries: indexed.into_iter().map(|(_, p)| p).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Duration;

    fn at(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    #[test]
    fn push_and_iterate() {
        let mut tr = TimedTrace::new();
        tr.push("x", at(0));
        tr.push("y", at(0));
        tr.push("z", at(2));
        assert_eq!(tr.len(), 3);
        let collected: Vec<_> = tr.iter().map(|(a, t)| (*a, t)).collect();
        assert_eq!(collected, vec![("x", at(0)), ("y", at(0)), ("z", at(2))]);
        assert_eq!(tr.last_time(), Some(at(2)));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_rejects_time_regression() {
        let mut tr = TimedTrace::new();
        tr.push("x", at(5));
        tr.push("y", at(4));
    }

    #[test]
    fn projection_keeps_subsequence() {
        let tr = TimedTrace::from_pairs(vec![("a", at(0)), ("b", at(1)), ("a", at(2))]);
        let only_a = tr.project(|a| *a == "a");
        assert_eq!(only_a.as_slice(), &[("a", at(0)), ("a", at(2))]);
    }

    #[test]
    fn map_relabels() {
        let tr = TimedTrace::from_pairs(vec![("a", at(0)), ("b", at(1))]);
        let upper = tr.map(|a| a.to_uppercase());
        assert_eq!(
            upper.as_slice(),
            &[("A".to_string(), at(0)), ("B".to_string(), at(1))]
        );
    }

    #[test]
    fn reorder_is_stable_on_ties() {
        let gamma = reorder_by_time(vec![
            ("late", at(3)),
            ("first-tie", at(1)),
            ("second-tie", at(1)),
            ("early", at(0)),
        ]);
        assert_eq!(
            gamma.as_slice(),
            &[
                ("early", at(0)),
                ("first-tie", at(1)),
                ("second-tie", at(1)),
                ("late", at(3)),
            ]
        );
    }

    #[test]
    fn reorder_of_sorted_input_is_identity() {
        let pairs = vec![("a", at(0)), ("b", at(1)), ("c", at(1))];
        let gamma = reorder_by_time(pairs.clone());
        assert_eq!(gamma.as_slice(), pairs.as_slice());
    }

    #[test]
    fn from_iterator_collects() {
        let tr: TimedTrace<&str> = vec![("a", at(0)), ("b", at(1))].into_iter().collect();
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn empty_trace() {
        let tr: TimedTrace<&str> = TimedTrace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.last_time(), None);
        assert_eq!(tr.get(0), None);
    }
}
