//! Small example automata used in documentation, tests and benchmarks.
//!
//! These are not part of the paper; they exist so that the model crates can
//! be exercised without pulling in the full network substrate. They are
//! deliberately tiny but fully honest implementations of the component
//! traits, and double as templates for writing your own components.

use psync_time::{Duration, Time};

use crate::{Action, ActionKind, ClockComponent, TimedComponent, WakeHint};

/// Actions of the [`Beeper`] and [`ClockBeeper`] toys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BeepAction {
    /// The `seq`-th beep of beeper `src`.
    Beep {
        /// Which beeper emitted it (distinguishes beepers composed in one
        /// system; compositions may not share output actions).
        src: u32,
        /// Sequence number, starting at 0.
        seq: u64,
    },
}

impl Action for BeepAction {
    fn name(&self) -> &'static str {
        "BEEP"
    }
}

/// State of a [`Beeper`]: when the next beep is due and its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeeperState {
    /// Absolute (real or clock) time of the next beep.
    pub next: Time,
    /// Sequence number of the next beep.
    pub seq: u64,
}

/// A timed automaton that outputs `BEEP(seq)` at exactly `period`,
/// `2·period`, `3·period`, … of *real* time.
///
/// Its `ν` precondition forbids passing a beep deadline, so an execution
/// engine is forced to stop time exactly at each multiple of the period and
/// fire — the same "urgent deadline" idiom Algorithm S uses for its
/// `mintime` (Figure 3 of the paper).
#[derive(Debug, Clone)]
pub struct Beeper {
    period: Duration,
    src: u32,
}

impl Beeper {
    /// Creates a beeper with the given strictly positive period and
    /// source id 0.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    #[must_use]
    pub fn new(period: Duration) -> Self {
        Beeper::with_src(period, 0)
    }

    /// Creates a beeper with an explicit source id, so several beepers can
    /// be composed without sharing output actions.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    #[must_use]
    pub fn with_src(period: Duration, src: u32) -> Self {
        assert!(period.is_positive(), "beeper period must be positive");
        Beeper { period, src }
    }
}

impl TimedComponent for Beeper {
    type Action = BeepAction;
    type State = BeeperState;

    fn name(&self) -> String {
        format!("beeper({})", self.period)
    }

    fn initial(&self) -> BeeperState {
        BeeperState {
            next: Time::ZERO + self.period,
            seq: 0,
        }
    }

    fn classify(&self, a: &BeepAction) -> Option<ActionKind> {
        match a {
            BeepAction::Beep { src, .. } if *src == self.src => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["BEEP"])
    }

    fn step(&self, s: &BeeperState, a: &BeepAction, now: Time) -> Option<BeeperState> {
        match a {
            BeepAction::Beep { src, seq } if *src == self.src && *seq == s.seq && now >= s.next => {
                Some(BeeperState {
                    next: s.next + self.period,
                    seq: s.seq + 1,
                })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &BeeperState, now: Time) -> Vec<BeepAction> {
        if now >= s.next {
            vec![BeepAction::Beep {
                src: self.src,
                seq: s.seq,
            }]
        } else {
            Vec::new()
        }
    }

    fn deadline(&self, s: &BeeperState, _now: Time) -> Option<Time> {
        Some(s.next)
    }

    fn wake_hint(&self, s: &BeeperState, _now: Time) -> WakeHint {
        // Nothing about a beeper changes until its next beep is due:
        // enabled stays empty, the deadline stays `s.next`, and advancing
        // to any earlier time is the identity on state.
        WakeHint::At(s.next)
    }
}

/// The clock-model sibling of [`Beeper`]: beeps at multiples of the node
/// *clock* instead of real time.
///
/// Because [`ClockComponent`] implementations never see `now`, this
/// automaton is ε-time independent by construction; under a skewed clock
/// strategy its beeps drift from real multiples of the period by up to the
/// skew bound — exactly the `=_{ε,κ}` perturbation Theorem 4.7 predicts.
#[derive(Debug, Clone)]
pub struct ClockBeeper {
    period: Duration,
    src: u32,
}

impl ClockBeeper {
    /// Creates a clock-driven beeper with the given strictly positive
    /// period and source id 0.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    #[must_use]
    pub fn new(period: Duration) -> Self {
        ClockBeeper::with_src(period, 0)
    }

    /// Creates a clock-driven beeper with an explicit source id.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    #[must_use]
    pub fn with_src(period: Duration, src: u32) -> Self {
        assert!(period.is_positive(), "beeper period must be positive");
        ClockBeeper { period, src }
    }
}

impl ClockComponent for ClockBeeper {
    type Action = BeepAction;
    type State = BeeperState;

    fn name(&self) -> String {
        format!("clock-beeper({})", self.period)
    }

    fn initial(&self) -> BeeperState {
        BeeperState {
            next: Time::ZERO + self.period,
            seq: 0,
        }
    }

    fn classify(&self, a: &BeepAction) -> Option<ActionKind> {
        match a {
            BeepAction::Beep { src, .. } if *src == self.src => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["BEEP"])
    }

    fn step(&self, s: &BeeperState, a: &BeepAction, clock: Time) -> Option<BeeperState> {
        match a {
            BeepAction::Beep { src, seq }
                if *src == self.src && *seq == s.seq && clock >= s.next =>
            {
                Some(BeeperState {
                    next: s.next + self.period,
                    seq: s.seq + 1,
                })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &BeeperState, clock: Time) -> Vec<BeepAction> {
        if clock >= s.next {
            vec![BeepAction::Beep {
                src: self.src,
                seq: s.seq,
            }]
        } else {
            Vec::new()
        }
    }

    fn clock_deadline(&self, s: &BeeperState, _clock: Time) -> Option<Time> {
        Some(s.next)
    }

    fn clock_wake(&self, s: &BeeperState, _clock: Time) -> WakeHint {
        // Same promise as the timed beeper, in clock time.
        WakeHint::At(s.next)
    }
}

/// Actions of the [`Echo`] toy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EchoAction {
    /// Environment stimulus (input).
    Ping {
        /// Caller-chosen identifier echoed back in the pong.
        id: u64,
    },
    /// Response emitted exactly `latency` after the matching ping (output).
    Pong {
        /// Identifier of the ping being answered.
        id: u64,
    },
}

impl Action for EchoAction {
    fn name(&self) -> &'static str {
        match self {
            EchoAction::Ping { .. } => "PING",
            EchoAction::Pong { .. } => "PONG",
        }
    }
}

/// State of an [`Echo`]: pongs scheduled but not yet emitted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EchoState {
    /// Pending `(id, due-time)` pairs in arrival order.
    pub pending: Vec<(u64, Time)>,
}

/// A timed automaton that answers every `PING(id)` with a `PONG(id)` exactly
/// `latency` later — a minimal input-enabled component with urgent
/// deadlines, used to exercise input handling in the engine.
#[derive(Debug, Clone)]
pub struct Echo {
    latency: Duration,
}

impl Echo {
    /// Creates an echo with the given non-negative response latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is negative.
    #[must_use]
    pub fn new(latency: Duration) -> Self {
        assert!(!latency.is_negative(), "echo latency must be non-negative");
        Echo { latency }
    }
}

impl TimedComponent for Echo {
    type Action = EchoAction;
    type State = EchoState;

    fn name(&self) -> String {
        format!("echo({})", self.latency)
    }

    fn initial(&self) -> EchoState {
        EchoState::default()
    }

    fn classify(&self, a: &EchoAction) -> Option<ActionKind> {
        match a {
            EchoAction::Ping { .. } => Some(ActionKind::Input),
            EchoAction::Pong { .. } => Some(ActionKind::Output),
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["PING", "PONG"])
    }

    fn step(&self, s: &EchoState, a: &EchoAction, now: Time) -> Option<EchoState> {
        match a {
            EchoAction::Ping { id } => {
                let mut next = s.clone();
                next.pending.push((*id, now + self.latency));
                Some(next)
            }
            EchoAction::Pong { id } => {
                let pos = s
                    .pending
                    .iter()
                    .position(|(pid, due)| pid == id && *due <= now)?;
                let mut next = s.clone();
                next.pending.remove(pos);
                Some(next)
            }
        }
    }

    fn enabled(&self, s: &EchoState, now: Time) -> Vec<EchoAction> {
        s.pending
            .iter()
            .filter(|(_, due)| *due <= now)
            .map(|(id, _)| EchoAction::Pong { id: *id })
            .collect()
    }

    fn deadline(&self, s: &EchoState, _now: Time) -> Option<Time> {
        s.pending.iter().map(|(_, due)| *due).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn beeper_fires_at_exact_multiples() {
        let b = Beeper::new(ms(5));
        let s0 = b.initial();
        assert_eq!(b.deadline(&s0, Time::ZERO), Some(Time::ZERO + ms(5)));
        let at = Time::ZERO + ms(5);
        let acts = b.enabled(&s0, at);
        assert_eq!(acts, vec![BeepAction::Beep { src: 0, seq: 0 }]);
        let s1 = b.step(&s0, &acts[0], at).unwrap();
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.next, Time::ZERO + ms(10));
    }

    #[test]
    fn beeper_rejects_early_or_wrong_seq() {
        let b = Beeper::new(ms(5));
        let s0 = b.initial();
        assert!(b
            .step(
                &s0,
                &BeepAction::Beep { src: 0, seq: 0 },
                Time::ZERO + ms(4)
            )
            .is_none());
        assert!(b
            .step(
                &s0,
                &BeepAction::Beep { src: 0, seq: 1 },
                Time::ZERO + ms(5)
            )
            .is_none());
    }

    #[test]
    fn clock_beeper_mirrors_beeper_in_clock_time() {
        let b = ClockBeeper::new(ms(5));
        let s0 = b.initial();
        assert_eq!(b.clock_deadline(&s0, Time::ZERO), Some(Time::ZERO + ms(5)));
        let s1 = b
            .step(
                &s0,
                &BeepAction::Beep { src: 0, seq: 0 },
                Time::ZERO + ms(5),
            )
            .unwrap();
        assert_eq!(s1.next, Time::ZERO + ms(10));
    }

    #[test]
    fn echo_answers_after_latency() {
        let e = Echo::new(ms(3));
        let s0 = e.initial();
        let t0 = Time::ZERO + ms(1);
        let s1 = e.step(&s0, &EchoAction::Ping { id: 7 }, t0).unwrap();
        assert_eq!(e.deadline(&s1, t0), Some(t0 + ms(3)));
        assert!(e.enabled(&s1, t0).is_empty());
        let due = t0 + ms(3);
        assert_eq!(e.enabled(&s1, due), vec![EchoAction::Pong { id: 7 }]);
        let s2 = e.step(&s1, &EchoAction::Pong { id: 7 }, due).unwrap();
        assert!(s2.pending.is_empty());
    }

    #[test]
    fn echo_is_input_enabled_even_when_busy() {
        let e = Echo::new(ms(3));
        let mut s = e.initial();
        let t0 = Time::ZERO;
        for id in 0..4 {
            s = e.step(&s, &EchoAction::Ping { id }, t0).unwrap();
        }
        assert_eq!(s.pending.len(), 4);
        // All four pongs due at the same time; all enabled.
        let due = t0 + ms(3);
        assert_eq!(e.enabled(&s, due).len(), 4);
    }

    #[test]
    fn echo_pong_requires_due_pending() {
        let e = Echo::new(ms(3));
        let s0 = e.initial();
        assert!(e
            .step(&s0, &EchoAction::Pong { id: 1 }, Time::ZERO)
            .is_none());
    }

    #[test]
    fn default_advance_respects_deadline() {
        let b = Beeper::new(ms(5));
        let s0 = b.initial();
        assert!(b.advance(&s0, Time::ZERO, Time::ZERO + ms(5)).is_some());
        assert!(b.advance(&s0, Time::ZERO, Time::ZERO + ms(6)).is_none());
    }
}
