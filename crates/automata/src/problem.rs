//! Problems and the `solve` relation (Section 2.4).
//!
//! A *problem* `P` is a set of timed sequences over visible actions
//! (`tseq(P)`), together with a signature and a partition associating
//! actions with nodes. A system *solves* `P` when every admissible timed
//! trace it produces is in `tseq(P)` (Definition 2.10).
//!
//! Membership in the generalizations `P_ε` (Definition 2.11) and `P^δ`
//! (Definition 2.12) is existential — `α ∈ tseq(P_ε)` iff *some*
//! `α' ∈ tseq(P)` satisfies `α' =_{ε,κ} α` — so it cannot be decided from a
//! membership test for `P` alone. The simulation theorems, however, are
//! proved *constructively*: Theorem 4.6 builds the witness `α'` (via the
//! `γ_α` clock-time reordering) for every clock-model execution. The
//! checkers here therefore take the witness explicitly:
//! [`check_in_p_eps`] verifies `witness ∈ P ∧ witness =_{ε,κ} trace`, which
//! certifies `trace ∈ tseq(P_ε)`.

use core::fmt;

use psync_time::Duration;

use crate::relations::{delta_shifted, eps_equivalent, ClassMap, RelationError, Witness};
use crate::{Action, TimedTrace};

/// The outcome of checking a timed trace against a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The trace is in `tseq(P)`.
    Holds,
    /// The trace is not in `tseq(P)`; the string explains why.
    Violated(String),
}

impl Verdict {
    /// `true` when the trace satisfied the problem.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// Builds a violation verdict from a displayable reason.
    #[must_use]
    pub fn violated(reason: impl fmt::Display) -> Verdict {
        Verdict::Violated(reason.to_string())
    }

    /// Converts to `Result`, for use with `?` in tests.
    ///
    /// # Errors
    ///
    /// Returns the violation reason when the verdict is
    /// [`Verdict::Violated`].
    pub fn into_result(self) -> Result<(), String> {
        match self {
            Verdict::Holds => Ok(()),
            Verdict::Violated(why) => Err(why),
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Violated(why) => write!(f, "violated: {why}"),
        }
    }
}

/// A problem `P`: a decidable membership test for `tseq(P)`.
///
/// # Examples
///
/// ```
/// use psync_automata::problem::{Problem, Verdict};
/// use psync_automata::TimedTrace;
///
/// struct AtMostOne;
///
/// impl Problem<&'static str> for AtMostOne {
///     fn name(&self) -> &str { "at most one action" }
///     fn contains(&self, trace: &TimedTrace<&'static str>) -> Verdict {
///         if trace.len() <= 1 { Verdict::Holds } else {
///             Verdict::violated(format!("{} actions", trace.len()))
///         }
///     }
/// }
/// ```
pub trait Problem<A: Action> {
    /// The problem's name, for reporting.
    fn name(&self) -> &str;

    /// Decides `trace ∈ tseq(P)`.
    fn contains(&self, trace: &TimedTrace<A>) -> Verdict;
}

/// A problem built from a closure.
pub struct FnProblem<A> {
    name: String,
    #[allow(clippy::type_complexity)]
    f: Box<dyn Fn(&TimedTrace<A>) -> Verdict + Send + Sync>,
}

impl<A> FnProblem<A> {
    /// Wraps a membership function as a [`Problem`].
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&TimedTrace<A>) -> Verdict + Send + Sync + 'static,
    ) -> Self {
        FnProblem {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl<A: Action> Problem<A> for FnProblem<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn contains(&self, trace: &TimedTrace<A>) -> Verdict {
        (self.f)(trace)
    }
}

impl<A> fmt::Debug for FnProblem<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnProblem")
            .field("name", &self.name)
            .finish()
    }
}

/// Certifies `trace ∈ tseq(P_ε)` (Definition 2.11) from an explicit witness:
/// checks `witness ∈ tseq(P)` and `witness =_{ε,κ} trace`.
///
/// On success returns the relation witness, whose
/// [`max_deviation`](Witness::max_deviation) is the experimentally
/// interesting quantity (Theorem 4.6 promises it is `≤ ε`).
///
/// # Errors
///
/// Returns [`PeErrors::NotInP`] when the witness fails `P`, or
/// [`PeErrors::NotRelated`] when the relation fails.
pub fn check_in_p_eps<A: Action>(
    problem: &dyn Problem<A>,
    trace: &TimedTrace<A>,
    witness: &TimedTrace<A>,
    eps: Duration,
    classes: &ClassMap<A>,
) -> Result<Witness, PeErrors<A>> {
    if let Verdict::Violated(why) = problem.contains(witness) {
        return Err(PeErrors::NotInP(why));
    }
    eps_equivalent(witness, trace, eps, classes).map_err(PeErrors::NotRelated)
}

/// Certifies `trace ∈ tseq(P^δ)` (Definition 2.12) from an explicit witness:
/// checks `witness ∈ tseq(P)` and `witness ≤_{δ,K} trace`.
///
/// # Errors
///
/// Returns [`PeErrors::NotInP`] when the witness fails `P`, or
/// [`PeErrors::NotRelated`] when the relation fails.
pub fn check_in_p_delta<A: Action>(
    problem: &dyn Problem<A>,
    trace: &TimedTrace<A>,
    witness: &TimedTrace<A>,
    delta: Duration,
    classes: &ClassMap<A>,
) -> Result<Witness, PeErrors<A>> {
    if let Verdict::Violated(why) = problem.contains(witness) {
        return Err(PeErrors::NotInP(why));
    }
    delta_shifted(witness, trace, delta, classes).map_err(PeErrors::NotRelated)
}

/// Failure modes of the generalized-problem checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeErrors<A> {
    /// The supplied witness is not itself in `tseq(P)`.
    NotInP(String),
    /// The witness and the trace are not related.
    NotRelated(RelationError<A>),
}

impl<A: fmt::Debug> fmt::Display for PeErrors<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeErrors::NotInP(why) => write!(f, "witness not in P: {why}"),
            PeErrors::NotRelated(err) => write!(f, "witness not related to trace: {err}"),
        }
    }
}

impl<A: fmt::Debug> std::error::Error for PeErrors<A> {}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Time;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn alternation() -> FnProblem<&'static str> {
        FnProblem::new("strict ab alternation", |tr: &TimedTrace<&'static str>| {
            let mut expect_a = true;
            for (a, _) in tr.iter() {
                let ok = if expect_a { *a == "a" } else { *a == "b" };
                if !ok {
                    return Verdict::violated(format!("unexpected {a}"));
                }
                expect_a = !expect_a;
            }
            Verdict::Holds
        })
    }

    #[test]
    fn verdict_helpers() {
        assert!(Verdict::Holds.holds());
        assert!(!Verdict::violated("nope").holds());
        assert_eq!(Verdict::Holds.into_result(), Ok(()));
        assert_eq!(
            Verdict::violated("nope").into_result(),
            Err("nope".to_string())
        );
        assert_eq!(Verdict::Holds.to_string(), "holds");
    }

    #[test]
    fn fn_problem_membership() {
        let p = alternation();
        assert_eq!(p.name(), "strict ab alternation");
        let good = TimedTrace::from_pairs(vec![("a", t(0)), ("b", t(1))]);
        let bad = TimedTrace::from_pairs(vec![("b", t(0))]);
        assert!(p.contains(&good).holds());
        assert!(!p.contains(&bad).holds());
    }

    #[test]
    fn p_eps_accepts_perturbed_trace_with_witness() {
        let p = alternation();
        let witness = TimedTrace::from_pairs(vec![("a", t(10)), ("b", t(20))]);
        let trace = TimedTrace::from_pairs(vec![("a", t(11)), ("b", t(19))]);
        let w = check_in_p_eps(
            &p,
            &trace,
            &witness,
            Duration::from_millis(1),
            &ClassMap::single(),
        )
        .unwrap();
        assert_eq!(w.max_deviation, Duration::from_millis(1));
    }

    #[test]
    fn p_eps_rejects_bad_witness() {
        let p = alternation();
        let witness = TimedTrace::from_pairs(vec![("b", t(10))]);
        let trace = TimedTrace::from_pairs(vec![("b", t(10))]);
        let err = check_in_p_eps(
            &p,
            &trace,
            &witness,
            Duration::from_millis(1),
            &ClassMap::single(),
        )
        .unwrap_err();
        assert!(matches!(err, PeErrors::NotInP(_)));
    }

    #[test]
    fn p_delta_accepts_shifted_outputs() {
        let p = alternation();
        // Outputs ("b") may shift forward by δ; "a" is unclassified.
        let classes = ClassMap::by(|a: &&str| if *a == "b" { Some(0) } else { None });
        let witness = TimedTrace::from_pairs(vec![("a", t(0)), ("b", t(5))]);
        let trace = TimedTrace::from_pairs(vec![("a", t(0)), ("b", t(7))]);
        let w = check_in_p_delta(&p, &trace, &witness, Duration::from_millis(3), &classes).unwrap();
        assert_eq!(w.max_deviation, Duration::from_millis(2));
    }

    #[test]
    fn p_delta_rejects_excessive_shift() {
        let p = alternation();
        let classes = ClassMap::by(|a: &&str| if *a == "b" { Some(0) } else { None });
        let witness = TimedTrace::from_pairs(vec![("a", t(0)), ("b", t(5))]);
        let trace = TimedTrace::from_pairs(vec![("a", t(0)), ("b", t(9))]);
        let err =
            check_in_p_delta(&p, &trace, &witness, Duration::from_millis(3), &classes).unwrap_err();
        assert!(matches!(err, PeErrors::NotRelated(_)));
    }
}
