//! Actions and their classification.

use core::fmt::Debug;
use core::hash::Hash;

/// A non-time-passage action of a timed, clock, or MMT automaton.
///
/// The paper's automata communicate through named actions (Section 2.1);
/// action sets may be infinite because actions carry parameters (for
/// example `SENDMSG_i(j, m)` ranges over all messages `m`). A concrete
/// system therefore defines one action *type* — typically an enum — whose
/// values are the individual actions, and implements this trait for it.
///
/// [`Action::name`] returns the action's *name* (the constructor, without
/// parameters); it is used for diagnostics and by the trace-relation
/// matchers when grouping actions.
///
/// # Examples
///
/// ```
/// use psync_automata::Action;
///
/// #[derive(Debug, Clone, PartialEq, Eq, Hash)]
/// enum Door { Open, Close, Knock { times: u8 } }
///
/// impl Action for Door {
///     fn name(&self) -> &'static str {
///         match self {
///             Door::Open => "OPEN",
///             Door::Close => "CLOSE",
///             Door::Knock { .. } => "KNOCK",
///         }
///     }
/// }
///
/// assert_eq!(Door::Knock { times: 3 }.name(), "KNOCK");
/// ```
pub trait Action: Clone + Eq + Hash + Debug + 'static {
    /// The action's name, without parameters.
    fn name(&self) -> &'static str;
}

/// `&'static str` is an [`Action`] out of the box, which keeps examples and
/// tests lightweight: the action *is* its name.
impl Action for &'static str {
    fn name(&self) -> &'static str {
        self
    }
}

/// How an automaton classifies an action in its signature
/// (`sig(A) = (in(A), out(A), int(A))`, Definition 2.1).
///
/// The time-passage action `ν` is not represented here: time passage is a
/// dedicated operation ([`TimedComponent::advance`]) rather than a value of
/// the action type.
///
/// [`TimedComponent::advance`]: crate::TimedComponent::advance
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// Controlled by the environment; the automaton must be input-enabled.
    Input,
    /// Controlled by the automaton and visible to the environment.
    Output,
    /// Controlled by the automaton and invisible to the environment.
    Internal,
}

impl ActionKind {
    /// `true` for output and internal actions — the actions the automaton
    /// itself schedules (`locally controlled` in the paper).
    #[must_use]
    pub const fn is_locally_controlled(self) -> bool {
        matches!(self, ActionKind::Output | ActionKind::Internal)
    }

    /// `true` for input and output actions (`vis(A)` in the paper).
    #[must_use]
    pub const fn is_visible(self) -> bool {
        matches!(self, ActionKind::Input | ActionKind::Output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locally_controlled_classification() {
        assert!(!ActionKind::Input.is_locally_controlled());
        assert!(ActionKind::Output.is_locally_controlled());
        assert!(ActionKind::Internal.is_locally_controlled());
    }

    #[test]
    fn visibility_classification() {
        assert!(ActionKind::Input.is_visible());
        assert!(ActionKind::Output.is_visible());
        assert!(!ActionKind::Internal.is_visible());
    }
}
