//! The trace relations `=_{ε,κ}` (Definition 2.8) and `≤_{δ,K}`
//! (Definition 2.9) as executable matchers.
//!
//! Both relations assert the existence of a bijection `f` between the
//! indices of two timed sequences that preserves action values and certain
//! orders, while perturbing times in a bounded way. The matchers here
//! exploit the structure of the definitions to avoid general bipartite
//! matching:
//!
//! * Within any class of `κ` (or `K`) the bijection must preserve relative
//!   order, and a monotone bijection between two finite index sets is
//!   unique — so the matching is *forced*: the `i`-th class-`k` action of
//!   one sequence must map to the `i`-th class-`k` action of the other.
//! * Actions outside every class of `κ` carry no order constraint in
//!   `=_{ε,κ}`; there the matcher greedily pairs equal action values in
//!   time order, which is optimal for the interval constraint
//!   `|t − t'| ≤ ε` (the classic exchange argument for matching two sorted
//!   sequences).
//! * Actions outside every class of `K` in `≤_{δ,K}` must preserve order
//!   *among themselves* and keep exact times, so that matching is forced
//!   too.
//!
//! On success the matchers return a *witness* carrying the worst observed
//! time deviation — the quantity the reproduction experiments (E3/E4)
//! compare against the paper's bounds `ε` and `kℓ + 2ε + 3ℓ`.

use core::fmt;

use psync_time::{Duration, Time};

use crate::{Action, TimedTrace};

type Classifier<A> = Box<dyn Fn(&A) -> Option<usize> + Send + Sync>;

/// Assigns each action to at most one class of a partition `κ` (or `K`).
///
/// In the paper's uses, `κ = {uacts(A_1), …, uacts(A_n)}` (the actions of
/// each node, Section 4.3) and `K = {out(p_1), …, out(p_n)}` (the output
/// actions of each node, Definition 2.12); classes are identified here by
/// `usize` indices.
pub struct ClassMap<A> {
    f: Classifier<A>,
}

impl<A> ClassMap<A> {
    /// Builds a class map from a classifying function.
    ///
    /// # Examples
    ///
    /// ```
    /// use psync_automata::relations::ClassMap;
    ///
    /// // Two classes: even and odd numbers.
    /// let classes = ClassMap::by(|n: &u32| Some((n % 2) as usize));
    /// assert_eq!(classes.class_of(&4), Some(0));
    /// ```
    #[must_use]
    pub fn by(f: impl Fn(&A) -> Option<usize> + Send + Sync + 'static) -> Self {
        ClassMap { f: Box::new(f) }
    }

    /// A single class containing every action (useful for whole-trace
    /// comparisons where only global order matters).
    #[must_use]
    pub fn single() -> Self {
        ClassMap {
            f: Box::new(|_| Some(0)),
        }
    }

    /// The class of `a`, or `None` when `a` is in no class.
    #[must_use]
    pub fn class_of(&self, a: &A) -> Option<usize> {
        (self.f)(a)
    }
}

impl<A> fmt::Debug for ClassMap<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassMap").finish_non_exhaustive()
    }
}

/// Successful match: the bijection exists, and this is what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// The largest `|t_{f(i)} − t_i|` over all matched pairs.
    pub max_deviation: Duration,
    /// Number of matched pairs.
    pub matched: usize,
}

/// Why two timed sequences failed to be related.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError<A> {
    /// A class (or the unclassified remainder) has different sizes in the
    /// two sequences.
    CardinalityMismatch {
        /// Class index, or `None` for the unclassified remainder.
        class: Option<usize>,
        /// Count in the left sequence.
        left: usize,
        /// Count in the right sequence.
        right: usize,
    },
    /// The forced matching paired two different actions.
    ActionMismatch {
        /// Class index, or `None` for the unclassified remainder.
        class: Option<usize>,
        /// Position within the class.
        position: usize,
        /// Action from the left sequence.
        left: A,
        /// Action from the right sequence.
        right: A,
    },
    /// A matched pair violated the time constraint.
    TimeBound {
        /// The offending action.
        action: A,
        /// Its time in the left sequence.
        left_time: Time,
        /// Its time in the right sequence.
        right_time: Time,
        /// The bound that was exceeded (`ε` or `δ`).
        bound: Duration,
    },
    /// In `≤_{δ,K}`, an action moved *backwards* in time (the shift must be
    /// into the future), or an unclassified action changed time at all.
    IllegalShift {
        /// The offending action.
        action: A,
        /// Its time in the left sequence.
        left_time: Time,
        /// Its time in the right sequence.
        right_time: Time,
    },
}

impl<A: fmt::Debug> fmt::Display for RelationError<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::CardinalityMismatch { class, left, right } => write!(
                f,
                "class {class:?} has {left} actions on the left but {right} on the right"
            ),
            RelationError::ActionMismatch {
                class,
                position,
                left,
                right,
            } => write!(
                f,
                "forced matching in class {class:?} pairs {left:?} with {right:?} at position {position}"
            ),
            RelationError::TimeBound {
                action,
                left_time,
                right_time,
                bound,
            } => write!(
                f,
                "{action:?} moved from {left_time} to {right_time}, exceeding bound {bound}"
            ),
            RelationError::IllegalShift {
                action,
                left_time,
                right_time,
            } => write!(
                f,
                "{action:?} illegally moved from {left_time} to {right_time}"
            ),
        }
    }
}

impl<A: fmt::Debug> std::error::Error for RelationError<A> {}

/// Splits trace indices into per-class index lists plus the unclassified
/// remainder, preserving order.
fn partition_indices<A>(
    trace: &TimedTrace<A>,
    classes: &ClassMap<A>,
) -> (Vec<(usize, Vec<usize>)>, Vec<usize>) {
    let mut by_class: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut rest = Vec::new();
    for (i, (a, _)) in trace.iter().enumerate() {
        match classes.class_of(a) {
            Some(c) => match by_class.iter_mut().find(|(k, _)| *k == c) {
                Some((_, v)) => v.push(i),
                None => by_class.push((c, vec![i])),
            },
            None => rest.push(i),
        }
    }
    by_class.sort_by_key(|(k, _)| *k);
    (by_class, rest)
}

/// Checks `left =_{ε,κ} right` (Definition 2.8): a bijection exists that
/// preserves action values, preserves order within every class of `κ`, and
/// moves each action's time by at most `ε`.
///
/// # Errors
///
/// Returns the first violation found; see [`RelationError`].
///
/// # Examples
///
/// ```
/// use psync_automata::relations::{eps_equivalent, ClassMap};
/// use psync_automata::TimedTrace;
/// use psync_time::{Duration, Time};
///
/// let t = |n| Time::ZERO + Duration::from_millis(n);
/// let left = TimedTrace::from_pairs(vec![("a", t(10)), ("b", t(20))]);
/// let right = TimedTrace::from_pairs(vec![("a", t(11)), ("b", t(19))]);
/// let w = eps_equivalent(&left, &right, Duration::from_millis(2), &ClassMap::single())?;
/// assert_eq!(w.max_deviation, Duration::from_millis(1));
/// # Ok::<(), psync_automata::relations::RelationError<&'static str>>(())
/// ```
pub fn eps_equivalent<A: Action>(
    left: &TimedTrace<A>,
    right: &TimedTrace<A>,
    eps: Duration,
    classes: &ClassMap<A>,
) -> Result<Witness, RelationError<A>> {
    assert!(!eps.is_negative(), "ε must be non-negative");
    let (lc, lrest) = partition_indices(left, classes);
    let (rc, rrest) = partition_indices(right, classes);

    let mut max_dev = Duration::ZERO;
    let mut matched = 0usize;

    // Classified actions: the matching is forced (order-preserving within
    // each class), so walk the class index lists in lockstep.
    let mut li = lc.iter();
    let mut ri = rc.iter();
    loop {
        match (li.next(), ri.next()) {
            (None, None) => break,
            (Some((ck, lv)), Some((dk, rv))) if ck == dk => {
                if lv.len() != rv.len() {
                    return Err(RelationError::CardinalityMismatch {
                        class: Some(*ck),
                        left: lv.len(),
                        right: rv.len(),
                    });
                }
                for (pos, (&i, &j)) in lv.iter().zip(rv.iter()).enumerate() {
                    let (la, lt) = left.get(i).expect("index in range");
                    let (ra, rt) = right.get(j).expect("index in range");
                    if la != ra {
                        return Err(RelationError::ActionMismatch {
                            class: Some(*ck),
                            position: pos,
                            left: la.clone(),
                            right: ra.clone(),
                        });
                    }
                    let dev = lt.skew(rt);
                    if dev > eps {
                        return Err(RelationError::TimeBound {
                            action: la.clone(),
                            left_time: lt,
                            right_time: rt,
                            bound: eps,
                        });
                    }
                    max_dev = max_dev.max(dev);
                    matched += 1;
                }
            }
            (l, r) => {
                let (class, left_n, right_n) = match (l, r) {
                    (Some((ck, lv)), _) => (Some(*ck), lv.len(), 0),
                    (_, Some((dk, rv))) => (Some(*dk), 0, rv.len()),
                    _ => unreachable!(),
                };
                return Err(RelationError::CardinalityMismatch {
                    class,
                    left: left_n,
                    right: right_n,
                });
            }
        }
    }

    // Unclassified actions: no order constraint, so greedily pair equal
    // action values in time order (optimal for a symmetric interval bound).
    match_unclassified(left, right, &lrest, &rrest, |la, lt, rt| {
        let dev = lt.skew(rt);
        if dev > eps {
            return Err(RelationError::TimeBound {
                action: la.clone(),
                left_time: lt,
                right_time: rt,
                bound: eps,
            });
        }
        Ok(dev)
    })
    .map(|(dev, n)| Witness {
        max_deviation: max_dev.max(dev),
        matched: matched + n,
    })
}

/// Checks `left ≤_{δ,K} right` (Definition 2.9): actions in classes of `K`
/// may be shifted up to `δ` into the future (keeping their order relative
/// to each other); all other actions keep their exact times and their order
/// among themselves.
///
/// # Errors
///
/// Returns the first violation found; see [`RelationError`].
///
/// # Examples
///
/// ```
/// use psync_automata::relations::{delta_shifted, ClassMap};
/// use psync_automata::TimedTrace;
/// use psync_time::{Duration, Time};
///
/// let t = |n| Time::ZERO + Duration::from_millis(n);
/// // "out" actions (class 0) may slide forward, "in" actions may not move.
/// let classes = ClassMap::by(|a: &&str| if *a == "out" { Some(0) } else { None });
/// let left = TimedTrace::from_pairs(vec![("in", t(1)), ("out", t(2))]);
/// let right = TimedTrace::from_pairs(vec![("in", t(1)), ("out", t(4))]);
/// let w = delta_shifted(&left, &right, Duration::from_millis(3), &classes)?;
/// assert_eq!(w.max_deviation, Duration::from_millis(2));
/// # Ok::<(), psync_automata::relations::RelationError<&'static str>>(())
/// ```
pub fn delta_shifted<A: Action>(
    left: &TimedTrace<A>,
    right: &TimedTrace<A>,
    delta: Duration,
    classes: &ClassMap<A>,
) -> Result<Witness, RelationError<A>> {
    assert!(!delta.is_negative(), "δ must be non-negative");
    let (lc, lrest) = partition_indices(left, classes);
    let (rc, rrest) = partition_indices(right, classes);

    let mut max_dev = Duration::ZERO;
    let mut matched = 0usize;

    // Class actions: forced order-preserving matching; times may only move
    // forward, by at most δ.
    let mut li = lc.iter();
    let mut ri = rc.iter();
    loop {
        match (li.next(), ri.next()) {
            (None, None) => break,
            (Some((ck, lv)), Some((dk, rv))) if ck == dk => {
                if lv.len() != rv.len() {
                    return Err(RelationError::CardinalityMismatch {
                        class: Some(*ck),
                        left: lv.len(),
                        right: rv.len(),
                    });
                }
                for (pos, (&i, &j)) in lv.iter().zip(rv.iter()).enumerate() {
                    let (la, lt) = left.get(i).expect("index in range");
                    let (ra, rt) = right.get(j).expect("index in range");
                    if la != ra {
                        return Err(RelationError::ActionMismatch {
                            class: Some(*ck),
                            position: pos,
                            left: la.clone(),
                            right: ra.clone(),
                        });
                    }
                    if rt < lt {
                        return Err(RelationError::IllegalShift {
                            action: la.clone(),
                            left_time: lt,
                            right_time: rt,
                        });
                    }
                    let dev = rt - lt;
                    if dev > delta {
                        return Err(RelationError::TimeBound {
                            action: la.clone(),
                            left_time: lt,
                            right_time: rt,
                            bound: delta,
                        });
                    }
                    max_dev = max_dev.max(dev);
                    matched += 1;
                }
            }
            (l, r) => {
                let (class, left_n, right_n) = match (l, r) {
                    (Some((ck, lv)), _) => (Some(*ck), lv.len(), 0),
                    (_, Some((dk, rv))) => (Some(*dk), 0, rv.len()),
                    _ => unreachable!(),
                };
                return Err(RelationError::CardinalityMismatch {
                    class,
                    left: left_n,
                    right: right_n,
                });
            }
        }
    }

    // Non-class actions: forced matching (order preserved among
    // themselves), times must be identical.
    if lrest.len() != rrest.len() {
        return Err(RelationError::CardinalityMismatch {
            class: None,
            left: lrest.len(),
            right: rrest.len(),
        });
    }
    for (pos, (&i, &j)) in lrest.iter().zip(rrest.iter()).enumerate() {
        let (la, lt) = left.get(i).expect("index in range");
        let (ra, rt) = right.get(j).expect("index in range");
        if la != ra {
            return Err(RelationError::ActionMismatch {
                class: None,
                position: pos,
                left: la.clone(),
                right: ra.clone(),
            });
        }
        if lt != rt {
            return Err(RelationError::IllegalShift {
                action: la.clone(),
                left_time: lt,
                right_time: rt,
            });
        }
        matched += 1;
    }

    Ok(Witness {
        max_deviation: max_dev,
        matched,
    })
}

/// Greedy per-action-value matching of the unclassified remainders. Calls
/// `check(action, left_time, right_time)` on each pair, accumulating the
/// maximum deviation it returns.
fn match_unclassified<A: Action>(
    left: &TimedTrace<A>,
    right: &TimedTrace<A>,
    lrest: &[usize],
    rrest: &[usize],
    mut check: impl FnMut(&A, Time, Time) -> Result<Duration, RelationError<A>>,
) -> Result<(Duration, usize), RelationError<A>> {
    if lrest.len() != rrest.len() {
        return Err(RelationError::CardinalityMismatch {
            class: None,
            left: lrest.len(),
            right: rrest.len(),
        });
    }
    // Group by identical action value, preserving time order.
    let mut groups: Vec<(&A, Vec<usize>, Vec<usize>)> = Vec::new();
    for &i in lrest {
        let (a, _) = left.get(i).expect("index in range");
        match groups.iter_mut().find(|(g, _, _)| *g == a) {
            Some((_, lv, _)) => lv.push(i),
            None => groups.push((a, vec![i], Vec::new())),
        }
    }
    for &j in rrest {
        let (a, _) = right.get(j).expect("index in range");
        match groups.iter_mut().find(|(g, _, _)| *g == a) {
            Some((_, _, rv)) => rv.push(j),
            None => {
                return Err(RelationError::ActionMismatch {
                    class: None,
                    position: j,
                    left: a.clone(),
                    right: a.clone(),
                })
            }
        }
    }
    let mut max_dev = Duration::ZERO;
    let mut matched = 0usize;
    for (a, lv, rv) in groups {
        if lv.len() != rv.len() {
            return Err(RelationError::CardinalityMismatch {
                class: None,
                left: lv.len(),
                right: rv.len(),
            });
        }
        for (&i, &j) in lv.iter().zip(rv.iter()) {
            let (_, lt) = left.get(i).expect("index in range");
            let (_, rt) = right.get(j).expect("index in range");
            max_dev = max_dev.max(check(a, lt, rt)?);
            matched += 1;
        }
    }
    Ok((max_dev, matched))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    type Tr = TimedTrace<&'static str>;

    fn per_node() -> ClassMap<&'static str> {
        // Actions "aX" belong to node 0, "bX" to node 1.
        ClassMap::by(|a: &&str| match a.chars().next() {
            Some('a') => Some(0),
            Some('b') => Some(1),
            _ => None,
        })
    }

    #[test]
    fn identical_traces_are_eps_equivalent_at_zero() {
        let tr = Tr::from_pairs(vec![("a1", t(0)), ("b1", t(1)), ("a2", t(2))]);
        let w = eps_equivalent(&tr, &tr, Duration::ZERO, &per_node()).unwrap();
        assert_eq!(w.max_deviation, Duration::ZERO);
        assert_eq!(w.matched, 3);
    }

    #[test]
    fn cross_class_reordering_is_allowed() {
        // Node-a and node-b actions swap global order but keep per-class order.
        let left = Tr::from_pairs(vec![("a1", t(10)), ("b1", t(11))]);
        let right = Tr::from_pairs(vec![("b1", t(10)), ("a1", t(11))]);
        let w = eps_equivalent(&left, &right, ms(1), &per_node()).unwrap();
        assert_eq!(w.max_deviation, ms(1));
    }

    #[test]
    fn within_class_reordering_is_rejected() {
        let left = Tr::from_pairs(vec![("a1", t(10)), ("a2", t(11))]);
        let right = Tr::from_pairs(vec![("a2", t(10)), ("a1", t(11))]);
        let err = eps_equivalent(&left, &right, ms(5), &per_node()).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ActionMismatch { class: Some(0), .. }
        ));
    }

    #[test]
    fn eps_bound_is_tight() {
        let left = Tr::from_pairs(vec![("a1", t(10))]);
        let right = Tr::from_pairs(vec![("a1", t(13))]);
        assert!(eps_equivalent(&left, &right, ms(3), &per_node()).is_ok());
        let err = eps_equivalent(&left, &right, ms(2), &per_node()).unwrap_err();
        assert!(matches!(err, RelationError::TimeBound { .. }));
    }

    #[test]
    fn cardinality_mismatch_detected() {
        let left = Tr::from_pairs(vec![("a1", t(10)), ("a2", t(11))]);
        let right = Tr::from_pairs(vec![("a1", t(10))]);
        let err = eps_equivalent(&left, &right, ms(5), &per_node()).unwrap_err();
        assert!(matches!(
            err,
            RelationError::CardinalityMismatch {
                class: Some(0),
                left: 2,
                right: 1
            }
        ));
    }

    #[test]
    fn unclassified_actions_match_greedily() {
        let classes: ClassMap<&'static str> = ClassMap::by(|_| None);
        let left = Tr::from_pairs(vec![("x", t(0)), ("x", t(10))]);
        let right = Tr::from_pairs(vec![("x", t(1)), ("x", t(9))]);
        let w = eps_equivalent(&left, &right, ms(1), &classes).unwrap();
        assert_eq!(w.max_deviation, ms(1));
    }

    #[test]
    fn delta_shift_forward_within_bound() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(5))]);
        let right = Tr::from_pairs(vec![("a1", t(7))]);
        let w = delta_shifted(&left, &right, ms(2), &classes).unwrap();
        assert_eq!(w.max_deviation, ms(2));
    }

    #[test]
    fn delta_shift_backward_rejected() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(5))]);
        let right = Tr::from_pairs(vec![("a1", t(4))]);
        let err = delta_shifted(&left, &right, ms(2), &classes).unwrap_err();
        assert!(matches!(err, RelationError::IllegalShift { .. }));
    }

    #[test]
    fn delta_shift_beyond_bound_rejected() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(5))]);
        let right = Tr::from_pairs(vec![("a1", t(8))]);
        let err = delta_shifted(&left, &right, ms(2), &classes).unwrap_err();
        assert!(matches!(err, RelationError::TimeBound { .. }));
    }

    #[test]
    fn delta_unclassified_must_keep_exact_time() {
        let classes = per_node();
        let left = Tr::from_pairs(vec![("x", t(5)), ("a1", t(6))]);
        let right = Tr::from_pairs(vec![("x", t(5)), ("a1", t(6))]);
        assert!(delta_shifted(&left, &right, ms(0), &classes).is_ok());

        let moved = Tr::from_pairs(vec![("x", t(6)), ("a1", t(6))]);
        let err = delta_shifted(&left, &moved, ms(2), &classes).unwrap_err();
        assert!(matches!(err, RelationError::IllegalShift { .. }));
    }

    #[test]
    fn delta_shift_lets_outputs_pass_inputs() {
        // The shifted output overtakes a later unclassified input — allowed,
        // because mixed pairs carry no order constraint.
        let classes = per_node();
        let left = Tr::from_pairs(vec![("a1", t(5)), ("x", t(6))]);
        let right = Tr::from_pairs(vec![("x", t(6)), ("a1", t(7))]);
        let w = delta_shifted(&left, &right, ms(2), &classes).unwrap();
        assert_eq!(w.max_deviation, ms(2));
    }

    #[test]
    fn error_display_is_informative() {
        let err: RelationError<&'static str> = RelationError::TimeBound {
            action: "a1",
            left_time: t(1),
            right_time: t(5),
            bound: ms(2),
        };
        let msg = err.to_string();
        assert!(msg.contains("a1"));
        assert!(msg.contains("2ms"));
    }
}
