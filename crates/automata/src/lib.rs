//! Timed automaton and clock automaton models for partially synchronized
//! clocks.
//!
//! This crate implements Sections 2 and 3 of Chaudhuri, Gawlick and Lynch,
//! *Designing Algorithms for Distributed Systems with Partially Synchronized
//! Clocks* (PODC 1993):
//!
//! * [`TimedComponent`] — the **timed automaton** model (Definition 2.1,
//!   axioms S1–S5). A timed automaton has a `now` state component, a
//!   time-passage action `ν`, and classified input/output/internal actions.
//!   In this crate the `now` component is owned by the execution engine and
//!   handed to the component on every call, which makes axioms S1/S2
//!   (actions do not change `now`) and S3 (`ν` strictly increases `now`)
//!   hold *by construction*; S4/S5 (time-passage composability/density) are
//!   discharged by the deadline discipline described on the trait.
//! * [`ClockComponent`] — the **clock automaton** model (Definition 2.3,
//!   axioms C1–C4) with a `clock` state component. The trait cannot observe
//!   `now` at all, which makes every implementation *ε-time independent*
//!   (Definition 2.6) by construction.
//! * [`ClockPredicate`] — clock predicates, with [`ClockPredicate::skew`]
//!   constructing the paper's `C_ε` (`|now − clock| ≤ ε`, Definition 2.5).
//! * [`TimedTrace`], [`Execution`] — timed sequences, timed schedules and
//!   timed traces of executions (Section 2.1), including admissibility
//!   bookkeeping and projections.
//! * [`relations`] — the equivalences `=_{ε,κ}` (Definition 2.8) and the
//!   shift preorder `≤_{δ,K}` (Definition 2.9) as executable matchers.
//! * [`problem`] — problems `P` as timed-trace predicates, the
//!   generalizations `P_ε` (Definition 2.11) and `P^δ` (Definition 2.12),
//!   and the `solve` relation (Definition 2.10) as a conformance check over
//!   recorded executions.
//!
//! The crate is purely *model*: executing compositions of components lives
//! in `psync-executor`, network plumbing in `psync-net`, and the paper's two
//! simulations in `psync-core`.
//!
//! # Example
//!
//! ```
//! use psync_automata::toys::{Beeper, BeepAction};
//! use psync_automata::{ActionKind, TimedComponent};
//! use psync_time::{Duration, Time};
//!
//! // A timed automaton that beeps every 5 ms.
//! let beeper = Beeper::new(Duration::from_millis(5));
//! let s0 = beeper.initial();
//! // Nothing is enabled before the period elapses…
//! assert!(beeper.enabled(&s0, Time::ZERO).is_empty());
//! // …and ν may not pass the 5 ms deadline.
//! assert_eq!(beeper.deadline(&s0, Time::ZERO), Some(Time::ZERO + Duration::from_millis(5)));
//! assert_eq!(beeper.classify(&BeepAction::Beep { src: 0, seq: 0 }), Some(ActionKind::Output));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod arena;
mod clock;
mod component;
mod execution;
mod pair;
pub mod problem;
mod relabel;
pub mod relations;
pub mod toys;
mod trace;

pub use action::{Action, ActionKind};
pub use arena::{ArenaSnapshot, EventArena};
pub use clock::{
    ClockComponent, ClockComponentBox, ClockComposite, ClockPredicate, CompositeState, HiddenClock,
};
pub use component::{ComponentBox, DynState, Hidden, TimedComponent, WakeHint};
pub use execution::{Execution, TimedEvent};
pub use pair::{Pair, PairState};
pub use problem::{Problem, Verdict};
pub use relabel::Relabel;
pub use trace::{reorder_by_time, TimedTrace};
