//! The renaming operator (Section 2.1).
//!
//! The paper renames actions to embed an automaton into a larger system's
//! alphabet — most prominently `SENDMSG → ESENDMSG` when moving from the
//! timed to the clock interface (Section 4.1). [`Relabel`] is the
//! executable form: it wraps a component whose action type is `A` and
//! presents it with action type `B`, given an embedding `A → B` and a
//! partial projection `B → Option<A>`.

use psync_time::Time;

use crate::{Action, ActionKind, TimedComponent};

/// A component over action type `A`, re-labelled to participate in a
/// system over action type `B`.
///
/// `embed` must be injective and `project` its partial inverse:
/// `project(embed(a)) == Some(a)` for every action of the inner
/// component, and `project(b) == None` for every `b` outside the image.
/// Violations are caught by a debug assertion on each enabled action.
///
/// # Examples
///
/// Embedding a toy into a `SysAction`-shaped alphabet (what `psync-net`
/// systems speak):
///
/// ```
/// use psync_automata::toys::{BeepAction, Beeper};
/// use psync_automata::{Relabel, TimedComponent};
/// use psync_time::{Duration, Time};
///
/// #[derive(Debug, Clone, PartialEq, Eq, Hash)]
/// enum Sys { Beep(BeepAction), Other }
/// impl psync_automata::Action for Sys {
///     fn name(&self) -> &'static str {
///         match self { Sys::Beep(b) => b.name(), Sys::Other => "OTHER" }
///     }
/// }
///
/// let lifted = Relabel::new(
///     Beeper::new(Duration::from_millis(5)),
///     |a: &BeepAction| Sys::Beep(a.clone()),
///     |b: &Sys| match b { Sys::Beep(a) => Some(a.clone()), Sys::Other => None },
/// );
/// let s0 = lifted.initial();
/// assert_eq!(lifted.deadline(&s0, Time::ZERO), Some(Time::ZERO + Duration::from_millis(5)));
/// assert_eq!(lifted.classify(&Sys::Other), None);
/// ```
pub struct Relabel<C, E, P> {
    inner: C,
    embed: E,
    project: P,
}

impl<C, E, P> Relabel<C, E, P> {
    /// Wraps `inner` with the given embedding and projection.
    pub fn new(inner: C, embed: E, project: P) -> Self {
        Relabel {
            inner,
            embed,
            project,
        }
    }
}

impl<C, E, P, B> TimedComponent for Relabel<C, E, P>
where
    C: TimedComponent,
    B: Action,
    E: Fn(&C::Action) -> B + 'static,
    P: Fn(&B) -> Option<C::Action> + 'static,
{
    type Action = B;
    type State = C::State;

    fn name(&self) -> String {
        format!("relabel({})", self.inner.name())
    }

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn classify(&self, b: &B) -> Option<ActionKind> {
        self.inner.classify(&(self.project)(b)?)
    }

    fn step(&self, s: &Self::State, b: &B, now: Time) -> Option<Self::State> {
        self.inner.step(s, &(self.project)(b)?, now)
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<B> {
        self.inner
            .enabled(s, now)
            .into_iter()
            .map(|a| {
                let b = (self.embed)(&a);
                debug_assert_eq!(
                    (self.project)(&b).as_ref(),
                    Some(&a),
                    "Relabel: project is not a partial inverse of embed"
                );
                b
            })
            .collect()
    }

    fn deadline(&self, s: &Self::State, now: Time) -> Option<Time> {
        self.inner.deadline(s, now)
    }

    fn advance(&self, s: &Self::State, now: Time, target: Time) -> Option<Self::State> {
        self.inner.advance(s, now, target)
    }

    fn wake_hint(&self, s: &Self::State, now: Time) -> crate::WakeHint {
        // Relabelling touches the alphabet, never the timing.
        self.inner.wake_hint(s, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::{BeepAction, Beeper};
    use psync_time::Duration;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Wrapped {
        Beep(BeepAction),
        Unrelated,
    }

    impl Action for Wrapped {
        fn name(&self) -> &'static str {
            match self {
                Wrapped::Beep(b) => b.name(),
                Wrapped::Unrelated => "UNRELATED",
            }
        }
    }

    fn lifted() -> impl TimedComponent<Action = Wrapped, State = crate::toys::BeeperState> {
        Relabel::new(
            Beeper::new(Duration::from_millis(5)),
            |a: &BeepAction| Wrapped::Beep(a.clone()),
            |b: &Wrapped| match b {
                Wrapped::Beep(a) => Some(a.clone()),
                Wrapped::Unrelated => None,
            },
        )
    }

    #[test]
    fn behaviour_is_preserved_under_renaming() {
        let l = lifted();
        let s0 = l.initial();
        let at = Time::ZERO + Duration::from_millis(5);
        assert_eq!(l.deadline(&s0, Time::ZERO), Some(at));
        let en = l.enabled(&s0, at);
        assert_eq!(en, vec![Wrapped::Beep(BeepAction::Beep { src: 0, seq: 0 })]);
        let s1 = l.step(&s0, &en[0], at).unwrap();
        assert_eq!(l.deadline(&s1, at), Some(at + Duration::from_millis(5)));
    }

    #[test]
    fn actions_outside_the_image_are_not_in_signature() {
        let l = lifted();
        assert_eq!(l.classify(&Wrapped::Unrelated), None);
        assert!(l
            .step(&l.initial(), &Wrapped::Unrelated, Time::ZERO)
            .is_none());
    }

    #[test]
    fn classification_travels_through() {
        let l = lifted();
        assert_eq!(
            l.classify(&Wrapped::Beep(BeepAction::Beep { src: 0, seq: 0 })),
            Some(ActionKind::Output)
        );
    }
}
