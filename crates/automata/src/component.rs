//! The timed automaton model (Definition 2.1).

use core::any::Any;
use core::fmt::Debug;

use psync_time::Time;

use crate::{Action, ActionKind};

/// A timed automaton (Definition 2.1 of the paper), presented as a
/// *component*: the `now` state component is owned by the execution engine
/// and passed to every call, and the time-passage action `ν` is the
/// dedicated [`advance`](TimedComponent::advance) operation.
///
/// # Relation to the paper's axioms
///
/// * **S1** (`now = 0` in start states) — the engine starts every run at
///   [`Time::ZERO`].
/// * **S2** (non-`ν` actions leave `now` unchanged) — [`step`] cannot touch
///   `now`; it only transforms the `tbasic` part of the state.
/// * **S3** (`ν` strictly increases `now`) — the engine only calls
///   [`advance`] with `target > now`.
/// * **S4/S5** (transitivity and density of time passage) — guaranteed when
///   the implementation obeys the *deadline discipline*: `advance(s, now,
///   target)` must succeed exactly when `target ≤ deadline(s, now)` and the
///   resulting state must again allow advancing to any smaller intermediate
///   time first. All library components satisfy this because their
///   time-dependent state stores *absolute* times; `psync-verify` provides
///   randomized probes for user components.
///
/// Input actions must be *input-enabled*: [`step`] on an [`ActionKind::Input`]
/// action in the component's signature must never return `None`.
///
/// [`step`]: TimedComponent::step
/// [`advance`]: TimedComponent::advance
///
/// # Examples
///
/// See [`crate::toys::Beeper`] for a complete small implementation.
pub trait TimedComponent: 'static {
    /// The action alphabet of the system this component is part of.
    type Action: Action;
    /// The `tbasic` part of the component's state (everything except `now`).
    type State: Clone + Debug + 'static;

    /// A human-readable name for diagnostics.
    fn name(&self) -> String;

    /// The start state (`start(A)`; the engine supplies `now = 0`).
    fn initial(&self) -> Self::State;

    /// Classifies `a` in this component's signature, or `None` if `a` is not
    /// an action of this component.
    fn classify(&self, a: &Self::Action) -> Option<ActionKind>;

    /// The [`Action::name`]s of every action in this component's signature,
    /// or `None` when the signature cannot be enumerated statically.
    ///
    /// This is a *routing hint*, not part of the behaviour: the execution
    /// engine uses it to consult only interested components when an action
    /// fires instead of broadcasting to everyone. The contract is
    /// one-sided — whenever `classify(a)` is `Some`, `a.name()` must appear
    /// in the returned list — but the list may safely over-approximate
    /// (contain names the component never actually takes). Returning `None`
    /// (the default) routes every action to the component, which is always
    /// correct, merely slower.
    fn action_names(&self) -> Option<Vec<&'static str>> {
        None
    }

    /// Applies the non-time-passage action `a` at time `now`, returning the
    /// successor state, or `None` if `a` is not enabled in `s`.
    ///
    /// For input actions in the signature this must always return `Some`
    /// (input-enabledness); the engine reports a model error otherwise.
    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State>;

    /// The locally controlled (output and internal) actions enabled in `s`
    /// at time `now`.
    ///
    /// Every returned action must satisfy
    /// `classify(a).is_some_and(ActionKind::is_locally_controlled)` and
    /// `step(s, a, now).is_some()`.
    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action>;

    /// The latest absolute time to which `ν` may advance from `(s, now)`, or
    /// `None` when time may pass without bound.
    ///
    /// This encodes the precondition of the component's `ν` transitions —
    /// for example the channel automaton of Figure 1 refuses to let time
    /// pass beyond `t + d₂` for any undelivered message `(m, t)`.
    fn deadline(&self, s: &Self::State, now: Time) -> Option<Time>;

    /// Applies the time-passage action `ν`, advancing from `now` to `target`
    /// (`target > now`), or returns `None` if the advance is forbidden.
    ///
    /// Must succeed whenever `target ≤ deadline(s, now)`. The default
    /// implementation — correct for every component whose state stores
    /// absolute times — leaves the state unchanged when within the deadline.
    fn advance(&self, s: &Self::State, now: Time, target: Time) -> Option<Self::State> {
        debug_assert!(target > now, "ν must strictly increase now (axiom S3)");
        match self.deadline(s, now) {
            Some(d) if target > d => None,
            _ => Some(s.clone()),
        }
    }

    /// How far time may pass before this component must be re-examined — the
    /// scheduling hint behind the engine's O(log n) wake-up heap.
    ///
    /// Like [`action_names`](TimedComponent::action_names) this is a *hint*,
    /// not behaviour, but the contract is load-bearing when given:
    ///
    /// * [`WakeHint::At(t)`](WakeHint::At) promises that for every target
    ///   `v` with `now < v < t`, `advance(s, now, v)` succeeds with a state
    ///   behaviourally identical to `s`, and that `enabled`, `deadline` and
    ///   `wake_hint` evaluated at `v` return exactly what they return at
    ///   `now`. (A hint `t ≤ now` makes no promise at all, like `Always`.)
    /// * [`WakeHint::Never`] is the same promise for *every* `v > now`:
    ///   nothing about the component depends on time in its current state.
    /// * [`WakeHint::Always`] (the default) promises nothing — the engine
    ///   re-queries after every time advance, the pre-heap behaviour.
    ///
    /// Components whose time-dependent state stores absolute times (the
    /// library's channels and timers) return the earliest such stored time.
    /// A wrong hint silently desynchronizes the engine's caches, exactly
    /// like a wrong `action_names` list — when in doubt, keep the default.
    fn wake_hint(&self, s: &Self::State, now: Time) -> WakeHint {
        let _ = (s, now);
        WakeHint::Always
    }
}

/// A component's promise about its own time-dependence, returned by
/// [`TimedComponent::wake_hint`] (and, in clock time, by
/// [`ClockComponent::clock_wake`](crate::ClockComponent::clock_wake)).
///
/// See [`TimedComponent::wake_hint`] for the precise contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeHint {
    /// No promise: re-query the component after every time advance.
    Always,
    /// The component is time-independent strictly before this absolute time.
    At(Time),
    /// The component is time-independent in its current state, forever.
    Never,
}

impl WakeHint {
    /// Combines the hints of two composed parts: the composite must wake
    /// when *either* part does, so `Always` dominates, `Never` is the
    /// identity, and two wake times combine to the earlier one.
    #[must_use]
    pub fn earlier(self, other: WakeHint) -> WakeHint {
        match (self, other) {
            (WakeHint::Always, _) | (_, WakeHint::Always) => WakeHint::Always,
            (WakeHint::Never, h) | (h, WakeHint::Never) => h,
            (WakeHint::At(a), WakeHint::At(b)) => WakeHint::At(a.min(b)),
        }
    }

    /// Folds any number of hints with [`WakeHint::earlier`], starting
    /// from the identity `Never` — the composite hint of a component
    /// assembled from many independently-timed parts.
    ///
    /// ```
    /// use psync_automata::WakeHint;
    /// use psync_time::{Duration, Time};
    ///
    /// let a = Time::ZERO + Duration::from_millis(3);
    /// let b = Time::ZERO + Duration::from_millis(7);
    /// assert_eq!(
    ///     WakeHint::earliest([WakeHint::At(b), WakeHint::Never, WakeHint::At(a)]),
    ///     WakeHint::At(a)
    /// );
    /// assert_eq!(WakeHint::earliest([]), WakeHint::Never);
    /// ```
    #[must_use]
    pub fn earliest(hints: impl IntoIterator<Item = WakeHint>) -> WakeHint {
        hints.into_iter().fold(WakeHint::Never, WakeHint::earlier)
    }
}

/// Object-safe view of a [`TimedComponent`] with its state type erased, so
/// heterogeneous components over the same action alphabet can be composed.
pub(crate) trait DynTimed<A: Action> {
    fn initial_dyn(&self) -> DynState;
    fn classify_dyn(&self, a: &A) -> Option<ActionKind>;
    fn action_names_dyn(&self) -> Option<Vec<&'static str>>;
    fn step_dyn(&self, s: &DynState, a: &A, now: Time) -> Option<DynState>;
    fn enabled_dyn(&self, s: &DynState, now: Time) -> Vec<A>;
    fn deadline_dyn(&self, s: &DynState, now: Time) -> Option<Time>;
    fn advance_dyn(&self, s: &DynState, now: Time, target: Time) -> Option<DynState>;
    fn wake_hint_dyn(&self, s: &DynState, now: Time) -> WakeHint;
}

/// A type-erased component state.
///
/// Produced and consumed by [`ComponentBox`]; use
/// [`DynState::downcast_ref`] to inspect the concrete state in tests and
/// diagnostics.
#[derive(Debug)]
pub struct DynState(Box<dyn AnyState>);

impl DynState {
    /// Views the erased state as a concrete `S`, if that is its real type.
    #[must_use]
    pub fn downcast_ref<S: 'static>(&self) -> Option<&S> {
        self.0.as_any().downcast_ref::<S>()
    }

    /// Erases a concrete state value.
    pub(crate) fn of<S: Clone + Debug + 'static>(s: S) -> DynState {
        DynState(Box::new(s))
    }
}

impl Clone for DynState {
    fn clone(&self) -> Self {
        DynState(self.0.clone_box())
    }
}

trait AnyState: Any + Debug {
    fn clone_box(&self) -> Box<dyn AnyState>;
    fn as_any(&self) -> &dyn Any;
}

impl<S: Clone + Debug + 'static> AnyState for S {
    fn clone_box(&self) -> Box<dyn AnyState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct Eraser<C>(C);

impl<A: Action, C: TimedComponent<Action = A>> DynTimed<A> for Eraser<C> {
    fn initial_dyn(&self) -> DynState {
        DynState(Box::new(self.0.initial()))
    }

    fn classify_dyn(&self, a: &A) -> Option<ActionKind> {
        self.0.classify(a)
    }

    fn action_names_dyn(&self) -> Option<Vec<&'static str>> {
        self.0.action_names()
    }

    fn step_dyn(&self, s: &DynState, a: &A, now: Time) -> Option<DynState> {
        let s = expect_state::<C>(s);
        self.0.step(s, a, now).map(|s2| DynState(Box::new(s2)))
    }

    fn enabled_dyn(&self, s: &DynState, now: Time) -> Vec<A> {
        self.0.enabled(expect_state::<C>(s), now)
    }

    fn deadline_dyn(&self, s: &DynState, now: Time) -> Option<Time> {
        self.0.deadline(expect_state::<C>(s), now)
    }

    fn advance_dyn(&self, s: &DynState, now: Time, target: Time) -> Option<DynState> {
        self.0
            .advance(expect_state::<C>(s), now, target)
            .map(|s2| DynState(Box::new(s2)))
    }

    fn wake_hint_dyn(&self, s: &DynState, now: Time) -> WakeHint {
        self.0.wake_hint(expect_state::<C>(s), now)
    }
}

fn expect_state<C: TimedComponent>(s: &DynState) -> &C::State {
    s.downcast_ref::<C::State>()
        .expect("DynState passed to a component of a different type")
}

/// A boxed, type-erased [`TimedComponent`] — the unit from which the
/// execution engine builds compositions (Definition 2.2).
///
/// # Examples
///
/// ```
/// use psync_automata::toys::Beeper;
/// use psync_automata::ComponentBox;
/// use psync_time::{Duration, Time};
///
/// let boxed = ComponentBox::new(Beeper::new(Duration::from_millis(1)));
/// let s0 = boxed.initial();
/// assert_eq!(boxed.deadline(&s0, Time::ZERO), Some(Time::ZERO + Duration::from_millis(1)));
/// ```
pub struct ComponentBox<A: Action> {
    inner: Box<dyn DynTimed<A>>,
    /// The diagnostic name, computed once at boxing time. Names are
    /// immutable, so caching them here lets [`ComponentBox::name`] hand out
    /// `&str` instead of allocating a fresh `String` per call — which
    /// matters to the execution engine, whose error and event paths read
    /// names in hot loops.
    name: std::sync::Arc<str>,
}

impl<A: Action> ComponentBox<A> {
    /// Boxes a concrete component.
    #[must_use]
    pub fn new<C: TimedComponent<Action = A>>(component: C) -> Self {
        let name = std::sync::Arc::from(component.name().as_str());
        ComponentBox {
            inner: Box::new(Eraser(component)),
            name,
        }
    }

    /// The component's diagnostic name (cached at boxing time).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cached diagnostic name as a shareable `Arc<str>` — the
    /// execution engine interns this into every emitted event without
    /// further allocation.
    #[must_use]
    pub fn name_arc(&self) -> std::sync::Arc<str> {
        std::sync::Arc::clone(&self.name)
    }

    /// The component's start state.
    #[must_use]
    pub fn initial(&self) -> DynState {
        self.inner.initial_dyn()
    }

    /// Classifies `a` in the component's signature.
    #[must_use]
    pub fn classify(&self, a: &A) -> Option<ActionKind> {
        self.inner.classify_dyn(a)
    }

    /// The signature's action names, when statically enumerable
    /// (see [`TimedComponent::action_names`]).
    #[must_use]
    pub fn action_names(&self) -> Option<Vec<&'static str>> {
        self.inner.action_names_dyn()
    }

    /// Applies a non-time-passage action.
    #[must_use]
    pub fn step(&self, s: &DynState, a: &A, now: Time) -> Option<DynState> {
        self.inner.step_dyn(s, a, now)
    }

    /// Enabled locally controlled actions.
    #[must_use]
    pub fn enabled(&self, s: &DynState, now: Time) -> Vec<A> {
        self.inner.enabled_dyn(s, now)
    }

    /// Latest time to which `ν` may advance.
    #[must_use]
    pub fn deadline(&self, s: &DynState, now: Time) -> Option<Time> {
        self.inner.deadline_dyn(s, now)
    }

    /// Applies `ν` from `now` to `target`.
    #[must_use]
    pub fn advance(&self, s: &DynState, now: Time, target: Time) -> Option<DynState> {
        self.inner.advance_dyn(s, now, target)
    }

    /// The component's time-dependence promise
    /// (see [`TimedComponent::wake_hint`]).
    #[must_use]
    pub fn wake_hint(&self, s: &DynState, now: Time) -> WakeHint {
        self.inner.wake_hint_dyn(s, now)
    }
}

/// A [`ComponentBox`] is itself a [`TimedComponent`] (over the erased
/// [`DynState`]), so adapters like [`Hidden`] and the clock/MMT
/// transformations compose over already-boxed components.
impl<A: Action> TimedComponent for ComponentBox<A> {
    type Action = A;
    type State = DynState;

    fn name(&self) -> String {
        ComponentBox::name(self).to_string()
    }

    fn initial(&self) -> DynState {
        ComponentBox::initial(self)
    }

    fn classify(&self, a: &A) -> Option<ActionKind> {
        ComponentBox::classify(self, a)
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        ComponentBox::action_names(self)
    }

    fn step(&self, s: &DynState, a: &A, now: Time) -> Option<DynState> {
        ComponentBox::step(self, s, a, now)
    }

    fn enabled(&self, s: &DynState, now: Time) -> Vec<A> {
        ComponentBox::enabled(self, s, now)
    }

    fn deadline(&self, s: &DynState, now: Time) -> Option<Time> {
        ComponentBox::deadline(self, s, now)
    }

    fn advance(&self, s: &DynState, now: Time, target: Time) -> Option<DynState> {
        ComponentBox::advance(self, s, now, target)
    }

    fn wake_hint(&self, s: &DynState, now: Time) -> WakeHint {
        ComponentBox::wake_hint(self, s, now)
    }
}

impl<A: Action> Debug for ComponentBox<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ComponentBox")
            .field("name", &self.name())
            .finish()
    }
}

/// The hiding operator: reclassifies selected output actions as internal
/// (Section 2.1), removing them from the component's visible traces.
///
/// The paper hides the `SENDMSG`/`RECVMSG` edge-interface actions when
/// assembling the distributed system `D_T` (Section 3.3); `psync-net` uses
/// `Hidden` for exactly that purpose.
///
/// # Examples
///
/// ```
/// use psync_automata::toys::{Beeper, BeepAction};
/// use psync_automata::{ActionKind, Hidden, TimedComponent};
/// use psync_time::Duration;
///
/// let silent = Hidden::new(Beeper::new(Duration::from_millis(1)), |a: &BeepAction| {
///     matches!(a, BeepAction::Beep { .. })
/// });
/// assert_eq!(
///     silent.classify(&BeepAction::Beep { src: 0, seq: 0 }),
///     Some(ActionKind::Internal)
/// );
/// ```
pub struct Hidden<C, F> {
    inner: C,
    hide: F,
}

impl<C, F> Hidden<C, F> {
    /// Wraps `inner`, hiding every output action for which `hide` is true.
    pub fn new(inner: C, hide: F) -> Self {
        Hidden { inner, hide }
    }
}

impl<C, F> TimedComponent for Hidden<C, F>
where
    C: TimedComponent,
    F: Fn(&C::Action) -> bool + 'static,
{
    type Action = C::Action;
    type State = C::State;

    fn name(&self) -> String {
        format!("hide({})", self.inner.name())
    }

    fn initial(&self) -> Self::State {
        self.inner.initial()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match self.inner.classify(a) {
            Some(ActionKind::Output) if (self.hide)(a) => Some(ActionKind::Internal),
            other => other,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        // Hiding reclassifies actions; it never changes signature
        // membership, so the inner hint stays exact.
        self.inner.action_names()
    }

    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State> {
        self.inner.step(s, a, now)
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        self.inner.enabled(s, now)
    }

    fn deadline(&self, s: &Self::State, now: Time) -> Option<Time> {
        self.inner.deadline(s, now)
    }

    fn advance(&self, s: &Self::State, now: Time, target: Time) -> Option<Self::State> {
        self.inner.advance(s, now, target)
    }

    fn wake_hint(&self, s: &Self::State, now: Time) -> WakeHint {
        // Hiding never changes timing behaviour, only visibility.
        self.inner.wake_hint(s, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toys::{BeepAction, Beeper};
    use psync_time::Duration;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn component_box_round_trips_behaviour() {
        let boxed = ComponentBox::new(Beeper::new(ms(5)));
        let s0 = boxed.initial();
        assert!(boxed.enabled(&s0, Time::ZERO).is_empty());
        assert_eq!(boxed.deadline(&s0, Time::ZERO), Some(Time::ZERO + ms(5)));

        let at = Time::ZERO + ms(5);
        let s1 = boxed.advance(&s0, Time::ZERO, at).expect("within deadline");
        let beeps = boxed.enabled(&s1, at);
        assert_eq!(beeps, vec![BeepAction::Beep { src: 0, seq: 0 }]);
        let s2 = boxed.step(&s1, &beeps[0], at).expect("enabled");
        assert_eq!(boxed.deadline(&s2, at), Some(at + ms(5)));
    }

    #[test]
    fn advance_past_deadline_is_refused() {
        let boxed = ComponentBox::new(Beeper::new(ms(5)));
        let s0 = boxed.initial();
        assert!(boxed.advance(&s0, Time::ZERO, Time::ZERO + ms(6)).is_none());
    }

    #[test]
    fn dyn_state_downcast() {
        let boxed = ComponentBox::new(Beeper::new(ms(5)));
        let s0 = boxed.initial();
        assert!(s0.downcast_ref::<crate::toys::BeeperState>().is_some());
        assert!(s0.downcast_ref::<u32>().is_none());
    }

    #[test]
    fn hidden_reclassifies_only_matching_outputs() {
        let h = Hidden::new(
            Beeper::new(ms(1)),
            |a: &BeepAction| matches!(a, BeepAction::Beep { seq, .. } if seq % 2 == 0),
        );
        assert_eq!(
            h.classify(&BeepAction::Beep { src: 0, seq: 0 }),
            Some(ActionKind::Internal)
        );
        assert_eq!(
            h.classify(&BeepAction::Beep { src: 0, seq: 1 }),
            Some(ActionKind::Output)
        );
    }

    #[test]
    fn hidden_preserves_dynamics() {
        let plain = Beeper::new(ms(2));
        let hidden = Hidden::new(Beeper::new(ms(2)), |_: &BeepAction| true);
        let (s0p, s0h) = (plain.initial(), hidden.initial());
        let at = Time::ZERO + ms(2);
        assert_eq!(
            plain.deadline(&s0p, Time::ZERO),
            hidden.deadline(&s0h, Time::ZERO)
        );
        assert_eq!(plain.enabled(&s0p, at), hidden.enabled(&s0h, at));
    }
}
