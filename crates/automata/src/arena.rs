//! Arena storage for event logs: flat [`TimedEvent`] records plus an
//! interned node-name table, snapshotted by reference count.
//!
//! The execution engine appends every event of a run into one
//! [`EventArena`]; checkpoints, observers and recorded [`Execution`]s all
//! view the *same* flat storage through [`ArenaSnapshot`]s — an `Arc` to
//! the arena plus a prefix length, so taking a snapshot is O(1) and two
//! snapshots of the same run share every byte of the common prefix. The
//! engine copy-on-writes (`Arc::make_mut`) only when it appends while an
//! older snapshot is still alive, which freezes that snapshot's arena
//! forever — exactly the sharing discipline the previous `Arc<Vec<_>>`
//! log used, now with the name table and prefix views riding along.
//!
//! Events are identified by their **arena index** (position in the flat
//! `Vec`). Observer hooks report the index of each appended event, so a
//! streaming monitor can refer back into `run.execution.events()[idx]`
//! without copying anything.
//!
//! [`Execution`]: crate::Execution

use core::fmt;
use std::sync::Arc;

use crate::TimedEvent;

/// Flat, append-only storage for one run's events plus the interned
/// node-name table shared into them.
///
/// The arena itself is plain owned data; sharing happens through
/// [`ArenaSnapshot`] (an `Arc` to the arena plus a prefix length):
/// whoever appends while an older snapshot is alive copy-on-writes,
/// freezing that snapshot's arena forever.
#[derive(Debug, Clone)]
pub struct EventArena<A> {
    events: Vec<TimedEvent<A>>,
    /// Interned clock-node names, registered once at engine build time;
    /// every event's `node` field is a clone of one of these `Arc`s (or
    /// `None` for plain timed components).
    names: Vec<Arc<str>>,
}

impl<A> Default for EventArena<A> {
    fn default() -> Self {
        EventArena::new()
    }
}

impl<A> EventArena<A> {
    /// An empty arena with no interned names.
    #[must_use]
    pub fn new() -> Self {
        EventArena {
            events: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Wraps an already-recorded event sequence (no names interned).
    #[must_use]
    pub fn from_events(events: Vec<TimedEvent<A>>) -> Self {
        EventArena {
            events,
            names: Vec::new(),
        }
    }

    /// Registers a node name in the intern table and returns its index.
    /// Idempotent by content: re-registering an equal name returns the
    /// existing index. Intended for build time (it scans the table), not
    /// the per-event hot path — events share the returned `Arc` directly.
    pub fn intern(&mut self, name: &Arc<str>) -> usize {
        if let Some(i) = self.names.iter().position(|n| **n == **name) {
            return i;
        }
        self.names.push(Arc::clone(name));
        self.names.len() - 1
    }

    /// Appends an event and returns its arena index.
    pub fn push(&mut self, event: TimedEvent<A>) -> usize {
        self.events.push(event);
        self.events.len() - 1
    }

    /// The recorded events, in append order.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent<A>] {
        &self.events
    }

    /// The interned node names, in registration order.
    #[must_use]
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// An O(1), immutable view of the first `len` events of a shared
/// [`EventArena`] — the unit of sharing between the engine's live log,
/// checkpoints, and recorded executions.
///
/// Cloning a snapshot clones an `Arc` (and a length), never events.
/// [`ArenaSnapshot::prefix`] produces shorter views of the same storage
/// without copying, which is what lets shrink probes and prefix replays
/// hold many cuts of one run for the price of one.
pub struct ArenaSnapshot<A> {
    arena: Arc<EventArena<A>>,
    len: usize,
}

impl<A> ArenaSnapshot<A> {
    /// Snapshots the arena at its current full length.
    #[must_use]
    pub fn full(arena: Arc<EventArena<A>>) -> Self {
        let len = arena.len();
        ArenaSnapshot { arena, len }
    }

    /// The events in view, in order.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent<A>] {
        &self.arena.events()[..self.len]
    }

    /// The underlying arena's interned node names.
    #[must_use]
    pub fn names(&self) -> &[Arc<str>] {
        self.arena.names()
    }

    /// Number of events in view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A view of the first `n` events of the same storage — O(1), no copy.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds this snapshot's length.
    #[must_use]
    pub fn prefix(&self, n: usize) -> ArenaSnapshot<A> {
        assert!(
            n <= self.len,
            "prefix of {n} events from a {}-event snapshot",
            self.len
        );
        ArenaSnapshot {
            arena: Arc::clone(&self.arena),
            len: n,
        }
    }

    /// `true` when the view covers the whole underlying arena.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.arena.len()
    }

    /// The shared arena, re-ownable: when the view is full this is a plain
    /// `Arc` clone; a proper prefix materializes a truncated copy (the
    /// rare restore-into-shorter-prefix path).
    #[must_use]
    pub fn to_arena(&self) -> Arc<EventArena<A>>
    where
        A: Clone,
    {
        if self.is_full() {
            Arc::clone(&self.arena)
        } else {
            Arc::new(EventArena {
                events: self.events().to_vec(),
                names: self.arena.names().to_vec(),
            })
        }
    }
}

impl<A> Default for ArenaSnapshot<A> {
    /// An empty view of an empty arena.
    fn default() -> Self {
        ArenaSnapshot::full(Arc::new(EventArena::new()))
    }
}

// Manual impls: a snapshot is shareable/comparable regardless of whether
// `A` is (derives would add `A: Clone`/`A: PartialEq` bounds to the Arc
// clone, which needs neither).
impl<A> Clone for ArenaSnapshot<A> {
    fn clone(&self) -> Self {
        ArenaSnapshot {
            arena: Arc::clone(&self.arena),
            len: self.len,
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for ArenaSnapshot<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaSnapshot")
            .field("len", &self.len)
            .field("events", &self.events())
            .finish()
    }
}

/// Equality is by event content: two snapshots of different arenas (or
/// different prefix lengths) are equal iff they view equal event
/// sequences.
impl<A: PartialEq> PartialEq for ArenaSnapshot<A> {
    fn eq(&self, other: &Self) -> bool {
        self.events() == other.events()
    }
}

impl<A: Eq> Eq for ArenaSnapshot<A> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActionKind;
    use psync_time::{Duration, Time};

    fn ev(n: i64) -> TimedEvent<u32> {
        TimedEvent {
            action: n as u32,
            kind: ActionKind::Internal,
            now: Time::ZERO + Duration::from_millis(n),
            clock: None,
            node: None,
        }
    }

    #[test]
    fn intern_is_idempotent_by_content() {
        let mut arena: EventArena<u32> = EventArena::new();
        let a: Arc<str> = Arc::from("node-a");
        let a2: Arc<str> = Arc::from("node-a");
        let b: Arc<str> = Arc::from("node-b");
        assert_eq!(arena.intern(&a), 0);
        assert_eq!(arena.intern(&b), 1);
        assert_eq!(arena.intern(&a2), 0);
        assert_eq!(arena.names().len(), 2);
    }

    #[test]
    fn snapshots_share_storage_and_prefix_in_o1() {
        let mut arena = EventArena::new();
        for i in 0..4 {
            assert_eq!(arena.push(ev(i)), i as usize);
        }
        let snap = ArenaSnapshot::full(Arc::new(arena));
        assert_eq!(snap.len(), 4);
        assert!(snap.is_full());
        let p = snap.prefix(2);
        assert_eq!(p.events(), &snap.events()[..2]);
        assert!(!p.is_full());
        // The prefix clones no events: same arena allocation.
        assert!(Arc::ptr_eq(&snap.arena, &p.arena));
    }

    #[test]
    fn prefix_to_arena_materializes_a_truncated_copy() {
        let mut arena = EventArena::new();
        arena.push(ev(1));
        arena.push(ev(2));
        let snap = ArenaSnapshot::full(Arc::new(arena));
        let owned = snap.prefix(1).to_arena();
        assert_eq!(owned.len(), 1);
        assert_eq!(owned.events(), &snap.events()[..1]);
    }

    #[test]
    fn equality_is_by_content_not_identity() {
        let mut a = EventArena::new();
        a.push(ev(1));
        let mut b = EventArena::new();
        b.push(ev(1));
        b.push(ev(2));
        let sa = ArenaSnapshot::full(Arc::new(a));
        let sb = ArenaSnapshot::full(Arc::new(b));
        assert_ne!(sa, sb);
        assert_eq!(sa, sb.prefix(1));
    }

    #[test]
    #[should_panic(expected = "prefix of 3")]
    fn oversized_prefix_is_rejected() {
        let mut arena = EventArena::new();
        arena.push(ev(1));
        let snap = ArenaSnapshot::full(Arc::new(arena));
        let _ = snap.prefix(3);
    }
}
