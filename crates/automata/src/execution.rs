//! Recorded executions and their projections (Section 2.1).

use core::fmt;
use std::sync::Arc;

use psync_time::Time;

use crate::{Action, ActionKind, ArenaSnapshot, EventArena, TimedTrace};

/// One non-time-passage action occurrence in a recorded execution.
///
/// `now` is the real time at which the action occurred (the `now` component
/// of the pre-state, matching the paper's `t_i = s_{i−1}.now`). For actions
/// performed by a node of a *clock-model* system, `clock` carries that
/// node's clock reading at the same moment (`c_i = s_{i−1}.clock`,
/// Section 4.3); it is `None` for actions of plain timed components such as
/// channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent<A> {
    /// The action that occurred.
    pub action: A,
    /// The action's classification in the composed system's signature
    /// (after hiding).
    pub kind: ActionKind,
    /// Real time of occurrence.
    pub now: Time,
    /// Clock reading of the performing node, when one exists.
    pub clock: Option<Time>,
    /// Name of the performing clock node, when one exists (`None` for
    /// actions of plain timed components such as channels).
    ///
    /// Stored as `Arc<str>` so the execution engine can share one interned
    /// copy of each node name across every event it emits instead of
    /// cloning a `String` per event; equality is by string content, so two
    /// executions compare equal regardless of how the names were produced.
    pub node: Option<Arc<str>>,
}

/// A recorded execution of a composed system: the sequence of
/// non-time-passage events together with how far time advanced.
///
/// Time-passage steps are not stored individually — by axioms S4/S5 they
/// can always be merged/split, so only the event times matter. The paper's
/// projections are provided as methods:
///
/// * [`Execution::t_sched`] — the timed schedule (all non-`ν` actions).
/// * [`Execution::t_trace`] — the timed trace (visible actions only).
/// * [`Execution::clock_sched`] — the per-node *clock-time* schedule used
///   to build `γ'_α` in Definition 4.2.
///
/// An execution is *admissible* when time grows without bound; recorded
/// executions are necessarily finite, so [`Execution::ltime`] reports how
/// far the run got and callers decide whether that horizon suffices.
///
/// Storage is an [`ArenaSnapshot`]: an engine snapshots its (growing)
/// arena-backed event log into an `Execution` on every `finish`, and
/// incremental driving via `run_until` produces many snapshots of the same
/// prefix — each O(1) and sharing the underlying flat storage. The engine
/// copy-on-writes only when it appends past a still-live snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution<A> {
    log: ArenaSnapshot<A>,
    ltime: Time,
}

impl<A: Action> Execution<A> {
    /// Creates an execution record from events and the final time.
    ///
    /// # Panics
    ///
    /// Panics if event times are not non-decreasing or exceed `ltime`.
    #[must_use]
    pub fn new(events: Vec<TimedEvent<A>>, ltime: Time) -> Self {
        Execution::from_snapshot(
            ArenaSnapshot::full(Arc::new(EventArena::from_events(events))),
            ltime,
        )
    }

    /// Creates an execution record from an already-shared arena view,
    /// without copying events.
    ///
    /// # Panics
    ///
    /// Panics if event times are not non-decreasing or exceed `ltime`.
    #[must_use]
    pub fn from_snapshot(log: ArenaSnapshot<A>, ltime: Time) -> Self {
        let mut prev = Time::ZERO;
        for e in log.events() {
            assert!(
                e.now >= prev,
                "event times must be non-decreasing ({} after {})",
                e.now,
                prev
            );
            prev = e.now;
        }
        assert!(
            prev <= ltime,
            "ltime {ltime} precedes the last event at {prev}"
        );
        Execution { log, ltime }
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TimedEvent<A>] {
        self.log.events()
    }

    /// The underlying arena view — prefix cuts and re-snapshots are O(1)
    /// through it.
    #[must_use]
    pub fn snapshot(&self) -> &ArenaSnapshot<A> {
        &self.log
    }

    /// The supremum of `now` over the execution (`α.ltime`).
    #[must_use]
    pub fn ltime(&self) -> Time {
        self.ltime
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// `true` when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The first `n` events as an execution, sharing storage with `self`
    /// (O(1), no event copies). The prefix's `ltime` is its last event's
    /// time (or zero when `n == 0`) — the shortest horizon the cut is
    /// valid for, matching Lemma 2.1's prefix-paste cut *at* an event.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the number of recorded events.
    #[must_use]
    pub fn prefix(&self, n: usize) -> Execution<A> {
        let log = self.log.prefix(n);
        let ltime = log.events().last().map_or(Time::ZERO, |e| e.now);
        Execution { log, ltime }
    }

    /// The timed schedule `t-sched(α)`: every non-time-passage action with
    /// its real time of occurrence.
    #[must_use]
    pub fn t_sched(&self) -> TimedTrace<A> {
        self.events()
            .iter()
            .map(|e| (e.action.clone(), e.now))
            .collect()
    }

    /// The timed trace `t-trace(α)`: the visible (input and output) actions
    /// with their real times.
    #[must_use]
    pub fn t_trace(&self) -> TimedTrace<A> {
        self.events()
            .iter()
            .filter(|e| e.kind.is_visible())
            .map(|e| (e.action.clone(), e.now))
            .collect()
    }

    /// The raw `(action, clock-time)` pairs of all events that carry a
    /// clock reading, in execution order — the sequence `γ'_α` of
    /// Definition 4.2 before reordering. Clock times from different nodes
    /// need not be monotone, so this returns a plain `Vec`; feed it to
    /// [`crate::reorder_by_time`] to obtain `γ_α`.
    #[must_use]
    pub fn clock_sched(&self) -> Vec<(A, Time)> {
        self.events()
            .iter()
            .filter_map(|e| e.clock.map(|c| (e.action.clone(), c)))
            .collect()
    }

    /// Projects onto events satisfying `keep`, retaining times.
    #[must_use]
    pub fn project(&self, mut keep: impl FnMut(&TimedEvent<A>) -> bool) -> Execution<A> {
        let kept: Vec<_> = self.events().iter().filter(|e| keep(e)).cloned().collect();
        Execution {
            log: ArenaSnapshot::full(Arc::new(EventArena::from_events(kept))),
            ltime: self.ltime,
        }
    }
}

impl<A: Action> fmt::Display for Execution<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "execution ({} events, ltime {}):",
            self.log.len(),
            self.ltime
        )?;
        for e in self.events() {
            match (e.clock, e.node.as_deref()) {
                (Some(c), Some(n)) => writeln!(
                    f,
                    "  {} [{} clock t={}] {:?} ({:?})",
                    e.now,
                    n,
                    c.elapsed(),
                    e.action,
                    e.kind
                )?,
                (Some(c), None) => writeln!(
                    f,
                    "  {} [clock t={}] {:?} ({:?})",
                    e.now,
                    c.elapsed(),
                    e.action,
                    e.kind
                )?,
                _ => writeln!(f, "  {} {:?} ({:?})", e.now, e.action, e.kind)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Duration;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Act {
        In,
        Out,
        Int,
    }

    impl Action for Act {
        fn name(&self) -> &'static str {
            match self {
                Act::In => "IN",
                Act::Out => "OUT",
                Act::Int => "INT",
            }
        }
    }

    fn at(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn sample() -> Execution<Act> {
        Execution::new(
            vec![
                TimedEvent {
                    action: Act::In,
                    kind: ActionKind::Input,
                    now: at(1),
                    clock: Some(at(2)),
                    node: None,
                },
                TimedEvent {
                    action: Act::Int,
                    kind: ActionKind::Internal,
                    now: at(2),
                    clock: None,
                    node: None,
                },
                TimedEvent {
                    action: Act::Out,
                    kind: ActionKind::Output,
                    now: at(3),
                    clock: Some(at(2)),
                    node: None,
                },
            ],
            at(10),
        )
    }

    #[test]
    fn t_sched_keeps_all_events() {
        let e = sample();
        assert_eq!(e.t_sched().len(), 3);
        assert_eq!(e.ltime(), at(10));
    }

    #[test]
    fn t_trace_drops_internal() {
        let e = sample();
        let tr = e.t_trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.get(0), Some((&Act::In, at(1))));
        assert_eq!(tr.get(1), Some((&Act::Out, at(3))));
    }

    #[test]
    fn clock_sched_keeps_only_clocked_events() {
        let e = sample();
        let cs = e.clock_sched();
        assert_eq!(cs, vec![(Act::In, at(2)), (Act::Out, at(2))]);
    }

    #[test]
    fn project_filters() {
        let e = sample();
        let outs = e.project(|ev| ev.kind == ActionKind::Output);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs.ltime(), at(10));
    }

    #[test]
    fn prefix_shares_storage_and_shrinks_ltime() {
        let e = sample();
        let p = e.prefix(2);
        assert_eq!(p.events(), &e.events()[..2]);
        assert_eq!(p.ltime(), at(2), "prefix ltime is its last event's time");
        assert_eq!(e.prefix(0).ltime(), Time::ZERO);
        assert_eq!(e.prefix(3), e.prefix(3));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_unsorted_events() {
        let _ = Execution::new(
            vec![
                TimedEvent {
                    action: Act::In,
                    kind: ActionKind::Input,
                    now: at(5),
                    clock: None,
                    node: None,
                },
                TimedEvent {
                    action: Act::Out,
                    kind: ActionKind::Output,
                    now: at(4),
                    clock: None,
                    node: None,
                },
            ],
            at(10),
        );
    }

    #[test]
    #[should_panic(expected = "ltime")]
    fn rejects_ltime_before_last_event() {
        let _ = Execution::new(
            vec![TimedEvent {
                action: Act::In,
                kind: ActionKind::Input,
                now: at(5),
                clock: None,
                node: None,
            }],
            at(4),
        );
    }

    #[test]
    fn display_contains_events() {
        let rendered = sample().to_string();
        assert!(rendered.contains("3 events"));
        assert!(rendered.contains("Out"));
    }
}
