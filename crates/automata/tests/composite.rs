//! Tests for `ClockComposite` — the clock-automaton composition of
//! Definition 2.7 as a single component.

use psync_automata::toys::{BeepAction, ClockBeeper};
use psync_automata::{ActionKind, ClockComponent, ClockComponentBox, ClockComposite, HiddenClock};
use psync_time::{Duration, Time};

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn at(n: i64) -> Time {
    Time::ZERO + ms(n)
}

fn two_beepers() -> ClockComposite<BeepAction> {
    ClockComposite::new(
        "pair",
        vec![
            ClockComponentBox::new(ClockBeeper::with_src(ms(5), 0)),
            ClockComponentBox::new(ClockBeeper::with_src(ms(7), 1)),
        ],
    )
}

#[test]
fn composite_unions_enabled_actions() {
    let c = two_beepers();
    let s0 = c.initial();
    assert!(c.enabled(&s0, at(4)).is_empty());
    assert_eq!(
        c.enabled(&s0, at(5)),
        vec![BeepAction::Beep { src: 0, seq: 0 }]
    );
    // At 7 ms (without firing) both are pending… but the deadline would
    // have stopped time at 5 ms; query hypothetically:
    let both = c.enabled(&s0, at(7));
    assert_eq!(both.len(), 2);
}

#[test]
fn composite_deadline_is_min_of_parts() {
    let c = two_beepers();
    let s0 = c.initial();
    assert_eq!(c.clock_deadline(&s0, Time::ZERO), Some(at(5)));
    // Fire the 5 ms beep: deadline moves to the 7 ms part.
    let s1 = c
        .step(&s0, &BeepAction::Beep { src: 0, seq: 0 }, at(5))
        .unwrap();
    assert_eq!(c.clock_deadline(&s1, at(5)), Some(at(7)));
}

#[test]
fn composite_steps_only_touch_owning_parts() {
    let c = two_beepers();
    let s0 = c.initial();
    let s1 = c
        .step(&s0, &BeepAction::Beep { src: 0, seq: 0 }, at(5))
        .unwrap();
    // Part 1 (src 1) untouched: its first beep is still seq 0 at 7 ms.
    let en = c.enabled(&s1, at(7));
    assert_eq!(en, vec![BeepAction::Beep { src: 1, seq: 0 }]);
    // An action of neither part is out of signature.
    assert!(c
        .step(&s0, &BeepAction::Beep { src: 9, seq: 0 }, at(5))
        .is_none());
    assert_eq!(c.classify(&BeepAction::Beep { src: 9, seq: 0 }), None);
}

#[test]
fn composite_advance_moves_every_part() {
    let c = two_beepers();
    let s0 = c.initial();
    let s1 = c.advance(&s0, Time::ZERO, at(5)).expect("within deadline");
    // Advancing beyond the earliest part's deadline is refused.
    assert!(c.advance(&s0, Time::ZERO, at(6)).is_none());
    // After the first beep the composite advances to the next deadline.
    let s2 = c
        .step(&s1, &BeepAction::Beep { src: 0, seq: 0 }, at(5))
        .unwrap();
    assert!(c.advance(&s2, at(5), at(7)).is_some());
}

#[test]
fn composite_classification_prefers_controllers() {
    // A hidden part's output is internal; the composite reports it so.
    let c = ClockComposite::new(
        "mixed",
        vec![ClockComponentBox::new(HiddenClock::new(
            ClockBeeper::with_src(ms(5), 0),
            |_: &BeepAction| true,
        ))],
    );
    assert_eq!(
        c.classify(&BeepAction::Beep { src: 0, seq: 0 }),
        Some(ActionKind::Internal)
    );
}

#[test]
fn composite_exposes_parts() {
    let c = two_beepers();
    assert_eq!(c.parts().len(), 2);
    assert_eq!(ClockComponent::name(&c), "pair");
}
