//! The clock subsystem `C^m_{i,ε,ℓ}` (Section 5.2).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, TimedComponent};
use psync_net::{NodeId, SysAction};
use psync_time::{Duration, Time};

/// Configuration of a [`TickSource`].
///
/// * `eps` — the accuracy bound: every emitted `TICK(c)` satisfies
///   `|c − now| ≤ ε`.
/// * `period` — real time between ticks. Between ticks the node's knowledge
///   of the clock is stale, which is exactly the "might miss seeing a
///   particular clock value" realism of the MMT model (Section 1).
/// * `granularity` — clock readings are multiples of this quantum
///   (`granularity ≤ eps` required so a rounded reading still satisfies
///   `C_ε`; the paper's clocks have "finite granularity").
/// * `offset` — a constant skew applied before quantization, modeling a
///   consistently fast or slow hardware clock
///   (`|offset| + granularity ≤ eps` required).
#[derive(Debug, Clone, Copy)]
pub struct TickConfig {
    /// Accuracy bound `ε`.
    pub eps: Duration,
    /// Real time between ticks.
    pub period: Duration,
    /// Quantum of clock readings.
    pub granularity: Duration,
    /// Constant skew before quantization.
    pub offset: Duration,
}

impl TickConfig {
    /// A perfectly honest tick source: zero offset, 1 ns granularity.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see type docs).
    #[must_use]
    pub fn honest(eps: Duration, period: Duration) -> Self {
        TickConfig {
            eps,
            period,
            granularity: Duration::NANOSECOND,
            offset: Duration::ZERO,
        }
        .validated()
    }

    /// Validates the configuration constraints.
    ///
    /// # Panics
    ///
    /// Panics if any constraint from the type documentation is violated.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(!self.eps.is_negative(), "eps must be non-negative");
        assert!(self.period.is_positive(), "tick period must be positive");
        assert!(
            self.granularity.is_positive(),
            "granularity must be positive"
        );
        assert!(
            self.offset.abs() + self.granularity <= self.eps.max(self.granularity),
            "offset {} + granularity {} exceed eps {}",
            self.offset,
            self.granularity,
            self.eps
        );
        self
    }
}

/// State of a [`TickSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickState {
    /// When the next tick is due.
    pub next_due: Time,
    /// The last emitted reading (readings are non-decreasing).
    pub last_reading: Time,
    /// Whether the initial tick has been emitted.
    pub started: bool,
}

/// The clock subsystem of the MMT model: a timed automaton whose only
/// output is `TICK(c)` with `c` within `ε` of real time (Section 5.2).
///
/// The tick source is a *timed* component — it models the hardware clock,
/// which is the one thing in the realistic model that genuinely moves with
/// real time. Everything the node learns about time flows through these
/// ticks: stale by up to `period`, quantized to `granularity`, skewed by
/// `offset`, and never decreasing.
pub struct TickSource<M, A> {
    node: NodeId,
    config: TickConfig,
    _marker: core::marker::PhantomData<fn() -> (M, A)>,
}

impl<M, A> TickSource<M, A> {
    /// Creates the tick source for `node`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    #[must_use]
    pub fn new(node: NodeId, config: TickConfig) -> Self {
        TickSource {
            node,
            config: config.validated(),
            _marker: core::marker::PhantomData,
        }
    }

    /// The reading emitted at real time `now`: quantized, skewed, clamped
    /// into the `C_ε` band, and never below `floor`.
    fn reading(&self, now: Time, floor: Time) -> Time {
        let g = self.config.granularity.as_nanos();
        let skewed = now.saturating_add_duration(self.config.offset);
        let quantized = Time::from_nanos((skewed.as_nanos() / g) * g).expect("non-negative");
        // Clamp into [now − ε, now + ε] (quantization may undershoot).
        let lo = now
            .checked_sub_duration(self.config.eps)
            .unwrap_or(Time::ZERO);
        let hi = now + self.config.eps;
        quantized.max(lo).min(hi).max(floor)
    }
}

impl<M, A> TimedComponent for TickSource<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = TickState;

    fn name(&self) -> String {
        format!("tick-source({})", self.node)
    }

    fn initial(&self) -> TickState {
        TickState {
            next_due: Time::ZERO,
            last_reading: Time::ZERO,
            started: false,
        }
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Tick { node, .. } if *node == self.node => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["TICK"])
    }

    fn step(&self, s: &TickState, a: &Self::Action, now: Time) -> Option<TickState> {
        match a {
            SysAction::Tick { node, clock } if *node == self.node => {
                if now < s.next_due {
                    return None;
                }
                let expected = self.reading(now, s.last_reading);
                if *clock != expected {
                    return None;
                }
                Some(TickState {
                    next_due: now + self.config.period,
                    last_reading: expected,
                    started: true,
                })
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &TickState, now: Time) -> Vec<Self::Action> {
        if now >= s.next_due {
            vec![SysAction::Tick {
                node: self.node,
                clock: self.reading(now, s.last_reading),
            }]
        } else {
            Vec::new()
        }
    }

    fn deadline(&self, s: &TickState, _now: Time) -> Option<Time> {
        Some(s.next_due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Src = TickSource<u32, &'static str>;
    type A = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn drive(src: &Src, horizon: Time) -> Vec<(Time, Time)> {
        // (real time, reading) pairs, firing exactly at each deadline.
        let mut s = src.initial();
        let mut out = Vec::new();
        loop {
            let due = src.deadline(&s, Time::ZERO).unwrap();
            if due > horizon {
                break;
            }
            let acts = src.enabled(&s, due);
            assert_eq!(acts.len(), 1);
            let A::Tick { clock, .. } = acts[0] else {
                unreachable!()
            };
            s = src.step(&s, &acts[0], due).unwrap();
            out.push((due, clock));
        }
        out
    }

    #[test]
    fn honest_source_ticks_on_schedule() {
        let src = Src::new(NodeId(0), TickConfig::honest(ms(2), ms(10)));
        let ticks = drive(&src, at(35));
        let times: Vec<Time> = ticks.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![at(0), at(10), at(20), at(30)]);
        for (t, c) in ticks {
            assert!(t.skew(c) <= ms(2));
            assert_eq!(c, t); // honest: reading equals real time
        }
    }

    #[test]
    fn readings_are_monotone_and_accurate_under_skew() {
        let cfg = TickConfig {
            eps: ms(2),
            period: ms(7),
            granularity: Duration::from_micros(500),
            offset: ms(-1),
        };
        let src = Src::new(NodeId(0), cfg);
        let ticks = drive(&src, at(100));
        let mut prev = Time::ZERO;
        for (t, c) in ticks {
            assert!(t.skew(c) <= ms(2), "reading {c} too far from {t}");
            assert!(c >= prev, "readings must be non-decreasing");
            assert_eq!(c.as_nanos() % 500_000, 0, "reading not quantized");
            prev = c;
        }
    }

    #[test]
    fn granularity_rounds_down() {
        let cfg = TickConfig {
            eps: ms(5),
            period: ms(3),
            granularity: ms(2),
            offset: Duration::ZERO,
        };
        let src = Src::new(NodeId(0), cfg);
        let ticks = drive(&src, at(10));
        // At t=3 the reading is floor(3/2)*2 = 2; at t=6 it is 6; at t=9, 8.
        assert_eq!(
            ticks,
            vec![
                (at(0), at(0)),
                (at(3), at(2)),
                (at(6), at(6)),
                (at(9), at(8)),
            ]
        );
    }

    #[test]
    fn wrong_reading_is_refused() {
        let src = Src::new(NodeId(0), TickConfig::honest(ms(2), ms(10)));
        let s = src.initial();
        let bogus = A::Tick {
            node: NodeId(0),
            clock: at(99),
        };
        assert!(src.step(&s, &bogus, at(0)).is_none());
    }

    #[test]
    fn other_nodes_ticks_not_in_signature() {
        let src = Src::new(NodeId(0), TickConfig::honest(ms(2), ms(10)));
        let other = A::Tick {
            node: NodeId(1),
            clock: at(0),
        };
        assert_eq!(src.classify(&other), None);
    }

    #[test]
    #[should_panic(expected = "exceed eps")]
    fn inconsistent_config_rejected() {
        let _ = TickConfig {
            eps: ms(1),
            period: ms(5),
            granularity: ms(1),
            offset: ms(1),
        }
        .validated();
    }
}
