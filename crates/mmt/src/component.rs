//! The MMT automaton model: untimed transitions + boundmap task classes.

use core::fmt::Debug;

use psync_automata::{Action, ActionKind};
use psync_time::Duration;

/// Identifies a task class of an MMT automaton's partition (an index into
/// [`MmtComponent::tasks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// The timing bounds of one task class: the boundmap value `b(C) = [l, u]`
/// (Section 5.1).
///
/// While some action of the class is continuously enabled, an action of the
/// class must fire no earlier than `l` and no later than `u` after the
/// class (re-)became enabled. The paper's node automata use `[0, ℓ]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Boundmap {
    lower: Duration,
    upper: Duration,
}

impl Boundmap {
    /// Creates the bound `[lower, upper]`.
    ///
    /// # Panics
    ///
    /// Panics if `lower` is negative, `upper` is not strictly positive, or
    /// `lower > upper`. (A zero upper bound would force infinitely many
    /// actions in zero time.)
    #[must_use]
    pub fn new(lower: Duration, upper: Duration) -> Self {
        assert!(!lower.is_negative(), "lower bound must be non-negative");
        assert!(upper.is_positive(), "upper bound must be strictly positive");
        assert!(lower <= upper, "lower bound {lower} exceeds upper {upper}");
        Boundmap { lower, upper }
    }

    /// The paper's `[0, ℓ]` bound: steps take at most `step` time.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    #[must_use]
    pub fn at_most(step: Duration) -> Self {
        Boundmap::new(Duration::ZERO, step)
    }

    /// The lower bound `l`.
    #[must_use]
    pub const fn lower(&self) -> Duration {
        self.lower
    }

    /// The upper bound `u`.
    #[must_use]
    pub const fn upper(&self) -> Duration {
        self.upper
    }
}

/// An MMT automaton (Section 5.1): an I/O automaton — *no* `now`, *no*
/// time-passage action — whose locally controlled actions are partitioned
/// into task classes with [`Boundmap`] timing.
///
/// Execute one by wrapping it in [`MmtAsTimed`](crate::MmtAsTimed) (the
/// transformation `T` of \[7\]) and composing on the `psync-executor`
/// engine.
pub trait MmtComponent: 'static {
    /// The action alphabet of the system this component is part of.
    type Action: Action;
    /// The component's state.
    type State: Clone + Debug + 'static;

    /// A human-readable name for diagnostics.
    fn name(&self) -> String;

    /// The start state.
    fn initial(&self) -> Self::State;

    /// Classifies `a` in this component's signature.
    fn classify(&self, a: &Self::Action) -> Option<ActionKind>;

    /// Routing hint: the set of [`Action::name`]s this component may
    /// classify, or `None` (the default) for "any". The same one-sided
    /// contract as
    /// [`TimedComponent::action_names`](psync_automata::TimedComponent::action_names)
    /// applies: if `classify(a)` is `Some`, `a.name()` must be listed.
    fn action_names(&self) -> Option<Vec<&'static str>> {
        None
    }

    /// Applies action `a` — note: *no* time parameter. MMT automata are
    /// untimed; all timing comes from the boundmap.
    fn step(&self, s: &Self::State, a: &Self::Action) -> Option<Self::State>;

    /// The task classes and their bounds. The partition is fixed (it does
    /// not depend on the state).
    fn tasks(&self) -> Vec<Boundmap>;

    /// The class of a locally controlled action, or `None` for inputs /
    /// out-of-signature actions. Every locally controlled action must
    /// belong to exactly one class.
    fn task_of(&self, a: &Self::Action) -> Option<TaskId>;

    /// The locally controlled actions enabled in `s` (all classes).
    fn enabled(&self, s: &Self::State) -> Vec<Self::Action>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundmap_validation() {
        let b = Boundmap::new(Duration::from_millis(1), Duration::from_millis(2));
        assert_eq!(b.lower(), Duration::from_millis(1));
        assert_eq!(b.upper(), Duration::from_millis(2));
        let z = Boundmap::at_most(Duration::from_micros(100));
        assert_eq!(z.lower(), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "exceeds upper")]
    fn inverted_bounds_rejected() {
        let _ = Boundmap::new(Duration::from_millis(3), Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_upper_rejected() {
        let _ = Boundmap::new(Duration::ZERO, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lower_rejected() {
        let _ = Boundmap::new(Duration::from_millis(-1), Duration::from_millis(2));
    }
}
