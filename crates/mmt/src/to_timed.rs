//! The transformation `T` from MMT automata to timed automata.
//!
//! Section 5.2 of the paper uses the transformation of Lynch–Attiya \[7\]
//! so that MMT node automata can be composed with (timed) channel automata.
//! `T` adds, for every task class `C` with bound `[l, u]`, deadline state:
//! while some action of `C` is enabled, an action of `C` must occur within
//! real time `[t_enabled + l, t_enabled + u]`. `T` is trace-preserving, so
//! nothing realistic is lost (Section 5.2).

use psync_automata::{ActionKind, TimedComponent};
use psync_time::{Duration, Time};

use crate::{Boundmap, MmtComponent, TaskId};

/// Resolves the residual nondeterminism of a boundmap: *when* inside
/// `[first, last]` an enabled class actually fires.
///
/// With the paper's `[0, ℓ]` bounds, always firing at the lower bound would
/// let the engine execute infinitely many zero-time steps; the policies
/// here therefore never pick the exact enabling instant.
#[derive(Debug, Clone, Copy)]
pub enum StepPolicy {
    /// Fire at the upper bound — the *slowest* legal processor, the
    /// adversary that maximizes the `kℓ + 2ε + 3ℓ` output shift of
    /// Theorem 5.1. The default.
    Lazy,
    /// Fire a fixed fraction (in percent, `1..=100`) of the way from the
    /// enabling instant to the upper bound (but never before the lower
    /// bound and never at the enabling instant itself).
    Fraction(u8),
    /// Fire at a per-(class, round) pseudo-random point in `(0, u]`,
    /// seeded — a reproducible jittery processor.
    Seeded(u64),
}

impl StepPolicy {
    /// The chosen fire time for a class (re-)enabled at `enabled_at` with
    /// bound `b`, for the `round`-th firing of class `task`.
    fn fire_at(self, enabled_at: Time, b: Boundmap, task: TaskId, round: u64) -> Time {
        let span = b.upper().as_nanos();
        let offset_ns = match self {
            StepPolicy::Lazy => span,
            StepPolicy::Fraction(pct) => {
                let pct = i64::from(pct.clamp(1, 100));
                (span * pct) / 100
            }
            StepPolicy::Seeded(seed) => {
                let h = splitmix64(seed ^ (task.0 as u64) << 32 ^ round);
                1 + (h % span.unsigned_abs()) as i64
            }
        };
        let offset = Duration::from_nanos(offset_ns.max(1)).max(b.lower());
        enabled_at + offset
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-class deadline bookkeeping added by `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TaskTimer {
    /// When the class (re-)became enabled, if currently enabled.
    fire_at: Option<Time>,
    /// How many times the class has fired (feeds the seeded policy).
    round: u64,
}

/// The state of [`MmtAsTimed`]: the MMT state plus per-class timers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedMmtState<S> {
    /// The wrapped MMT automaton's state.
    pub inner: S,
    timers: Vec<TaskTimer>,
}

/// `T(A)`: the timed automaton simulating MMT automaton `A` (Section 5.2).
///
/// # Examples
///
/// See the crate-level documentation of `psync-core` for the full
/// `A → C(A,ε) → M(·, ℓ) → T(·)` pipeline.
pub struct MmtAsTimed<C: MmtComponent> {
    inner: C,
    bounds: Vec<Boundmap>,
    policy: StepPolicy,
}

impl<C: MmtComponent> MmtAsTimed<C> {
    /// Wraps an MMT automaton, resolving its boundmap nondeterminism with
    /// `policy`.
    #[must_use]
    pub fn new(inner: C, policy: StepPolicy) -> Self {
        let bounds = inner.tasks();
        MmtAsTimed {
            inner,
            bounds,
            policy,
        }
    }

    /// Which classes currently have an enabled action.
    fn enabled_classes(&self, s: &C::State) -> Vec<bool> {
        let mut flags = vec![false; self.bounds.len()];
        for a in self.inner.enabled(s) {
            let t = self
                .inner
                .task_of(&a)
                .expect("enabled locally-controlled action must have a task");
            flags[t.0] = true;
        }
        flags
    }

    /// Recomputes timers after `fired` (if any) was performed at `now`.
    fn retime(
        &self,
        old: &TimedMmtState<C::State>,
        new_inner: &C::State,
        fired: Option<TaskId>,
        now: Time,
    ) -> Vec<TaskTimer> {
        let enabled_now = self.enabled_classes(new_inner);
        old.timers
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let task = TaskId(i);
                let was_running = t.fire_at.is_some();
                let round = if fired == Some(task) {
                    t.round + 1
                } else {
                    t.round
                };
                let fire_at = if !enabled_now[i] {
                    // Disabled classes carry no obligation.
                    None
                } else if fired == Some(task) || !was_running {
                    // (Re-)armed: the class fired, or just became enabled.
                    Some(self.policy.fire_at(now, self.bounds[i], task, round))
                } else {
                    // Still enabled, not fired: obligation persists.
                    t.fire_at
                };
                TaskTimer { fire_at, round }
            })
            .collect()
    }
}

impl<C: MmtComponent> TimedComponent for MmtAsTimed<C> {
    type Action = C::Action;
    type State = TimedMmtState<C::State>;

    fn name(&self) -> String {
        format!("T({})", self.inner.name())
    }

    fn initial(&self) -> Self::State {
        let inner = self.inner.initial();
        let enabled = self.enabled_classes(&inner);
        let timers = enabled
            .iter()
            .enumerate()
            .map(|(i, &e)| TaskTimer {
                fire_at: e.then(|| {
                    self.policy
                        .fire_at(Time::ZERO, self.bounds[i], TaskId(i), 0)
                }),
                round: 0,
            })
            .collect();
        TimedMmtState { inner, timers }
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        self.inner.classify(a)
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        // T(A) preserves the signature (only timing is added).
        self.inner.action_names()
    }

    fn step(&self, s: &Self::State, a: &Self::Action, now: Time) -> Option<Self::State> {
        let kind = self.inner.classify(a)?;
        if kind.is_locally_controlled() {
            // Locally controlled actions wait for their class's chosen
            // fire time.
            let task = self.inner.task_of(a)?;
            let fire_at = s.timers[task.0].fire_at?;
            if now < fire_at {
                return None;
            }
            let new_inner = self.inner.step(&s.inner, a)?;
            let timers = self.retime(s, &new_inner, Some(task), now);
            Some(TimedMmtState {
                inner: new_inner,
                timers,
            })
        } else {
            let new_inner = self.inner.step(&s.inner, a)?;
            let timers = self.retime(s, &new_inner, None, now);
            Some(TimedMmtState {
                inner: new_inner,
                timers,
            })
        }
    }

    fn enabled(&self, s: &Self::State, now: Time) -> Vec<Self::Action> {
        self.inner
            .enabled(&s.inner)
            .into_iter()
            .filter(|a| {
                let Some(task) = self.inner.task_of(a) else {
                    return false;
                };
                matches!(s.timers[task.0].fire_at, Some(f) if now >= f)
            })
            .collect()
    }

    fn deadline(&self, s: &Self::State, _now: Time) -> Option<Time> {
        s.timers.iter().filter_map(|t| t.fire_at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::Action;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    /// A counter that emits `Emit(n)` forever, one task class.
    #[derive(Debug, Clone)]
    struct Counter;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum CAct {
        Emit(u64),
        Pause,
        Resume,
    }

    impl Action for CAct {
        fn name(&self) -> &'static str {
            match self {
                CAct::Emit(_) => "EMIT",
                CAct::Pause => "PAUSE",
                CAct::Resume => "RESUME",
            }
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct CState {
        n: u64,
        paused: bool,
    }

    impl MmtComponent for Counter {
        type Action = CAct;
        type State = CState;

        fn name(&self) -> String {
            "counter".into()
        }

        fn initial(&self) -> CState {
            CState {
                n: 0,
                paused: false,
            }
        }

        fn classify(&self, a: &CAct) -> Option<ActionKind> {
            match a {
                CAct::Emit(_) => Some(ActionKind::Output),
                CAct::Pause | CAct::Resume => Some(ActionKind::Input),
            }
        }

        fn step(&self, s: &CState, a: &CAct) -> Option<CState> {
            match a {
                CAct::Emit(n) if *n == s.n && !s.paused => Some(CState {
                    n: s.n + 1,
                    paused: false,
                }),
                CAct::Emit(_) => None,
                CAct::Pause => Some(CState {
                    paused: true,
                    ..s.clone()
                }),
                CAct::Resume => Some(CState {
                    paused: false,
                    ..s.clone()
                }),
            }
        }

        fn tasks(&self) -> Vec<Boundmap> {
            vec![Boundmap::at_most(ms(5))]
        }

        fn task_of(&self, a: &CAct) -> Option<TaskId> {
            matches!(a, CAct::Emit(_)).then_some(TaskId(0))
        }

        fn enabled(&self, s: &CState) -> Vec<CAct> {
            if s.paused {
                Vec::new()
            } else {
                vec![CAct::Emit(s.n)]
            }
        }
    }

    #[test]
    fn lazy_policy_fires_at_upper_bound() {
        let t = MmtAsTimed::new(Counter, StepPolicy::Lazy);
        let s0 = t.initial();
        assert_eq!(t.deadline(&s0, Time::ZERO), Some(at(5)));
        assert!(t.enabled(&s0, at(4)).is_empty());
        assert_eq!(t.enabled(&s0, at(5)), vec![CAct::Emit(0)]);
        let s1 = t.step(&s0, &CAct::Emit(0), at(5)).unwrap();
        // Re-armed for the next window.
        assert_eq!(t.deadline(&s1, at(5)), Some(at(10)));
    }

    #[test]
    fn early_fire_is_refused() {
        let t = MmtAsTimed::new(Counter, StepPolicy::Lazy);
        let s0 = t.initial();
        assert!(t.step(&s0, &CAct::Emit(0), at(4)).is_none());
    }

    #[test]
    fn disable_clears_obligation_and_reenable_rearms() {
        let t = MmtAsTimed::new(Counter, StepPolicy::Lazy);
        let s0 = t.initial();
        // Pause at 2 ms: the class disables, its deadline disappears.
        let s1 = t.step(&s0, &CAct::Pause, at(2)).unwrap();
        assert_eq!(t.deadline(&s1, at(2)), None);
        assert!(t.enabled(&s1, at(100)).is_empty());
        // Resume at 7 ms: fresh window [7, 12].
        let s2 = t.step(&s1, &CAct::Resume, at(7)).unwrap();
        assert_eq!(t.deadline(&s2, at(7)), Some(at(12)));
    }

    #[test]
    fn obligation_persists_across_unrelated_inputs() {
        let t = MmtAsTimed::new(Counter, StepPolicy::Lazy);
        let s0 = t.initial();
        // Resume (no-op while running) must not reset the timer.
        let s1 = t.step(&s0, &CAct::Resume, at(3)).unwrap();
        assert_eq!(t.deadline(&s1, at(3)), Some(at(5)));
    }

    #[test]
    fn fraction_policy_fires_part_way() {
        let t = MmtAsTimed::new(Counter, StepPolicy::Fraction(40));
        let s0 = t.initial();
        assert_eq!(t.deadline(&s0, Time::ZERO), Some(at(2)));
    }

    #[test]
    fn seeded_policy_is_reproducible_and_in_window() {
        let fire_times = |seed| {
            let t = MmtAsTimed::new(Counter, StepPolicy::Seeded(seed));
            let mut s = t.initial();
            let mut out = Vec::new();
            for _ in 0..20 {
                let f = t.deadline(&s, Time::ZERO).unwrap();
                let acts = t.enabled(&s, f);
                assert_eq!(acts.len(), 1);
                s = t.step(&s, &acts[0], f).unwrap();
                out.push(f);
            }
            out
        };
        let a = fire_times(1);
        assert_eq!(a, fire_times(1));
        assert_ne!(a, fire_times(2));
        // Windows respected: consecutive fires at most 5 ms apart, strictly
        // increasing.
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
            assert!(w[1] - w[0] <= ms(5));
        }
    }

    #[test]
    fn trace_preservation_smoke() {
        // T(Counter) on the engine emits 0,1,2,… — the MMT automaton's
        // trace with legal times.
        use psync_executor::Engine;
        let mut engine = Engine::builder()
            .timed(MmtAsTimed::new(Counter, StepPolicy::Lazy))
            .horizon(at(26))
            .build();
        let run = engine.run().unwrap();
        let emitted: Vec<u64> = run
            .execution
            .t_trace()
            .iter()
            .map(|(a, _)| match a {
                CAct::Emit(n) => *n,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(emitted, vec![0, 1, 2, 3, 4]);
    }
}
