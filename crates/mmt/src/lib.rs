//! The MMT automaton model (Section 5 of the paper).
//!
//! MMT automata — named for Merritt, Modugno and Tuttle \[11\], as used by
//! Lynch and Attiya \[7\] — are I/O automata with *boundmap* timing: the
//! locally controlled actions are partitioned into task classes, and each
//! class maps to an interval `[l, u]` constraining how long the class may
//! stay enabled before one of its actions fires. The model is "realistic"
//! in the paper's sense: it has **no** `now` state component and **no**
//! ability to schedule an action at an exact time — a node learns the time
//! only through `TICK(c)` inputs from a clock subsystem, and its steps take
//! up to `ℓ` time each.
//!
//! This crate provides:
//!
//! * [`MmtComponent`] — the model: untimed transitions plus
//!   [`Boundmap`]-timed task classes (Section 5.1).
//! * [`MmtAsTimed`] — the trace-preserving transformation `T` from MMT
//!   automata to timed automata (from \[7\], used in Section 5.2 so MMT
//!   nodes can be composed with channel automata and executed on the
//!   `psync-executor` engine). The residual nondeterminism — *when* inside
//!   `[l, u]` each class fires — is resolved by a [`StepPolicy`].
//! * [`TickSource`] — the clock subsystem `C^m_{i,ε,ℓ}` whose sole output
//!   is `TICK(c)` with `c` always within `ε` of real time (Section 5.2),
//!   with configurable tick period, reading granularity and skew. This is
//!   where the paper's "clock may jump discretely, so particular values
//!   can be missed" realism lives.
//!
//! The transformation `M(A^c_{i,ε}, ℓ)` from clock automata to MMT automata
//! (Definition 5.1) lives in `psync-core`, next to its Theorem 5.1/5.2
//! checkers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod tick;
mod to_timed;

pub use component::{Boundmap, MmtComponent, TaskId};
pub use tick::{TickConfig, TickSource, TickState};
pub use to_timed::{MmtAsTimed, StepPolicy, TimedMmtState};
