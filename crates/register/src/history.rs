//! Operation histories: extracting invocation/response intervals from
//! recorded traces.

use core::fmt;

use psync_automata::TimedTrace;
use psync_net::{NodeId, SysAction};
use psync_time::{Duration, Time};

use crate::{RegAction, RegisterOp, Value};

/// What an operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A read that returned `returned`.
    Read {
        /// The value the read returned (known only for completed reads).
        returned: Value,
    },
    /// A write of `value`.
    Write {
        /// The written value.
        value: Value,
    },
}

/// One operation interval: invocation to response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// The invoking node.
    pub node: NodeId,
    /// Read or write, with its value.
    pub kind: OpKind,
    /// Invocation time.
    pub invoked: Time,
    /// Response time; `None` when the run's horizon cut the operation off
    /// (it may or may not have taken effect).
    pub responded: Option<Time>,
}

impl Operation {
    /// The operation's latency, for completed operations.
    #[must_use]
    pub fn latency(&self) -> Option<Duration> {
        Some(self.responded? - self.invoked)
    }

    /// `true` if this is a read.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self.kind, OpKind::Read { .. })
    }
}

/// Why a trace could not be parsed into a well-formed history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The *environment* violated the alternation condition: a second
    /// invocation at a node with one outstanding. Per Section 6.1 such
    /// traces are vacuously in the problem (`P` contains every trace in
    /// which the environment is first to violate alternation).
    EnvironmentViolation {
        /// The offending node.
        node: NodeId,
        /// When the second invocation occurred.
        at: Time,
    },
    /// The *system* produced a response with no matching invocation, or a
    /// response of the wrong kind — an algorithm bug, never acceptable.
    SystemViolation {
        /// The offending node.
        node: NodeId,
        /// When the bogus response occurred.
        at: Time,
        /// Description of the mismatch.
        what: String,
    },
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::EnvironmentViolation { node, at } => {
                write!(f, "environment violated alternation at {node}, {at}")
            }
            ExtractError::SystemViolation { node, at, what } => {
                write!(f, "system violated well-formedness at {node}, {at}: {what}")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// Parses the application trace of a register system into a history of
/// operations, enforcing the alternation condition of Section 6.1.
///
/// Operations still outstanding when the trace ends get
/// `responded = None`.
///
/// # Errors
///
/// See [`ExtractError`] — note the asymmetry: an environment violation
/// means the trace is vacuously correct, a system violation means the
/// algorithm is broken.
pub fn extract(trace: &TimedTrace<RegAction>, n: usize) -> Result<Vec<Operation>, ExtractError> {
    // Per-node outstanding invocation: (kind-of-invocation, time).
    let mut outstanding: Vec<Option<(RegisterOp, Time)>> = vec![None; n];
    let mut ops = Vec::new();
    for (a, t) in trace.iter() {
        let SysAction::App(op) = a else { continue };
        let node = op.node();
        assert!(node.0 < n, "trace mentions node {node} outside 0..{n}");
        match op {
            RegisterOp::Read { .. } | RegisterOp::Write { .. } => {
                if outstanding[node.0].is_some() {
                    return Err(ExtractError::EnvironmentViolation { node, at: t });
                }
                outstanding[node.0] = Some((op.clone(), t));
            }
            RegisterOp::Return { value, .. } => match outstanding[node.0].take() {
                Some((RegisterOp::Read { .. }, inv)) => ops.push(Operation {
                    node,
                    kind: OpKind::Read { returned: *value },
                    invoked: inv,
                    responded: Some(t),
                }),
                Some((other, _)) => {
                    return Err(ExtractError::SystemViolation {
                        node,
                        at: t,
                        what: format!("RETURN answering {other:?}"),
                    })
                }
                None => {
                    return Err(ExtractError::SystemViolation {
                        node,
                        at: t,
                        what: "RETURN with no outstanding invocation".into(),
                    })
                }
            },
            RegisterOp::Ack { .. } => match outstanding[node.0].take() {
                Some((RegisterOp::Write { value, .. }, inv)) => ops.push(Operation {
                    node,
                    kind: OpKind::Write { value },
                    invoked: inv,
                    responded: Some(t),
                }),
                Some((other, _)) => {
                    return Err(ExtractError::SystemViolation {
                        node,
                        at: t,
                        what: format!("ACK answering {other:?}"),
                    })
                }
                None => {
                    return Err(ExtractError::SystemViolation {
                        node,
                        at: t,
                        what: "ACK with no outstanding invocation".into(),
                    })
                }
            },
            RegisterOp::Update { .. } => {}
        }
    }
    // Outstanding invocations become open operations. Open reads carry no
    // returned value and cannot constrain linearizability; we record open
    // writes (they may have taken effect) and drop open reads.
    for slot in outstanding.into_iter().flatten() {
        match slot {
            (RegisterOp::Write { node, value }, inv) => ops.push(Operation {
                node,
                kind: OpKind::Write { value },
                invoked: inv,
                responded: None,
            }),
            (RegisterOp::Read { .. }, _) => {}
            _ => unreachable!("only invocations are stored"),
        }
    }
    ops.sort_by_key(|o| o.invoked);
    Ok(ops)
}

/// Latency statistics for the completed operations of a history, split by
/// kind: `(reads, writes)`.
#[must_use]
pub fn latency_split(ops: &[Operation]) -> (Vec<Duration>, Vec<Duration>) {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for o in ops {
        if let Some(l) = o.latency() {
            if o.is_read() {
                reads.push(l);
            } else {
                writes.push(l);
            }
        }
    }
    (reads, writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::TimedTrace;

    fn at(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn app(op: RegisterOp, t: Time) -> (RegAction, Time) {
        (SysAction::App(op), t)
    }

    #[test]
    fn extracts_interleaved_operations() {
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let trace: TimedTrace<RegAction> = TimedTrace::from_pairs(vec![
            app(
                RegisterOp::Write {
                    node: n0,
                    value: Value(1),
                },
                at(0),
            ),
            app(RegisterOp::Read { node: n1 }, at(1)),
            app(
                RegisterOp::Return {
                    node: n1,
                    value: Value(0),
                },
                at(3),
            ),
            app(RegisterOp::Ack { node: n0 }, at(5)),
        ]);
        let ops = extract(&trace, 2).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, OpKind::Write { value: Value(1) });
        assert_eq!(ops[0].latency(), Some(Duration::from_millis(5)));
        assert_eq!(ops[1].kind, OpKind::Read { returned: Value(0) });
        assert_eq!(ops[1].latency(), Some(Duration::from_millis(2)));
    }

    #[test]
    fn environment_violation_detected() {
        let n0 = NodeId(0);
        let trace: TimedTrace<RegAction> = TimedTrace::from_pairs(vec![
            app(RegisterOp::Read { node: n0 }, at(0)),
            app(RegisterOp::Read { node: n0 }, at(1)),
        ]);
        assert_eq!(
            extract(&trace, 1),
            Err(ExtractError::EnvironmentViolation {
                node: n0,
                at: at(1)
            })
        );
    }

    #[test]
    fn system_violation_detected() {
        let n0 = NodeId(0);
        let unsolicited: TimedTrace<RegAction> =
            TimedTrace::from_pairs(vec![app(RegisterOp::Ack { node: n0 }, at(0))]);
        assert!(matches!(
            extract(&unsolicited, 1),
            Err(ExtractError::SystemViolation { .. })
        ));

        let wrong_kind: TimedTrace<RegAction> = TimedTrace::from_pairs(vec![
            app(RegisterOp::Read { node: n0 }, at(0)),
            app(RegisterOp::Ack { node: n0 }, at(1)),
        ]);
        assert!(matches!(
            extract(&wrong_kind, 1),
            Err(ExtractError::SystemViolation { .. })
        ));
    }

    #[test]
    fn open_write_kept_open_read_dropped() {
        let trace: TimedTrace<RegAction> = TimedTrace::from_pairs(vec![
            app(
                RegisterOp::Write {
                    node: NodeId(0),
                    value: Value(9),
                },
                at(0),
            ),
            app(RegisterOp::Read { node: NodeId(1) }, at(1)),
        ]);
        let ops = extract(&trace, 2).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, OpKind::Write { value: Value(9) });
        assert_eq!(ops[0].responded, None);
        assert_eq!(ops[0].latency(), None);
    }

    #[test]
    fn latency_split_by_kind() {
        let ops = vec![
            Operation {
                node: NodeId(0),
                kind: OpKind::Read { returned: Value(0) },
                invoked: at(0),
                responded: Some(at(2)),
            },
            Operation {
                node: NodeId(0),
                kind: OpKind::Write { value: Value(1) },
                invoked: at(3),
                responded: Some(at(8)),
            },
            Operation {
                node: NodeId(1),
                kind: OpKind::Write { value: Value(2) },
                invoked: at(4),
                responded: None,
            },
        ];
        let (r, w) = latency_split(&ops);
        assert_eq!(r, vec![Duration::from_millis(2)]);
        assert_eq!(w, vec![Duration::from_millis(5)]);
    }

    #[test]
    fn non_app_actions_ignored() {
        let trace: TimedTrace<RegAction> =
            TimedTrace::from_pairs(vec![(SysAction::Tau { node: NodeId(0) }, at(0))]);
        assert_eq!(extract(&trace, 1).unwrap(), Vec::new());
    }
}
