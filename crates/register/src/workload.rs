//! A seeded closed-loop client per node.

use psync_automata::{ActionKind, TimedComponent};
use psync_net::{NodeId, SysAction, Topology};
use psync_time::{DelayBounds, Duration, Time};

use crate::{RegAction, RegisterOp, Value};

/// Per-node client phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Thinking; will invoke at the given time.
    Idle(Time),
    /// An operation is outstanding.
    Waiting,
    /// All operations issued and answered.
    Done,
}

/// State of a [`ClosedLoopWorkload`]: per node, the phase and how many
/// operations completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadState {
    phases: Vec<Phase>,
    done_ops: Vec<u32>,
}

/// A closed-loop workload: each node's client issues `ops_per_node`
/// operations, one at a time — invoke, await the response, think, repeat.
/// Closed-loop clients respect the *alternation condition* of Section 6.1
/// by construction, so every trace they drive is judged by the
/// linearizability clause of the problem.
///
/// The operation mix (read/write, 50/50), written values (globally
/// unique) and think times (uniform in `think`) are a pure function of
/// `(seed, node, op index)` — reproducible load.
pub struct ClosedLoopWorkload {
    nodes: usize,
    seed: u64,
    think: DelayBounds,
    ops_per_node: u32,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ClosedLoopWorkload {
    /// Creates a workload for every node of `topo`.
    #[must_use]
    pub fn new(topo: &Topology, seed: u64, think: DelayBounds, ops_per_node: u32) -> Self {
        ClosedLoopWorkload {
            nodes: topo.len(),
            seed,
            think,
            ops_per_node,
        }
    }

    fn rng(&self, node: usize, op: u32, salt: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64((node as u64) << 32 | u64::from(op)) ^ salt)
    }

    /// The `op`-th invocation of `node`.
    fn op_for(&self, node: usize, op: u32) -> RegisterOp {
        if self.rng(node, op, 0xAB) & 1 == 0 {
            RegisterOp::Read { node: NodeId(node) }
        } else {
            RegisterOp::Write {
                node: NodeId(node),
                value: Value::unique(NodeId(node), op),
            }
        }
    }

    /// Think time before the `op`-th invocation of `node`.
    fn think_for(&self, node: usize, op: u32) -> Duration {
        let width = self.think.width().as_nanos();
        if width == 0 {
            return self.think.min();
        }
        let off = (self.rng(node, op, 0xCD) % (width as u64 + 1)) as i64;
        self.think.min() + Duration::from_nanos(off)
    }
}

impl TimedComponent for ClosedLoopWorkload {
    type Action = RegAction;
    type State = WorkloadState;

    fn name(&self) -> String {
        format!(
            "workload({} nodes × {} ops, seed {})",
            self.nodes, self.ops_per_node, self.seed
        )
    }

    fn initial(&self) -> WorkloadState {
        WorkloadState {
            phases: (0..self.nodes)
                .map(|i| {
                    if self.ops_per_node == 0 {
                        Phase::Done
                    } else {
                        Phase::Idle(Time::ZERO + self.think_for(i, 0))
                    }
                })
                .collect(),
            done_ops: vec![0; self.nodes],
        }
    }

    fn classify(&self, a: &RegAction) -> Option<ActionKind> {
        match a {
            SysAction::App(op) if op.node().0 < self.nodes => {
                if op.is_invocation() {
                    Some(ActionKind::Output)
                } else if op.is_response() {
                    Some(ActionKind::Input)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["READ", "WRITE", "RETURN", "ACK", "UPDATE"])
    }

    fn step(&self, s: &WorkloadState, a: &RegAction, now: Time) -> Option<WorkloadState> {
        let SysAction::App(op) = a else { return None };
        let i = op.node().0;
        if i >= self.nodes {
            return None;
        }
        if op.is_invocation() {
            let Phase::Idle(due) = s.phases[i] else {
                return None;
            };
            if now < due || *op != self.op_for(i, s.done_ops[i]) {
                return None;
            }
            let mut next = s.clone();
            next.phases[i] = Phase::Waiting;
            Some(next)
        } else if op.is_response() {
            // Input-enabled: absorb any response; only a Waiting client
            // advances.
            let mut next = s.clone();
            if s.phases[i] == Phase::Waiting {
                let done = s.done_ops[i] + 1;
                next.done_ops[i] = done;
                next.phases[i] = if done >= self.ops_per_node {
                    Phase::Done
                } else {
                    Phase::Idle(now + self.think_for(i, done))
                };
            }
            Some(next)
        } else {
            None
        }
    }

    fn enabled(&self, s: &WorkloadState, now: Time) -> Vec<RegAction> {
        let mut out = Vec::new();
        for (i, phase) in s.phases.iter().enumerate() {
            if let Phase::Idle(due) = phase {
                if now >= *due {
                    out.push(SysAction::App(self.op_for(i, s.done_ops[i])));
                }
            }
        }
        out
    }

    fn deadline(&self, s: &WorkloadState, _now: Time) -> Option<Time> {
        s.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Idle(due) => Some(*due),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn wl(seed: u64) -> ClosedLoopWorkload {
        ClosedLoopWorkload::new(
            &Topology::complete(2),
            seed,
            DelayBounds::new(ms(1), ms(3)).unwrap(),
            2,
        )
    }

    #[test]
    fn issues_one_op_at_a_time_per_node() {
        let w = wl(5);
        let s0 = w.initial();
        let due = w.deadline(&s0, Time::ZERO).unwrap();
        let en = w.enabled(&s0, due + ms(10)); // both nodes due by now
        assert!(!en.is_empty());
        let SysAction::App(op) = &en[0] else { panic!() };
        let node = op.node().0;
        let s1 = w.step(&s0, &en[0], due + ms(10)).unwrap();
        // That node is now waiting and offers nothing.
        assert!(w
            .enabled(&s1, due + ms(10))
            .iter()
            .all(|a| a.as_app().map(RegisterOp::node) != Some(NodeId(node))));
    }

    #[test]
    fn response_triggers_next_op_after_think() {
        let w = wl(5);
        let mut s = w.initial();
        let due = match s.phases[0] {
            Phase::Idle(d) => d,
            _ => panic!(),
        };
        let first = w.op_for(0, 0);
        s = w.step(&s, &SysAction::App(first.clone()), due).unwrap();
        // Answer it.
        let resp = match first {
            RegisterOp::Read { node } => RegisterOp::Return {
                node,
                value: Value::INITIAL,
            },
            RegisterOp::Write { node, .. } => RegisterOp::Ack { node },
            _ => unreachable!(),
        };
        let t_resp = due + ms(4);
        s = w.step(&s, &SysAction::App(resp), t_resp).unwrap();
        assert_eq!(s.done_ops[0], 1);
        match s.phases[0] {
            Phase::Idle(next) => {
                assert!(next >= t_resp + ms(1) && next <= t_resp + ms(3));
            }
            other => panic!("expected idle, got {other:?}"),
        }
    }

    #[test]
    fn stops_after_ops_per_node() {
        let w = wl(9);
        let mut s = w.initial();
        let mut answered = 0;
        let mut t = Time::ZERO;
        while answered < 4 {
            t += ms(5);
            let en = w.enabled(&s, t);
            if let Some(a) = en.first() {
                s = w.step(&s, a, t).unwrap();
                let SysAction::App(op) = a else { panic!() };
                let resp = match op {
                    RegisterOp::Read { node } => RegisterOp::Return {
                        node: *node,
                        value: Value::INITIAL,
                    },
                    RegisterOp::Write { node, .. } => RegisterOp::Ack { node: *node },
                    _ => unreachable!(),
                };
                s = w.step(&s, &SysAction::App(resp), t).unwrap();
                answered += 1;
            }
        }
        assert!(s.phases.iter().all(|p| *p == Phase::Done));
        assert_eq!(w.deadline(&s, t), None);
        assert!(w.enabled(&s, t + ms(100)).is_empty());
    }

    #[test]
    fn op_mix_is_seeded_and_varied() {
        let w = wl(7);
        let ops: Vec<RegisterOp> = (0..32).map(|k| w.op_for(0, k)).collect();
        assert!(ops.iter().any(|o| matches!(o, RegisterOp::Read { .. })));
        assert!(ops.iter().any(|o| matches!(o, RegisterOp::Write { .. })));
        // Deterministic per seed.
        let w2 = wl(7);
        let ops2: Vec<RegisterOp> = (0..32).map(|k| w2.op_for(0, k)).collect();
        assert_eq!(ops, ops2);
    }

    #[test]
    fn written_values_are_globally_unique() {
        let w = wl(7);
        let mut values = std::collections::HashSet::new();
        for node in 0..2 {
            for k in 0..16 {
                if let RegisterOp::Write { value, .. } = w.op_for(node, k) {
                    assert!(values.insert(value), "duplicate value {value}");
                }
            }
        }
    }

    #[test]
    fn unknown_actions_not_in_signature() {
        let w = wl(1);
        assert_eq!(
            w.classify(&SysAction::App(RegisterOp::Update {
                node: NodeId(0),
                due: Time::ZERO
            })),
            None
        );
        assert_eq!(w.classify(&SysAction::Tau { node: NodeId(0) }), None);
    }
}
