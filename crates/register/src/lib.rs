//! Linearizable read-write registers (Section 6 of the paper).
//!
//! The paper's application of its simulation machinery: distributed shared
//! read-write objects with linearizability. Node `i` accepts `READ_i` and
//! `WRITE_i(v)` invocations and produces `RETURN_i(v)` / `ACK_i`
//! responses; a concurrent execution must look as if every operation took
//! effect instantaneously at some point between its invocation and
//! response.
//!
//! This crate provides:
//!
//! * [`AlgorithmS`] — the timed-automaton algorithm of Figure 3, in two
//!   flavors controlled by [`RegisterParams::read_slack`]:
//!   **Algorithm L** (`read_slack = 0`, from Mavronicolas \[10\],
//!   generalizing Attiya–Welch \[2\]) solves plain linearizability in the
//!   timed model with read time `c + δ` and write time `d'₂ − c`
//!   (Lemma 6.1); **Algorithm S** (`read_slack = 2ε`) solves
//!   *ε-superlinearizability* (Lemma 6.2), which survives the clock
//!   transformation: by Theorem 6.5 the transformed `S^c_ε` solves plain
//!   linearizability in the clock model with read time `2ε + δ + c` and
//!   write time `d₂ + 2ε − c`.
//! * [`BaselineRegister`] — a reconstruction of the clock-model algorithm
//!   of \[10\] (the unpublished thesis' "complicated time-slicing"
//!   algorithm) with the latencies the paper reports for it: read `4u`,
//!   write `d₂ + 3u`, where `u = 2ε` is the inter-clock skew bound.
//! * [`AlgorithmSObj`] — the generalization to arbitrary blind-update /
//!   query objects ([`object::ObjectSpec`]: counters, grow-sets, …) that
//!   the paper defers to its full version (end of Section 6), with the
//!   same latency formulas.
//! * [`ClosedLoopWorkload`] — a seeded closed-loop client per node.
//! * [`history`] — extraction of operation intervals from recorded traces
//!   (the input to the linearizability checkers in `psync-verify`) and
//!   latency statistics.
//!
//! # Quick start
//!
//! ```
//! use psync_core::{build_dc, app_trace, NodeSpec};
//! use psync_executor::{ClockStrategy, PerfectClock, StopReason};
//! use psync_net::{MaxDelay, NodeId, Topology};
//! use psync_register::{AlgorithmS, ClosedLoopWorkload, RegisterParams};
//! use psync_time::{DelayBounds, Duration, Time};
//!
//! let ms = Duration::from_millis;
//! let topo = Topology::complete(2);
//! let physical = DelayBounds::new(ms(1), ms(5))?;
//! let eps = ms(1);
//! let params = RegisterParams::for_clock_model(&topo, physical, eps, ms(2), Duration::from_micros(10));
//!
//! let algorithms = topo
//!     .nodes()
//!     .map(|i| NodeSpec::new(i, AlgorithmS::new(i, params.clone())))
//!     .collect();
//! let strategies: Vec<Box<dyn ClockStrategy>> =
//!     vec![Box::new(PerfectClock), Box::new(PerfectClock)];
//! let workload = ClosedLoopWorkload::new(&topo, 7, DelayBounds::exact(ms(1)), 3);
//!
//! let mut engine = build_dc(&topo, physical, eps, algorithms, strategies, |_, _| {
//!     Box::new(MaxDelay)
//! })
//! .timed(workload)
//! .horizon(Time::ZERO + ms(200))
//! .build();
//! let run = engine.run().expect("well-formed composition");
//! // All six operations complete before the horizon.
//! assert_eq!(run.stop, StopReason::Quiescent);
//! let history = psync_register::history::extract(&app_trace(&run.execution), topo.len()).unwrap();
//! assert_eq!(history.len(), 6);
//! # Ok::<(), psync_time::TimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm_obj;
mod algorithm_s;
mod baseline;
pub mod history;
mod obj_workload;
pub mod object;
mod ops;
mod params;
mod workload;

pub use algorithm_obj::{AlgorithmSObj, ObjAction, ObjMsg, ObjOp, ObjState, ScheduledUpdate};
pub use algorithm_s::AlgorithmS;
pub use baseline::{build_baseline, BaselineParams, BaselineRegister};
pub use obj_workload::ObjWorkload;
pub use ops::{RegMsg, RegisterOp, Value};
pub use params::RegisterParams;
pub use workload::ClosedLoopWorkload;

/// The action alphabet of every register system in this crate.
pub type RegAction = psync_net::SysAction<RegMsg, RegisterOp>;
