//! A reconstruction of the clock-model register algorithm of
//! Mavronicolas \[10\] — the comparator of Section 6.3.

use psync_automata::{ActionKind, ClockComponent};
use psync_net::{Envelope, MsgId, NodeId, SysAction};
use psync_time::{Duration, Time};

use crate::{RegAction, RegMsg, RegisterOp, Value};

/// Parameters of the [`BaselineRegister`].
///
/// The model of \[10\] keeps clocks within `u` of *each other* at rate 1;
/// the paper maps it onto its own model with `u = 2ε` (Section 6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineParams {
    /// All nodes (the broadcast set).
    pub peers: Vec<NodeId>,
    /// The inter-clock skew bound `u` (`= 2ε` in the paper's mapping).
    pub u: Duration,
    /// The physical upper message delay `d₂`.
    pub d2: Duration,
}

impl BaselineParams {
    /// Creates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not strictly positive (the time-sliced algorithm
    /// needs a skew margin), `d2` is negative, or `peers` is empty.
    #[must_use]
    pub fn new(peers: Vec<NodeId>, u: Duration, d2: Duration) -> Self {
        assert!(u.is_positive(), "skew bound u must be strictly positive");
        assert!(!d2.is_negative(), "d2 must be non-negative");
        assert!(!peers.is_empty(), "at least one node required");
        BaselineParams { peers, u, d2 }
    }

    /// The baseline's read time complexity: `4u` (Section 6.3).
    #[must_use]
    pub fn read_latency(&self) -> Duration {
        self.u * 4
    }

    /// The baseline's write time complexity: `d₂ + 3u` (Section 6.3).
    #[must_use]
    pub fn write_latency(&self) -> Duration {
        self.d2 + self.u * 3
    }

    /// The clock time at which every node applies the update keyed
    /// `(w, _)`: `w + d₂ + 2u`. By then the update has arrived everywhere
    /// (arrival clock `≤ w + u + d₂`) and every smaller-keyed update is
    /// already present.
    fn apply_threshold(&self, w: Time) -> Time {
        w + self.d2 + self.u * 2
    }
}

/// A buffered remote update, ordered by key `(writer clock, writer id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PendingUpdate {
    /// Writer's clock at the write — the slot key's time component.
    pub key_time: Time,
    /// Writer id — the slot key's tie-break component.
    pub key_node: NodeId,
    /// The written value.
    pub value: Value,
}

/// An in-progress write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineWrite {
    value: Value,
    remaining: Vec<NodeId>,
    send_clock: Option<Time>,
    ack_clock: Time,
}

/// State of a [`BaselineRegister`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineState {
    /// Local register copy.
    pub value: Value,
    /// Active read's return clock time.
    pub read_due: Option<Time>,
    /// Active write.
    pub write: Option<BaselineWrite>,
    /// Buffered updates, sorted by key.
    pub pending: Vec<PendingUpdate>,
    msg_seq: u32,
}

/// The clock-model register of \[10\], reconstructed.
///
/// The thesis itself is unavailable; the paper pins down the algorithm's
/// observable contract — "complicated time-slicing", read time `4u`, write
/// time `d₂ + 3u`, linearizable in a model where clocks stay within `u` of
/// each other at rate 1 (Section 6.3). This reconstruction realizes that
/// contract with the natural time-sliced scheme:
///
/// * `WRITE_i(v)` at local clock `w` broadcasts `UPDATE(v, key=(w, i))`
///   and acknowledges at local clock `w + d₂ + 3u`.
/// * Every node (including the writer) applies buffered updates in global
///   key order, each exactly when its local clock reaches the update's
///   *slot end* `w + d₂ + 2u` — by which time the update and every
///   smaller-keyed update has provably arrived.
/// * `READ_i` at local clock `r` waits `4u` and returns the local copy;
///   the `4u` settle time makes sequentially-ordered reads observe
///   monotonically growing key prefixes even across maximally skewed
///   clocks.
///
/// It is a *clock automaton* built directly against the tagged channel
/// interface (`ESENDMSG`/`ERECVMSG`) — no Simulation 1 buffers — which is
/// exactly what makes it the paper's foil: a hand-crafted clock-model
/// algorithm versus the mechanically transformed Algorithm S.
pub struct BaselineRegister {
    node: NodeId,
    params: BaselineParams,
}

impl BaselineRegister {
    /// Creates node `i`'s automaton.
    #[must_use]
    pub fn new(node: NodeId, params: BaselineParams) -> Self {
        BaselineRegister { node, params }
    }

    /// The parameters in force.
    #[must_use]
    pub fn params(&self) -> &BaselineParams {
        &self.params
    }

    fn first_due(&self, s: &BaselineState, clock: Time) -> Option<PendingUpdate> {
        s.pending
            .first()
            .filter(|p| self.params.apply_threshold(p.key_time) <= clock)
            .copied()
    }

    fn insert(pending: &mut Vec<PendingUpdate>, p: PendingUpdate) {
        let pos = pending.partition_point(|q| *q <= p);
        pending.insert(pos, p);
    }
}

impl ClockComponent for BaselineRegister {
    type Action = RegAction;
    type State = BaselineState;

    fn name(&self) -> String {
        format!("baseline({})", self.node)
    }

    fn initial(&self) -> BaselineState {
        BaselineState {
            value: Value::INITIAL,
            read_due: None,
            write: None,
            pending: Vec::new(),
            msg_seq: 0,
        }
    }

    fn classify(&self, a: &RegAction) -> Option<ActionKind> {
        match a {
            SysAction::App(op) if op.node() == self.node => Some(match op {
                RegisterOp::Read { .. } | RegisterOp::Write { .. } => ActionKind::Input,
                RegisterOp::Return { .. } | RegisterOp::Ack { .. } => ActionKind::Output,
                RegisterOp::Update { .. } => ActionKind::Internal,
            }),
            SysAction::ESend(env, _) if env.src == self.node => Some(ActionKind::Output),
            SysAction::ERecv(env, _) if env.dst == self.node => Some(ActionKind::Input),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec![
            "READ", "WRITE", "RETURN", "ACK", "UPDATE", "ESENDMSG", "ERECVMSG",
        ])
    }

    fn step(&self, s: &BaselineState, a: &RegAction, clock: Time) -> Option<BaselineState> {
        match a {
            SysAction::App(RegisterOp::Read { node }) if *node == self.node => {
                let mut next = s.clone();
                next.read_due = Some(clock + self.params.read_latency());
                Some(next)
            }
            SysAction::App(RegisterOp::Write { node, value }) if *node == self.node => {
                let mut next = s.clone();
                let remaining: Vec<NodeId> = self
                    .params
                    .peers
                    .iter()
                    .copied()
                    .filter(|p| *p != self.node)
                    .collect();
                let send_clock = (!remaining.is_empty()).then_some(clock);
                next.write = Some(BaselineWrite {
                    value: *value,
                    remaining,
                    send_clock,
                    ack_clock: clock + self.params.write_latency(),
                });
                Self::insert(
                    &mut next.pending,
                    PendingUpdate {
                        key_time: clock,
                        key_node: self.node,
                        value: *value,
                    },
                );
                Some(next)
            }
            SysAction::App(RegisterOp::Return { node, value }) if *node == self.node => {
                if s.read_due != Some(clock)
                    || s.value != *value
                    || self.first_due(s, clock).is_some()
                {
                    return None;
                }
                let mut next = s.clone();
                next.read_due = None;
                Some(next)
            }
            SysAction::App(RegisterOp::Ack { node }) if *node == self.node => {
                let w = s.write.as_ref()?;
                if !w.remaining.is_empty() || w.ack_clock != clock {
                    return None;
                }
                let mut next = s.clone();
                next.write = None;
                Some(next)
            }
            SysAction::App(RegisterOp::Update { node, due }) if *node == self.node => {
                let first = self.first_due(s, clock)?;
                if self.params.apply_threshold(first.key_time) != *due {
                    return None;
                }
                let mut next = s.clone();
                next.value = first.value;
                next.pending.remove(0);
                Some(next)
            }
            SysAction::ESend(env, stamp) if env.src == self.node => {
                let w = s.write.as_ref()?;
                if w.send_clock != Some(clock)
                    || *stamp != clock
                    || env.payload.value != w.value
                    || env.payload.base != clock
                    || env.id != MsgId::from_parts(self.node, s.msg_seq)
                    || !w.remaining.contains(&env.dst)
                {
                    return None;
                }
                let mut next = s.clone();
                let nw = next.write.as_mut().expect("checked above");
                nw.remaining.retain(|p| *p != env.dst);
                if nw.remaining.is_empty() {
                    nw.send_clock = None;
                }
                next.msg_seq += 1;
                Some(next)
            }
            SysAction::ERecv(env, _) if env.dst == self.node => {
                let mut next = s.clone();
                Self::insert(
                    &mut next.pending,
                    PendingUpdate {
                        key_time: env.payload.base,
                        key_node: env.src,
                        value: env.payload.value,
                    },
                );
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &BaselineState, clock: Time) -> Vec<RegAction> {
        let mut out = Vec::new();
        if let Some(first) = self.first_due(s, clock) {
            out.push(SysAction::App(RegisterOp::Update {
                node: self.node,
                due: self.params.apply_threshold(first.key_time),
            }));
        }
        if let Some(w) = &s.write {
            if w.send_clock == Some(clock) {
                for &j in &w.remaining {
                    out.push(SysAction::ESend(
                        Envelope {
                            src: self.node,
                            dst: j,
                            id: MsgId::from_parts(self.node, s.msg_seq),
                            payload: RegMsg {
                                value: w.value,
                                base: clock,
                            },
                        },
                        clock,
                    ));
                }
            }
            if w.remaining.is_empty() && w.ack_clock == clock {
                out.push(SysAction::App(RegisterOp::Ack { node: self.node }));
            }
        }
        if s.read_due == Some(clock) && self.first_due(s, clock).is_none() {
            out.push(SysAction::App(RegisterOp::Return {
                node: self.node,
                value: s.value,
            }));
        }
        out
    }

    fn clock_deadline(&self, s: &BaselineState, _clock: Time) -> Option<Time> {
        let mut m: Option<Time> = s.read_due;
        let mut consider = |t: Time| {
            m = Some(match m {
                Some(cur) => cur.min(t),
                None => t,
            });
        };
        if let Some(w) = &s.write {
            if let Some(sc) = w.send_clock {
                consider(sc);
            }
            consider(w.ack_clock);
        }
        if let Some(p) = s.pending.first() {
            consider(self.params.apply_threshold(p.key_time));
        }
        m
    }
}

/// Assembles the baseline's clock-model system: one
/// [`BaselineRegister`] per node on its own clock, clock channels on every
/// edge. The counterpart of [`psync_core::build_dc`] for the hand-crafted
/// algorithm (which needs no Simulation 1 buffers).
///
/// # Panics
///
/// Panics if `strategies` does not provide one strategy per node.
#[must_use]
pub fn build_baseline(
    topo: &psync_net::Topology,
    physical: psync_time::DelayBounds,
    eps: Duration,
    strategies: Vec<Box<dyn psync_executor::ClockStrategy>>,
    policy: impl Fn(NodeId, NodeId) -> Box<dyn psync_net::DelayPolicy>,
) -> psync_executor::EngineBuilder<RegAction> {
    assert_eq!(
        strategies.len(),
        topo.len(),
        "one clock strategy per node required"
    );
    let params = BaselineParams::new(topo.nodes().collect(), eps * 2, physical.max());
    let mut builder = psync_executor::EngineBuilder::default();
    for (i, strategy) in topo.nodes().zip(strategies) {
        builder = builder.clock_node(
            psync_executor::ClockNode::new(format!("baseline({i})"), eps, strategy)
                .with(BaselineRegister::new(i, params.clone())),
        );
    }
    for &(i, j) in topo.edges() {
        builder = builder.timed(
            psync_net::ClockChannel::<crate::RegMsg, crate::RegisterOp>::new(
                i,
                j,
                physical,
                policy(i, j),
            ),
        );
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn params() -> BaselineParams {
        // u = 2 ms, d2 = 10 ms → read 8 ms, write 16 ms.
        BaselineParams::new(vec![NodeId(0), NodeId(1), NodeId(2)], ms(2), ms(10))
    }

    fn alg() -> BaselineRegister {
        BaselineRegister::new(NodeId(0), params())
    }

    #[test]
    fn latency_formulas_match_section_6_3() {
        let p = params();
        assert_eq!(p.read_latency(), ms(8)); // 4u
        assert_eq!(p.write_latency(), ms(16)); // d2 + 3u
    }

    #[test]
    fn read_waits_4u() {
        let a = alg();
        let s1 = a
            .step(
                &a.initial(),
                &SysAction::App(RegisterOp::Read { node: NodeId(0) }),
                at(5),
            )
            .unwrap();
        assert_eq!(s1.read_due, Some(at(13)));
        assert!(a.enabled(&s1, at(12)).is_empty());
        assert_eq!(
            a.enabled(&s1, at(13)),
            vec![SysAction::App(RegisterOp::Return {
                node: NodeId(0),
                value: Value::INITIAL
            })]
        );
    }

    #[test]
    fn write_broadcasts_keyed_updates_and_acks_at_d2_plus_3u() {
        let a = alg();
        let mut s = a
            .step(
                &a.initial(),
                &SysAction::App(RegisterOp::Write {
                    node: NodeId(0),
                    value: Value(9),
                }),
                at(4),
            )
            .unwrap();
        // Own update buffered with key (4ms, n0); applies at 4+10+4 = 18ms.
        assert_eq!(s.pending.len(), 1);
        assert_eq!(a.clock_deadline(&s, at(4)), Some(at(4))); // sends pinned
        let sends = a.enabled(&s, at(4));
        assert_eq!(sends.len(), 2);
        let SysAction::ESend(env, stamp) = &sends[0] else {
            panic!("expected esend")
        };
        assert_eq!(*stamp, at(4));
        assert_eq!(env.payload.base, at(4));
        for send in &sends.clone() {
            if a.step(&s, send, at(4)).is_some() {
                s = a.step(&s, send, at(4)).unwrap();
            }
        }
        // One send consumed; the other regenerates with the next msg id.
        let sends2 = a.enabled(&s, at(4));
        assert_eq!(sends2.len(), 1);
        s = a.step(&s, &sends2[0], at(4)).unwrap();
        assert!(s.write.as_ref().unwrap().remaining.is_empty());
        // Update applies at 18 ms, ack at 4 + 16 = 20 ms.
        let upd = a.enabled(&s, at(18));
        assert_eq!(upd.len(), 1);
        s = a.step(&s, &upd[0], at(18)).unwrap();
        assert_eq!(s.value, Value(9));
        assert_eq!(
            a.enabled(&s, at(20)),
            vec![SysAction::App(RegisterOp::Ack { node: NodeId(0) })]
        );
    }

    #[test]
    fn updates_apply_in_key_order() {
        let a = alg();
        let mk = |src: usize, key_ms: i64, v: u64| {
            SysAction::ERecv(
                Envelope {
                    src: NodeId(src),
                    dst: NodeId(0),
                    id: MsgId::from_parts(NodeId(src), v as u32),
                    payload: RegMsg {
                        value: Value(v),
                        base: at(key_ms),
                    },
                },
                at(key_ms),
            )
        };
        let mut s = a.initial();
        // Later-keyed update arrives first.
        s = a.step(&s, &mk(2, 6, 22), at(7)).unwrap();
        s = a.step(&s, &mk(1, 5, 11), at(7)).unwrap();
        assert_eq!(s.pending[0].value, Value(11));
        // Thresholds: 5+14=19 and 6+14=20.
        assert_eq!(a.clock_deadline(&s, at(7)), Some(at(19)));
        let u1 = a.enabled(&s, at(19));
        assert_eq!(u1.len(), 1);
        s = a.step(&s, &u1[0], at(19)).unwrap();
        assert_eq!(s.value, Value(11));
        let u2 = a.enabled(&s, at(20));
        s = a.step(&s, &u2[0], at(20)).unwrap();
        assert_eq!(s.value, Value(22));
    }

    #[test]
    fn equal_key_times_tie_break_by_node_id() {
        let a = alg();
        let mk = |src: usize, v: u64| {
            SysAction::ERecv(
                Envelope {
                    src: NodeId(src),
                    dst: NodeId(0),
                    id: MsgId::from_parts(NodeId(src), 0),
                    payload: RegMsg {
                        value: Value(v),
                        base: at(5),
                    },
                },
                at(5),
            )
        };
        let mut s = a.initial();
        s = a.step(&s, &mk(2, 22), at(6)).unwrap();
        s = a.step(&s, &mk(1, 11), at(6)).unwrap();
        // Applies n1's then n2's: final value from the larger node id.
        let t = at(19);
        s = a.step(&s, &a.enabled(&s, t)[0], t).unwrap();
        assert_eq!(s.value, Value(11));
        s = a.step(&s, &a.enabled(&s, t)[0], t).unwrap();
        assert_eq!(s.value, Value(22));
    }

    #[test]
    fn due_updates_block_return() {
        let a = alg();
        let mut s = a
            .step(
                &a.initial(),
                &SysAction::App(RegisterOp::Read { node: NodeId(0) }),
                at(11),
            )
            .unwrap(); // returns at 19
        s = a
            .step(
                &s,
                &SysAction::ERecv(
                    Envelope {
                        src: NodeId(1),
                        dst: NodeId(0),
                        id: MsgId::from_parts(NodeId(1), 0),
                        payload: RegMsg {
                            value: Value(5),
                            base: at(5),
                        },
                    },
                    at(5),
                ),
                at(12),
            )
            .unwrap(); // threshold 19 too
        let en = a.enabled(&s, at(19));
        assert_eq!(en.len(), 1);
        assert!(matches!(en[0], SysAction::App(RegisterOp::Update { .. })));
        s = a.step(&s, &en[0], at(19)).unwrap();
        assert_eq!(
            a.enabled(&s, at(19)),
            vec![SysAction::App(RegisterOp::Return {
                node: NodeId(0),
                value: Value(5)
            })]
        );
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn zero_u_rejected() {
        let _ = BaselineParams::new(vec![NodeId(0)], Duration::ZERO, ms(1));
    }
}
