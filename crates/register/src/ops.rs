//! Register values, operations, and message payloads.

use core::fmt;

use psync_automata::Action;
use psync_net::NodeId;
use psync_time::Time;

/// A register value. Workloads write globally unique values, which keeps
/// the paper's proofs' structure and makes linearizability checking
/// polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(pub u64);

impl Value {
    /// The initial register value `v₀`.
    pub const INITIAL: Value = Value(0);

    /// A unique value for the `seq`-th write of `node` (bit-packed).
    #[must_use]
    pub fn unique(node: NodeId, seq: u32) -> Value {
        Value(((node.0 as u64 + 1) << 32) | u64::from(seq))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The application actions of a register node (Section 6.1/6.2):
/// invocations `READ_i` / `WRITE_i(v)` (inputs from the environment),
/// responses `RETURN_i(v)` / `ACK_i` (outputs), and the internal
/// `UPDATE_i` that applies a scheduled update to local memory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegisterOp {
    /// `READ_i` — read invocation at node `node`.
    Read {
        /// Invoked node.
        node: NodeId,
    },
    /// `WRITE_i(v)` — write invocation.
    Write {
        /// Invoked node.
        node: NodeId,
        /// Value to write.
        value: Value,
    },
    /// `RETURN_i(v)` — read response.
    Return {
        /// Responding node.
        node: NodeId,
        /// Value read.
        value: Value,
    },
    /// `ACK_i` — write response.
    Ack {
        /// Responding node.
        node: NodeId,
    },
    /// `UPDATE_i` — internal application of the update scheduled at
    /// `due` (disambiguates simultaneous updates in the action set).
    Update {
        /// Applying node.
        node: NodeId,
        /// The scheduled application time of the applied record.
        due: Time,
    },
}

impl RegisterOp {
    /// The node the action belongs to (the paper's action partition).
    #[must_use]
    pub fn node(&self) -> NodeId {
        match self {
            RegisterOp::Read { node }
            | RegisterOp::Write { node, .. }
            | RegisterOp::Return { node, .. }
            | RegisterOp::Ack { node }
            | RegisterOp::Update { node, .. } => *node,
        }
    }

    /// `true` for the invocation actions (`READ`, `WRITE`).
    #[must_use]
    pub fn is_invocation(&self) -> bool {
        matches!(self, RegisterOp::Read { .. } | RegisterOp::Write { .. })
    }

    /// `true` for the response actions (`RETURN`, `ACK`).
    #[must_use]
    pub fn is_response(&self) -> bool {
        matches!(self, RegisterOp::Return { .. } | RegisterOp::Ack { .. })
    }
}

impl Action for RegisterOp {
    fn name(&self) -> &'static str {
        match self {
            RegisterOp::Read { .. } => "READ",
            RegisterOp::Write { .. } => "WRITE",
            RegisterOp::Return { .. } => "RETURN",
            RegisterOp::Ack { .. } => "ACK",
            RegisterOp::Update { .. } => "UPDATE",
        }
    }
}

/// The message payload of the register algorithms: the `(v, t)` of
/// `UPDATE_j(v, t)` messages.
///
/// For [`AlgorithmS`](crate::AlgorithmS), `base` is the scheduled
/// application time `t = now + d'₂` (Figure 3: every receiver applies the
/// update at exactly `t + δ`). For the
/// [`BaselineRegister`](crate::BaselineRegister), `base` is the writer's
/// clock at the write (the first component of the update's ordering key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegMsg {
    /// The written value.
    pub value: Value,
    /// Algorithm-specific time base (see type docs).
    pub base: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_values_are_unique() {
        let a = Value::unique(NodeId(0), 1);
        let b = Value::unique(NodeId(1), 1);
        let c = Value::unique(NodeId(0), 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, Value::INITIAL);
        assert_ne!(Value::unique(NodeId(0), 0), Value::INITIAL);
    }

    #[test]
    fn op_classification_helpers() {
        let n = NodeId(3);
        assert!(RegisterOp::Read { node: n }.is_invocation());
        assert!(RegisterOp::Write {
            node: n,
            value: Value(1)
        }
        .is_invocation());
        assert!(RegisterOp::Return {
            node: n,
            value: Value(1)
        }
        .is_response());
        assert!(RegisterOp::Ack { node: n }.is_response());
        assert!(!RegisterOp::Update {
            node: n,
            due: Time::ZERO
        }
        .is_invocation());
        assert_eq!(RegisterOp::Ack { node: n }.node(), n);
    }

    #[test]
    fn action_names() {
        let n = NodeId(0);
        assert_eq!(RegisterOp::Read { node: n }.name(), "READ");
        assert_eq!(
            RegisterOp::Write {
                node: n,
                value: Value(1)
            }
            .name(),
            "WRITE"
        );
        assert_eq!(
            RegisterOp::Update {
                node: n,
                due: Time::ZERO
            }
            .name(),
            "UPDATE"
        );
    }

    #[test]
    fn value_display() {
        assert_eq!(Value(7).to_string(), "v7");
    }
}
