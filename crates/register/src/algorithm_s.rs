//! Algorithm S / Algorithm L: the timed automaton of Figure 3.

use psync_automata::{ActionKind, TimedComponent};
use psync_net::{Envelope, MsgId, NodeId, SysAction};
use psync_time::Time;

use crate::{RegAction, RegMsg, RegisterOp, RegisterParams, Value};

/// An in-progress write (the `write` record of Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteState {
    /// `write.send-value`.
    pub value: Value,
    /// `write.send-procs`: peers still owed an `UPDATE` message.
    pub remaining: Vec<NodeId>,
    /// `write.send-time`: the instant at which all sends occur
    /// (`None` once sending is complete).
    pub send_time: Option<Time>,
    /// `write.ack-time`: when `ACK_i` is due.
    pub ack_time: Time,
}

/// A scheduled update (an element of the `updates` record of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRec {
    /// `r.proc`: the writer (tie-break: larger wins).
    pub proc: NodeId,
    /// `r.value`.
    pub value: Value,
    /// `r.update-time`: the exact time the update applies (`t + δ`).
    pub due: Time,
}

/// State of an [`AlgorithmS`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgState {
    /// Local register copy (`value`, initially `v₀`).
    pub value: Value,
    /// Active read's scheduled return time (`read.time`), if any.
    pub read: Option<Time>,
    /// Active write, if any.
    pub write: Option<WriteState>,
    /// Scheduled updates, each with a distinct `due` (tie-broken by
    /// writer id per Figure 3's `RECVMSG` effect).
    pub updates: Vec<UpdateRec>,
    /// Counter for unique message ids.
    pub msg_seq: u32,
}

/// The timed automaton `S_i` of Figure 3 — and, with
/// [`RegisterParams::read_slack`] `= 0`, the simpler Algorithm L of
/// Section 6.1.
///
/// Behavior (all waits are *exact*, enforced by the `ν` deadline
/// `mintime`):
///
/// * `READ_i` → wait `read_slack + c + δ` → `RETURN_i(value)`, provided no
///   update is due at the very same instant (updates win ties — the `δ`
///   trick that makes same-time inputs precede outputs).
/// * `WRITE_i(v)` → immediately send `UPDATE(v, t)` with `t = now + d'₂`
///   to every peer → `ACK_i` at `now + (d'₂ − c)`.
/// * `RECVMSG_i(j, (v, t))` → schedule the update for exactly `t + δ`;
///   among updates scheduled for the same instant only the one from the
///   largest writer id survives.
/// * `UPDATE_i` (internal, at exactly `t + δ`) → `value := v`.
///
/// Because every node applies a given write's update at *exactly the same
/// time* `t + δ`, all local copies agree after every instant — the
/// linchpin of the linearizability proof (Section 6.1).
///
/// The write's "message to itself" is applied locally (scheduled directly
/// at `t + δ`) instead of travelling a self-loop channel; this is
/// behavior-identical because every receiver applies the update at the
/// same `t + δ` regardless of arrival time, and arrival always precedes
/// `t + δ` (channel delay `≤ d'₂ < d'₂ + δ`).
pub struct AlgorithmS {
    node: NodeId,
    params: RegisterParams,
}

impl AlgorithmS {
    /// Creates node `i`'s automaton.
    #[must_use]
    pub fn new(node: NodeId, params: RegisterParams) -> Self {
        AlgorithmS { node, params }
    }

    /// The parameters in force.
    #[must_use]
    pub fn params(&self) -> &RegisterParams {
        &self.params
    }

    /// Inserts `rec` into `updates` with Figure 3's tie-break: for equal
    /// `due`, the record from the larger writer id wins.
    fn schedule(updates: &mut Vec<UpdateRec>, rec: UpdateRec) {
        if let Some(existing) = updates.iter_mut().find(|r| r.due == rec.due) {
            if existing.proc < rec.proc {
                *existing = rec;
            }
        } else {
            updates.push(rec);
        }
    }

    /// The `mintime` derived variable of Figure 3.
    fn mintime(&self, s: &AlgState) -> Option<Time> {
        let mut m: Option<Time> = s.read;
        let mut consider = |t: Time| {
            m = Some(match m {
                Some(cur) => cur.min(t),
                None => t,
            });
        };
        if let Some(w) = &s.write {
            if let Some(st) = w.send_time {
                consider(st);
            }
            consider(w.ack_time);
        }
        for r in &s.updates {
            consider(r.due);
        }
        m
    }

    fn update_due_now(s: &AlgState, now: Time) -> Option<&UpdateRec> {
        s.updates.iter().find(|r| r.due == now)
    }
}

impl TimedComponent for AlgorithmS {
    type Action = RegAction;
    type State = AlgState;

    fn name(&self) -> String {
        format!("S({})", self.node)
    }

    fn initial(&self) -> AlgState {
        AlgState {
            value: Value::INITIAL,
            read: None,
            write: None,
            updates: Vec::new(),
            msg_seq: 0,
        }
    }

    fn classify(&self, a: &RegAction) -> Option<ActionKind> {
        match a {
            SysAction::App(op) if op.node() == self.node => Some(match op {
                RegisterOp::Read { .. } | RegisterOp::Write { .. } => ActionKind::Input,
                RegisterOp::Return { .. } | RegisterOp::Ack { .. } => ActionKind::Output,
                RegisterOp::Update { .. } => ActionKind::Internal,
            }),
            SysAction::Send(env) if env.src == self.node => Some(ActionKind::Output),
            SysAction::Recv(env) if env.dst == self.node => Some(ActionKind::Input),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec![
            "READ", "WRITE", "RETURN", "ACK", "UPDATE", "SENDMSG", "RECVMSG",
        ])
    }

    fn step(&self, s: &AlgState, a: &RegAction, now: Time) -> Option<AlgState> {
        match a {
            SysAction::App(RegisterOp::Read { node }) if *node == self.node => {
                // READ_i: read := (active, now + read_slack + c + δ).
                let mut next = s.clone();
                next.read = Some(now + self.params.read_slack + self.params.c + self.params.delta);
                Some(next)
            }
            SysAction::App(RegisterOp::Write { node, value }) if *node == self.node => {
                // WRITE_i(v): broadcast set, send instant, ack time; the
                // self-update is scheduled directly.
                let mut next = s.clone();
                let remaining: Vec<NodeId> = self
                    .params
                    .peers
                    .iter()
                    .copied()
                    .filter(|p| *p != self.node)
                    .collect();
                let send_time = (!remaining.is_empty()).then_some(now);
                next.write = Some(WriteState {
                    value: *value,
                    remaining,
                    send_time,
                    ack_time: now + (self.params.d2_virtual - self.params.c),
                });
                Self::schedule(
                    &mut next.updates,
                    UpdateRec {
                        proc: self.node,
                        value: *value,
                        due: now + self.params.d2_virtual + self.params.delta,
                    },
                );
                Some(next)
            }
            SysAction::App(RegisterOp::Return { node, value }) if *node == self.node => {
                // RETURN_i(v): at exactly read.time, with the current
                // value, after any same-instant updates.
                if s.read != Some(now) || s.value != *value {
                    return None;
                }
                if Self::update_due_now(s, now).is_some() {
                    return None;
                }
                let mut next = s.clone();
                next.read = None;
                Some(next)
            }
            SysAction::App(RegisterOp::Ack { node }) if *node == self.node => {
                let w = s.write.as_ref()?;
                if !w.remaining.is_empty() || w.ack_time != now {
                    return None;
                }
                let mut next = s.clone();
                next.write = None;
                Some(next)
            }
            SysAction::App(RegisterOp::Update { node, due }) if *node == self.node => {
                // UPDATE_i: apply the (unique) record due exactly now.
                if *due != now {
                    return None;
                }
                let rec = *Self::update_due_now(s, now)?;
                let mut next = s.clone();
                next.value = rec.value;
                next.updates.retain(|r| r.due != now);
                Some(next)
            }
            SysAction::Send(env) if env.src == self.node => {
                // SENDMSG_i(j, (v, t)) with t = now + d'₂, at the write
                // instant, to a peer still owed the update.
                let w = s.write.as_ref()?;
                if w.send_time != Some(now)
                    || env.payload.value != w.value
                    || env.payload.base != now + self.params.d2_virtual
                    || env.id != MsgId::from_parts(self.node, s.msg_seq)
                    || !w.remaining.contains(&env.dst)
                {
                    return None;
                }
                let mut next = s.clone();
                let nw = next.write.as_mut().expect("write checked above");
                nw.remaining.retain(|p| *p != env.dst);
                if nw.remaining.is_empty() {
                    nw.send_time = None;
                }
                next.msg_seq += 1;
                Some(next)
            }
            SysAction::Recv(env) if env.dst == self.node => {
                // RECVMSG_i(j, (v, t)): schedule at t + δ with tie-break.
                let mut next = s.clone();
                Self::schedule(
                    &mut next.updates,
                    UpdateRec {
                        proc: env.src,
                        value: env.payload.value,
                        due: env.payload.base + self.params.delta,
                    },
                );
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &AlgState, now: Time) -> Vec<RegAction> {
        let mut out = Vec::new();
        for r in &s.updates {
            if r.due == now {
                out.push(SysAction::App(RegisterOp::Update {
                    node: self.node,
                    due: now,
                }));
            }
        }
        if let Some(w) = &s.write {
            if w.send_time == Some(now) {
                for &j in &w.remaining {
                    out.push(SysAction::Send(Envelope {
                        src: self.node,
                        dst: j,
                        id: MsgId::from_parts(self.node, s.msg_seq),
                        payload: RegMsg {
                            value: w.value,
                            base: now + self.params.d2_virtual,
                        },
                    }));
                }
            }
            if w.remaining.is_empty() && w.ack_time == now {
                out.push(SysAction::App(RegisterOp::Ack { node: self.node }));
            }
        }
        if s.read == Some(now) && Self::update_due_now(s, now).is_none() {
            out.push(SysAction::App(RegisterOp::Return {
                node: self.node,
                value: s.value,
            }));
        }
        out
    }

    fn deadline(&self, s: &AlgState, _now: Time) -> Option<Time> {
        self.mintime(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_net::Topology;
    use psync_time::{DelayBounds, Duration};

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn params() -> RegisterParams {
        // d'₂ = 10 ms, c = 3 ms, δ = 1 ms, L flavour.
        RegisterParams::for_timed_model(
            &Topology::complete(3),
            DelayBounds::new(ms(1), ms(10)).unwrap(),
            ms(3),
            ms(1),
        )
    }

    fn alg() -> AlgorithmS {
        AlgorithmS::new(NodeId(0), params())
    }

    fn read(n: usize) -> RegAction {
        SysAction::App(RegisterOp::Read { node: NodeId(n) })
    }

    fn write(n: usize, v: u64) -> RegAction {
        SysAction::App(RegisterOp::Write {
            node: NodeId(n),
            value: Value(v),
        })
    }

    #[test]
    fn read_returns_initial_value_after_exact_wait() {
        let a = alg();
        let s0 = a.initial();
        let s1 = a.step(&s0, &read(0), at(5)).unwrap();
        // read time = 5 + 0 + 3 + 1 = 9 ms.
        assert_eq!(s1.read, Some(at(9)));
        assert_eq!(a.deadline(&s1, at(5)), Some(at(9)));
        assert!(a.enabled(&s1, at(8)).is_empty());
        let en = a.enabled(&s1, at(9));
        assert_eq!(
            en,
            vec![SysAction::App(RegisterOp::Return {
                node: NodeId(0),
                value: Value::INITIAL
            })]
        );
        let s2 = a.step(&s1, &en[0], at(9)).unwrap();
        assert_eq!(s2.read, None);
    }

    #[test]
    fn write_sends_to_all_peers_then_acks() {
        let a = alg();
        let s0 = a.initial();
        let s1 = a.step(&s0, &write(0, 42), at(2)).unwrap();
        let w = s1.write.as_ref().unwrap();
        assert_eq!(w.remaining, vec![NodeId(1), NodeId(2)]);
        assert_eq!(w.send_time, Some(at(2)));
        assert_eq!(w.ack_time, at(2) + ms(7)); // d'₂ − c = 7
                                               // Self-update scheduled at 2 + 10 + 1 = 13 ms.
        assert_eq!(s1.updates.len(), 1);
        assert_eq!(s1.updates[0].due, at(13));

        // Both sends enabled at the write instant; ν is pinned there.
        let sends = a.enabled(&s1, at(2));
        assert_eq!(sends.len(), 2);
        assert_eq!(a.deadline(&s1, at(2)), Some(at(2)));
        let s2 = a.step(&s1, &sends[0], at(2)).unwrap();
        let s3 = a.step(&s2, &a.enabled(&s2, at(2))[0], at(2)).unwrap();
        assert!(s3.write.as_ref().unwrap().remaining.is_empty());
        assert_eq!(s3.write.as_ref().unwrap().send_time, None);
        assert_eq!(s3.msg_seq, 2);

        // ACK at exactly ack_time.
        assert!(a.enabled(&s3, at(8)).is_empty());
        let acks = a.enabled(&s3, at(9));
        assert_eq!(
            acks,
            vec![SysAction::App(RegisterOp::Ack { node: NodeId(0) })]
        );
        let s4 = a.step(&s3, &acks[0], at(9)).unwrap();
        assert!(s4.write.is_none());
    }

    #[test]
    fn sends_carry_scheduled_apply_time() {
        let a = alg();
        let s1 = a.step(&a.initial(), &write(0, 42), at(2)).unwrap();
        let sends = a.enabled(&s1, at(2));
        let SysAction::Send(env) = &sends[0] else {
            panic!("expected send")
        };
        assert_eq!(env.payload.base, at(12)); // now + d'₂
        assert_eq!(env.payload.value, Value(42));
        assert_eq!(env.src, NodeId(0));
    }

    #[test]
    fn recv_schedules_update_at_base_plus_delta() {
        let a = alg();
        let env = Envelope {
            src: NodeId(2),
            dst: NodeId(0),
            id: MsgId::from_parts(NodeId(2), 0),
            payload: RegMsg {
                value: Value(7),
                base: at(12),
            },
        };
        let s1 = a.step(&a.initial(), &SysAction::Recv(env), at(5)).unwrap();
        assert_eq!(s1.updates.len(), 1);
        assert_eq!(s1.updates[0].due, at(13));
        // The update applies at exactly 13 ms and changes the value.
        let en = a.enabled(&s1, at(13));
        assert_eq!(en.len(), 1);
        let s2 = a.step(&s1, &en[0], at(13)).unwrap();
        assert_eq!(s2.value, Value(7));
        assert!(s2.updates.is_empty());
    }

    #[test]
    fn same_instant_updates_tie_break_by_writer_id() {
        let a = alg();
        let mk = |src: usize, v: u64| {
            SysAction::Recv(Envelope {
                src: NodeId(src),
                dst: NodeId(0),
                id: MsgId::from_parts(NodeId(src), 0),
                payload: RegMsg {
                    value: Value(v),
                    base: at(12),
                },
            })
        };
        let mut s = a.initial();
        s = a.step(&s, &mk(1, 11), at(5)).unwrap();
        s = a.step(&s, &mk(2, 22), at(6)).unwrap(); // larger id wins
        assert_eq!(s.updates.len(), 1);
        assert_eq!(s.updates[0].value, Value(22));
        assert_eq!(s.updates[0].proc, NodeId(2));
        // A smaller id arriving later does not displace it.
        let s2 = a.step(&s, &mk(1, 33), at(7)).unwrap();
        assert_eq!(s2.updates[0].value, Value(22));
    }

    #[test]
    fn update_due_now_blocks_return() {
        let a = alg();
        let mut s = a.initial();
        s = a.step(&s, &read(0), at(9)).unwrap(); // returns at 13
        let env = Envelope {
            src: NodeId(2),
            dst: NodeId(0),
            id: MsgId::from_parts(NodeId(2), 0),
            payload: RegMsg {
                value: Value(7),
                base: at(12),
            },
        };
        s = a.step(&s, &SysAction::Recv(env), at(10)).unwrap(); // update due 13
                                                                // At 13 ms only the update is enabled; after it applies, the
                                                                // return sees the fresh value.
        let en = a.enabled(&s, at(13));
        assert_eq!(en.len(), 1);
        assert!(matches!(en[0], SysAction::App(RegisterOp::Update { .. })));
        s = a.step(&s, &en[0], at(13)).unwrap();
        let en2 = a.enabled(&s, at(13));
        assert_eq!(
            en2,
            vec![SysAction::App(RegisterOp::Return {
                node: NodeId(0),
                value: Value(7)
            })]
        );
    }

    #[test]
    fn s_flavour_adds_read_slack() {
        let topo = Topology::complete(2);
        let physical = DelayBounds::new(ms(1), ms(10)).unwrap();
        let p = RegisterParams::for_clock_model(&topo, physical, ms(1), ms(3), ms(1));
        let a = AlgorithmS::new(NodeId(0), p);
        let s1 = a.step(&a.initial(), &read(0), at(5)).unwrap();
        // read time = 5 + 2ε + c + δ = 5 + 2 + 3 + 1 = 11.
        assert_eq!(s1.read, Some(at(11)));
    }

    #[test]
    fn foreign_actions_not_in_signature() {
        let a = alg();
        assert_eq!(a.classify(&read(1)), None);
        assert_eq!(a.classify(&write(1, 5)), None);
        assert_eq!(a.classify(&SysAction::Tau { node: NodeId(0) }), None);
        assert_eq!(a.classify(&read(0)), Some(ActionKind::Input));
    }

    #[test]
    fn single_node_write_acks_without_sends() {
        let topo = Topology::new(1, []);
        let p = RegisterParams::for_timed_model(
            &topo,
            DelayBounds::new(ms(1), ms(10)).unwrap(),
            ms(3),
            ms(1),
        );
        let a = AlgorithmS::new(NodeId(0), p);
        let s1 = a.step(&a.initial(), &write(0, 5), at(0)).unwrap();
        let w = s1.write.as_ref().unwrap();
        assert!(w.remaining.is_empty());
        // No sends enabled; ack at d'₂ − c = 7 ms; self-update at 11 ms.
        assert_eq!(a.enabled(&s1, at(0)).len(), 0);
        assert_eq!(a.enabled(&s1, at(7)).len(), 1);
    }
}
