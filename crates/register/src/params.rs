//! Tuning parameters of Algorithms L and S.

use psync_net::{NodeId, Topology};
use psync_time::{DelayBounds, Duration};

/// Parameters of [`AlgorithmS`](crate::AlgorithmS) (Figure 3 of the
/// paper), which subsumes Algorithm L.
///
/// * `d2_virtual` — the `d'₂` the algorithm is designed against: the upper
///   message delay of the *model the automaton runs in*. For a pure
///   timed-model deployment this is the link's `d₂`; for a clock-model
///   deployment via Theorem 4.7 it is `d₂ + 2ε`
///   ([`DelayBounds::widen_for_skew`]); for an MMT deployment via
///   Theorem 5.2, `d₂ + 2ε + kℓ`.
/// * `c` — the read/write trade-off knob: read time grows with `c`, write
///   time shrinks (`0 ≤ c ≤ d'₂ − 2ε`, Section 6.1).
/// * `delta` — the settling slack `δ`: an arbitrarily small extra wait
///   ensuring outputs at a time `t` see all inputs at `t` (Section 6.1's
///   adaptation of \[10\] to the timed automaton model).
/// * `read_slack` — `0` for Algorithm L (plain linearizability in the
///   timed model), `2ε` for Algorithm S (ε-superlinearizability, the
///   property that survives the clock transformation, Section 6.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterParams {
    /// All nodes that receive updates (the broadcast set `P`).
    pub peers: Vec<NodeId>,
    /// The design-model upper message delay `d'₂`.
    pub d2_virtual: Duration,
    /// The read/write trade-off `c`.
    pub c: Duration,
    /// The settling slack `δ`.
    pub delta: Duration,
    /// Extra read delay: `0` (Algorithm L) or `2ε` (Algorithm S).
    pub read_slack: Duration,
}

impl RegisterParams {
    /// Parameters for Algorithm L in the **timed model** over links with
    /// the given bounds: read `c + δ`, write `d₂ − c` (Lemma 6.1).
    ///
    /// # Panics
    ///
    /// Panics if `c` or `delta` is negative or `c > d₂`.
    #[must_use]
    pub fn for_timed_model(
        topo: &Topology,
        bounds: DelayBounds,
        c: Duration,
        delta: Duration,
    ) -> Self {
        let p = RegisterParams {
            peers: topo.nodes().collect(),
            d2_virtual: bounds.max(),
            c,
            delta,
            read_slack: Duration::ZERO,
        };
        p.validate();
        p
    }

    /// Parameters for Algorithm S destined for the **clock model** via
    /// Theorem 4.7: designed against `d'₂ = d₂ + 2ε` with read slack `2ε`.
    /// By Theorem 6.5 the transformed algorithm solves linearizability
    /// with read time `2ε + δ + c` and write time `d₂ + 2ε − c`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (`c > d'₂ − 2ε`, negative
    /// durations).
    #[must_use]
    pub fn for_clock_model(
        topo: &Topology,
        physical: DelayBounds,
        eps: Duration,
        c: Duration,
        delta: Duration,
    ) -> Self {
        assert!(!eps.is_negative(), "eps must be non-negative");
        let virtual_bounds = physical.widen_for_skew(eps);
        assert!(
            c <= virtual_bounds.max() - eps * 2,
            "c must be at most d'₂ − 2ε (Section 6.1)"
        );
        let p = RegisterParams {
            peers: topo.nodes().collect(),
            d2_virtual: virtual_bounds.max(),
            c,
            delta,
            read_slack: eps * 2,
        };
        p.validate();
        p
    }

    fn validate(&self) {
        assert!(!self.c.is_negative(), "c must be non-negative");
        assert!(
            self.delta.is_positive(),
            "delta must be strictly positive: updates are applied exactly δ after \
             their scheduled base, and δ = 0 would race update application \
             against message arrival"
        );
        assert!(
            !self.read_slack.is_negative(),
            "read slack must be non-negative"
        );
        assert!(
            self.c <= self.d2_virtual,
            "c={} exceeds d'₂={}",
            self.c,
            self.d2_virtual
        );
        assert!(!self.peers.is_empty(), "at least one node required");
    }

    /// The algorithm's read time complexity: `read_slack + c + δ`
    /// (Lemma 6.1 / 6.2 / Theorem 6.5).
    #[must_use]
    pub fn read_latency(&self) -> Duration {
        self.read_slack + self.c + self.delta
    }

    /// The algorithm's write time complexity: `d'₂ − c` (Lemma 6.1 / 6.2;
    /// equals `d₂ + 2ε − c` for clock-model parameters, Theorem 6.5).
    #[must_use]
    pub fn write_latency(&self) -> Duration {
        self.d2_virtual - self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn timed_model_latencies_match_lemma_6_1() {
        let topo = Topology::complete(3);
        let bounds = DelayBounds::new(ms(1), ms(10)).unwrap();
        let p = RegisterParams::for_timed_model(&topo, bounds, ms(4), Duration::from_micros(1));
        assert_eq!(p.read_latency(), ms(4) + Duration::from_micros(1));
        assert_eq!(p.write_latency(), ms(6));
        assert_eq!(p.read_slack, Duration::ZERO);
        assert_eq!(p.peers.len(), 3);
    }

    #[test]
    fn clock_model_latencies_match_theorem_6_5() {
        let topo = Topology::complete(2);
        let physical = DelayBounds::new(ms(1), ms(10)).unwrap();
        let eps = ms(1);
        let p = RegisterParams::for_clock_model(&topo, physical, eps, ms(3), ms(1));
        // d'₂ = d₂ + 2ε = 12; read = 2ε + c + δ = 2+3+1; write = d'₂ − c = 9.
        assert_eq!(p.d2_virtual, ms(12));
        assert_eq!(p.read_latency(), ms(6));
        assert_eq!(p.write_latency(), ms(9));
    }

    #[test]
    #[should_panic(expected = "c must be at most")]
    fn c_beyond_trade_off_range_rejected() {
        let topo = Topology::complete(2);
        let physical = DelayBounds::new(ms(1), ms(10)).unwrap();
        let _ = RegisterParams::for_clock_model(&topo, physical, ms(1), ms(11), ms(1));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn c_beyond_d2_rejected() {
        let topo = Topology::complete(2);
        let bounds = DelayBounds::new(ms(1), ms(10)).unwrap();
        let _ = RegisterParams::for_timed_model(&topo, bounds, ms(11), ms(1));
    }
}
