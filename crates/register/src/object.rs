//! Generalized shared objects — the "other shared memory objects" the
//! paper defers to its full version (end of Section 6).
//!
//! Algorithm S never inspects the *value* it replicates: writes broadcast
//! an opaque update applied at the same scheduled instant `t + d'₂ + δ` on
//! every replica, and reads return the local copy after a fixed wait. That
//! structure works verbatim for any object whose operations split into
//! **blind updates** (no return value — their effect is a pure state
//! transformation) and **queries** (no effect — they report a function of
//! the state): counters, sets, append logs, … — with one adjustment: where
//! the register drops all but one same-instant update (last-writer-wins),
//! a general object must apply *all* same-instant updates in a canonical
//! (writer id) order, or increments would be lost.
//!
//! [`ObjectSpec`] captures such an object; [`Register`], [`Counter`] and
//! [`GrowSet`] are instances; [`AlgorithmSObj`](crate::AlgorithmSObj) is
//! the generalized Figure 3 automaton with the same latency formulas as
//! Theorem 6.5.

use core::fmt::Debug;
use core::hash::Hash;

/// A replicated-object type: state, blind updates, and a query.
///
/// `apply` must be a pure function — every replica applies the same
/// updates in the same order at the same scheduled times, which is the
/// whole linearizability argument of Section 6.1 ("all local memories are
/// always consistent after each real time").
pub trait ObjectSpec: Clone + Debug + 'static {
    /// Replica state.
    type State: Clone + Eq + Hash + Debug + 'static;
    /// A blind update (the generalized "written value").
    type Update: Clone + Eq + Hash + Debug + 'static;
    /// What a query returns.
    type Output: Clone + Eq + Hash + Debug + 'static;

    /// The initial state (the generalized `v₀`).
    fn initial(&self) -> Self::State;

    /// Applies an update.
    fn apply(&self, state: &Self::State, update: &Self::Update) -> Self::State;

    /// Answers a query.
    fn query(&self, state: &Self::State) -> Self::Output;
}

/// The read-write register as an [`ObjectSpec`] — recovering Section 6
/// exactly (an update overwrites, a query reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Register;

impl ObjectSpec for Register {
    type State = crate::Value;
    type Update = crate::Value;
    type Output = crate::Value;

    fn initial(&self) -> Self::State {
        crate::Value::INITIAL
    }

    fn apply(&self, _state: &Self::State, update: &Self::Update) -> Self::State {
        *update
    }

    fn query(&self, state: &Self::State) -> Self::Output {
        *state
    }
}

/// A counter: updates add a signed amount, queries read the total.
/// Updates commute, but the framework does not rely on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter;

impl ObjectSpec for Counter {
    type State = i64;
    type Update = i64;
    type Output = i64;

    fn initial(&self) -> Self::State {
        0
    }

    fn apply(&self, state: &Self::State, update: &Self::Update) -> Self::State {
        state + update
    }

    fn query(&self, state: &Self::State) -> Self::Output {
        *state
    }
}

/// A grow-only set over small integers, state packed into a bitmask (so it
/// stays `Copy + Hash` for the checker's memoization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GrowSet;

impl ObjectSpec for GrowSet {
    /// Bitmask of present elements `0..128`.
    type State = u128;
    /// The element to insert (`< 128`).
    type Update = u8;
    /// The full membership bitmask.
    type Output = u128;

    fn initial(&self) -> Self::State {
        0
    }

    fn apply(&self, state: &Self::State, update: &Self::Update) -> Self::State {
        assert!(*update < 128, "GrowSet elements must be < 128");
        state | (1u128 << update)
    }

    fn query(&self, state: &Self::State) -> Self::Output {
        *state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn register_spec_overwrites() {
        let r = Register;
        let s0 = r.initial();
        assert_eq!(s0, Value::INITIAL);
        let s1 = r.apply(&s0, &Value(7));
        let s2 = r.apply(&s1, &Value(9));
        assert_eq!(r.query(&s2), Value(9));
    }

    #[test]
    fn counter_spec_accumulates() {
        let c = Counter;
        let mut s = c.initial();
        for d in [5i64, -2, 10] {
            s = c.apply(&s, &d);
        }
        assert_eq!(c.query(&s), 13);
    }

    #[test]
    fn counter_updates_commute_but_order_is_still_canonical() {
        let c = Counter;
        let ab = c.apply(&c.apply(&c.initial(), &3), &4);
        let ba = c.apply(&c.apply(&c.initial(), &4), &3);
        assert_eq!(ab, ba);
    }

    #[test]
    fn grow_set_accumulates_membership() {
        let g = GrowSet;
        let mut s = g.initial();
        for e in [3u8, 64, 3] {
            s = g.apply(&s, &e);
        }
        assert_eq!(g.query(&s), (1u128 << 3) | (1u128 << 64));
    }

    #[test]
    #[should_panic(expected = "must be < 128")]
    fn grow_set_range_checked() {
        let g = GrowSet;
        let _ = g.apply(&g.initial(), &200);
    }
}
