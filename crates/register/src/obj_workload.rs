//! A seeded closed-loop client for generalized objects.

use psync_automata::{ActionKind, TimedComponent};
use psync_net::{NodeId, SysAction, Topology};
use psync_time::{DelayBounds, Duration, Time};

use crate::object::ObjectSpec;
use crate::{ObjAction, ObjOp};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle(Time),
    Waiting,
    Done,
}

/// State of an [`ObjWorkload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjWorkloadState {
    phases: Vec<Phase>,
    done_ops: Vec<u32>,
}

/// The generalized-object sibling of
/// [`ClosedLoopWorkload`](crate::ClosedLoopWorkload): per node, issue an
/// operation, await the response, think, repeat. The update/query mix is
/// seeded 50/50; update payloads come from a caller-supplied generator
/// (which should make them distinguishable per `(node, index)` when the
/// object benefits from it).
pub struct ObjWorkload<O: ObjectSpec> {
    nodes: usize,
    seed: u64,
    think: DelayBounds,
    ops_per_node: u32,
    #[allow(clippy::type_complexity)]
    gen_update: Box<dyn Fn(NodeId, u32) -> O::Update>,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<O: ObjectSpec> ObjWorkload<O> {
    /// Creates a workload for every node of `topo` with the given update
    /// generator.
    #[must_use]
    pub fn new(
        topo: &Topology,
        seed: u64,
        think: DelayBounds,
        ops_per_node: u32,
        gen_update: impl Fn(NodeId, u32) -> O::Update + 'static,
    ) -> Self {
        ObjWorkload {
            nodes: topo.len(),
            seed,
            think,
            ops_per_node,
            gen_update: Box::new(gen_update),
        }
    }

    fn rng(&self, node: usize, op: u32, salt: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64((node as u64) << 32 | u64::from(op)) ^ salt)
    }

    fn op_for(&self, node: usize, op: u32) -> ObjOp<O> {
        if self.rng(node, op, 0xAB) & 1 == 0 {
            ObjOp::Query { node: NodeId(node) }
        } else {
            ObjOp::Do {
                node: NodeId(node),
                update: (self.gen_update)(NodeId(node), op),
            }
        }
    }

    fn think_for(&self, node: usize, op: u32) -> Duration {
        let width = self.think.width().as_nanos();
        if width == 0 {
            return self.think.min();
        }
        let off = (self.rng(node, op, 0xCD) % (width as u64 + 1)) as i64;
        self.think.min() + Duration::from_nanos(off)
    }
}

impl<O: ObjectSpec> TimedComponent for ObjWorkload<O> {
    type Action = ObjAction<O>;
    type State = ObjWorkloadState;

    fn name(&self) -> String {
        format!("obj-workload({} nodes, seed {})", self.nodes, self.seed)
    }

    fn initial(&self) -> ObjWorkloadState {
        ObjWorkloadState {
            phases: (0..self.nodes)
                .map(|i| {
                    if self.ops_per_node == 0 {
                        Phase::Done
                    } else {
                        Phase::Idle(Time::ZERO + self.think_for(i, 0))
                    }
                })
                .collect(),
            done_ops: vec![0; self.nodes],
        }
    }

    fn classify(&self, a: &ObjAction<O>) -> Option<ActionKind> {
        match a {
            SysAction::App(op) if op.node().0 < self.nodes => {
                if op.is_invocation() {
                    Some(ActionKind::Output)
                } else if op.is_response() {
                    Some(ActionKind::Input)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["DO", "DONE", "QUERY", "ANSWER", "APPLY"])
    }

    fn step(&self, s: &ObjWorkloadState, a: &ObjAction<O>, now: Time) -> Option<ObjWorkloadState> {
        let SysAction::App(op) = a else { return None };
        let i = op.node().0;
        if i >= self.nodes {
            return None;
        }
        if op.is_invocation() {
            let Phase::Idle(due) = s.phases[i] else {
                return None;
            };
            if now < due || *op != self.op_for(i, s.done_ops[i]) {
                return None;
            }
            let mut next = s.clone();
            next.phases[i] = Phase::Waiting;
            Some(next)
        } else if op.is_response() {
            let mut next = s.clone();
            if s.phases[i] == Phase::Waiting {
                let done = s.done_ops[i] + 1;
                next.done_ops[i] = done;
                next.phases[i] = if done >= self.ops_per_node {
                    Phase::Done
                } else {
                    Phase::Idle(now + self.think_for(i, done))
                };
            }
            Some(next)
        } else {
            None
        }
    }

    fn enabled(&self, s: &ObjWorkloadState, now: Time) -> Vec<ObjAction<O>> {
        let mut out = Vec::new();
        for (i, phase) in s.phases.iter().enumerate() {
            if let Phase::Idle(due) = phase {
                if now >= *due {
                    out.push(SysAction::App(self.op_for(i, s.done_ops[i])));
                }
            }
        }
        out
    }

    fn deadline(&self, s: &ObjWorkloadState, _now: Time) -> Option<Time> {
        s.phases
            .iter()
            .filter_map(|p| match p {
                Phase::Idle(due) => Some(*due),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Counter;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn wl(seed: u64) -> ObjWorkload<Counter> {
        ObjWorkload::new(
            &Topology::complete(2),
            seed,
            DelayBounds::new(ms(1), ms(3)).unwrap(),
            4,
            |node, k| (node.0 as i64 + 1) * 100 + i64::from(k),
        )
    }

    #[test]
    fn mix_contains_both_op_kinds() {
        let w = wl(3);
        let ops: Vec<ObjOp<Counter>> = (0..32).map(|k| w.op_for(0, k)).collect();
        assert!(ops.iter().any(|o| matches!(o, ObjOp::Do { .. })));
        assert!(ops.iter().any(|o| matches!(o, ObjOp::Query { .. })));
    }

    #[test]
    fn closed_loop_discipline() {
        let w = wl(5);
        let mut s = w.initial();
        let due = match s.phases[0] {
            Phase::Idle(d) => d,
            _ => panic!(),
        };
        let op = w.op_for(0, 0);
        s = w.step(&s, &SysAction::App(op.clone()), due).unwrap();
        assert_eq!(s.phases[0], Phase::Waiting);
        // Respond.
        let resp = match op {
            ObjOp::Do { node, .. } => ObjOp::Done { node },
            ObjOp::Query { node } => ObjOp::Answer { node, output: 0 },
            _ => unreachable!(),
        };
        s = w.step(&s, &SysAction::App(resp), due + ms(5)).unwrap();
        assert_eq!(s.done_ops[0], 1);
    }

    #[test]
    fn update_payloads_come_from_generator() {
        let w = wl(7);
        for k in 0..16 {
            if let ObjOp::Do { update, .. } = w.op_for(1, k) {
                assert_eq!(update, 200 + i64::from(k));
            }
        }
    }
}
