//! The generalized Figure 3 automaton: Algorithm S for any
//! [`ObjectSpec`] — the "other shared memory objects" extension the paper
//! defers to its full version (end of Section 6).
//!
//! Identical skeleton and latency formulas as [`AlgorithmS`]
//! (read/query `read_slack + c + δ`, update `d'₂ − c`), with one semantic
//! generalization documented at [`crate::object`]: *all* same-instant
//! updates apply, in writer-id order, instead of last-writer-wins.
//!
//! [`AlgorithmS`]: crate::AlgorithmS

use core::fmt;
use core::hash::{Hash, Hasher};

use psync_automata::{Action, ActionKind, TimedComponent};
use psync_net::{Envelope, MsgId, NodeId, SysAction};
use psync_time::Time;

use crate::object::ObjectSpec;
use crate::RegisterParams;

/// Application actions of a generalized object node.
pub enum ObjOp<O: ObjectSpec> {
    /// `DO_i(u)` — update invocation (input).
    Do {
        /// Invoked node.
        node: NodeId,
        /// The blind update.
        update: O::Update,
    },
    /// `DONE_i` — update response (output).
    Done {
        /// Responding node.
        node: NodeId,
    },
    /// `QUERY_i` — query invocation (input).
    Query {
        /// Invoked node.
        node: NodeId,
    },
    /// `ANSWER_i(o)` — query response (output).
    Answer {
        /// Responding node.
        node: NodeId,
        /// The query result.
        output: O::Output,
    },
    /// Internal application of the update scheduled at `(due, proc)`.
    Apply {
        /// Applying node.
        node: NodeId,
        /// Scheduled application time.
        due: Time,
        /// Originating writer (the canonical same-instant order).
        proc: NodeId,
    },
}

impl<O: ObjectSpec> ObjOp<O> {
    /// The node the action belongs to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match self {
            ObjOp::Do { node, .. }
            | ObjOp::Done { node }
            | ObjOp::Query { node }
            | ObjOp::Answer { node, .. }
            | ObjOp::Apply { node, .. } => *node,
        }
    }

    /// `true` for `DO`/`QUERY`.
    #[must_use]
    pub fn is_invocation(&self) -> bool {
        matches!(self, ObjOp::Do { .. } | ObjOp::Query { .. })
    }

    /// `true` for `DONE`/`ANSWER`.
    #[must_use]
    pub fn is_response(&self) -> bool {
        matches!(self, ObjOp::Done { .. } | ObjOp::Answer { .. })
    }
}

// Manual impls: derives would demand `O: Clone + Eq + …` instead of
// bounding the associated types.
impl<O: ObjectSpec> Clone for ObjOp<O> {
    fn clone(&self) -> Self {
        match self {
            ObjOp::Do { node, update } => ObjOp::Do {
                node: *node,
                update: update.clone(),
            },
            ObjOp::Done { node } => ObjOp::Done { node: *node },
            ObjOp::Query { node } => ObjOp::Query { node: *node },
            ObjOp::Answer { node, output } => ObjOp::Answer {
                node: *node,
                output: output.clone(),
            },
            ObjOp::Apply { node, due, proc } => ObjOp::Apply {
                node: *node,
                due: *due,
                proc: *proc,
            },
        }
    }
}

impl<O: ObjectSpec> PartialEq for ObjOp<O> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (ObjOp::Do { node: a, update: u }, ObjOp::Do { node: b, update: v }) => {
                a == b && u == v
            }
            (ObjOp::Done { node: a }, ObjOp::Done { node: b }) => a == b,
            (ObjOp::Query { node: a }, ObjOp::Query { node: b }) => a == b,
            (ObjOp::Answer { node: a, output: u }, ObjOp::Answer { node: b, output: v }) => {
                a == b && u == v
            }
            (
                ObjOp::Apply {
                    node: a,
                    due: d1,
                    proc: p1,
                },
                ObjOp::Apply {
                    node: b,
                    due: d2,
                    proc: p2,
                },
            ) => a == b && d1 == d2 && p1 == p2,
            _ => false,
        }
    }
}

impl<O: ObjectSpec> Eq for ObjOp<O> {}

impl<O: ObjectSpec> Hash for ObjOp<O> {
    fn hash<H: Hasher>(&self, h: &mut H) {
        match self {
            ObjOp::Do { node, update } => {
                0u8.hash(h);
                node.hash(h);
                update.hash(h);
            }
            ObjOp::Done { node } => {
                1u8.hash(h);
                node.hash(h);
            }
            ObjOp::Query { node } => {
                2u8.hash(h);
                node.hash(h);
            }
            ObjOp::Answer { node, output } => {
                3u8.hash(h);
                node.hash(h);
                output.hash(h);
            }
            ObjOp::Apply { node, due, proc } => {
                4u8.hash(h);
                node.hash(h);
                due.hash(h);
                proc.hash(h);
            }
        }
    }
}

impl<O: ObjectSpec> fmt::Debug for ObjOp<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjOp::Do { node, update } => write!(f, "Do({node}, {update:?})"),
            ObjOp::Done { node } => write!(f, "Done({node})"),
            ObjOp::Query { node } => write!(f, "Query({node})"),
            ObjOp::Answer { node, output } => write!(f, "Answer({node}, {output:?})"),
            ObjOp::Apply { node, due, proc } => write!(f, "Apply({node}, {due}, {proc})"),
        }
    }
}

impl<O: ObjectSpec> Action for ObjOp<O> {
    fn name(&self) -> &'static str {
        match self {
            ObjOp::Do { .. } => "DO",
            ObjOp::Done { .. } => "DONE",
            ObjOp::Query { .. } => "QUERY",
            ObjOp::Answer { .. } => "ANSWER",
            ObjOp::Apply { .. } => "APPLY",
        }
    }
}

/// The `UPDATE(u, t)` message payload of the generalized algorithm.
pub struct ObjMsg<O: ObjectSpec> {
    /// The update.
    pub update: O::Update,
    /// The scheduled application base `t = send + d'₂`.
    pub base: Time,
}

impl<O: ObjectSpec> Clone for ObjMsg<O> {
    fn clone(&self) -> Self {
        ObjMsg {
            update: self.update.clone(),
            base: self.base,
        }
    }
}

impl<O: ObjectSpec> PartialEq for ObjMsg<O> {
    fn eq(&self, other: &Self) -> bool {
        self.update == other.update && self.base == other.base
    }
}

impl<O: ObjectSpec> Eq for ObjMsg<O> {}

impl<O: ObjectSpec> Hash for ObjMsg<O> {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.update.hash(h);
        self.base.hash(h);
    }
}

impl<O: ObjectSpec> fmt::Debug for ObjMsg<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjMsg({:?}, {})", self.update, self.base)
    }
}

/// The action alphabet of a generalized-object system.
pub type ObjAction<O> = SysAction<ObjMsg<O>, ObjOp<O>>;

/// An in-progress update operation.
#[derive(Debug, Clone)]
pub struct DoingState<O: ObjectSpec> {
    update: O::Update,
    remaining: Vec<NodeId>,
    send_time: Option<Time>,
    ack_time: Time,
}

/// A replicated update awaiting its scheduled instant, ordered by
/// `(due, proc)`.
#[derive(Debug, Clone)]
pub struct ScheduledUpdate<O: ObjectSpec> {
    /// Application time (`t + δ`).
    pub due: Time,
    /// Originating writer.
    pub proc: NodeId,
    /// The update.
    pub update: O::Update,
}

/// State of an [`AlgorithmSObj`] node.
#[derive(Debug, Clone)]
pub struct ObjState<O: ObjectSpec> {
    /// The local replica.
    pub state: O::State,
    /// Active query's answer time.
    pub query: Option<Time>,
    /// Active update operation.
    pub doing: Option<DoingState<O>>,
    /// Scheduled updates, sorted by `(due, proc)`.
    pub updates: Vec<ScheduledUpdate<O>>,
    msg_seq: u32,
}

/// The generalized Algorithm S node for object type `O`.
pub struct AlgorithmSObj<O: ObjectSpec> {
    node: NodeId,
    spec: O,
    params: RegisterParams,
}

impl<O: ObjectSpec> AlgorithmSObj<O> {
    /// Creates node `i`'s automaton for the given object.
    #[must_use]
    pub fn new(node: NodeId, spec: O, params: RegisterParams) -> Self {
        AlgorithmSObj { node, spec, params }
    }

    fn mintime(&self, s: &ObjState<O>) -> Option<Time> {
        let mut m: Option<Time> = s.query;
        let mut consider = |t: Time| {
            m = Some(match m {
                Some(cur) => cur.min(t),
                None => t,
            });
        };
        if let Some(d) = &s.doing {
            if let Some(st) = d.send_time {
                consider(st);
            }
            consider(d.ack_time);
        }
        if let Some(u) = s.updates.first() {
            consider(u.due);
        }
        m
    }

    fn schedule(updates: &mut Vec<ScheduledUpdate<O>>, rec: ScheduledUpdate<O>) {
        let pos = updates.partition_point(|r| (r.due, r.proc) <= (rec.due, rec.proc));
        updates.insert(pos, rec);
    }
}

impl<O: ObjectSpec> TimedComponent for AlgorithmSObj<O> {
    type Action = ObjAction<O>;
    type State = ObjState<O>;

    fn name(&self) -> String {
        format!("S-obj({})", self.node)
    }

    fn initial(&self) -> ObjState<O> {
        ObjState {
            state: self.spec.initial(),
            query: None,
            doing: None,
            updates: Vec::new(),
            msg_seq: 0,
        }
    }

    fn classify(&self, a: &ObjAction<O>) -> Option<ActionKind> {
        match a {
            SysAction::App(op) if op.node() == self.node => Some(match op {
                ObjOp::Do { .. } | ObjOp::Query { .. } => ActionKind::Input,
                ObjOp::Done { .. } | ObjOp::Answer { .. } => ActionKind::Output,
                ObjOp::Apply { .. } => ActionKind::Internal,
            }),
            SysAction::Send(env) if env.src == self.node => Some(ActionKind::Output),
            SysAction::Recv(env) if env.dst == self.node => Some(ActionKind::Input),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec![
            "DO", "DONE", "QUERY", "ANSWER", "APPLY", "SENDMSG", "RECVMSG",
        ])
    }

    fn step(&self, s: &ObjState<O>, a: &ObjAction<O>, now: Time) -> Option<ObjState<O>> {
        match a {
            SysAction::App(ObjOp::Query { node }) if *node == self.node => {
                let mut next = s.clone();
                next.query = Some(now + self.params.read_slack + self.params.c + self.params.delta);
                Some(next)
            }
            SysAction::App(ObjOp::Do { node, update }) if *node == self.node => {
                let mut next = s.clone();
                let remaining: Vec<NodeId> = self
                    .params
                    .peers
                    .iter()
                    .copied()
                    .filter(|p| *p != self.node)
                    .collect();
                let send_time = (!remaining.is_empty()).then_some(now);
                next.doing = Some(DoingState {
                    update: update.clone(),
                    remaining,
                    send_time,
                    ack_time: now + (self.params.d2_virtual - self.params.c),
                });
                Self::schedule(
                    &mut next.updates,
                    ScheduledUpdate {
                        due: now + self.params.d2_virtual + self.params.delta,
                        proc: self.node,
                        update: update.clone(),
                    },
                );
                Some(next)
            }
            SysAction::App(ObjOp::Answer { node, output }) if *node == self.node => {
                if s.query != Some(now) || self.spec.query(&s.state) != *output {
                    return None;
                }
                if s.updates.first().is_some_and(|u| u.due == now) {
                    return None;
                }
                let mut next = s.clone();
                next.query = None;
                Some(next)
            }
            SysAction::App(ObjOp::Done { node }) if *node == self.node => {
                let d = s.doing.as_ref()?;
                if !d.remaining.is_empty() || d.ack_time != now {
                    return None;
                }
                let mut next = s.clone();
                next.doing = None;
                Some(next)
            }
            SysAction::App(ObjOp::Apply { node, due, proc }) if *node == self.node => {
                let first = s.updates.first()?;
                if first.due != now || first.due != *due || first.proc != *proc {
                    return None;
                }
                let mut next = s.clone();
                next.state = self.spec.apply(&s.state, &first.update);
                next.updates.remove(0);
                Some(next)
            }
            SysAction::Send(env) if env.src == self.node => {
                let d = s.doing.as_ref()?;
                if d.send_time != Some(now)
                    || env.payload.update != d.update
                    || env.payload.base != now + self.params.d2_virtual
                    || env.id != MsgId::from_parts(self.node, s.msg_seq)
                    || !d.remaining.contains(&env.dst)
                {
                    return None;
                }
                let mut next = s.clone();
                let nd = next.doing.as_mut().expect("checked above");
                nd.remaining.retain(|p| *p != env.dst);
                if nd.remaining.is_empty() {
                    nd.send_time = None;
                }
                next.msg_seq += 1;
                Some(next)
            }
            SysAction::Recv(env) if env.dst == self.node => {
                let mut next = s.clone();
                Self::schedule(
                    &mut next.updates,
                    ScheduledUpdate {
                        due: env.payload.base + self.params.delta,
                        proc: env.src,
                        update: env.payload.update.clone(),
                    },
                );
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &ObjState<O>, now: Time) -> Vec<ObjAction<O>> {
        let mut out = Vec::new();
        if let Some(first) = s.updates.first() {
            if first.due == now {
                out.push(SysAction::App(ObjOp::Apply {
                    node: self.node,
                    due: first.due,
                    proc: first.proc,
                }));
            }
        }
        if let Some(d) = &s.doing {
            if d.send_time == Some(now) {
                for &j in &d.remaining {
                    out.push(SysAction::Send(Envelope {
                        src: self.node,
                        dst: j,
                        id: MsgId::from_parts(self.node, s.msg_seq),
                        payload: ObjMsg {
                            update: d.update.clone(),
                            base: now + self.params.d2_virtual,
                        },
                    }));
                }
            }
            if d.remaining.is_empty() && d.ack_time == now {
                out.push(SysAction::App(ObjOp::Done { node: self.node }));
            }
        }
        if s.query == Some(now) && s.updates.first().is_none_or(|u| u.due != now) {
            out.push(SysAction::App(ObjOp::Answer {
                node: self.node,
                output: self.spec.query(&s.state),
            }));
        }
        out
    }

    fn deadline(&self, s: &ObjState<O>, _now: Time) -> Option<Time> {
        self.mintime(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Counter;
    use psync_net::Topology;
    use psync_time::{DelayBounds, Duration};

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn alg() -> AlgorithmSObj<Counter> {
        let params = RegisterParams::for_timed_model(
            &Topology::complete(3),
            DelayBounds::new(ms(1), ms(10)).unwrap(),
            ms(3),
            ms(1),
        );
        AlgorithmSObj::new(NodeId(0), Counter, params)
    }

    #[test]
    fn do_broadcasts_and_schedules_self_update() {
        let a = alg();
        let s1 = a
            .step(
                &a.initial(),
                &SysAction::App(ObjOp::Do {
                    node: NodeId(0),
                    update: 5,
                }),
                at(2),
            )
            .unwrap();
        assert_eq!(s1.updates.len(), 1);
        assert_eq!(s1.updates[0].due, at(13)); // 2 + 10 + 1
        let sends = a.enabled(&s1, at(2));
        assert_eq!(sends.len(), 2);
    }

    #[test]
    fn same_instant_updates_all_apply_in_proc_order() {
        // Unlike the register, a counter must not drop same-due updates.
        let a = alg();
        let mut s = a.initial();
        for (src, amount) in [(2usize, 10i64), (1, 100)] {
            s = a
                .step(
                    &s,
                    &SysAction::Recv(Envelope {
                        src: NodeId(src),
                        dst: NodeId(0),
                        id: MsgId::from_parts(NodeId(src), 0),
                        payload: ObjMsg {
                            update: amount,
                            base: at(12),
                        },
                    }),
                    at(5),
                )
                .unwrap();
        }
        assert_eq!(s.updates.len(), 2);
        // Sorted by (due, proc): node 1 first.
        assert_eq!(s.updates[0].proc, NodeId(1));
        let e1 = a.enabled(&s, at(13));
        assert_eq!(e1.len(), 1);
        s = a.step(&s, &e1[0], at(13)).unwrap();
        assert_eq!(s.state, 100);
        let e2 = a.enabled(&s, at(13));
        s = a.step(&s, &e2[0], at(13)).unwrap();
        assert_eq!(s.state, 110, "both increments must survive");
    }

    #[test]
    fn query_waits_and_answers_current_total() {
        let a = alg();
        let mut s = a.initial();
        s = a
            .step(&s, &SysAction::App(ObjOp::Query { node: NodeId(0) }), at(1))
            .unwrap();
        // answer time = 1 + 0 + 3 + 1 = 5.
        assert_eq!(s.query, Some(at(5)));
        let en = a.enabled(&s, at(5));
        assert_eq!(
            en,
            vec![SysAction::App(ObjOp::Answer {
                node: NodeId(0),
                output: 0
            })]
        );
    }

    #[test]
    fn answer_blocked_by_due_update() {
        let a = alg();
        let mut s = a.initial();
        s = a
            .step(&s, &SysAction::App(ObjOp::Query { node: NodeId(0) }), at(9))
            .unwrap(); // answers at 13
        s = a
            .step(
                &s,
                &SysAction::Recv(Envelope {
                    src: NodeId(1),
                    dst: NodeId(0),
                    id: MsgId::from_parts(NodeId(1), 0),
                    payload: ObjMsg {
                        update: 7,
                        base: at(12),
                    },
                }),
                at(10),
            )
            .unwrap(); // applies at 13
        let en = a.enabled(&s, at(13));
        assert_eq!(en.len(), 1);
        assert!(matches!(en[0], SysAction::App(ObjOp::Apply { .. })));
        s = a.step(&s, &en[0], at(13)).unwrap();
        let en2 = a.enabled(&s, at(13));
        assert_eq!(
            en2,
            vec![SysAction::App(ObjOp::Answer {
                node: NodeId(0),
                output: 7
            })]
        );
    }
}
