//! Verification helpers for Theorem 5.1/5.2: the output-shift bound.

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::relations::{delta_shifted, ClassMap, RelationError, Witness};
use psync_automata::{Action, ActionKind, TimedTrace};
use psync_net::{NodeId, SysAction};
use psync_time::Duration;

/// The shift bound of Theorem 5.1: outputs of the MMT-model system lag the
/// clock-model system by at most `kℓ + 2ε + 3ℓ`, where `ℓ` bounds step
/// times, `ε` the clock skew, and `k` the algorithm's output rate
/// (Lemma 4.3: at most `k` outputs per clock window of length `kℓ`).
///
/// # Examples
///
/// ```
/// use psync_core::sim2_shift_bound;
/// use psync_time::Duration;
///
/// let bound = sim2_shift_bound(2, Duration::from_millis(1), Duration::from_micros(100));
/// // 2·0.1ms + 2·1ms + 3·0.1ms = 2.5ms
/// assert_eq!(bound, Duration::from_micros(2500));
/// ```
///
/// # Panics
///
/// Panics if `k` is negative or either duration is negative.
#[must_use]
pub fn sim2_shift_bound(k: i64, eps: Duration, ell: Duration) -> Duration {
    assert!(k >= 0, "output rate k must be non-negative");
    assert!(!eps.is_negative() && !ell.is_negative(), "negative bound");
    ell * k + eps * 2 + ell * 3
}

/// The class map `K = {out(p_1), …, out(p_n)}` of Definition 2.12: only
/// *output* application actions are classed (by node); everything else —
/// in particular the environment's input actions — is unclassified and so
/// must keep its exact time under `≤_{δ,K}`.
///
/// `app_out` resolves an application action to its node *if it is an
/// output of that node*, `None` otherwise.
#[must_use]
pub fn output_classes<M, A>(
    app_out: impl Fn(&A) -> Option<NodeId> + Send + Sync + 'static,
) -> ClassMap<SysAction<M, A>>
where
    M: 'static,
    A: 'static,
{
    ClassMap::by(move |a: &SysAction<M, A>| match a {
        SysAction::App(app) => app_out(app).map(|n| n.0),
        _ => None,
    })
}

/// Checks the Theorem 5.1 relation on a pair of application traces:
/// `dm_trace` (from the realistic `D_M` run) must be `≤_{δ,K}` above
/// `dc_trace` (from the clock-model `D_C` run under the same adversary) —
/// node outputs shifted into the future by at most
/// `δ = kℓ + 2ε + 3ℓ`, inputs at identical times.
///
/// Returns the relation witness; `max_deviation` is the measured worst
/// shift (experiment E4).
///
/// # Errors
///
/// The underlying [`RelationError`] when the traces differ structurally or
/// the shift bound is exceeded.
pub fn check_sim2<M, A>(
    dc_trace: &TimedTrace<SysAction<M, A>>,
    dm_trace: &TimedTrace<SysAction<M, A>>,
    delta: Duration,
    classes: &ClassMap<SysAction<M, A>>,
) -> Result<Witness, RelationError<SysAction<M, A>>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    delta_shifted(dc_trace, dm_trace, delta, classes)
}

/// Measures the empirical output rate `k` of Lemma 4.3 from the clock
/// times of a node's output actions: the maximum number of outputs in any
/// clock window of length `window`.
///
/// Both half-open readings of the lemma's window (`(c, c+kℓ]` and
/// `[c, c+kℓ)`) are covered by taking the max over closed windows anchored
/// at each output.
#[must_use]
pub fn max_outputs_per_window(output_clock_times: &[psync_time::Time], window: Duration) -> usize {
    let mut sorted: Vec<_> = output_clock_times.to_vec();
    sorted.sort();
    let mut best = 0;
    for (i, &start) in sorted.iter().enumerate() {
        let end = start + window;
        let count = sorted[i..].iter().take_while(|&&t| t <= end).count();
        best = best.max(count);
    }
    best
}

/// Extracts per-node output application actions from a trace — the inputs
/// to [`max_outputs_per_window`].
#[must_use]
pub fn outputs_of_node<M, A>(
    trace: &TimedTrace<SysAction<M, A>>,
    node: NodeId,
    app_out: impl Fn(&A) -> Option<NodeId>,
    kinds: impl Fn(&A) -> ActionKind,
) -> Vec<psync_time::Time>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    trace
        .iter()
        .filter_map(|(a, t)| match a {
            SysAction::App(app)
                if app_out(app) == Some(node) && kinds(app) == ActionKind::Output =>
            {
                Some(t)
            }
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_time::Time;

    type S = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    #[test]
    fn shift_bound_formula() {
        assert_eq!(sim2_shift_bound(0, ms(0), ms(1)), ms(3));
        assert_eq!(sim2_shift_bound(1, ms(2), ms(1)), ms(8));
        assert_eq!(sim2_shift_bound(3, ms(1), ms(2)), ms(14));
    }

    #[test]
    fn check_sim2_accepts_forward_shifted_outputs() {
        let classes = output_classes::<u32, &'static str>(|a| {
            if a.starts_with("out") {
                Some(NodeId(0))
            } else {
                None
            }
        });
        let dc = TimedTrace::from_pairs(vec![(S::App("in"), at(1)), (S::App("out"), at(2))]);
        let dm = TimedTrace::from_pairs(vec![(S::App("in"), at(1)), (S::App("out"), at(5))]);
        let w = check_sim2(&dc, &dm, ms(3), &classes).unwrap();
        assert_eq!(w.max_deviation, ms(3));
        assert!(check_sim2(&dc, &dm, ms(2), &classes).is_err());
    }

    #[test]
    fn inputs_must_not_move() {
        let classes = output_classes::<u32, &'static str>(|_| None);
        let dc = TimedTrace::from_pairs(vec![(S::App("in"), at(1))]);
        let dm = TimedTrace::from_pairs(vec![(S::App("in"), at(2))]);
        assert!(check_sim2(&dc, &dm, ms(10), &classes).is_err());
    }

    #[test]
    fn window_rate_measurement() {
        let times = vec![at(0), at(1), at(2), at(10), at(11)];
        assert_eq!(max_outputs_per_window(&times, ms(2)), 3);
        assert_eq!(max_outputs_per_window(&times, ms(1)), 2);
        assert_eq!(max_outputs_per_window(&times, ms(0)), 1);
        assert_eq!(max_outputs_per_window(&times, ms(100)), 5);
        assert_eq!(max_outputs_per_window(&[], ms(5)), 0);
    }

    #[test]
    fn outputs_of_node_filters_correctly() {
        let trace: TimedTrace<S> = TimedTrace::from_pairs(vec![
            (S::App("out0"), at(1)),
            (S::App("in0"), at(2)),
            (S::App("out1"), at(3)),
            (S::Tau { node: NodeId(0) }, at(4)),
        ]);
        let times = outputs_of_node(
            &trace,
            NodeId(0),
            |a| {
                if a.ends_with('0') {
                    Some(NodeId(0))
                } else {
                    Some(NodeId(1))
                }
            },
            |a| {
                if a.starts_with("out") {
                    ActionKind::Output
                } else {
                    ActionKind::Input
                }
            },
        );
        assert_eq!(times, vec![at(1)]);
    }
}
