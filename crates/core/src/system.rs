//! Whole-system assembly: `D_T`, `D_C` and `D_M` (Sections 3.3, 4.1, 5.2).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ClockComposite};
use psync_executor::{ClockStrategy, EngineBuilder};
use psync_mmt::{MmtAsTimed, StepPolicy, TickConfig, TickSource};
use psync_net::{Channel, ClockChannel, DelayPolicy, SysAction, Topology};
use psync_time::{DelayBounds, Duration};

use crate::mmt_sim::MmtSim;
use crate::node::{node_parts, transform_node, NodeSpec};

/// Builds the timed-model system `D_T(G, A, E_{[d₁,d₂]})` (Section 3.3):
/// each node algorithm as a timed component plus one channel automaton per
/// edge. Extend the returned builder with a workload, scheduler and
/// horizon, then `build()` and `run()`.
///
/// `policy` creates the delay adversary for each edge.
#[must_use]
pub fn build_dt<M, A>(
    topo: &Topology,
    bounds: DelayBounds,
    algorithms: Vec<NodeSpec<M, A>>,
    policy: impl Fn(psync_net::NodeId, psync_net::NodeId) -> Box<dyn DelayPolicy>,
) -> EngineBuilder<SysAction<M, A>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    let mut builder = EngineBuilder::default();
    for spec in algorithms {
        builder = builder.timed_boxed(spec.algorithm);
    }
    for &(i, j) in topo.edges() {
        builder = builder.timed(Channel::<M, A>::new(i, j, bounds, policy(i, j)));
    }
    builder
}

/// Builds the clock-model system `D_C(G, A^c_ε, E^c_{[d₁,d₂]})`
/// (Theorem 4.7): every node algorithm is transformed by Simulation 1
/// (`C(A_i, ε)` + send/receive buffers) and attached to its own clock;
/// edges become clock channels carrying `(m, c)` pairs.
///
/// `bounds` are the **physical** delay bounds `[d₁, d₂]`; per Theorem 4.7
/// the algorithms should have been designed against
/// `bounds.widen_for_skew(eps)`.
///
/// `strategies` supplies one clock behavior per node, in node order.
///
/// # Panics
///
/// Panics if `algorithms` and `strategies` lengths differ from the
/// topology's node count.
#[must_use]
pub fn build_dc<M, A>(
    topo: &Topology,
    bounds: DelayBounds,
    eps: Duration,
    algorithms: Vec<NodeSpec<M, A>>,
    strategies: Vec<Box<dyn ClockStrategy>>,
    policy: impl Fn(psync_net::NodeId, psync_net::NodeId) -> Box<dyn DelayPolicy>,
) -> EngineBuilder<SysAction<M, A>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    assert_eq!(
        algorithms.len(),
        topo.len(),
        "one algorithm per node required"
    );
    assert_eq!(
        strategies.len(),
        topo.len(),
        "one clock strategy per node required"
    );
    let mut builder = EngineBuilder::default();
    for (spec, strategy) in algorithms.into_iter().zip(strategies) {
        builder = builder.clock_node(transform_node(spec, topo, eps, strategy));
    }
    for &(i, j) in topo.edges() {
        builder = builder.timed(ClockChannel::<M, A>::new(i, j, bounds, policy(i, j)));
    }
    builder
}

/// Per-node configuration for the MMT-model system.
pub struct DmNodeConfig {
    /// The step bound `ℓ` of the node's single task class.
    pub ell: Duration,
    /// How the boundmap nondeterminism is resolved (when in `[0, ℓ]` each
    /// step actually happens).
    pub step_policy: StepPolicy,
    /// The node's clock subsystem configuration (`TICK` accuracy, period,
    /// granularity, skew).
    pub tick: TickConfig,
}

/// Builds the realistic MMT-model system
/// `D_M(G, A^m_{ε,ℓ}, E^m_{[d₁,d₂]})` (Theorem 5.2): each node is the full
/// two-simulation pipeline `T(M(A^c_{i,ε}, ℓ))` composed with its `TICK`
/// clock subsystem; edges are clock channels.
///
/// Per Theorem 5.2 the algorithms should have been designed against
/// `bounds.widen_composed(eps, k, ell)` where `k` bounds their output rate
/// (Lemma 4.3).
///
/// # Panics
///
/// Panics if `algorithms` and `configs` lengths differ from the topology's
/// node count.
#[must_use]
pub fn build_dm<M, A>(
    topo: &Topology,
    bounds: DelayBounds,
    algorithms: Vec<NodeSpec<M, A>>,
    configs: Vec<DmNodeConfig>,
    policy: impl Fn(psync_net::NodeId, psync_net::NodeId) -> Box<dyn DelayPolicy>,
) -> EngineBuilder<SysAction<M, A>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    assert_eq!(
        algorithms.len(),
        topo.len(),
        "one algorithm per node required"
    );
    assert_eq!(configs.len(), topo.len(), "one config per node required");
    let mut builder = EngineBuilder::default();
    for (spec, cfg) in algorithms.into_iter().zip(configs) {
        let id = spec.id;
        // The whole clock node A^c_{i,ε} as one clock automaton…
        let composite = ClockComposite::new(format!("A^c({id})"), node_parts(spec, topo));
        // …simulated by an MMT automaton (Definition 5.1)…
        let mmt = MmtSim::new(id, composite, cfg.ell);
        // …executed as a timed automaton via T (Section 5.2)…
        builder = builder.timed(MmtAsTimed::new(mmt, cfg.step_policy));
        // …fed by its clock subsystem C^m. The TICK interface is internal
        // to the node (the paper composes T(A^m) with T(C^m) into one node
        // automaton), so it is hidden.
        builder = builder.timed(psync_automata::Hidden::new(
            TickSource::<M, A>::new(id, cfg.tick),
            |a: &SysAction<M, A>| matches!(a, SysAction::Tick { .. }),
        ));
    }
    for &(i, j) in topo.edges() {
        builder = builder.timed(ClockChannel::<M, A>::new(i, j, bounds, policy(i, j)));
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_executor::PerfectClock;
    use psync_net::{MaxDelay, NodeId, Script};
    use psync_time::Time;

    type M = u32;
    type App = &'static str;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn silent_node(id: usize) -> NodeSpec<M, App> {
        NodeSpec::new(NodeId(id), Script::<M, App>::new([], |_| false))
    }

    fn policy() -> impl Fn(NodeId, NodeId) -> Box<dyn DelayPolicy> {
        |_, _| Box::new(MaxDelay)
    }

    #[test]
    fn dt_system_runs_quiescent() {
        let topo = Topology::complete(2);
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let mut engine = build_dt(
            &topo,
            bounds,
            vec![silent_node(0), silent_node(1)],
            policy(),
        )
        .build();
        let run = engine.run().unwrap();
        assert!(run.execution.is_empty());
    }

    #[test]
    fn dc_system_runs_quiescent() {
        let topo = Topology::complete(2);
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let strategies: Vec<Box<dyn ClockStrategy>> =
            vec![Box::new(PerfectClock), Box::new(PerfectClock)];
        let mut engine = build_dc(
            &topo,
            bounds,
            ms(1),
            vec![silent_node(0), silent_node(1)],
            strategies,
            policy(),
        )
        .build();
        let run = engine.run().unwrap();
        assert!(run.execution.is_empty());
    }

    #[test]
    fn dm_system_ticks_and_taus_until_horizon() {
        let topo = Topology::complete(2);
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let cfg = || DmNodeConfig {
            ell: ms(1),
            step_policy: StepPolicy::Lazy,
            tick: TickConfig::honest(ms(2), ms(1)),
        };
        let mut engine = build_dm(
            &topo,
            bounds,
            vec![silent_node(0), silent_node(1)],
            vec![cfg(), cfg()],
            policy(),
        )
        .horizon(Time::ZERO + ms(10))
        .build();
        let run = engine.run().unwrap();
        // Nothing visible (no workload), but ticks and τ keep the MMT
        // machinery alive.
        assert!(run.execution.t_trace().is_empty());
        assert!(run
            .execution
            .events()
            .iter()
            .any(|e| matches!(e.action, SysAction::Tau { .. })));
        assert!(run
            .execution
            .events()
            .iter()
            .any(|e| matches!(e.action, SysAction::Tick { .. })));
    }

    #[test]
    #[should_panic(expected = "one algorithm per node")]
    fn wrong_node_count_rejected() {
        let topo = Topology::complete(3);
        let bounds = DelayBounds::new(ms(1), ms(3)).unwrap();
        let _ = build_dc(
            &topo,
            bounds,
            ms(1),
            vec![silent_node(0)],
            vec![Box::new(PerfectClock)],
            policy(),
        );
    }
}
