//! The transformation `C(A_i, ε)` (Definition 4.1).

use psync_automata::{Action, ActionKind, ClockComponent, ComponentBox, DynState, TimedComponent};
use psync_time::Time;

/// `C(A_i, ε)`: a timed automaton reinterpreted as a clock automaton by
/// running it against the node *clock* instead of real time
/// (Definition 4.1 of the paper).
///
/// The wrapped automaton's `now` "is" the clock: wherever the inner
/// component would read `now` — in transitions, enabling conditions and
/// deadlines — it is handed the clock value instead. Nothing else changes,
/// which is the whole point of the paper's first simulation: the algorithm
/// text is reused verbatim.
///
/// The construction makes the two obligations of Definition 4.1 hold by
/// construction:
///
/// * the result satisfies clock predicate `C_ε` (Lemma 4.1) because the
///   engine's clock strategies are confined to the `C_ε` envelope, and
/// * it is ε-time independent (Lemma 4.1) because the
///   [`ClockComponent`] interface never exposes `now`.
///
/// # Examples
///
/// ```
/// use psync_automata::toys::Beeper;
/// use psync_automata::ClockComponent;
/// use psync_core::ClockSim;
/// use psync_time::{Duration, Time};
///
/// // A real-time beeper becomes a clock-time beeper.
/// let c = ClockSim::new(Beeper::new(Duration::from_millis(10)));
/// let s0 = c.initial();
/// assert_eq!(
///     c.clock_deadline(&s0, Time::ZERO),
///     Some(Time::ZERO + Duration::from_millis(10))
/// );
/// ```
pub struct ClockSim<A: Action> {
    inner: ComponentBox<A>,
}

impl<A: Action> ClockSim<A> {
    /// Transforms a timed component into a clock component.
    #[must_use]
    pub fn new<C: TimedComponent<Action = A>>(inner: C) -> Self {
        ClockSim {
            inner: ComponentBox::new(inner),
        }
    }

    /// Transforms an already-boxed timed component.
    #[must_use]
    pub fn from_box(inner: ComponentBox<A>) -> Self {
        ClockSim { inner }
    }
}

impl<A: Action> ClockComponent for ClockSim<A> {
    type Action = A;
    type State = DynState;

    fn name(&self) -> String {
        format!("C({})", self.inner.name())
    }

    fn initial(&self) -> DynState {
        self.inner.initial()
    }

    fn classify(&self, a: &A) -> Option<ActionKind> {
        self.inner.classify(a)
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        self.inner.action_names()
    }

    fn step(&self, s: &DynState, a: &A, clock: Time) -> Option<DynState> {
        // The inner automaton's `now` is the clock (Definition 4.1:
        // `(s.A_i).now = s.clock`).
        self.inner.step(s, a, clock)
    }

    fn enabled(&self, s: &DynState, clock: Time) -> Vec<A> {
        self.inner.enabled(s, clock)
    }

    fn clock_deadline(&self, s: &DynState, clock: Time) -> Option<Time> {
        self.inner.deadline(s, clock)
    }

    fn advance(&self, s: &DynState, clock: Time, target: Time) -> Option<DynState> {
        self.inner.advance(s, clock, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::toys::{BeepAction, Beeper};
    use psync_executor::{ClockNode, Engine, OffsetClock};
    use psync_time::Duration;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    #[test]
    fn behaves_like_inner_but_in_clock_time() {
        let c = ClockSim::new(Beeper::new(ms(10)));
        let s0 = c.initial();
        assert!(c.enabled(&s0, at(9)).is_empty());
        let acts = c.enabled(&s0, at(10));
        assert_eq!(acts, vec![BeepAction::Beep { src: 0, seq: 0 }]);
        let s1 = c.step(&s0, &acts[0], at(10)).unwrap();
        assert_eq!(c.clock_deadline(&s1, at(10)), Some(at(20)));
    }

    #[test]
    fn classification_is_preserved() {
        let timed = Beeper::new(ms(10));
        let c = ClockSim::new(Beeper::new(ms(10)));
        let a = BeepAction::Beep { src: 0, seq: 3 };
        assert_eq!(
            TimedComponent::classify(&timed, &a),
            ClockComponent::classify(&c, &a)
        );
    }

    #[test]
    fn under_skewed_clock_actions_move_in_real_time() {
        // The same Beeper, transformed: with a clock slow by 2 ms it beeps
        // at real time 12 ms but clock time 10 ms — the ε perturbation of
        // Theorem 4.7 in one line.
        let node = ClockNode::new("n", ms(2), OffsetClock::new(ms(-2), ms(2)))
            .with(ClockSim::new(Beeper::new(ms(10))));
        let mut engine = Engine::builder().clock_node(node).horizon(at(15)).build();
        let run = engine.run().unwrap();
        let ev = &run.execution.events()[0];
        assert_eq!(ev.now, at(12));
        assert_eq!(ev.clock, Some(at(10)));
    }

    #[test]
    fn name_reflects_transformation() {
        let c = ClockSim::new(Beeper::new(ms(1)));
        assert!(c.name().starts_with("C("));
    }
}
