//! The two clock simulations of Chaudhuri, Gawlick and Lynch (PODC 1993) —
//! the paper's primary contribution.
//!
//! An algorithm author designs and verifies node automata `A_i` in the
//! *timed automaton* model, where `now` is directly readable and actions
//! can be scheduled at exact real times (Section 3). This crate transforms
//! those automata mechanically to run in progressively more realistic
//! models:
//!
//! 1. **Simulation 1** (Section 4): [`ClockSim`] reinterprets `A_i` over
//!    the node clock (`C(A_i, ε)`, Definition 4.1); [`SendBuffer`] tags
//!    outgoing messages with the sending clock (`S_{ij,ε}`, Figure 2
//!    left); [`RecvBuffer`] holds incoming messages until the local clock
//!    reaches the send stamp (`R_{ji,ε}`, Figure 2 right); and
//!    [`transform_node`] assembles the full node `A^c_{i,ε}`.
//!    **Theorem 4.7**: if `D_T` solves `P` over links `[max(d₁−2ε,0),
//!    d₂+2ε]`, the transformed `D_C` solves `P_ε` over physical links
//!    `[d₁, d₂]`. [`check_sim1`] verifies this constructively on recorded
//!    executions via the `γ_α` construction (Definition 4.2).
//! 2. **Simulation 2** (Section 5): [`MmtSim`] turns the whole clock node
//!    into an MMT automaton (`M(A^c_{i,ε}, ℓ)`, Definition 5.1) that
//!    *catches up* with its clock lazily — replaying the clock automaton
//!    up to each `TICK` reading and queuing the outputs it owes in a
//!    `pending` buffer. **Theorem 5.1**: `D_M` solves `P^{kℓ+2ε+3ℓ}`;
//!    [`sim2_shift_bound`] computes the bound, [`check_sim2`] verifies a
//!    run against it.
//!
//! System assembly helpers [`build_dt`], [`build_dc`] and [`build_dm`]
//! produce ready-to-extend engine builders for all three models, and
//! [`analysis`] extracts per-message flight data (the quantities behind
//! Lemma 4.5 and the buffering discussion of Section 7.2).
//!
//! # The full pipeline
//!
//! ```text
//! A_i  (timed automaton, designed against [max(d₁−2ε,0), d₂+2ε+kℓ])
//!  │ ClockSim + SendBuffer/RecvBuffer        — Simulation 1 (Thm 4.7)
//!  ▼
//! A^c_{i,ε}  (clock automaton node, solves P_ε over [d₁, d₂+kℓ])
//!  │ MmtSim + TickSource + MmtAsTimed        — Simulation 2 (Thm 5.1)
//!  ▼
//! A^m_{i,ε,ℓ}  (MMT automaton, solves (P_ε)^{kℓ+2ε+3ℓ} over [d₁, d₂])
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod clock_sim;
mod mmt_sim;
mod node;
mod recv_buffer;
mod send_buffer;
mod system;
mod theorem4;
mod theorem5;

pub use clock_sim::ClockSim;
pub use mmt_sim::{MmtSim, MmtSimState};
pub use node::{transform_node, NodeSpec};
pub use recv_buffer::{RecvBuffer, RecvBufferState};
pub use send_buffer::{SendBuffer, SendBufferState};
pub use system::{build_dc, build_dm, build_dt, DmNodeConfig};
pub use theorem4::{app_trace, check_sim1, node_classes, sim1_witness};
pub use theorem5::{
    check_sim2, max_outputs_per_window, output_classes, outputs_of_node, sim2_shift_bound,
};
