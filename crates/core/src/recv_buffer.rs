//! The receive buffer `R_{ji,ε}` (Figure 2, right).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, ClockComponent};
use psync_net::{Envelope, NodeId, SysAction};
use psync_time::Time;

/// State of a [`RecvBuffer`]: buffered `(message, stamp, arrival-seq)`
/// triples, kept sorted by `(stamp, arrival-seq)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecvBufferState<M> {
    entries: Vec<(Envelope<M>, Time, u64)>,
    next_seq: u64,
}

impl<M> RecvBufferState<M> {
    /// Number of buffered messages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// `R_{ji,ε}`: holds each incoming message until the local clock has
/// reached the clock time at which it was *sent* (Figure 2, right, of the
/// paper) — the buffering first identified by Lamport \[5\] and used by
/// Welch \[17\] and Neiger–Toueg \[13\] to ensure a message never arrives
/// at a clock time earlier than its send time.
///
/// * `ERECVMSG_i(j, (m, c))` (input, from the channel) buffers the stamped
///   message.
/// * `RECVMSG_i(j, m)` (output, to `C(A_i, ε)`) releases the front message
///   once `c ≤ clock`; the `ν` precondition forbids the clock from passing
///   any buffered stamp, so release happens at exactly `clock = c` (or
///   immediately on arrival when `c` is already past).
///
/// ## A disambiguation of Figure 2
///
/// The paper stores the buffer in a queue with `front`/`enqu`/`dequ` and
/// releases only from the front, while its `ν` precondition blocks the
/// clock at the *minimum* buffered stamp. Read as a FIFO queue this
/// deadlocks under reordering channels: a front message stamped in the
/// future would bar release while an out-of-order message stamped in the
/// past bars time passage. We therefore keep the buffer ordered by
/// `(stamp, arrival order)` — the front is always the minimum-stamp
/// message, releases happen in stamp order, and no deadlock is possible.
/// Under FIFO channels the two readings coincide.
pub struct RecvBuffer<M, A> {
    from: NodeId,
    to: NodeId,
    _marker: core::marker::PhantomData<fn() -> (M, A)>,
}

impl<M, A> RecvBuffer<M, A> {
    /// Creates the receive buffer at node `to` for messages from `from`.
    #[must_use]
    pub fn new(from: NodeId, to: NodeId) -> Self {
        RecvBuffer {
            from,
            to,
            _marker: core::marker::PhantomData,
        }
    }

    fn routes(&self, env: &Envelope<M>) -> bool {
        env.src == self.from && env.dst == self.to
    }
}

impl<M, A> ClockComponent for RecvBuffer<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = RecvBufferState<M>;

    fn name(&self) -> String {
        format!("R({}→{})", self.from, self.to)
    }

    fn initial(&self) -> Self::State {
        RecvBufferState {
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::ERecv(env, _) if self.routes(env) => Some(ActionKind::Input),
            SysAction::Recv(env) if self.routes(env) => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["ERECVMSG", "RECVMSG"])
    }

    fn step(&self, s: &Self::State, a: &Self::Action, clock: Time) -> Option<Self::State> {
        match a {
            SysAction::ERecv(env, c) if self.routes(env) => {
                let mut next = s.clone();
                let seq = next.next_seq;
                next.next_seq += 1;
                let pos = next
                    .entries
                    .partition_point(|(_, stamp, sq)| (*stamp, *sq) <= (*c, seq));
                next.entries.insert(pos, (env.clone(), *c, seq));
                Some(next)
            }
            SysAction::Recv(env) if self.routes(env) => {
                let (front_env, stamp, _) = s.entries.first()?;
                if front_env != env || *stamp > clock {
                    return None;
                }
                let mut next = s.clone();
                next.entries.remove(0);
                Some(next)
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &Self::State, clock: Time) -> Vec<Self::Action> {
        match s.entries.first() {
            Some((env, stamp, _)) if *stamp <= clock => vec![SysAction::Recv(env.clone())],
            _ => Vec::new(),
        }
    }

    fn clock_deadline(&self, s: &Self::State, _clock: Time) -> Option<Time> {
        // ν precondition: the clock may not pass any buffered stamp.
        s.entries.first().map(|(_, stamp, _)| *stamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_net::MsgId;
    use psync_time::Duration;

    type A = SysAction<u32, &'static str>;
    type Buf = RecvBuffer<u32, &'static str>;

    fn at(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(1),
            dst: NodeId(0),
            id: MsgId(id),
            payload: id as u32,
        }
    }

    #[test]
    fn holds_future_stamped_message_until_clock_catches_up() {
        let b = Buf::new(NodeId(1), NodeId(0));
        let clock = at(5);
        let stamp = at(8); // sender's clock was ahead
        let s = b
            .step(&b.initial(), &A::ERecv(env(1), stamp), clock)
            .unwrap();
        // Not releasable yet; clock pinned at the stamp.
        assert!(b.enabled(&s, clock).is_empty());
        assert_eq!(b.clock_deadline(&s, clock), Some(stamp));
        // Once the clock reads the stamp, release.
        assert_eq!(b.enabled(&s, stamp), vec![A::Recv(env(1))]);
        let s2 = b.step(&s, &A::Recv(env(1)), stamp).unwrap();
        assert!(s2.is_empty());
    }

    #[test]
    fn past_stamped_message_releases_immediately() {
        let b = Buf::new(NodeId(1), NodeId(0));
        let clock = at(9);
        let s = b
            .step(&b.initial(), &A::ERecv(env(1), at(4)), clock)
            .unwrap();
        assert_eq!(b.enabled(&s, clock), vec![A::Recv(env(1))]);
    }

    #[test]
    fn reordered_arrivals_release_in_stamp_order() {
        // The scenario that deadlocks a FIFO reading of Figure 2: the
        // late-stamped message arrives first.
        let b = Buf::new(NodeId(1), NodeId(0));
        let clock = at(5);
        let mut s = b.initial();
        s = b.step(&s, &A::ERecv(env(1), at(9)), clock).unwrap(); // future stamp
        s = b.step(&s, &A::ERecv(env(2), at(3)), clock).unwrap(); // past stamp
                                                                  // The past-stamped message is the front and releases now.
        assert_eq!(b.enabled(&s, clock), vec![A::Recv(env(2))]);
        s = b.step(&s, &A::Recv(env(2)), clock).unwrap();
        // The future-stamped one pins the clock at its stamp.
        assert_eq!(b.clock_deadline(&s, clock), Some(at(9)));
        assert_eq!(b.enabled(&s, at(9)), vec![A::Recv(env(1))]);
    }

    #[test]
    fn equal_stamps_release_in_arrival_order() {
        let b = Buf::new(NodeId(1), NodeId(0));
        let clock = at(5);
        let stamp = at(7);
        let mut s = b.initial();
        s = b.step(&s, &A::ERecv(env(10), stamp), clock).unwrap();
        s = b.step(&s, &A::ERecv(env(20), stamp), clock).unwrap();
        assert_eq!(b.enabled(&s, stamp), vec![A::Recv(env(10))]);
        s = b.step(&s, &A::Recv(env(10)), stamp).unwrap();
        assert_eq!(b.enabled(&s, stamp), vec![A::Recv(env(20))]);
    }

    #[test]
    fn release_out_of_order_refused() {
        let b = Buf::new(NodeId(1), NodeId(0));
        let clock = at(10);
        let mut s = b.initial();
        s = b.step(&s, &A::ERecv(env(1), at(2)), clock).unwrap();
        s = b.step(&s, &A::ERecv(env(2), at(4)), clock).unwrap();
        // env(2) is not the front.
        assert!(b.step(&s, &A::Recv(env(2)), clock).is_none());
    }

    #[test]
    fn only_own_edge_in_signature() {
        let b = Buf::new(NodeId(1), NodeId(0));
        let other = Envelope {
            src: NodeId(2),
            dst: NodeId(0),
            id: MsgId(1),
            payload: 0,
        };
        assert_eq!(b.classify(&A::ERecv(other, at(0))), None);
        assert_eq!(
            b.classify(&A::ERecv(env(1), at(0))),
            Some(ActionKind::Input)
        );
        assert_eq!(b.classify(&A::Recv(env(1))), Some(ActionKind::Output));
        assert_eq!(b.classify(&A::Send(env(1))), None);
    }
}
