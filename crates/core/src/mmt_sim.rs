//! The transformation `M(A^c_{i,ε}, ℓ)` (Definition 5.1).

use core::fmt::Debug;
use core::hash::Hash;
use std::collections::VecDeque;

use psync_automata::{Action, ActionKind, ClockComponent, ClockComponentBox, DynState};
use psync_mmt::{Boundmap, MmtComponent, TaskId};
use psync_net::{NodeId, SysAction};
use psync_time::{Duration, Time};

/// Safety cap on the number of inner steps one catch-up may take; hitting
/// it means the wrapped clock automaton fires actions forever at one clock
/// instant (a Zeno component).
const MAX_FRAG_STEPS: usize = 100_000;

/// The state of an [`MmtSim`] (Definition 5.1's `states(M(A^c, ℓ))`).
#[derive(Debug, Clone)]
pub struct MmtSimState<M, A> {
    /// `simstate`: the simulated clock-automaton state.
    pub sim: DynState,
    /// The clock value `simstate` has been caught up to.
    pub simclock: Time,
    /// `mmtclock`: the latest `TICK(c)` reading.
    pub mmtclock: Time,
    /// `pending`: output actions owed to the environment, in order.
    pub pending: VecDeque<SysAction<M, A>>,
}

/// `M(A^c_{i,ε}, ℓ)`: the MMT automaton that simulates a clock-automaton
/// node in the realistic model (Definition 5.1 of the paper).
///
/// The MMT automaton cannot see the clock continuously — only through
/// `TICK(c)` inputs — and cannot act at exact clock values. It therefore
/// performs a **delayed simulation**: on every step it *catches up* the
/// simulated node from its last simulated clock value to the latest tick
/// reading, replaying the node's execution fragment (the derived `frag` of
/// Definition 5.1) — internal actions apply silently, output actions apply
/// to the simulated state *and* are appended to the `pending` buffer to be
/// emitted later, one per MMT step. With step bound `ℓ` and at most `k`
/// outputs per `kℓ` clock window (Lemma 4.3), every output is emitted at
/// most `kℓ + 2ε + 3ℓ` after the clock automaton would have emitted it —
/// Theorem 5.1.
///
/// The choice of fragment is deterministic here: enabled locally
/// controlled actions fire eagerly (first-enabled order) at each clock
/// instant, and the clock advances deadline-to-deadline. This is one of
/// the fragments Definition 5.1 permits.
pub struct MmtSim<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    node: NodeId,
    inner: ClockComponentBox<SysAction<M, A>>,
    ell: Duration,
}

impl<M, A> MmtSim<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    /// Wraps the (composed) clock node `inner` as an MMT automaton with
    /// step bound `ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `ell` is not strictly positive.
    #[must_use]
    pub fn new(
        node: NodeId,
        inner: impl ClockComponent<Action = SysAction<M, A>>,
        ell: Duration,
    ) -> Self {
        assert!(ell.is_positive(), "step bound ℓ must be strictly positive");
        MmtSim {
            node,
            inner: ClockComponentBox::new(inner),
            ell,
        }
    }

    /// The step bound `ℓ`.
    #[must_use]
    pub fn ell(&self) -> Duration {
        self.ell
    }

    /// Computes the derived `frag`: replays the inner clock automaton from
    /// `(s.sim, s.simclock)` up to clock `s.mmtclock`, returning the final
    /// state (`fragstate`) and the outputs performed along the way
    /// (`fragoutputs`).
    ///
    /// # Panics
    ///
    /// Panics if the inner automaton is Zeno (more than `MAX_FRAG_STEPS`
    /// actions at one instant) or stops time (a clock deadline falls due
    /// with nothing enabled) — both are model errors in the wrapped
    /// component.
    fn frag(&self, s: &MmtSimState<M, A>) -> (DynState, Vec<SysAction<M, A>>) {
        let mut st = s.sim.clone();
        let mut clock = s.simclock;
        let mut outs = Vec::new();
        let mut steps = 0usize;
        loop {
            // Fire everything enabled at this clock instant, eagerly.
            loop {
                let enabled = self.inner.enabled(&st, clock);
                let Some(a) = enabled.first() else { break };
                let kind = self
                    .inner
                    .classify(a)
                    .expect("enabled action must be in signature");
                st = self
                    .inner
                    .step(&st, a, clock)
                    .expect("enabled action must step");
                if kind == ActionKind::Output {
                    outs.push(a.clone());
                }
                steps += 1;
                assert!(
                    steps <= MAX_FRAG_STEPS,
                    "Zeno clock component inside M({}): >{MAX_FRAG_STEPS} steps at clock {clock}",
                    self.node
                );
            }
            if clock >= s.mmtclock {
                break;
            }
            let target = match self.inner.clock_deadline(&st, clock) {
                Some(d) => {
                    assert!(
                        d > clock,
                        "clock component inside M({}) stopped time at clock {clock} (deadline {d})",
                        self.node
                    );
                    d.min(s.mmtclock)
                }
                None => s.mmtclock,
            };
            st = self
                .inner
                .advance(&st, clock, target)
                .expect("advance within deadline must succeed");
            clock = target;
        }
        (st, outs)
    }
}

impl<M, A> MmtComponent for MmtSim<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = MmtSimState<M, A>;

    fn name(&self) -> String {
        format!("M({}, ℓ={})", self.node, self.ell)
    }

    fn initial(&self) -> Self::State {
        MmtSimState {
            sim: self.inner.initial(),
            simclock: Time::ZERO,
            mmtclock: Time::ZERO,
            pending: VecDeque::new(),
        }
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Tick { node, .. } if *node == self.node => Some(ActionKind::Input),
            SysAction::Tau { node } if *node == self.node => Some(ActionKind::Internal),
            _ => match self.inner.classify(a)? {
                // The inner automaton's internal actions happen silently
                // inside `frag`; they are not actions of M (Definition 5.1
                // has signature (in ∪ {TICK}, out, {τ})).
                ActionKind::Internal => None,
                k => Some(k),
            },
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        // M(A)'s signature adds TICK and τ to the inner automaton's
        // non-internal actions (over-approximating by the internal ones
        // it hides is allowed by the hint contract).
        let mut names = self.inner.action_names()?;
        names.push("TICK");
        names.push("TAU");
        names.sort_unstable();
        names.dedup();
        Some(names)
    }

    fn step(&self, s: &Self::State, a: &Self::Action) -> Option<Self::State> {
        match a {
            SysAction::Tick { node, clock } if *node == self.node => {
                // TICK(c): only the known clock value changes.
                if *clock < s.mmtclock {
                    return None; // tick sources emit non-decreasing readings
                }
                let mut next = s.clone();
                next.mmtclock = *clock;
                Some(next)
            }
            SysAction::Tau { node } if *node == self.node => {
                // τ: catch up; allowed only with an empty pending buffer.
                if !s.pending.is_empty() {
                    return None;
                }
                let (sim, outs) = self.frag(s);
                Some(MmtSimState {
                    sim,
                    simclock: s.mmtclock,
                    mmtclock: s.mmtclock,
                    pending: outs.into(),
                })
            }
            _ => match self.inner.classify(a)? {
                ActionKind::Input => {
                    // Catch up, then apply the input at the caught-up state.
                    let (frag_state, outs) = self.frag(s);
                    let sim = self.inner.step(&frag_state, a, s.mmtclock)?;
                    let mut pending = s.pending.clone();
                    pending.extend(outs);
                    Some(MmtSimState {
                        sim,
                        simclock: s.mmtclock,
                        mmtclock: s.mmtclock,
                        pending,
                    })
                }
                ActionKind::Output => {
                    // Emit the first owed output; its effect on the
                    // simulated state was already applied during a frag.
                    if s.pending.front() != Some(a) {
                        return None;
                    }
                    let (sim, outs) = self.frag(s);
                    let mut pending = s.pending.clone();
                    pending.pop_front();
                    pending.extend(outs);
                    Some(MmtSimState {
                        sim,
                        simclock: s.mmtclock,
                        mmtclock: s.mmtclock,
                        pending,
                    })
                }
                ActionKind::Internal => None,
            },
        }
    }

    fn tasks(&self) -> Vec<Boundmap> {
        // part(M) = {out ∪ {τ}} with boundmap [0, ℓ] (Definition 5.1).
        vec![Boundmap::at_most(self.ell)]
    }

    fn task_of(&self, a: &Self::Action) -> Option<TaskId> {
        match a {
            SysAction::Tau { node } if *node == self.node => Some(TaskId(0)),
            _ => match self.inner.classify(a) {
                Some(ActionKind::Output) => Some(TaskId(0)),
                _ => None,
            },
        }
    }

    fn enabled(&self, s: &Self::State) -> Vec<Self::Action> {
        // Exactly one locally controlled action is enabled at any time:
        // the head of pending, or τ when pending is empty.
        match s.pending.front() {
            Some(a) => vec![a.clone()],
            None => vec![SysAction::Tau { node: self.node }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClockSim;
    use psync_automata::toys::{BeepAction, Beeper};
    use psync_net::SysAction;

    type S = SysAction<u32, BeepAction>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    /// Adapts the Beeper toy into the SysAction alphabet.
    #[derive(Debug, Clone)]
    struct AppBeeper(Beeper);

    impl psync_automata::TimedComponent for AppBeeper {
        type Action = S;
        type State = psync_automata::toys::BeeperState;

        fn name(&self) -> String {
            self.0.name()
        }
        fn initial(&self) -> Self::State {
            psync_automata::TimedComponent::initial(&self.0)
        }
        fn classify(&self, a: &S) -> Option<ActionKind> {
            match a {
                SysAction::App(b) => self.0.classify(b),
                _ => None,
            }
        }
        fn step(&self, s: &Self::State, a: &S, now: Time) -> Option<Self::State> {
            match a {
                SysAction::App(b) => self.0.step(s, b, now),
                _ => None,
            }
        }
        fn enabled(&self, s: &Self::State, now: Time) -> Vec<S> {
            self.0
                .enabled(s, now)
                .into_iter()
                .map(SysAction::App)
                .collect()
        }
        fn deadline(&self, s: &Self::State, now: Time) -> Option<Time> {
            self.0.deadline(s, now)
        }
    }

    fn beeper_sim() -> MmtSim<u32, BeepAction> {
        MmtSim::new(
            NodeId(0),
            ClockSim::new(AppBeeper(Beeper::new(ms(10)))),
            ms(1),
        )
    }

    #[test]
    fn tau_with_stale_clock_does_nothing() {
        let m = beeper_sim();
        let s0 = m.initial();
        assert_eq!(m.enabled(&s0), vec![S::Tau { node: NodeId(0) }]);
        let s1 = m.step(&s0, &S::Tau { node: NodeId(0) }).unwrap();
        assert!(s1.pending.is_empty());
        assert_eq!(s1.simclock, Time::ZERO);
    }

    #[test]
    fn tick_then_tau_catches_up_and_queues_outputs() {
        let m = beeper_sim();
        let s0 = m.initial();
        // The clock jumps straight to 25 ms: the simulated beeper owes two
        // beeps (at clock 10 and 20).
        let s1 = m
            .step(
                &s0,
                &S::Tick {
                    node: NodeId(0),
                    clock: at(25),
                },
            )
            .unwrap();
        assert_eq!(s1.mmtclock, at(25));
        assert_eq!(s1.simclock, Time::ZERO, "TICK alone does not catch up");
        let s2 = m.step(&s1, &S::Tau { node: NodeId(0) }).unwrap();
        assert_eq!(s2.simclock, at(25));
        assert_eq!(
            Vec::from(s2.pending.clone()),
            vec![
                S::App(BeepAction::Beep { src: 0, seq: 0 }),
                S::App(BeepAction::Beep { src: 0, seq: 1 }),
            ]
        );
        // Pending outputs now emit one per step, in order.
        let front = s2.pending.front().unwrap().clone();
        assert_eq!(m.enabled(&s2), vec![front.clone()]);
        let s3 = m.step(&s2, &front).unwrap();
        assert_eq!(s3.pending.len(), 1);
        // τ is refused while outputs are owed.
        assert!(m.step(&s2, &S::Tau { node: NodeId(0) }).is_none());
    }

    #[test]
    fn regressing_tick_is_refused() {
        let m = beeper_sim();
        let s0 = m.initial();
        let s1 = m
            .step(
                &s0,
                &S::Tick {
                    node: NodeId(0),
                    clock: at(5),
                },
            )
            .unwrap();
        assert!(m
            .step(
                &s1,
                &S::Tick {
                    node: NodeId(0),
                    clock: at(4),
                },
            )
            .is_none());
    }

    #[test]
    fn emitting_wrong_output_is_refused() {
        let m = beeper_sim();
        let s0 = m.initial();
        let s1 = m
            .step(
                &s0,
                &S::Tick {
                    node: NodeId(0),
                    clock: at(25),
                },
            )
            .unwrap();
        let s2 = m.step(&s1, &S::Tau { node: NodeId(0) }).unwrap();
        // The second owed beep may not jump the queue.
        assert!(m
            .step(&s2, &S::App(BeepAction::Beep { src: 0, seq: 1 }))
            .is_none());
    }

    #[test]
    fn single_task_class_with_ell_bound() {
        let m = beeper_sim();
        let tasks = m.tasks();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].upper(), ms(1));
        assert_eq!(m.task_of(&S::Tau { node: NodeId(0) }), Some(TaskId(0)));
        assert_eq!(
            m.task_of(&S::App(BeepAction::Beep { src: 0, seq: 0 })),
            Some(TaskId(0))
        );
        assert_eq!(
            m.task_of(&S::Tick {
                node: NodeId(0),
                clock: at(0)
            }),
            None
        );
    }

    #[test]
    fn classification_follows_definition_5_1() {
        let m = beeper_sim();
        assert_eq!(
            m.classify(&S::Tick {
                node: NodeId(0),
                clock: at(0)
            }),
            Some(ActionKind::Input)
        );
        assert_eq!(
            m.classify(&S::Tau { node: NodeId(0) }),
            Some(ActionKind::Internal)
        );
        assert_eq!(
            m.classify(&S::App(BeepAction::Beep { src: 0, seq: 0 })),
            Some(ActionKind::Output)
        );
        // Other nodes' ticks are not ours.
        assert_eq!(
            m.classify(&S::Tick {
                node: NodeId(1),
                clock: at(0)
            }),
            None
        );
    }
}
