//! Assembling the transformed node `A^c_{i,ε}` (Section 4.2).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ClockComponentBox, ComponentBox, HiddenClock, TimedComponent};
use psync_executor::{ClockNode, ClockStrategy};
use psync_net::{NodeId, SysAction, Topology};
use psync_time::Duration;

use crate::{ClockSim, RecvBuffer, SendBuffer};

/// One node of a distributed system: its id and the (timed-model) node
/// algorithm `A_i`, written against the network interface of Section 3.1
/// (`SENDMSG_i` outputs, `RECVMSG_i` inputs, plus arbitrary application
/// actions).
pub struct NodeSpec<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    /// The node's id in the topology.
    pub id: NodeId,
    /// The node algorithm `A_i`.
    pub algorithm: ComponentBox<SysAction<M, A>>,
}

impl<M, A> NodeSpec<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    /// Creates a spec from a concrete algorithm component.
    #[must_use]
    pub fn new<C: TimedComponent<Action = SysAction<M, A>>>(id: NodeId, algorithm: C) -> Self {
        NodeSpec {
            id,
            algorithm: ComponentBox::new(algorithm),
        }
    }
}

/// The parts of the transformed node `A^c_{i,ε}`, before they are attached
/// to a clock: `C(A_i, ε)` plus one `S_{ij,ε}` per outgoing edge and one
/// `R_{ji,ε}` per incoming edge, with the internal `SENDMSG_i`/`RECVMSG_i`
/// hand-off actions hidden, exactly as in Section 4.2 ("…and the
/// subsequent hiding of the SENDMSG and RECVMSG actions").
pub(crate) fn node_parts<M, A>(
    spec: NodeSpec<M, A>,
    topo: &Topology,
) -> Vec<ClockComponentBox<SysAction<M, A>>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    let i = spec.id;
    let mut parts: Vec<ClockComponentBox<SysAction<M, A>>> = vec![ClockComponentBox::new(
        HiddenClock::new(ClockSim::from_box(spec.algorithm), |a: &SysAction<M, A>| {
            matches!(a, SysAction::Send(_))
        }),
    )];
    for j in topo.out_neighbors(i) {
        parts.push(ClockComponentBox::new(SendBuffer::<M, A>::new(i, j)));
    }
    for j in topo.in_neighbors(i) {
        parts.push(ClockComponentBox::new(HiddenClock::new(
            RecvBuffer::<M, A>::new(j, i),
            |a: &SysAction<M, A>| matches!(a, SysAction::Recv(_)),
        )));
    }
    parts
}

/// Transforms a timed-model node algorithm into the clock-model node
/// `A^c_{i,ε} = C(A_i, ε) ∥ (∥_j S_{ij,ε}) ∥ (∥_j R_{ji,ε})` of
/// Section 4.2, attached to a node clock with skew bound `eps` driven by
/// `strategy`.
///
/// This is the per-node half of Theorem 4.7; [`crate::build_dc`] applies
/// it to a whole system.
#[must_use]
pub fn transform_node<M, A>(
    spec: NodeSpec<M, A>,
    topo: &Topology,
    eps: Duration,
    strategy: impl ClockStrategy + 'static,
) -> ClockNode<SysAction<M, A>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    let name = format!("A^c({})", spec.id);
    let parts = node_parts(spec, topo);
    let mut node = ClockNode::new(name, eps, strategy);
    for p in parts {
        node = node.with_boxed(p);
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_net::Script;

    type M = u32;
    type App = &'static str;

    #[test]
    fn node_parts_cover_all_edges() {
        let topo = Topology::complete(3);
        // Any timed component with the right action type works as a stand-in
        // algorithm here; the script never fires.
        let alg: Script<M, App> = Script::new([], |_| false);
        let spec = NodeSpec::new(NodeId(1), alg);
        let parts = node_parts(spec, &topo);
        // 1 algorithm + 2 send buffers + 2 receive buffers.
        assert_eq!(parts.len(), 5);
        let names: Vec<&str> = parts.iter().map(|p| p.name()).collect();
        assert!(names[0].starts_with("hide(C("));
        assert!(names.contains(&"S(n1→n0)"));
        assert!(names.contains(&"S(n1→n2)"));
        assert!(names.contains(&"hide(R(n0→n1))"));
        assert!(names.contains(&"hide(R(n2→n1))"));
    }

    #[test]
    fn line_topology_gives_fewer_buffers() {
        let topo = Topology::line(3);
        let alg: Script<M, App> = Script::new([], |_| false);
        let parts = node_parts(NodeSpec::new(NodeId(0), alg), &topo);
        // Node 0 has a single neighbor in a line.
        assert_eq!(parts.len(), 3);
    }
}
