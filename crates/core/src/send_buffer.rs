//! The send buffer `S_{ij,ε}` (Figure 2, left).

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::{Action, ActionKind, ClockComponent};
use psync_net::{Envelope, NodeId, SysAction};
use psync_time::Time;

/// State of a [`SendBuffer`]: the queue `q_ij` of `(message, clock-stamp)`
/// pairs.
pub type SendBufferState<M> = Vec<(Envelope<M>, Time)>;

/// `S_{ij,ε}`: tags each outgoing message with the clock time at which it
/// was sent (Figure 2, left, of the paper).
///
/// * `SENDMSG_i(j, m)` (input, from `C(A_i, ε)`) enqueues `(m, clock)`.
/// * `ESENDMSG_i(j, (m, c))` (output, to the channel) dequeues the front
///   pair, with the precondition `c = clock` — and the `ν` precondition
///   forbids the clock from advancing while the queue is non-empty, so the
///   tag is always the *sending* clock value and the buffer drains within
///   a single clock instant.
pub struct SendBuffer<M, A> {
    from: NodeId,
    to: NodeId,
    _marker: core::marker::PhantomData<fn() -> (M, A)>,
}

impl<M, A> SendBuffer<M, A> {
    /// Creates the send buffer for edge `from → to`.
    #[must_use]
    pub fn new(from: NodeId, to: NodeId) -> Self {
        SendBuffer {
            from,
            to,
            _marker: core::marker::PhantomData,
        }
    }

    fn routes(&self, env: &Envelope<M>) -> bool {
        env.src == self.from && env.dst == self.to
    }
}

impl<M, A> ClockComponent for SendBuffer<M, A>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    type Action = SysAction<M, A>;
    type State = SendBufferState<M>;

    fn name(&self) -> String {
        format!("S({}→{})", self.from, self.to)
    }

    fn initial(&self) -> Self::State {
        Vec::new()
    }

    fn classify(&self, a: &Self::Action) -> Option<ActionKind> {
        match a {
            SysAction::Send(env) if self.routes(env) => Some(ActionKind::Input),
            SysAction::ESend(env, _) if self.routes(env) => Some(ActionKind::Output),
            _ => None,
        }
    }

    fn action_names(&self) -> Option<Vec<&'static str>> {
        Some(vec!["SENDMSG", "ESENDMSG"])
    }

    fn step(&self, s: &Self::State, a: &Self::Action, clock: Time) -> Option<Self::State> {
        match a {
            SysAction::Send(env) if self.routes(env) => {
                let mut next = s.clone();
                next.push((env.clone(), clock));
                Some(next)
            }
            SysAction::ESend(env, c) if self.routes(env) => {
                let (front_env, front_c) = s.first()?;
                if front_env != env || front_c != c || *c != clock {
                    return None;
                }
                Some(s[1..].to_vec())
            }
            _ => None,
        }
    }

    fn enabled(&self, s: &Self::State, clock: Time) -> Vec<Self::Action> {
        match s.first() {
            Some((env, c)) if *c == clock => vec![SysAction::ESend(env.clone(), *c)],
            _ => Vec::new(),
        }
    }

    fn clock_deadline(&self, s: &Self::State, _clock: Time) -> Option<Time> {
        // ν precondition: no queued (m, c) may have c < clock + Δc —
        // the clock cannot move past any queued stamp.
        s.iter().map(|(_, c)| *c).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_net::MsgId;
    use psync_time::Duration;

    type A = SysAction<u32, &'static str>;
    type Buf = SendBuffer<u32, &'static str>;

    fn at(n: i64) -> Time {
        Time::ZERO + Duration::from_millis(n)
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(id),
            payload: id as u32,
        }
    }

    #[test]
    fn tags_with_send_clock_and_forwards_fifo() {
        let b = Buf::new(NodeId(0), NodeId(1));
        let clock = at(7);
        let mut s = b.initial();
        s = b.step(&s, &A::Send(env(1)), clock).unwrap();
        s = b.step(&s, &A::Send(env(2)), clock).unwrap();
        assert_eq!(b.enabled(&s, clock), vec![A::ESend(env(1), clock)]);
        s = b.step(&s, &A::ESend(env(1), clock), clock).unwrap();
        assert_eq!(b.enabled(&s, clock), vec![A::ESend(env(2), clock)]);
        s = b.step(&s, &A::ESend(env(2), clock), clock).unwrap();
        assert!(s.is_empty());
        assert_eq!(b.clock_deadline(&s, clock), None);
    }

    #[test]
    fn clock_pinned_while_nonempty() {
        let b = Buf::new(NodeId(0), NodeId(1));
        let clock = at(7);
        let s = b.step(&b.initial(), &A::Send(env(1)), clock).unwrap();
        // The ν precondition pins the clock at the queued stamp.
        assert_eq!(b.clock_deadline(&s, clock), Some(clock));
    }

    #[test]
    fn wrong_stamp_or_order_refused() {
        let b = Buf::new(NodeId(0), NodeId(1));
        let clock = at(7);
        let mut s = b.initial();
        s = b.step(&s, &A::Send(env(1)), clock).unwrap();
        s = b.step(&s, &A::Send(env(2)), clock).unwrap();
        // Not the front.
        assert!(b.step(&s, &A::ESend(env(2), clock), clock).is_none());
        // Wrong stamp.
        assert!(b.step(&s, &A::ESend(env(1), at(8)), clock).is_none());
    }

    #[test]
    fn only_own_edge_in_signature() {
        let b = Buf::new(NodeId(0), NodeId(1));
        let other = Envelope {
            src: NodeId(2),
            dst: NodeId(1),
            id: MsgId(1),
            payload: 0,
        };
        assert_eq!(b.classify(&A::Send(other)), None);
        assert_eq!(b.classify(&A::Send(env(1))), Some(ActionKind::Input));
        assert_eq!(
            b.classify(&A::ESend(env(1), at(0))),
            Some(ActionKind::Output)
        );
        assert_eq!(b.classify(&A::Recv(env(1))), None);
    }
}
