//! Per-message flight analysis: the measurable quantities behind
//! Lemma 4.5 (clock-time delay envelope) and Section 7.2 (when the receive
//! buffering actually engages).

use core::fmt::Debug;
use core::hash::Hash;
use std::collections::BTreeMap;

use psync_automata::{Action, Execution};
use psync_net::{MsgId, NodeId, SysAction};
use psync_time::{Duration, Time};

/// Everything observable about one message's journey through a clock-model
/// (or MMT-model) system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Flight {
    /// Sending node.
    pub src: Option<NodeId>,
    /// Receiving node.
    pub dst: Option<NodeId>,
    /// Real time of the algorithm's `SENDMSG` (hand-off to the send
    /// buffer).
    pub send_real: Option<Time>,
    /// Real time of `ESENDMSG` (entry into the channel).
    pub esend_real: Option<Time>,
    /// The clock stamp `c` the send buffer attached.
    pub stamp: Option<Time>,
    /// Real time of `ERECVMSG` (arrival at the receive buffer).
    pub erecv_real: Option<Time>,
    /// Real time of `RECVMSG` (release to the algorithm).
    pub recv_real: Option<Time>,
    /// Receiver's clock at release.
    pub recv_clock: Option<Time>,
}

impl Flight {
    /// Real-time delay through the channel (`ESENDMSG → ERECVMSG`), the
    /// quantity the channel automaton confines to `[d₁, d₂]`.
    #[must_use]
    pub fn channel_delay(&self) -> Option<Duration> {
        Some(self.erecv_real? - self.esend_real?)
    }

    /// Clock-time delay as the nodes see it: receiver's release clock
    /// minus the send stamp. Lemma 4.5 confines this to
    /// `[max(0, d₁ − 2ε), d₂ + 2ε]`.
    #[must_use]
    pub fn clock_delay(&self) -> Option<Duration> {
        Some(self.recv_clock? - self.stamp?)
    }

    /// How long the receive buffer held the message
    /// (`ERECVMSG → RECVMSG`). Zero when the buffering never engaged —
    /// which Section 7.2 predicts whenever `d₁ > 2ε`.
    #[must_use]
    pub fn hold_time(&self) -> Option<Duration> {
        Some(self.recv_real? - self.erecv_real?)
    }

    /// `true` when every stage of the journey was observed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.esend_real.is_some()
            && self.stamp.is_some()
            && self.erecv_real.is_some()
            && self.recv_real.is_some()
            && self.recv_clock.is_some()
    }
}

/// Extracts the flight record of every message in an execution, keyed by
/// message id. Works on `D_C` and `D_M` executions (all interface actions
/// are recorded even when hidden — hiding affects only visibility, not
/// recording).
#[must_use]
pub fn flights<M, A>(exec: &Execution<SysAction<M, A>>) -> BTreeMap<MsgId, Flight>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    let mut out: BTreeMap<MsgId, Flight> = BTreeMap::new();
    for e in exec.events() {
        match &e.action {
            SysAction::Send(env) => {
                let f = out.entry(env.id).or_default();
                f.src = Some(env.src);
                f.dst = Some(env.dst);
                f.send_real = Some(e.now);
            }
            SysAction::ESend(env, c) => {
                let f = out.entry(env.id).or_default();
                f.src = Some(env.src);
                f.dst = Some(env.dst);
                f.esend_real = Some(e.now);
                f.stamp = Some(*c);
            }
            SysAction::ERecv(env, _) => {
                let f = out.entry(env.id).or_default();
                f.erecv_real = Some(e.now);
            }
            SysAction::Recv(env) => {
                let f = out.entry(env.id).or_default();
                f.recv_real = Some(e.now);
                f.recv_clock = e.clock;
            }
            _ => {}
        }
    }
    out
}

/// Summary statistics over a set of durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurationStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: Duration,
    /// Maximum.
    pub max: Duration,
    /// Mean (integer nanoseconds).
    pub mean: Duration,
}

/// Computes summary statistics; `None` for an empty sample.
#[must_use]
pub fn duration_stats(samples: impl IntoIterator<Item = Duration>) -> Option<DurationStats> {
    let mut count = 0usize;
    let mut min = Duration::MAX;
    let mut max = Duration::MIN;
    let mut total: i128 = 0;
    for d in samples {
        count += 1;
        min = min.min(d);
        max = max.max(d);
        total += i128::from(d.as_nanos());
    }
    if count == 0 {
        return None;
    }
    Some(DurationStats {
        count,
        min,
        max,
        mean: Duration::from_nanos((total / count as i128) as i64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::{ActionKind, TimedEvent};
    use psync_net::Envelope;

    type S = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn env(id: u64) -> Envelope<u32> {
        Envelope {
            src: NodeId(0),
            dst: NodeId(1),
            id: MsgId(id),
            payload: 7,
        }
    }

    fn exec_with_one_flight() -> Execution<S> {
        let mk = |action: S, now: Time, clock: Option<Time>| TimedEvent {
            action,
            kind: ActionKind::Internal,
            now,
            clock,
            node: None,
        };
        Execution::new(
            vec![
                mk(S::Send(env(1)), at(1), Some(at(2))),
                mk(S::ESend(env(1), at(2)), at(1), Some(at(2))),
                mk(S::ERecv(env(1), at(2)), at(4), Some(at(3))),
                mk(S::Recv(env(1)), at(5), Some(at(4))),
            ],
            at(10),
        )
    }

    #[test]
    fn flight_extraction_covers_all_stages() {
        let f = &flights(&exec_with_one_flight())[&MsgId(1)];
        assert!(f.is_complete());
        assert_eq!(f.src, Some(NodeId(0)));
        assert_eq!(f.dst, Some(NodeId(1)));
        assert_eq!(f.channel_delay(), Some(ms(3)));
        assert_eq!(f.clock_delay(), Some(ms(2)));
        assert_eq!(f.hold_time(), Some(ms(1)));
    }

    #[test]
    fn incomplete_flight_reports_none() {
        let mk = |action: S, now: Time| TimedEvent {
            action,
            kind: ActionKind::Internal,
            now,
            clock: None,
            node: None,
        };
        let exec = Execution::new(vec![mk(S::ESend(env(1), at(2)), at(1))], at(10));
        let f = &flights(&exec)[&MsgId(1)];
        assert!(!f.is_complete());
        assert_eq!(f.channel_delay(), None);
        assert_eq!(f.hold_time(), None);
    }

    #[test]
    fn stats_computation() {
        let s = duration_stats([ms(1), ms(2), ms(6)]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(6));
        assert_eq!(s.mean, ms(3));
        assert_eq!(duration_stats([]), None);
    }
}
