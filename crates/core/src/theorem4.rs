//! Constructive verification of Theorem 4.6/4.7: the `γ_α` construction.

use core::fmt::Debug;
use core::hash::Hash;

use psync_automata::problem::{check_in_p_eps, PeErrors, Problem};
use psync_automata::relations::{ClassMap, Witness};
use psync_automata::{reorder_by_time, Action, Execution, TimedTrace};
use psync_net::{NodeId, SysAction};
use psync_time::Duration;

/// The per-node class map `κ = {uacts(A_1), …, uacts(A_n)}` used by the
/// `=_{ε,κ}` relation in Section 4.3: every action is classed by the node
/// it belongs to. `app_node` resolves application actions to their node.
#[must_use]
pub fn node_classes<M, A>(
    app_node: impl Fn(&A) -> Option<NodeId> + Send + Sync + 'static,
) -> ClassMap<SysAction<M, A>>
where
    M: 'static,
    A: 'static,
{
    ClassMap::by(move |a: &SysAction<M, A>| a.node(&app_node).map(|n| n.0))
}

/// The application-level timed trace of an execution: the visible `App`
/// actions with their *real* occurrence times. This is the trace that
/// problems (linearizability etc.) judge.
#[must_use]
pub fn app_trace<M, A>(exec: &Execution<SysAction<M, A>>) -> TimedTrace<SysAction<M, A>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    exec.events()
        .iter()
        .filter(|e| e.kind.is_visible() && matches!(e.action, SysAction::App(_)))
        .map(|e| (e.action.clone(), e.now))
        .collect()
}

/// The witness trace of Theorem 4.6: the visible application actions with
/// their per-node **clock** times, stably reordered into time order — the
/// visible projection of `γ_α` (Definition 4.2).
///
/// Theorem 4.6 proves this is the timed trace of some admissible execution
/// `β` of the *timed-model* system `D_T`, and that
/// `t-trace(α) =_ε t-trace(β)`.
///
/// Visible actions that touch no clock node (none exist in a well-formed
/// `D_C`) fall back to their real times.
#[must_use]
pub fn sim1_witness<M, A>(exec: &Execution<SysAction<M, A>>) -> TimedTrace<SysAction<M, A>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    let pairs: Vec<(SysAction<M, A>, psync_time::Time)> = exec
        .events()
        .iter()
        .filter(|e| e.kind.is_visible() && matches!(e.action, SysAction::App(_)))
        .map(|e| (e.action.clone(), e.clock.unwrap_or(e.now)))
        .collect();
    reorder_by_time(pairs)
}

/// Checks Theorem 4.7 on a recorded `D_C` execution: constructs the
/// witness `γ_α`, verifies it satisfies `P`, and verifies the recorded
/// trace is `=_{ε,κ}` the witness — which certifies the trace is in
/// `tseq(P_ε)`.
///
/// Returns the relation witness; its `max_deviation` is the measured trace
/// distortion, which Theorem 4.6 bounds by `ε` (experiment E3).
///
/// # Errors
///
/// [`PeErrors::NotInP`] if the witness violates `P` (the simulation or the
/// algorithm is broken), [`PeErrors::NotRelated`] if the distortion
/// exceeds `ε`.
pub fn check_sim1<M, A>(
    exec: &Execution<SysAction<M, A>>,
    problem: &dyn Problem<SysAction<M, A>>,
    eps: Duration,
    classes: &ClassMap<SysAction<M, A>>,
) -> Result<Witness, PeErrors<SysAction<M, A>>>
where
    M: Clone + Eq + Hash + Debug + 'static,
    A: Action,
{
    let witness = sim1_witness(exec);
    let trace = app_trace(exec);
    check_in_p_eps(problem, &trace, &witness, eps, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psync_automata::problem::{FnProblem, Verdict};
    use psync_automata::{ActionKind, TimedEvent};
    use psync_time::Time;

    type S = SysAction<u32, &'static str>;

    fn ms(n: i64) -> Duration {
        Duration::from_millis(n)
    }

    fn at(n: i64) -> Time {
        Time::ZERO + ms(n)
    }

    fn ev(action: S, kind: ActionKind, now: Time, clock: Option<Time>) -> TimedEvent<S> {
        TimedEvent {
            action,
            kind,
            now,
            clock,
            node: None,
        }
    }

    fn app(a: &'static str) -> S {
        SysAction::App(a)
    }

    #[test]
    fn app_trace_filters_to_visible_app_actions() {
        let exec = Execution::new(
            vec![
                ev(app("x"), ActionKind::Output, at(1), Some(at(2))),
                ev(app("hidden"), ActionKind::Internal, at(2), None),
                ev(
                    SysAction::Tau { node: NodeId(0) },
                    ActionKind::Internal,
                    at(3),
                    None,
                ),
                ev(app("y"), ActionKind::Input, at(4), Some(at(3))),
            ],
            at(10),
        );
        let tr = app_trace(&exec);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.get(0), Some((&app("x"), at(1))));
        assert_eq!(tr.get(1), Some((&app("y"), at(4))));
    }

    #[test]
    fn witness_uses_clock_times_and_reorders() {
        // Node 0's clock runs fast, node 1's slow: real order y-then-x,
        // clock order x-then-y.
        let exec = Execution::new(
            vec![
                ev(app("y"), ActionKind::Output, at(1), Some(at(5))),
                ev(app("x"), ActionKind::Output, at(2), Some(at(3))),
            ],
            at(10),
        );
        let w = sim1_witness(&exec);
        assert_eq!(w.get(0), Some((&app("x"), at(3))));
        assert_eq!(w.get(1), Some((&app("y"), at(5))));
    }

    #[test]
    fn check_sim1_certifies_p_eps_membership() {
        // P: "x happens at or before 3 ms". In real time it happened at
        // 4 ms — only the clock-time witness satisfies P.
        let p = FnProblem::new("x by 3ms", |tr: &TimedTrace<S>| {
            match tr.iter().find(|(a, _)| **a == app("x")) {
                Some((_, t)) if t <= at(3) => Verdict::Holds,
                Some((_, t)) => Verdict::violated(format!("x at {t}")),
                None => Verdict::violated("no x"),
            }
        });
        let exec = Execution::new(
            vec![ev(app("x"), ActionKind::Output, at(4), Some(at(3)))],
            at(10),
        );
        let classes = node_classes::<u32, &'static str>(|_| Some(NodeId(0)));
        let w = check_sim1(&exec, &p, ms(1), &classes).unwrap();
        assert_eq!(w.max_deviation, ms(1));

        // With a tighter ε the relation fails.
        let err = check_sim1(&exec, &p, Duration::from_micros(500), &classes).unwrap_err();
        assert!(matches!(err, PeErrors::NotRelated(_)));
    }

    #[test]
    fn node_classes_distinguish_nodes() {
        let classes = node_classes::<u32, &'static str>(|a| {
            if *a == "x" {
                Some(NodeId(0))
            } else {
                Some(NodeId(1))
            }
        });
        assert_eq!(classes.class_of(&app("x")), Some(0));
        assert_eq!(classes.class_of(&app("y")), Some(1));
        assert_eq!(
            classes.class_of(&SysAction::Tau { node: NodeId(7) }),
            Some(7)
        );
    }
}
