//! Edge cases of the `M(A^c, ℓ)` transformation: Zeno and time-stopping
//! inner components are diagnosed, and catch-up handles bursts.

use psync_automata::{ActionKind, ClockComponent};
use psync_core::MmtSim;
use psync_mmt::MmtComponent;
use psync_net::{NodeId, SysAction};
use psync_time::{Duration, Time};

type A = SysAction<u32, &'static str>;

fn ms(n: i64) -> Duration {
    Duration::from_millis(n)
}

fn at(n: i64) -> Time {
    Time::ZERO + ms(n)
}

/// Fires forever at one clock instant.
#[derive(Debug, Clone)]
struct ZenoClock;

impl ClockComponent for ZenoClock {
    type Action = A;
    type State = u64;

    fn name(&self) -> String {
        "zeno".into()
    }
    fn initial(&self) -> u64 {
        0
    }
    fn classify(&self, _: &A) -> Option<ActionKind> {
        Some(ActionKind::Output)
    }
    fn step(&self, s: &u64, _: &A, _: Time) -> Option<u64> {
        Some(s + 1)
    }
    fn enabled(&self, _: &u64, _: Time) -> Vec<A> {
        vec![SysAction::App("go")]
    }
    fn clock_deadline(&self, _: &u64, _: Time) -> Option<Time> {
        None
    }
}

#[test]
#[should_panic(expected = "Zeno")]
fn zeno_inner_component_is_diagnosed_during_catch_up() {
    let m = MmtSim::new(NodeId(0), ZenoClock, ms(1));
    let s0 = m.initial();
    // Any catch-up (even to clock 0) hits the eager-firing cap.
    let _ = m.step(&s0, &SysAction::Tau { node: NodeId(0) });
}

/// Demands an action at clock 5 ms but never enables one.
#[derive(Debug, Clone)]
struct StuckClock;

impl ClockComponent for StuckClock {
    type Action = A;
    type State = ();

    fn name(&self) -> String {
        "stuck".into()
    }
    fn initial(&self) {}
    fn classify(&self, _: &A) -> Option<ActionKind> {
        Some(ActionKind::Output)
    }
    fn step(&self, _: &(), _: &A, _: Time) -> Option<()> {
        None
    }
    fn enabled(&self, _: &(), _: Time) -> Vec<A> {
        Vec::new()
    }
    fn clock_deadline(&self, _: &(), _: Time) -> Option<Time> {
        Some(at(5))
    }
}

#[test]
#[should_panic(expected = "stopped time")]
fn time_stopping_inner_component_is_diagnosed() {
    let m = MmtSim::new(NodeId(0), StuckClock, ms(1));
    let s0 = m.initial();
    // Catch up past the dead deadline.
    let s1 = m
        .step(
            &s0,
            &SysAction::Tick {
                node: NodeId(0),
                clock: at(10),
            },
        )
        .unwrap();
    let _ = m.step(&s1, &SysAction::Tau { node: NodeId(0) });
}

/// Emits one output at each multiple of 1 ms of clock time.
#[derive(Debug, Clone)]
struct BurstClock;

impl ClockComponent for BurstClock {
    type Action = A;
    type State = i64; // next due millisecond

    fn name(&self) -> String {
        "burst".into()
    }
    fn initial(&self) -> i64 {
        1
    }
    fn classify(&self, a: &A) -> Option<ActionKind> {
        matches!(a, SysAction::App(_)).then_some(ActionKind::Output)
    }
    fn step(&self, s: &i64, a: &A, clock: Time) -> Option<i64> {
        (matches!(a, SysAction::App("tick")) && clock >= at(*s)).then(|| s + 1)
    }
    fn enabled(&self, s: &i64, clock: Time) -> Vec<A> {
        if clock >= at(*s) {
            vec![SysAction::App("tick")]
        } else {
            Vec::new()
        }
    }
    fn clock_deadline(&self, s: &i64, _: Time) -> Option<Time> {
        Some(at(*s))
    }
}

#[test]
fn catch_up_replays_every_missed_deadline_in_order() {
    let m = MmtSim::new(NodeId(0), BurstClock, ms(1));
    let s0 = m.initial();
    // One giant tick: the simulated component owes 10 outputs (clock
    // deadlines at 1..=10 ms).
    let s1 = m
        .step(
            &s0,
            &SysAction::Tick {
                node: NodeId(0),
                clock: at(10),
            },
        )
        .unwrap();
    let s2 = m.step(&s1, &SysAction::Tau { node: NodeId(0) }).unwrap();
    assert_eq!(s2.pending.len(), 10);
    assert!(s2.pending.iter().all(|a| *a == SysAction::App("tick")));
    // They drain one per MMT step, in order.
    let mut s = s2;
    for remaining in (0..10).rev() {
        let front = s.pending.front().unwrap().clone();
        s = m.step(&s, &front).unwrap();
        assert_eq!(s.pending.len(), remaining);
    }
}
