//! Marzullo's interval-intersection algorithm over clock-offset
//! estimates.
//!
//! Each probe/echo exchange yields an interval `[lo, hi]` guaranteed to
//! contain the true clock offset to a peer *if* the exchange was honest
//! and its delays stayed inside `[d₁, d₂]`. Marzullo's algorithm fuses a
//! batch of such intervals into the smallest interval consistent with
//! the largest number of sources: an endpoint sweep finds the leftmost
//! region covered by the maximum number of input intervals. Honest
//! majorities shrink the estimate; faulty minorities (a gray channel, a
//! spiked delay) are outvoted instead of poisoning it.
//!
//! The core is pure and allocation-light: [`Marzullo`] keeps one scratch
//! buffer that is reused across calls, so steady-state fusion allocates
//! nothing.

use psync_time::Duration;

/// A closed interval `[lo, hi]` of candidate clock offsets, `lo ≤ hi`.
///
/// The *offset* convention throughout this crate: an interval produced
/// by node `i` probing node `j` brackets `C_j − C_i`, the amount by
/// which `j`'s clock leads `i`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OffsetInterval {
    lo: Duration,
    hi: Duration,
}

impl OffsetInterval {
    /// Builds `[lo, hi]`; `None` when `lo > hi` (an empty interval —
    /// the sample contradicted itself and must be discarded).
    #[must_use]
    pub fn new(lo: Duration, hi: Duration) -> Option<OffsetInterval> {
        (lo <= hi).then_some(OffsetInterval { lo, hi })
    }

    /// The degenerate interval `[d, d]`.
    #[must_use]
    pub fn point(d: Duration) -> OffsetInterval {
        OffsetInterval { lo: d, hi: d }
    }

    /// The symmetric interval `[−half, +half]`.
    ///
    /// # Panics
    ///
    /// Panics when `half` is negative.
    #[must_use]
    pub fn symmetric(half: Duration) -> OffsetInterval {
        assert!(
            !half.is_negative(),
            "symmetric interval needs a non-negative half-width"
        );
        OffsetInterval {
            lo: -half,
            hi: half,
        }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(self) -> Duration {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(self) -> Duration {
        self.hi
    }

    /// `hi − lo`.
    #[must_use]
    pub fn width(self) -> Duration {
        self.hi - self.lo
    }

    /// The largest absolute offset the interval still allows:
    /// `max(|lo|, |hi|)`. This is the ε̂ contribution of one peer — the
    /// worst-case skew consistent with the estimate.
    #[must_use]
    pub fn magnitude(self) -> Duration {
        self.lo.abs().max(self.hi.abs())
    }

    /// `true` when `d ∈ [lo, hi]`.
    #[must_use]
    pub fn contains(self, d: Duration) -> bool {
        self.lo <= d && d <= self.hi
    }

    /// Set intersection; `None` when the intervals are disjoint.
    #[must_use]
    pub fn intersect(self, other: OffsetInterval) -> Option<OffsetInterval> {
        OffsetInterval::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Grows both endpoints outward by `margin` — the drift allowance
    /// applied when an estimate ages (clocks may have slid apart by
    /// `ρ·Δt` since the interval was measured).
    ///
    /// # Panics
    ///
    /// Panics when `margin` is negative.
    #[must_use]
    pub fn widen(self, margin: Duration) -> OffsetInterval {
        assert!(!margin.is_negative(), "widen needs a non-negative margin");
        OffsetInterval {
            lo: self.lo - margin,
            hi: self.hi + margin,
        }
    }
}

/// The result of fusing a batch of intervals: the leftmost smallest
/// region covered by the maximum number of inputs, and that count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fusion {
    /// The fused interval.
    pub interval: OffsetInterval,
    /// How many input intervals cover every point of `interval`.
    pub support: usize,
}

/// Reusable Marzullo fuser. Keeps the endpoint scratch buffer across
/// calls so per-round fusion does not allocate once warmed up.
#[derive(Debug, Clone, Default)]
pub struct Marzullo {
    scratch: Vec<(Duration, i8)>,
}

impl Marzullo {
    /// A fuser with an empty scratch buffer.
    #[must_use]
    pub fn new() -> Marzullo {
        Marzullo::default()
    }

    /// Fuses `intervals` into the leftmost region of maximum overlap.
    ///
    /// Endpoints sweep left to right; at equal coordinates interval
    /// *starts* are processed before *ends*, so closed intervals that
    /// merely touch (`[a, b]` and `[b, c]`) count as overlapping at the
    /// shared point. Returns `None` only for an empty batch.
    pub fn fuse(&mut self, intervals: &[OffsetInterval]) -> Option<Fusion> {
        if intervals.is_empty() {
            return None;
        }
        self.scratch.clear();
        self.scratch.reserve(2 * intervals.len());
        for iv in intervals {
            self.scratch.push((iv.lo, 1));
            self.scratch.push((iv.hi, -1));
        }
        // Starts before ends at equal coordinates: key maps +1 → −1 and
        // −1 → +1, so start entries sort first.
        self.scratch.sort_unstable_by_key(|&(d, delta)| (d, -delta));

        let mut count: i32 = 0;
        let mut best: i32 = 0;
        let mut fused = OffsetInterval::point(Duration::ZERO);
        for (idx, &(v, delta)) in self.scratch.iter().enumerate() {
            count += i32::from(delta);
            if count > best {
                best = count;
                // A new maximum is always reached on a start, so a later
                // endpoint exists; the region runs to the next endpoint.
                fused = OffsetInterval {
                    lo: v,
                    hi: self.scratch[idx + 1].0,
                };
            }
        }
        debug_assert!(best as usize >= 1);
        Some(Fusion {
            interval: fused,
            support: best as usize,
        })
    }
}

/// One-shot convenience wrapper over [`Marzullo::fuse`].
#[must_use]
pub fn fuse(intervals: &[OffsetInterval]) -> Option<Fusion> {
    Marzullo::new().fuse(intervals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> OffsetInterval {
        OffsetInterval::new(Duration::from_nanos(lo), Duration::from_nanos(hi)).unwrap()
    }

    #[test]
    fn empty_batch_fuses_to_none() {
        assert_eq!(fuse(&[]), None);
    }

    #[test]
    fn all_overlapping_gives_exact_intersection() {
        let f = fuse(&[iv(-5, 10), iv(-2, 7), iv(0, 20)]).unwrap();
        assert_eq!(f.interval, iv(0, 7));
        assert_eq!(f.support, 3);
    }

    #[test]
    fn outlier_is_outvoted() {
        let f = fuse(&[iv(0, 4), iv(1, 5), iv(100, 110)]).unwrap();
        assert_eq!(f.interval, iv(1, 4));
        assert_eq!(f.support, 2);
    }

    #[test]
    fn touching_closed_intervals_overlap_at_the_shared_point() {
        let f = fuse(&[iv(0, 3), iv(3, 6)]).unwrap();
        assert_eq!(f.interval, iv(3, 3));
        assert_eq!(f.support, 2);
    }

    #[test]
    fn tie_breaks_to_the_leftmost_maximal_region() {
        // Two disjoint regions each with support 2.
        let f = fuse(&[iv(0, 2), iv(1, 3), iv(10, 12), iv(11, 13)]).unwrap();
        assert_eq!(f.interval, iv(1, 2));
        assert_eq!(f.support, 2);
    }

    #[test]
    fn interval_algebra_holds() {
        assert_eq!(iv(-3, 5).magnitude(), Duration::from_nanos(5));
        assert_eq!(iv(-7, 2).magnitude(), Duration::from_nanos(7));
        assert_eq!(iv(0, 4).intersect(iv(2, 9)), Some(iv(2, 4)));
        assert_eq!(iv(0, 1).intersect(iv(2, 3)), None);
        assert_eq!(iv(-1, 1).widen(Duration::from_nanos(2)), iv(-3, 3));
        assert!(iv(-1, 1).contains(Duration::ZERO));
        assert!(!iv(-1, 1).contains(Duration::from_nanos(2)));
        assert_eq!(
            OffsetInterval::symmetric(Duration::from_nanos(4)),
            iv(-4, 4)
        );
        assert_eq!(
            OffsetInterval::new(Duration::from_nanos(1), Duration::ZERO),
            None
        );
    }

    #[test]
    fn scratch_reuse_matches_one_shot() {
        let mut m = Marzullo::new();
        let batches = [
            vec![iv(0, 4), iv(1, 5)],
            vec![iv(-3, -1)],
            vec![iv(0, 2), iv(1, 3), iv(2, 4)],
        ];
        for b in &batches {
            assert_eq!(m.fuse(b), fuse(b));
        }
    }
}
