//! Clock synchronization that *achieves* ε̂ — Marzullo interval
//! intersection and round-based probe/echo sync as ordinary
//! clock-automaton components.
//!
//! The paper's algorithms are priced in a synchronization bound ε that
//! the rest of this workspace *assumes* (axiom `C_ε`). This crate turns
//! the assumption into an output:
//!
//! * [`marzullo`] — the pure interval-intersection core: offset
//!   estimates as `[lo, hi]` brackets, fused to the smallest region a
//!   maximum of sources agrees on.
//! * [`ProbeSync`] / [`RoundSync`] — clock components that exchange
//!   timestamped probes and echoes over the ordinary `[d₁, d₂]`
//!   channels, intersect the resulting intervals per round, and emit
//!   `CERTIFY` actions carrying the achieved bound ε̂. `RoundSync` is
//!   the fault-resistant configuration that ages crashed/gray peers out
//!   of its covered set.
//! * [`MeasuredEps`] — reads the certified ε̂ trajectory back out of a
//!   recorded execution, so downstream oracles and monitors can run on
//!   the measured bound instead of a constant.
//! * [`EpsHatOracle`] — the ε̂-parameterized `C_ε` oracle: certificates
//!   must be sound against the recorded clock readings *and* beat the
//!   [`predicted_eps_hat`] bound derived from `(d₂ − d₁, ρ)`.
//! * [`build_sync_fleet`] — a ready-made drifting fleet for tests and
//!   benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod marzullo;
pub mod measured;
pub mod oracle;
pub mod probe;

pub use fleet::{build_sync_fleet, drift_rates, rho_max, FleetSpec};
pub use marzullo::{fuse, Fusion, Marzullo, OffsetInterval};
pub use measured::{CertRecord, MeasuredEps};
pub use oracle::{predicted_eps_hat, EpsHatOracle};
pub use probe::{
    PeerEstimate, PendingEcho, ProbeState, ProbeSync, RoundSync, SyncAction, SyncMsg, SyncOp,
    SyncParams,
};
